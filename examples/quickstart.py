"""Quickstart: FairCap on a hand-built toy dataset.

Builds a 3,000-row jobs dataset from an explicit structural causal model,
declares which attributes are immutable (grouping) vs mutable (intervention),
and runs FairCap with a group statistical-parity constraint.  Run with::

    python examples/quickstart.py
"""

import numpy as np

from repro import (
    AttributeKind,
    AttributeRole,
    AttributeSpec,
    CausalDAG,
    FairCap,
    FairCapConfig,
    Pattern,
    ProtectedGroup,
    Schema,
    Table,
    statistical_parity,
)
from repro.core.variants import ProblemVariant


def build_table(n: int = 3_000, seed: int = 0) -> Table:
    """A toy labour market: income depends on training and sector.

    Women receive a smaller training effect — the disparity FairCap's
    fairness constraint has to manage.
    """
    rng = np.random.default_rng(seed)
    gender = rng.choice(["Male", "Female"], size=n, p=[0.6, 0.4])
    city = rng.choice(["Metro", "Rural"], size=n, p=[0.55, 0.45])
    # Training uptake depends on city (a confounder).
    p_training = np.where(city == "Metro", 0.55, 0.30)
    training = rng.random(n) < p_training
    sector = rng.choice(["Tech", "Retail", "Public"], size=n, p=[0.3, 0.4, 0.3])
    effect_factor = np.where(gender == "Female", 0.5, 1.0)
    income = (
        30_000.0
        + 8_000.0 * (city == "Metro")
        + effect_factor * 12_000.0 * training
        + effect_factor * 10_000.0 * (sector == "Tech")
        + rng.normal(0.0, 3_000.0, size=n)
    )
    schema = Schema(
        [
            AttributeSpec("Gender", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("City", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("Training", AttributeKind.CATEGORICAL, AttributeRole.MUTABLE),
            AttributeSpec("Sector", AttributeKind.CATEGORICAL, AttributeRole.MUTABLE),
            AttributeSpec("Income", AttributeKind.CONTINUOUS, AttributeRole.OUTCOME),
        ]
    )
    return Table(
        {
            "Gender": gender.astype(object),
            "City": city.astype(object),
            "Training": np.where(training, "Yes", "No").astype(object),
            "Sector": sector.astype(object),
            "Income": income,
        },
        schema=schema,
    )


def main() -> None:
    table = build_table()
    dag = CausalDAG(
        edges=[
            ("City", "Training"),
            ("City", "Income"),
            ("Training", "Income"),
            ("Sector", "Income"),
            ("Gender", "Income"),
        ]
    )
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")

    config = FairCapConfig(
        variant=ProblemVariant(fairness=statistical_parity("group", 4_000.0)),
        apriori_min_support=0.2,
        max_rules=5,
    )
    result = FairCap(config).run(table, table.schema, dag, protected)

    print(f"Selected {result.metrics.n_rules} rules "
          f"(coverage {result.metrics.coverage:.0%}):")
    for rule in result.ruleset:
        print(f"  {rule}")
    print(f"\nExpected utility: {result.metrics.expected_utility:,.0f}")
    print(f"  non-protected:  {result.metrics.expected_utility_non_protected:,.0f}")
    print(f"  protected:      {result.metrics.expected_utility_protected:,.0f}")
    print(f"  unfairness:     {result.metrics.unfairness:,.0f} "
          f"(constraint: <= 4,000; satisfied: {result.satisfied()})")


if __name__ == "__main__":
    main()
