"""Case study (paper Sec. 6): raising developer salaries world-wide.

Reproduces the paper's Stack Overflow walk-through: Alice at the UN wants
prescription rules that raise salaries without widening the gap between
developers in low-GDP countries (the protected group, ~22% of respondents)
and everyone else.  The script compares three variants — no constraints,
group SP fairness, and individual SP fairness — and prints example rules in
the paper's natural-language style.  Run with::

    python examples/stackoverflow_salary.py [n_rows]
"""

import sys

from repro import FairCap, FairCapConfig, canonical_variants, load_stackoverflow
from repro.rules.templates import describe_rule


def main(n_rows: int = 5_000) -> None:
    bundle = load_stackoverflow(n=n_rows, rng=7)
    print(f"Dataset: {bundle.table.n_rows} developers, "
          f"protected = {bundle.protected.name} "
          f"({bundle.protected.fraction(bundle.table):.1%})")

    variants = canonical_variants(
        "SP", 10_000.0, theta=0.5, theta_protected=0.5
    )
    chosen = ["No constraints", "Group fairness", "Individual fairness"]
    for name in chosen:
        config = FairCapConfig(
            variant=variants[name],
            max_values_per_attribute=5,
            max_grouping_size=2,
        )
        result = FairCap(config).run(
            bundle.table, bundle.schema, bundle.dag, bundle.protected
        )
        m = result.metrics
        print(f"\n=== {name} ===")
        print(f"rules={m.n_rules}  coverage={m.coverage:.1%}  "
              f"protected coverage={m.protected_coverage:.1%}")
        print(f"expected utility={m.expected_utility:,.0f}  "
              f"non-protected={m.expected_utility_non_protected:,.0f}  "
              f"protected={m.expected_utility_protected:,.0f}  "
              f"unfairness={m.unfairness:,.0f}")
        print("example rules:")
        for rule in result.ruleset.rules[:3]:
            print("  >", describe_rule(rule, bundle.templates))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5_000)
