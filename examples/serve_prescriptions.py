"""Mine -> export -> serve -> query: the full prescription-serving loop.

Mines a ruleset from the German Credit bundle, persists it as a versioned
JSON artifact, loads it back into a :class:`PrescriptionEngine`, answers
per-individual queries (including the worst-case Eq. 6 path for protected
individuals), and finally round-trips a request through the HTTP API on an
ephemeral port.  Run with::

    python examples/serve_prescriptions.py
"""

import json
import tempfile
import threading
import urllib.request
from pathlib import Path

from repro import FairCap, FairCapConfig, PrescriptionEngine, ServingArtifact
from repro.core.variants import unconstrained
from repro.datasets import load_german
from repro.serve.http import make_server


def main() -> None:
    # 1. Mine a ruleset (small, laptop-friendly scale).
    bundle = load_german(n=1_000, rng=7)
    config = FairCapConfig(
        variant=unconstrained(), apriori_min_support=0.15, max_rules=8
    )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    print(f"mined {result.ruleset.size} rules "
          f"(coverage {result.metrics.coverage:.0%})")

    # 2. Export: the mined ruleset becomes a deployable JSON artifact.
    artifact_path = Path(tempfile.mkdtemp()) / "german_ruleset.json"
    ServingArtifact(
        ruleset=result.ruleset,
        schema=bundle.schema,
        protected=bundle.protected,
        metadata={"dataset": "german", "n_rows": bundle.table.n_rows},
    ).save(str(artifact_path))
    print(f"exported artifact to {artifact_path} "
          f"({artifact_path.stat().st_size:,} bytes)")

    # 3. Serve: load the artifact and answer per-individual queries.
    engine = PrescriptionEngine.from_artifact(ServingArtifact.load(str(artifact_path)))
    print(f"engine requires attributes: {', '.join(engine.index.attributes)}")
    for row in bundle.table.head(3).to_rows():
        prescription = engine.prescribe(row)
        tag = {True: "protected", False: "non-protected", None: "unknown"}
        print(f"  [{tag[prescription.protected]:>13}] "
              f"rule={prescription.rule_index} "
              f"utility={prescription.expected_utility:.3f} "
              f"matched={len(prescription.matched_rules)} rules")
    print(f"profile cache: {engine.cache_info()}")

    # 4. The same query over HTTP (ephemeral port, stdlib only).
    server = make_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    individual = {
        key: (value if isinstance(value, str) else float(value))
        for key, value in bundle.table.head(1).to_rows()[0].items()
    }
    request = urllib.request.Request(
        f"http://127.0.0.1:{server.port}/prescribe",
        data=json.dumps({"individual": individual}).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        payload = json.loads(response.read())
    print(f"HTTP /prescribe -> {json.dumps(payload['prescription'])[:120]}...")
    server.shutdown()
    server.server_close()


if __name__ == "__main__":
    main()
