"""Bringing your own data: CSV -> schema -> DAG -> FairCap.

Shows the full workflow a downstream user follows with their own tabular
data: write/read a CSV, declare attribute roles, supply a causal DAG (or
discover one with PC), pick a problem variant via the Figure 2 decision
tree, and run FairCap.  Run with::

    python examples/custom_dataset.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    AttributeKind,
    AttributeRole,
    AttributeSpec,
    CausalDAG,
    FairCap,
    FairCapConfig,
    Pattern,
    ProtectedGroup,
    Schema,
    read_csv,
    select_variant,
    write_csv,
)
from repro.tabular import Table


def make_csv(path: Path, n: int = 2_000, seed: int = 3) -> None:
    """Fabricate a small marketing dataset and write it to ``path``."""
    rng = np.random.default_rng(seed)
    segment = rng.choice(["Consumer", "SMB", "Enterprise"], n, p=[0.5, 0.3, 0.2])
    region = rng.choice(["North", "South"], n, p=[0.6, 0.4])
    # Channel choice depends on segment (confounding).
    p_email = np.where(segment == "Consumer", 0.7, 0.4)
    channel = np.where(rng.random(n) < p_email, "Email", "Phone").astype(object)
    plan = rng.choice(["Basic", "Premium"], n, p=[0.7, 0.3])
    south_factor = np.where(region == "South", 0.5, 1.0)
    revenue = (
        100.0
        + 40.0 * (segment == "Enterprise")
        + south_factor * 25.0 * (channel == "Phone")
        + south_factor * 35.0 * (plan == "Premium")
        + rng.normal(0, 10, n)
    )
    table = Table(
        {
            "Segment": segment.astype(object),
            "Region": region.astype(object),
            "Channel": channel,
            "Plan": plan.astype(object),
            "Revenue": revenue,
        }
    )
    write_csv(table, path)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "customers.csv"
        make_csv(path)

        schema = Schema(
            [
                AttributeSpec("Segment", AttributeKind.CATEGORICAL,
                              AttributeRole.IMMUTABLE),
                AttributeSpec("Region", AttributeKind.CATEGORICAL,
                              AttributeRole.IMMUTABLE),
                AttributeSpec("Channel", AttributeKind.CATEGORICAL,
                              AttributeRole.MUTABLE),
                AttributeSpec("Plan", AttributeKind.CATEGORICAL,
                              AttributeRole.MUTABLE),
                AttributeSpec("Revenue", AttributeKind.CONTINUOUS,
                              AttributeRole.OUTCOME),
            ]
        )
        table = read_csv(path, schema=schema)
        print(f"Loaded {table.n_rows} rows from {path.name}")

        dag = CausalDAG(
            edges=[
                ("Segment", "Channel"),
                ("Segment", "Revenue"),
                ("Channel", "Revenue"),
                ("Plan", "Revenue"),
                ("Region", "Revenue"),
            ]
        )
        protected = ProtectedGroup(Pattern.of(Region="South"),
                                   name="southern customers")

        # Figure 2 decision tree: fairness yes, group-level, SP with
        # epsilon=16; coverage yes, whole-ruleset level, theta=0.6.
        variant = select_variant(
            fairness=True,
            group_fairness=True,
            fairness_kind="SP",
            fairness_threshold=16.0,
            coverage=True,
            per_rule_coverage=False,
            theta=0.6,
            theta_protected=0.6,
        )
        config = FairCapConfig(variant=variant, apriori_min_support=0.15,
                               max_rules=6)
        result = FairCap(config).run(table, schema, dag, protected)

        print(f"\nVariant: {variant.name}")
        for rule in result.ruleset:
            print(f"  {rule}")
        m = result.metrics
        print(f"\ncoverage={m.coverage:.0%} protected={m.protected_coverage:.0%} "
              f"utility={m.expected_utility:.1f} unfairness={m.unfairness:.1f} "
              f"satisfied={result.satisfied()}")


if __name__ == "__main__":
    main()
