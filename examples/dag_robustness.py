"""DAG robustness (paper Sec. 7.2.1 / Table 6) in miniature.

Runs FairCap (group fairness + group coverage) under five causal DAGs —
the dataset's original SCM DAG, three synthetic simplifications, and a DAG
discovered from the data by the PC algorithm — and compares the resulting
rulesets.  Run with::

    python examples/dag_robustness.py [n_rows]
"""

import sys

from repro import FairCap, FairCapConfig, canonical_variants, load_stackoverflow, pc_dag
from repro.causal.dagbuilders import named_dag_variants


def main(n_rows: int = 4_000) -> None:
    bundle = load_stackoverflow(n=n_rows, rng=7)
    variants = canonical_variants("SP", 10_000.0, theta=0.5, theta_protected=0.5)
    variant = variants["Group coverage, Group fairness"]

    print("Discovering a DAG with the PC algorithm "
          f"({min(n_rows, 2000)} rows, alpha=0.01)...")
    sample = bundle.table.sample_fraction(min(1.0, 2000 / n_rows), rng=7)
    discovered = pc_dag(sample, outcome=bundle.outcome, alpha=0.01,
                        max_cond_size=1)
    print(f"  PC DAG: {len(discovered.edges)} edges "
          f"(original: {len(bundle.dag.edges)})")

    dags = named_dag_variants(bundle.schema, bundle.dag, pc=discovered)
    print(f"\n{'DAG':<22} {'rules':>5} {'coverage':>9} {'utility':>9} "
          f"{'protected':>9} {'unfair':>8}")
    for label, dag in dags.items():
        config = FairCapConfig(variant=variant, max_values_per_attribute=5,
                               max_grouping_size=2)
        result = FairCap(config).run(bundle.table, bundle.schema, dag,
                                     bundle.protected)
        m = result.metrics
        print(f"{label:<22} {m.n_rules:>5} {m.coverage:>8.1%} "
              f"{m.expected_utility:>9,.0f} "
              f"{m.expected_utility_protected:>9,.0f} {m.unfairness:>8,.0f}")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4_000)
