"""Case study (paper Sec. 6): improving credit scores with BGL fairness.

Reproduces the paper's German Credit walk-through: the outcome is a binary
credit-risk score, the protected group is single females (~9%), and the
fairness family is bounded group loss (BGL) — every protected individual's
expected gain should clear a floor tau.  Run with::

    python examples/german_credit.py [n_rows]
"""

import sys

from repro import FairCap, FairCapConfig, canonical_variants, load_german
from repro.rules.templates import describe_rule


def main(n_rows: int = 4_000) -> None:
    bundle = load_german(n=n_rows, rng=7)
    table = bundle.table
    rate = table.values("CreditRisk").mean()
    print(f"Dataset: {table.n_rows} applicants, good-credit rate {rate:.1%}, "
          f"protected = {bundle.protected.name} "
          f"({bundle.protected.fraction(table):.1%})")

    variants = canonical_variants("BGL", 0.1, theta=0.3, theta_protected=0.3)
    for name in ["No constraints", "Group fairness",
                 "Rule coverage, Group fairness"]:
        config = FairCapConfig(
            variant=variants[name],
            max_values_per_attribute=5,
            max_grouping_size=2,
        )
        result = FairCap(config).run(table, bundle.schema, bundle.dag,
                                     bundle.protected)
        m = result.metrics
        print(f"\n=== {name} ===")
        print(f"rules={m.n_rules}  coverage={m.coverage:.1%}  "
              f"protected coverage={m.protected_coverage:.1%}")
        print(f"expected utility={m.expected_utility:.3f}  "
              f"non-protected={m.expected_utility_non_protected:.3f}  "
              f"protected={m.expected_utility_protected:.3f}  "
              f"unfairness={m.unfairness:.3f}")
        print("example rules:")
        for rule in result.ruleset.rules[:3]:
            print("  >", describe_rule(rule, bundle.templates,
                                       utility_format="{:.2f}"))


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 4_000)
