"""Ablation: OLS adjustment vs exact stratification (DESIGN.md #1).

Both estimators should produce similar rulesets on the SO synthetic; the
linear estimator is the default because it handles sparse strata better and
is what DoWhy uses.
"""

from repro.core.faircap import FairCap
from repro.utils.text import format_table


def _run(settings, estimator):
    from dataclasses import replace

    bundle = settings.load("stackoverflow")
    variants = settings.variants_for(bundle)
    config = replace(
        settings.config_for(bundle, variants["Group fairness"]),
        estimator=estimator,
    )
    return FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )


def test_estimator_ablation(benchmark, settings, record_output):
    def run_both():
        return {name: _run(settings, name) for name in ("linear", "stratified")}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            name,
            result.metrics.n_rules,
            f"{result.metrics.expected_utility:.0f}",
            f"{result.metrics.unfairness:.0f}",
            f"{sum(result.timings.values()):.1f}s",
        ]
        for name, result in results.items()
    ]
    record_output(
        "ablation_estimators",
        format_table(
            ["estimator", "# rules", "exp utility", "unfairness", "time"],
            rows,
            title="Ablation: CATE estimator (SO, group fairness)",
        ),
    )
    linear = results["linear"].metrics
    stratified = results["stratified"].metrics
    # The two estimators agree on the big picture (within 2x).
    assert stratified.expected_utility >= 0.5 * linear.expected_utility
    assert stratified.expected_utility <= 2.0 * linear.expected_utility
