"""Table 6 benchmark: robustness of the results to the causal DAG."""

from repro.experiments import format_table6, run_table6


def test_table6_stackoverflow(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_table6,
        kwargs={"dataset": "stackoverflow", "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("table6_stackoverflow", format_table6(result))

    utilities = {row.label: row.exp_utility for row in result.rows}
    original = utilities["Original causal DAG"]
    # Paper shape: expected utility is broadly stable across DAGs on SO
    # ("the expected utility remains similar for the Stack Overflow
    # dataset"); allow a 2x band.
    for label, utility in utilities.items():
        assert utility >= 0.3 * original, (label, utility, original)
        assert utility <= 3.0 * original, (label, utility, original)


def test_table6_german(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_table6,
        kwargs={"dataset": "german", "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("table6_german", format_table6(result))
    assert len(result.rows) == 5
    # German shows more variability (paper); just require positive utilities
    # under the informative DAGs.
    utilities = {row.label: row.exp_utility for row in result.rows}
    assert utilities["Original causal DAG"] > 0
    assert utilities["PC DAG"] > 0
