"""Micro-benchmarks of the substrate layers (classic pytest-benchmark).

These track the per-operation costs that dominate FairCap's runtime: pattern
masks, Apriori, a single adjusted CATE, and d-separation queries.
"""

import numpy as np
import pytest

from repro.causal.backdoor import backdoor_adjustment_set
from repro.causal.estimators import LinearAdjustmentEstimator
from repro.datasets import load_stackoverflow
from repro.mining.apriori import apriori
from repro.mining.patterns import Pattern


@pytest.fixture(scope="module")
def bundle():
    return load_stackoverflow(n=10_000, rng=1)


def test_pattern_mask(benchmark, bundle):
    pattern = Pattern.of(Country="US", Age="25-34")
    mask = benchmark(pattern.mask, bundle.table)
    assert mask.dtype == bool


def test_apriori_grouping(benchmark, bundle):
    result = benchmark(
        apriori,
        bundle.table,
        attributes=bundle.schema.immutable_names,
        min_support=0.1,
        max_length=2,
        max_values_per_attribute=5,
    )
    assert len(result) > 0


def test_single_cate(benchmark, bundle):
    adjustment = backdoor_adjustment_set(bundle.dag, ["Role"], "Salary")
    treated = bundle.table.values("Role") == "Back-end developer"
    estimator = LinearAdjustmentEstimator()
    result = benchmark(
        estimator.estimate, bundle.table, treated, "Salary", adjustment
    )
    assert result.valid


def test_d_separation_query(benchmark, bundle):
    ok = benchmark(
        bundle.dag.d_separated, ["SexualOrientation"], ["Salary"], ["Country"]
    )
    assert ok  # orientation is causally inert given country


def test_table_filter(benchmark, bundle):
    mask = bundle.table.values("Country") == "US"

    def run():
        return bundle.table.filter(mask)

    sub = benchmark(run)
    assert sub.n_rows == int(mask.sum())
