"""Engine comparison for Step-2 mining: scalar vs PR-3/PR-5 vs frontier.

Runs FairCap's Step 2 (treatment mining) on the German Table-4 configuration
at increasing row counts through four engines:

- ``scalar``  — per-candidate OLS (``batch_estimation=False``), the
  differential reference;
- ``pr3``     — the PR-3 batched FWL engine (``batch_estimation=True`` with
  ``bitset_masks=False, frontier_batching=False``);
- ``pr5``     — the PR-5 frontier engine: bitset masks + frontier batching
  without this PR's Gram subtraction / shared-memory pools
  (``gram_subtraction=False, shared_memory=False``);
- ``frontier``— the current default: PR-5 plus donor Gram subtraction for
  protected/non-protected sub-populations.

Every batched run is differentially checked against its scalar twin — same
lattice, same candidate rules (rtol 1e-9 on utilities), same selected
ruleset — a speedup only counts if the answer is unchanged.

A separate *throughput probe* times ``throughput_mode=True`` against the
PR-3 engine on a tiny 2-context oracle world — the regime where the
per-context frontier units historically sat at ~0.9-1x of PR-3.  Throughput
mode merges GEMMs across contexts and skips digests/result caching, trading
serial ≡ process bit-identity for speed, so the probe carries no equality
check: its correctness gate is the scenario oracle
(``tests/scenarios/test_throughput.py``).

The out-of-core data layer is probed twice.  A *shard-overhead probe*
(every invocation) mines the 4k-row German workload in RAM and through a
``ShardedTable`` spill and enforces both bit-identity and a ≤5% Step-2
cost.  A *scale curve* (full runs only) mines one scenario world sharded
vs in-RAM at 30k/100k/1M rows in fresh subprocesses (``scale_child.py``)
and records wall-clock plus peak RSS/address space per point; the
committed curve pins the payoff — the 1M-row world completes with peak
RSS below the full-table footprint.

Usage::

    PYTHONPATH=src python benchmarks/bench_estimation.py            # full curve
    PYTHONPATH=src python benchmarks/bench_estimation.py --sizes 1000,4000
    PYTHONPATH=src python benchmarks/bench_estimation.py --smoke    # CI job

Outputs:

- ``benchmarks/BENCH_estimation.json`` — machine-readable record (schema in
  ``benchmarks/README.md``); the committed copy is the perf trajectory of
  the repository and carries the ``smoke_baseline`` block the CI
  ``bench-trend`` job compares against.
- ``benchmarks/results/estimation.txt`` — human-readable table.
- ``--smoke`` writes ``benchmarks/results/estimation-smoke.{txt,json}``
  instead (deterministic paths; never touches the committed record).

Targets (largest size of the full curve, single core): the frontier engine
must hold the PR-3 engine's ≥5x over scalar *and* beat the PR-3 engine
itself by ≥1.5x; ``--smoke`` shrinks the run to a plumbing/equality check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.faircap import FairCap
from repro.experiments.settings import ExperimentSettings

BENCH_DIR = Path(__file__).resolve().parent
JSON_PATH = BENCH_DIR / "BENCH_estimation.json"
TEXT_PATH = BENCH_DIR / "results" / "estimation.txt"
SMOKE_TEXT_PATH = BENCH_DIR / "results" / "estimation-smoke.txt"
SMOKE_JSON_PATH = BENCH_DIR / "results" / "estimation-smoke.json"

# Wall-clock targets are *soft*, same philosophy as the CI trend gate:
# even a same-run, same-machine ratio moves with scheduler noise on shared
# boxes (rep-to-rep spread at 4k rows spans 0.34-0.60s for one engine on a
# loaded 1-CPU container, so a minimum-of-5 ratio wanders 1.27-1.45x around
# the quiet-box 1.5x).  A miss prints a warning and is recorded in the
# payload (``speedup_targets_met``); only differential mismatches — the
# actual correctness contract — fail the run.
TARGET_SPEEDUP_VS_SCALAR = 5.0
TARGET_SPEEDUP_VS_PR3 = 1.5
RTOL = 1e-9
SMOKE_ROWS = 800

# Telemetry must be free when off and near-free when on: the telemetry-on
# frontier run may cost at most 1% over telemetry-off — OR at most 10 ms
# absolute, whichever is larger.  The absolute floor exists because the
# instrumentation cost is a near-fixed few milliseconds per run (counter
# folds and span bookkeeping, not per-candidate work): at smoke scale
# (~150 ms of Step 2) a 1% budget is ~1.5 ms, below scheduler noise on
# shared CI boxes, while at experiment scale (seconds) the 1% relative
# budget is the binding constraint.  The floor still catches real
# regressions — per-event emission on the cache-lookup path, the kind of
# mistake this gate exists for, costs ~20 ms at smoke scale.
TELEMETRY_OVERHEAD_MAX_PCT = 1.0
TELEMETRY_OVERHEAD_FLOOR_SECONDS = 0.010

# Same budget shape for the fault-tolerance layer: a fault-free run with
# checkpointing enabled (the priciest resilience feature a healthy run
# pays for — one pickle + atomic rename per grouping context, plus the
# run-key digest) may cost at most 1% over the plain run, or 10 ms
# absolute, whichever is larger.  The retry/fault-injection plumbing
# itself adds only per-chunk argument passing and is covered by the same
# measurement: the checkpointed side runs the full resilient loop.
RESILIENCE_OVERHEAD_MAX_PCT = 1.0
RESILIENCE_OVERHEAD_FLOOR_SECONDS = 0.010

# Out-of-core data layer: Step-2 mining through a ShardedTable handle
# (packed predicate words merged from shard segments, context gathers off
# the store) may cost at most 5% over the in-RAM table on the same rows —
# and must stay bit-identical, which the probe checks with the full
# differential comparison.  Probed at the 4k experiment scale, where shard
# traffic is real work rather than fixed-cost noise.
SHARD_OVERHEAD_MAX_PCT = 5.0
SHARD_OVERHEAD_FLOOR_SECONDS = 0.010
SHARD_PROBE_ROWS = 4_000
SHARD_PROBE_SHARD_ROWS = 1_024

#: Out-of-core scale curve (full runs only): one scenario world mined
#: sharded vs in-RAM at SO scale (30k), 100k and 1M rows, each point in a
#: fresh subprocess so the ru_maxrss/VmPeak high-water marks of one point
#: cannot leak into the next.  The committed curve is the payoff record of
#: the sharded data layer: the 1M-row world mines to completion with peak
#: RSS below the full-table footprint.
SCALE_WORLD = "linear-g3-d1-gap-lo"
SCALE_SIZES = (30_000, 100_000, 1_000_000)
SCALE_SHARD_ROWS = 4_096
SCALE_CHILD = BENCH_DIR / "scale_child.py"

ENGINES = ("scalar", "pr3", "pr5", "frontier")

#: The tiny-world throughput probe: a 2-context linear world where the
#: per-context frontier has no cross-context BLAS win to collect; merged
#: rounds must at least break even against the PR-3 engine.
THROUGHPUT_WORLD = "linear-g2-d1-gap-lo"
THROUGHPUT_ROWS = 2_000
TARGET_THROUGHPUT_VS_PR3 = 1.0


def _engine_configs(config):
    return {
        "scalar": replace(config, batch_estimation=False),
        "pr3": replace(config, bitset_masks=False, frontier_batching=False),
        "pr5": replace(config, gram_subtraction=False, shared_memory=False),
        "frontier": config,
    }


def _parse_sizes(text: str) -> list[int]:
    sizes = sorted({int(part) for part in text.split(",") if part.strip()})
    if not sizes or any(s < 200 for s in sizes):
        raise argparse.ArgumentTypeError("sizes must be integers >= 200")
    return sizes


def _check_identical(scalar, candidate, label: str) -> list[str]:
    """Differential check vs the scalar engine; returns mismatch strings."""
    problems: list[str] = []
    if candidate.nodes_evaluated != scalar.nodes_evaluated:
        problems.append(
            f"{label}: lattice differs: {candidate.nodes_evaluated} vs "
            f"{scalar.nodes_evaluated} nodes"
        )
    if len(candidate.candidate_rules) != len(scalar.candidate_rules):
        problems.append(f"{label}: candidate count differs")
    else:
        for got, want in zip(candidate.candidate_rules, scalar.candidate_rules):
            if got.grouping != want.grouping or got.intervention != want.intervention:
                problems.append(
                    f"{label}: candidate patterns differ: {got} vs {want}"
                )
                break
            for field in ("utility", "utility_protected", "utility_non_protected"):
                a, b = getattr(got, field), getattr(want, field)
                if abs(a - b) > RTOL * max(abs(a), abs(b), 1.0):
                    problems.append(
                        f"{label}: {field} differs on {got.grouping}: {a} vs {b}"
                    )
                    break
    got_rules = [(r.grouping, r.intervention) for r in candidate.ruleset.rules]
    want_rules = [(r.grouping, r.intervention) for r in scalar.ruleset.rules]
    if got_rules != want_rules:
        problems.append(f"{label}: selected rulesets differ")
    return problems


def _run(config, bundle):
    return FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )


def _time_step2(configs: dict, bundle, reps: int) -> dict:
    """Best ``treatment_mining`` seconds per engine, rotated interleaving.

    The first (un-timed) run warms the caches every engine shares — the
    DAG's d-separation/backdoor memos and the per-table fingerprints — so
    no engine gets a cold-cache handicap.  Per-run state (the estimation
    cache) is rebuilt inside every ``FairCap`` run either way.  The engine
    order is rotated every rep (a fixed order hands whichever engine runs
    after the slow scalar pass a systematic thermal/cache handicap), and
    the *minimum* across reps is reported: on shared single-core boxes the
    minimum is the interference-robust statistic — any slower sample is
    the same deterministic computation plus noise.
    """
    _run(next(iter(configs.values())), bundle)
    times: dict[str, list[float]] = {name: [] for name in configs}
    results: dict[str, object] = {}
    names = list(configs)
    for rep in range(reps):
        order = names[rep % len(names):] + names[: rep % len(names)]
        for name in order:
            results[name] = _run(configs[name], bundle)
            times[name].append(results[name].timings["treatment_mining"])
    return {name: (min(times[name]), results[name]) for name in configs}


def _measure_size(settings, dataset: str, variant: str, reps: int):
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)
    if variant not in variants:
        raise SystemExit(
            f"unknown variant {variant!r}; choose from: "
            f"{', '.join(sorted(variants))}"
        )
    config = settings.config_for(bundle, variants[variant])
    timed = _time_step2(_engine_configs(config), bundle, reps)
    scalar_seconds, scalar_result = timed["scalar"]
    problems: list[str] = []
    for name in ("pr3", "pr5", "frontier"):
        problems.extend(_check_identical(scalar_result, timed[name][1], name))
    pr3_seconds = timed["pr3"][0]
    pr5_seconds = timed["pr5"][0]
    frontier_seconds, frontier_result = timed["frontier"]
    row = {
        "rows": bundle.table.n_rows,
        "scalar_seconds": round(scalar_seconds, 4),
        "pr3_seconds": round(pr3_seconds, 4),
        "pr5_seconds": round(pr5_seconds, 4),
        "frontier_seconds": round(frontier_seconds, 4),
        "speedup_vs_scalar": round(scalar_seconds / frontier_seconds, 2)
        if frontier_seconds > 0
        else float("inf"),
        "speedup_vs_pr3": round(pr3_seconds / frontier_seconds, 2)
        if frontier_seconds > 0
        else float("inf"),
        "speedup_vs_pr5": round(pr5_seconds / frontier_seconds, 2)
        if frontier_seconds > 0
        else float("inf"),
        "nodes_evaluated": frontier_result.nodes_evaluated,
        "identical": not problems,
    }
    return row, problems


def _measure_throughput_probe(reps: int) -> dict:
    """Tiny-world throughput-mode point: merged rounds vs the PR-3 engine.

    Interleaved alternation with the minimum across reps, like
    :func:`_time_step2`.  No differential check — throughput mode is
    certified by the scenario oracle, not bit-identity — so the row only
    records wall-clock, the context count, and whether the break-even
    target held.
    """
    from repro.scenarios import ScenarioWorld, oracle_grid
    from repro.scenarios.oracle import oracle_config, run_world

    spec = {s.name: s for s in oracle_grid()}[THROUGHPUT_WORLD]
    world = ScenarioWorld(spec)
    bundle = world.bundle(THROUGHPUT_ROWS)
    configs = {
        "pr3": oracle_config(
            world, bitset_masks=False, frontier_batching=False
        ),
        "throughput": oracle_config(world, throughput_mode=True),
    }
    result = run_world(world, bundle)  # warm shared memos
    times: dict[str, list[float]] = {name: [] for name in configs}
    reps = max(reps, 5)  # millisecond-scale runs: min over a few reps
    names = list(configs)
    for rep in range(reps):
        order = names[rep % len(names):] + names[: rep % len(names)]
        for name in order:
            run = run_world(world, bundle, configs[name])
            times[name].append(run.timings["treatment_mining"])
    pr3_seconds = min(times["pr3"])
    throughput_seconds = min(times["throughput"])
    speedup = (
        pr3_seconds / throughput_seconds
        if throughput_seconds > 0
        else float("inf")
    )
    return {
        "world": THROUGHPUT_WORLD,
        "rows": bundle.table.n_rows,
        "contexts": len(result.grouping_patterns),
        "reps": reps,
        "pr3_seconds": round(pr3_seconds, 4),
        "throughput_seconds": round(throughput_seconds, 4),
        "speedup_vs_pr3": round(speedup, 3),
        "target_min": TARGET_THROUGHPUT_VS_PR3,
        "passed": speedup >= TARGET_THROUGHPUT_VS_PR3,
    }


def _measure_telemetry_overhead(settings, dataset: str, variant: str, reps: int):
    """Telemetry-on vs telemetry-off cost of the default frontier engine.

    Alternating interleaved order (off/on, then on/off, ...) with the
    minimum across reps on each side — the same interference-robust
    protocol as :func:`_time_step2`.  Returns the overhead row plus the
    telemetry-on run's report (whose derived rates become the committed
    trend baseline).
    """
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)
    config = settings.config_for(bundle, variants[variant])
    config_on = replace(config, telemetry=True)
    _run(config, bundle)  # warm the shared DAG/backdoor memos
    times: dict[str, list[float]] = {"off": [], "on": []}
    report = None
    # The deltas under test are single-digit milliseconds; the min over
    # fewer than ~5 alternating reps still carries scheduler noise of the
    # same magnitude.
    reps = max(reps, 5)
    for rep in range(reps):
        order = ("off", "on") if rep % 2 == 0 else ("on", "off")
        for mode in order:
            result = _run(config_on if mode == "on" else config, bundle)
            times[mode].append(result.timings["treatment_mining"])
            if mode == "on":
                report = result.telemetry
    off_seconds = min(times["off"])
    on_seconds = min(times["on"])
    delta = on_seconds - off_seconds
    overhead_pct = 100.0 * delta / off_seconds if off_seconds > 0 else 0.0
    row = {
        "rows": bundle.table.n_rows,
        "reps": reps,
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": TELEMETRY_OVERHEAD_MAX_PCT,
        "absolute_floor_seconds": TELEMETRY_OVERHEAD_FLOOR_SECONDS,
        "within_budget": (
            delta <= TELEMETRY_OVERHEAD_FLOOR_SECONDS
            or overhead_pct <= TELEMETRY_OVERHEAD_MAX_PCT
        ),
    }
    return row, report


def _measure_resilience_overhead(settings, dataset: str, variant: str, reps: int):
    """Fault-free cost of the resilience tier: plain vs checkpointed run.

    The checkpointed side pays everything a healthy resilient run pays —
    the run-key digest, one pickle + atomic rename per grouping context,
    and the per-window driver-abort check — against a *fresh* directory
    every rep (a warm resume would measure the resume path instead).
    Alternating interleaved order with the minimum per side, the same
    protocol as :func:`_measure_telemetry_overhead`.
    """
    import shutil
    import tempfile

    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)
    config = settings.config_for(bundle, variants[variant])
    _run(config, bundle)  # warm the shared DAG/backdoor memos
    times: dict[str, list[float]] = {"off": [], "on": []}
    reps = max(reps, 5)
    for rep in range(reps):
        order = ("off", "on") if rep % 2 == 0 else ("on", "off")
        for mode in order:
            if mode == "on":
                scratch = tempfile.mkdtemp(prefix="bench-checkpoint-")
                try:
                    result = _run(
                        replace(config, checkpoint_dir=scratch), bundle
                    )
                finally:
                    shutil.rmtree(scratch, ignore_errors=True)
            else:
                result = _run(config, bundle)
            times[mode].append(result.timings["treatment_mining"])
    off_seconds = min(times["off"])
    on_seconds = min(times["on"])
    delta = on_seconds - off_seconds
    overhead_pct = 100.0 * delta / off_seconds if off_seconds > 0 else 0.0
    return {
        "rows": bundle.table.n_rows,
        "reps": reps,
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": RESILIENCE_OVERHEAD_MAX_PCT,
        "absolute_floor_seconds": RESILIENCE_OVERHEAD_FLOOR_SECONDS,
        "within_budget": (
            delta <= RESILIENCE_OVERHEAD_FLOOR_SECONDS
            or overhead_pct <= RESILIENCE_OVERHEAD_MAX_PCT
        ),
    }


def _measure_shard_overhead(settings, dataset: str, variant: str, reps: int):
    """In-RAM vs out-of-core cost of the default engine on the same rows.

    With ``shard_rows`` set, ``FairCap.run`` spills the table into a
    columnar shard store and mines against the ShardedTable handle; the
    contract is bit-identity at near-zero Step-2 cost, because packed
    predicate words merge exactly from shard segments and every context
    gather is a content-identical sub-table.  Alternating interleaved
    order with the per-side minimum, like the other probes.  The timed
    phase (``treatment_mining``) excludes the one-time spill write — an
    ingest cost each rep pays outside the timer.  Returns the overhead row
    plus any differential mismatches (a hard failure, not an overhead).
    """
    bundle = settings.load(dataset)
    variants = settings.variants_for(bundle)
    config = settings.config_for(bundle, variants[variant])
    config_sharded = replace(config, shard_rows=SHARD_PROBE_SHARD_ROWS)
    _run(config, bundle)  # warm the shared DAG/backdoor memos
    times: dict[str, list[float]] = {"off": [], "on": []}
    results: dict[str, object] = {}
    reps = max(reps, 3)
    for rep in range(reps):
        order = ("off", "on") if rep % 2 == 0 else ("on", "off")
        for mode in order:
            result = _run(config_sharded if mode == "on" else config, bundle)
            times[mode].append(result.timings["treatment_mining"])
            results[mode] = result
    problems = _check_identical(results["off"], results["on"], "sharded")
    off_seconds = min(times["off"])
    on_seconds = min(times["on"])
    delta = on_seconds - off_seconds
    overhead_pct = 100.0 * delta / off_seconds if off_seconds > 0 else 0.0
    row = {
        "rows": bundle.table.n_rows,
        "shard_rows": SHARD_PROBE_SHARD_ROWS,
        "reps": reps,
        "off_seconds": round(off_seconds, 4),
        "on_seconds": round(on_seconds, 4),
        "overhead_pct": round(overhead_pct, 2),
        "max_overhead_pct": SHARD_OVERHEAD_MAX_PCT,
        "absolute_floor_seconds": SHARD_OVERHEAD_FLOOR_SECONDS,
        "identical": not problems,
        "within_budget": (
            delta <= SHARD_OVERHEAD_FLOOR_SECONDS
            or overhead_pct <= SHARD_OVERHEAD_MAX_PCT
        ),
    }
    return row, problems


def _run_scale_point(mode: str, n: int) -> dict:
    """One scale-curve point, in a fresh subprocess (clean memory peaks)."""
    import subprocess

    completed = subprocess.run(
        [
            sys.executable,
            str(SCALE_CHILD),
            mode,
            SCALE_WORLD,
            str(n),
            str(SCALE_SHARD_ROWS),
        ],
        capture_output=True,
        text=True,
        timeout=1800,
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"scale child failed ({mode}, n={n}):\n"
            f"{completed.stdout}\n{completed.stderr}"
        )
    return json.loads(completed.stdout.strip().splitlines()[-1])


def _measure_scale_curve() -> dict:
    """Sharded vs in-RAM wall-clock and peak memory at 30k/100k/1M rows.

    Both sides run the memory-lean mining configuration (per-context
    mining, no estimation cache — see ``scale_child.py``) so the peaks
    compare the data layer itself: the sharded side samples the world
    chunk-by-chunk straight into the shard store and never materialises
    the full table, the in-RAM side holds it for the whole run.  The two
    sides draw different sample streams (chunked sampling advances the
    rng differently), so the curve records memory and time, not equality
    — bit-identity on a *shared* table is the differential suite's and
    the shard-overhead probe's job.
    """
    points = []
    for n in SCALE_SIZES:
        sharded = _run_scale_point("sharded", n)
        in_ram = _run_scale_point("unsharded", n)
        points.append(
            {
                "rows": n,
                "sharded": sharded,
                "in_ram": in_ram,
                "rss_saving_kb": in_ram["rss_kb"] - sharded["rss_kb"],
                "peak_saving_kb": in_ram["peak_kb"] - sharded["peak_kb"],
            }
        )
    largest = points[-1]
    return {
        "world": SCALE_WORLD,
        "shard_rows": SCALE_SHARD_ROWS,
        "mining_config": "frontier_batching=False, cache_size=0 (both modes)",
        "points": points,
        "rss_bounded_at_largest": (
            largest["sharded"]["rss_kb"] < largest["in_ram"]["rss_kb"]
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="german",
                        choices=["german", "stackoverflow"])
    parser.add_argument("--sizes", type=_parse_sizes, default=None,
                        help="comma-separated row counts "
                             "(default 1000,2000,<experiment scale>)")
    parser.add_argument("--reps", type=int, default=5,
                        help="rotated interleaved runs per (engine, size); "
                             "the minimum counts")
    parser.add_argument("--variant", default="No constraints",
                        help="problem variant to mine (default: the slowest)")
    parser.add_argument("--smoke", action="store_true",
                        help=f"tiny configuration for CI: {SMOKE_ROWS} rows, "
                             "1 rep, equality check only; writes "
                             "results/estimation-smoke.{txt,json}")
    args = parser.parse_args(argv)

    base = ExperimentSettings.from_environment()
    experiment_n = base.rows_for(args.dataset)
    if args.smoke:
        sizes = [SMOKE_ROWS]
        args.reps = 1
    elif args.sizes is not None:
        sizes = args.sizes
    else:
        sizes = sorted({1_000, 2_000, experiment_n})

    rows = []
    failures: list[str] = []
    wall_start = time.perf_counter()
    for n in sizes:
        settings = ExperimentSettings(so_n=n, german_n=n, seed=base.seed)
        row, problems = _measure_size(settings, args.dataset, args.variant, args.reps)
        failures.extend(f"n={n}: {p}" for p in problems)
        rows.append(row)

    # Telemetry overhead always runs at smoke scale: the same configuration
    # CI gates on, whether this is a smoke or a full invocation.
    overhead_settings = ExperimentSettings(
        so_n=SMOKE_ROWS, german_n=SMOKE_ROWS, seed=base.seed
    )
    probe_start = time.perf_counter()
    overhead, run_report = _measure_telemetry_overhead(
        overhead_settings, args.dataset, args.variant, args.reps
    )
    if not overhead["within_budget"]:
        # One re-probe before declaring failure: a single measurement can
        # land in an unlucky scheduling window (observed: the same build
        # spanning -10% to +12% back to back on a shared box).  A real
        # regression is persistent and fails the second probe too.
        overhead, run_report = _measure_telemetry_overhead(
            overhead_settings, args.dataset, args.variant, args.reps
        )
        overhead["remeasured"] = True
    if not overhead["within_budget"]:
        failures.append(
            f"telemetry overhead {overhead['overhead_pct']:.2f}% exceeds "
            f"{TELEMETRY_OVERHEAD_MAX_PCT:.0f}% "
            f"({overhead['off_seconds']:.3f}s off vs "
            f"{overhead['on_seconds']:.3f}s on)"
        )
    # Resilience-overhead probe, same scale and re-probe discipline: the
    # fault-tolerance layer must be near-free on runs where nothing fails.
    resilience = _measure_resilience_overhead(
        overhead_settings, args.dataset, args.variant, args.reps
    )
    if not resilience["within_budget"]:
        resilience = _measure_resilience_overhead(
            overhead_settings, args.dataset, args.variant, args.reps
        )
        resilience["remeasured"] = True
    if not resilience["within_budget"]:
        failures.append(
            f"resilience overhead {resilience['overhead_pct']:.2f}% exceeds "
            f"{RESILIENCE_OVERHEAD_MAX_PCT:.0f}% "
            f"({resilience['off_seconds']:.3f}s plain vs "
            f"{resilience['on_seconds']:.3f}s checkpointed)"
        )
    # Shard-overhead probe: the out-of-core data layer must be near-free
    # and bit-identical on the workload it exists for.  Probed at the 4k
    # experiment scale (not smoke scale) in every invocation, with the
    # same re-probe discipline as the other overhead gates.
    shard_settings = ExperimentSettings(
        so_n=SHARD_PROBE_ROWS, german_n=SHARD_PROBE_ROWS, seed=base.seed
    )
    shard_overhead, shard_problems = _measure_shard_overhead(
        shard_settings, args.dataset, args.variant, args.reps
    )
    if not shard_overhead["within_budget"] and not shard_problems:
        shard_overhead, shard_problems = _measure_shard_overhead(
            shard_settings, args.dataset, args.variant, args.reps
        )
        shard_overhead["remeasured"] = True
    failures.extend(f"shard probe: {p}" for p in shard_problems)
    if not shard_overhead["within_budget"]:
        failures.append(
            f"shard overhead {shard_overhead['overhead_pct']:.2f}% exceeds "
            f"{SHARD_OVERHEAD_MAX_PCT:.0f}% "
            f"({shard_overhead['off_seconds']:.3f}s in-RAM vs "
            f"{shard_overhead['on_seconds']:.3f}s sharded)"
        )
    probe_seconds = time.perf_counter() - probe_start
    # The throughput-mode point always runs (smoke included): the trend
    # gate soft-asserts its break-even target on every PR.
    throughput_probe = _measure_throughput_probe(args.reps)
    # The out-of-core scale curve only runs on full invocations: three
    # subprocess pairs up to 1M rows are bench work, not CI smoke work.
    # The committed record is what the trend gate reports from.
    scale_curve = None
    if not args.smoke:
        print(
            "measuring out-of-core scale curve @ "
            + ", ".join(f"{n:,}" for n in SCALE_SIZES)
            + " rows ..."
        )
        scale_curve = _measure_scale_curve()
        if not scale_curve["rss_bounded_at_largest"]:
            largest = scale_curve["points"][-1]
            failures.append(
                f"out-of-core peak RSS not bounded at "
                f"{largest['rows']} rows: sharded "
                f"{largest['sharded']['rss_kb']} kB vs in-RAM "
                f"{largest['in_ram']['rss_kb']} kB"
            )
    wall = time.perf_counter() - wall_start

    from repro.parallel.executors import default_worker_count

    at_scale = rows[-1]
    payload = {
        "benchmark": "estimation",
        "dataset": args.dataset,
        "variant": args.variant,
        "step": "treatment_mining",
        "engines": list(ENGINES),
        "cpu_count": os.cpu_count(),
        "env": {
            "cpu_count": os.cpu_count(),
            # Affinity-aware schedulable CPUs: what default_worker_count()
            # actually sizes pools with on cgroup/taskset-limited runners.
            "schedulable_cpus": default_worker_count(),
            "python": sys.version.split()[0],
        },
        "smoke": args.smoke,
        "reps": args.reps,
        "sizes": rows,
        "wall_seconds": round(wall, 3),
        "speedup_vs_scalar_at_experiment_scale": at_scale["speedup_vs_scalar"],
        "speedup_vs_pr3_at_experiment_scale": at_scale["speedup_vs_pr3"],
        "speedup_vs_pr5_at_experiment_scale": at_scale["speedup_vs_pr5"],
        "throughput_probe": throughput_probe,
        "target": {
            "min_speedup_vs_scalar": TARGET_SPEEDUP_VS_SCALAR,
            "min_speedup_vs_pr3": TARGET_SPEEDUP_VS_PR3,
            "applies_to": (
                "largest size of the full curve (experiment scale); "
                "soft: a miss warns, only differential mismatches fail; "
                "smoke runs check equality only"
            ),
        },
        "telemetry_overhead": overhead,
        "resilience_overhead": resilience,
        "shard_overhead": shard_overhead,
        "shard_scale_curve": scale_curve,
        "run_report_baseline": {
            "rows": overhead["rows"],
            "derived": (run_report or {}).get("derived", {}),
        },
        "differential_failures": failures,
        "speedup_targets_met": args.smoke
        or (
            at_scale["speedup_vs_scalar"] >= TARGET_SPEEDUP_VS_SCALAR
            and at_scale["speedup_vs_pr3"] >= TARGET_SPEEDUP_VS_PR3
        ),
        "passed": not failures,
    }

    lines = [
        f"bench_estimation: dataset={args.dataset} variant={args.variant!r} "
        f"step=treatment_mining reps={args.reps} cpus={os.cpu_count()} "
        f"schedulable={payload['env']['schedulable_cpus']}"
        f"{' [smoke]' if args.smoke else ''}",
        "",
        f"{'rows':>7} {'scalar s':>9} {'pr3 s':>8} {'pr5 s':>8} "
        f"{'frontier s':>11} {'vs scalar':>10} {'vs pr3':>8} {'vs pr5':>8}  "
        "identical",
    ]
    for row in rows:
        lines.append(
            f"{row['rows']:>7} {row['scalar_seconds']:>9.3f} "
            f"{row['pr3_seconds']:>8.3f} {row['pr5_seconds']:>8.3f} "
            f"{row['frontier_seconds']:>11.3f} "
            f"{row['speedup_vs_scalar']:>9.2f}x {row['speedup_vs_pr3']:>7.2f}x "
            f"{row['speedup_vs_pr5']:>7.2f}x  "
            f"{'yes' if row['identical'] else 'NO'}"
        )
    lines.append("")
    lines.append(
        f"throughput probe @ {throughput_probe['world']} "
        f"({throughput_probe['contexts']} contexts, "
        f"{throughput_probe['rows']} rows): "
        f"{throughput_probe['pr3_seconds']:.4f}s pr3 -> "
        f"{throughput_probe['throughput_seconds']:.4f}s merged "
        f"({throughput_probe['speedup_vs_pr3']:.2f}x, target >= "
        f"{TARGET_THROUGHPUT_VS_PR3:.1f}x) — "
        f"{'OK' if throughput_probe['passed'] else 'BELOW TARGET'}"
    )
    lines.append(
        f"telemetry overhead @ {overhead['rows']} rows: "
        f"{overhead['off_seconds']:.3f}s off -> {overhead['on_seconds']:.3f}s on "
        f"({overhead['overhead_pct']:+.2f}%, budget "
        f"{TELEMETRY_OVERHEAD_MAX_PCT:.0f}% or "
        f"{TELEMETRY_OVERHEAD_FLOOR_SECONDS * 1e3:.0f}ms) — "
        f"{'OK' if overhead['within_budget'] else 'OVER BUDGET'}"
    )
    lines.append(
        f"resilience overhead @ {resilience['rows']} rows: "
        f"{resilience['off_seconds']:.3f}s plain -> "
        f"{resilience['on_seconds']:.3f}s checkpointed "
        f"({resilience['overhead_pct']:+.2f}%, budget "
        f"{RESILIENCE_OVERHEAD_MAX_PCT:.0f}% or "
        f"{RESILIENCE_OVERHEAD_FLOOR_SECONDS * 1e3:.0f}ms) — "
        f"{'OK' if resilience['within_budget'] else 'OVER BUDGET'}"
    )
    lines.append(
        f"shard overhead @ {shard_overhead['rows']} rows "
        f"(shard_rows={shard_overhead['shard_rows']}): "
        f"{shard_overhead['off_seconds']:.3f}s in-RAM -> "
        f"{shard_overhead['on_seconds']:.3f}s sharded "
        f"({shard_overhead['overhead_pct']:+.2f}%, budget "
        f"{SHARD_OVERHEAD_MAX_PCT:.0f}% or "
        f"{SHARD_OVERHEAD_FLOOR_SECONDS * 1e3:.0f}ms; "
        f"{'bit-identical' if shard_overhead['identical'] else 'RESULTS DIFFER'}"
        f") — {'OK' if shard_overhead['within_budget'] else 'OVER BUDGET'}"
    )
    if scale_curve is not None:
        lines.append("")
        lines.append(
            f"out-of-core scale curve @ {scale_curve['world']} "
            f"(shard_rows={scale_curve['shard_rows']}, "
            f"{scale_curve['mining_config']}):"
        )
        lines.append(
            f"{'rows':>9} {'sharded s':>10} {'rss MB':>8} {'peak MB':>8} "
            f"{'in-RAM s':>10} {'rss MB':>8} {'peak MB':>8} {'rss saved':>10}"
        )
        for point in scale_curve["points"]:
            sharded, in_ram = point["sharded"], point["in_ram"]
            lines.append(
                f"{point['rows']:>9,} {sharded['seconds']:>10.2f} "
                f"{sharded['rss_kb'] / 1024:>8.0f} "
                f"{sharded['peak_kb'] / 1024:>8.0f} "
                f"{in_ram['seconds']:>10.2f} {in_ram['rss_kb'] / 1024:>8.0f} "
                f"{in_ram['peak_kb'] / 1024:>8.0f} "
                f"{point['rss_saving_kb'] / 1024:>8.0f}MB"
            )
        lines.append(
            "peak RSS at the largest point bounded below the full-table "
            "footprint: "
            + ("yes" if scale_curve["rss_bounded_at_largest"] else "NO")
        )
    if args.smoke:
        lines.append("smoke run: frontier == pr3 == scalar equality check only")
    else:
        lines.append(
            f"at experiment scale: {at_scale['speedup_vs_scalar']:.2f}x over "
            f"scalar (target >= {TARGET_SPEEDUP_VS_SCALAR:.0f}x), "
            f"{at_scale['speedup_vs_pr3']:.2f}x over the PR-3 batch engine "
            f"(target >= {TARGET_SPEEDUP_VS_PR3:.1f}x), "
            f"{at_scale['speedup_vs_pr5']:.2f}x over the PR-5 frontier engine"
        )
    print("\n".join(lines))

    text_path = SMOKE_TEXT_PATH if args.smoke else TEXT_PATH
    text_path.parent.mkdir(exist_ok=True)
    text_path.write_text("\n".join(lines) + "\n")
    print(f"wrote {text_path}")
    if args.smoke:
        SMOKE_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {SMOKE_JSON_PATH}")
    else:
        # The committed record doubles as the CI trend baseline: re-run the
        # smoke configuration so the baseline wall-clock is measured by the
        # same code path CI executes.
        smoke_settings = ExperimentSettings(
            so_n=SMOKE_ROWS, german_n=SMOKE_ROWS, seed=base.seed
        )
        smoke_start = time.perf_counter()
        _measure_size(smoke_settings, args.dataset, args.variant, 1)
        # A CI smoke run's wall clock covers the measurement above PLUS the
        # telemetry overhead probe; fold the probe's duration (already
        # measured once this invocation, same configuration) into the
        # baseline so the trend ratio compares like with like.
        payload["smoke_baseline"] = {
            "wall_seconds": round(
                time.perf_counter() - smoke_start + probe_seconds, 3
            ),
            "rows": SMOKE_ROWS,
            "reps": 1,
            "cpu_count": os.cpu_count(),
        }
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {JSON_PATH}")

    if failures:
        print("FAILURE:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    if not args.smoke and not payload["speedup_targets_met"]:
        # Soft, like the trend gate: shared-runner scheduler noise moves
        # even same-run ratios by more than the target margin.
        print(
            f"warning: speedups {at_scale['speedup_vs_scalar']:.2f}x / "
            f"{at_scale['speedup_vs_pr3']:.2f}x below the "
            f"{TARGET_SPEEDUP_VS_SCALAR:.0f}x / {TARGET_SPEEDUP_VS_PR3:.1f}x "
            "targets (soft gate; recorded in the payload)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
