"""Scalar-vs-batch curve for the FWL estimation engine (Step-2 mining).

Runs FairCap's Step 2 (treatment mining) on the German Table-4 configuration
at increasing row counts, once through the scalar per-candidate estimator
path (``batch_estimation=False``) and once through the batched FWL engine
(the default), and reports the per-size speedup of the ``treatment_mining``
step.  Every batch run is differentially checked against its scalar twin —
same lattice, same candidate rules (rtol 1e-9 on utilities), same selected
ruleset — a speedup only counts if the answer is unchanged.

Usage::

    PYTHONPATH=src python benchmarks/bench_estimation.py            # full curve
    PYTHONPATH=src python benchmarks/bench_estimation.py --sizes 1000,4000
    PYTHONPATH=src python benchmarks/bench_estimation.py --smoke    # CI job

Outputs:

- ``benchmarks/BENCH_estimation.json`` — machine-readable record (schema in
  ``benchmarks/README.md``); the committed copy is the perf trajectory of
  the repository.
- ``benchmarks/results/estimation.txt`` — human-readable table.

The ≥5x target applies to the German Table-4 configuration at the
experiment scale (the largest size of the default curve) on a single core;
``--smoke`` shrinks the run to a plumbing/equality check only.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.faircap import FairCap
from repro.experiments.settings import ExperimentSettings

BENCH_DIR = Path(__file__).resolve().parent
JSON_PATH = BENCH_DIR / "BENCH_estimation.json"
TEXT_PATH = BENCH_DIR / "results" / "estimation.txt"

TARGET_SPEEDUP = 5.0
RTOL = 1e-9


def _parse_sizes(text: str) -> list[int]:
    sizes = sorted({int(part) for part in text.split(",") if part.strip()})
    if not sizes or any(s < 200 for s in sizes):
        raise argparse.ArgumentTypeError("sizes must be integers >= 200")
    return sizes


def _check_identical(scalar, batch) -> list[str]:
    """Differential check; returns a list of mismatch descriptions."""
    problems: list[str] = []
    if batch.nodes_evaluated != scalar.nodes_evaluated:
        problems.append(
            f"lattice differs: {batch.nodes_evaluated} vs "
            f"{scalar.nodes_evaluated} nodes"
        )
    if len(batch.candidate_rules) != len(scalar.candidate_rules):
        problems.append("candidate count differs")
    else:
        for got, want in zip(batch.candidate_rules, scalar.candidate_rules):
            if got.grouping != want.grouping or got.intervention != want.intervention:
                problems.append(f"candidate patterns differ: {got} vs {want}")
                break
            for field in ("utility", "utility_protected", "utility_non_protected"):
                a, b = getattr(got, field), getattr(want, field)
                if abs(a - b) > RTOL * max(abs(a), abs(b), 1.0):
                    problems.append(f"{field} differs on {got.grouping}: {a} vs {b}")
                    break
    got_rules = [(r.grouping, r.intervention) for r in batch.ruleset.rules]
    want_rules = [(r.grouping, r.intervention) for r in scalar.ruleset.rules]
    if got_rules != want_rules:
        problems.append("selected rulesets differ")
    return problems


def _run(config, bundle):
    return FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )


def _time_step2(configs, bundle, reps: int) -> list[tuple[float, object]]:
    """Median ``treatment_mining`` seconds per config, interleaved runs.

    The first (un-timed) run warms the caches both paths share — the DAG's
    d-separation/backdoor memos and the per-table fingerprints — so neither
    estimator path gets a cold-cache handicap.  Per-run state (the
    estimation cache) is rebuilt inside every ``FairCap`` run either way.
    """
    _run(configs[0], bundle)
    times: list[list[float]] = [[] for _ in configs]
    results: list[object] = [None] * len(configs)
    for _ in range(reps):
        for i, config in enumerate(configs):
            results[i] = _run(config, bundle)
            times[i].append(results[i].timings["treatment_mining"])
    return [
        (statistics.median(per_config), results[i])
        for i, per_config in enumerate(times)
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="german",
                        choices=["german", "stackoverflow"])
    parser.add_argument("--sizes", type=_parse_sizes, default=None,
                        help="comma-separated row counts "
                             "(default 1000,2000,<experiment scale>)")
    parser.add_argument("--reps", type=int, default=3,
                        help="runs per (mode, size); the median counts")
    parser.add_argument("--variant", default="No constraints",
                        help="problem variant to mine (default: the slowest)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI: 800 rows, 1 rep, "
                             "equality check only")
    args = parser.parse_args(argv)

    base = ExperimentSettings.from_environment()
    experiment_n = base.rows_for(args.dataset)
    if args.smoke:
        sizes = [800]
        args.reps = 1
    elif args.sizes is not None:
        sizes = args.sizes
    else:
        sizes = sorted({1_000, 2_000, experiment_n})

    rows = []
    failures: list[str] = []
    for n in sizes:
        settings = ExperimentSettings(so_n=n, german_n=n, seed=base.seed)
        bundle = settings.load(args.dataset)
        variants = settings.variants_for(bundle)
        if args.variant not in variants:
            raise SystemExit(
                f"unknown variant {args.variant!r}; choose from: "
                f"{', '.join(sorted(variants))}"
            )
        config = settings.config_for(bundle, variants[args.variant])
        (batch_seconds, batch_result), (scalar_seconds, scalar_result) = _time_step2(
            [config, replace(config, batch_estimation=False)], bundle, args.reps
        )
        problems = _check_identical(scalar_result, batch_result)
        failures.extend(f"n={n}: {p}" for p in problems)
        rows.append(
            {
                "rows": bundle.table.n_rows,
                "scalar_seconds": round(scalar_seconds, 4),
                "batch_seconds": round(batch_seconds, 4),
                "speedup": round(scalar_seconds / batch_seconds, 2)
                if batch_seconds > 0
                else float("inf"),
                "nodes_evaluated": batch_result.nodes_evaluated,
                "identical": not problems,
            }
        )

    at_scale = rows[-1]["speedup"]
    payload = {
        "benchmark": "estimation",
        "dataset": args.dataset,
        "variant": args.variant,
        "step": "treatment_mining",
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "reps": args.reps,
        "sizes": rows,
        "speedup_at_experiment_scale": at_scale,
        "target": {
            "min_speedup": TARGET_SPEEDUP,
            "applies_to": (
                "largest size of the full curve (experiment scale); "
                "smoke runs check equality only"
            ),
        },
        "differential_failures": failures,
        "passed": not failures and (args.smoke or at_scale >= TARGET_SPEEDUP),
    }

    lines = [
        f"bench_estimation: dataset={args.dataset} variant={args.variant!r} "
        f"step=treatment_mining reps={args.reps} cpus={os.cpu_count()}"
        f"{' [smoke]' if args.smoke else ''}",
        "",
        f"{'rows':>7} {'scalar s':>9} {'batch s':>9} {'speedup':>9}  identical",
    ]
    for row in rows:
        lines.append(
            f"{row['rows']:>7} {row['scalar_seconds']:>9.3f} "
            f"{row['batch_seconds']:>9.3f} {row['speedup']:>8.2f}x  "
            f"{'yes' if row['identical'] else 'NO'}"
        )
    lines.append("")
    if args.smoke:
        lines.append("smoke run: batch == scalar equality check only")
    else:
        lines.append(
            f"speedup at experiment scale: {at_scale:.2f}x "
            f"(target >= {TARGET_SPEEDUP:.0f}x)"
        )
    print("\n".join(lines))

    TEXT_PATH.parent.mkdir(exist_ok=True)
    TEXT_PATH.write_text("\n".join(lines) + "\n")
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {JSON_PATH}")
    print(f"wrote {TEXT_PATH}")

    if failures:
        print("DIFFERENTIAL FAILURE:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    if not args.smoke and at_scale < TARGET_SPEEDUP:
        print(
            f"speedup {at_scale:.2f}x below the {TARGET_SPEEDUP:.0f}x target",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
