"""Figure 3 benchmark: FairCap runtime broken down by step."""

from repro.experiments import format_figure3, run_figure3


def test_figure3_step_breakdown(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_figure3,
        kwargs={"dataset": "stackoverflow", "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("figure3", format_figure3(result))

    rows = {row.setting: row for row in result.rows}
    # Paper shape 1: group mining is negligible in every setting.
    for row in result.rows:
        assert row.group_mining <= 0.25 * row.total + 0.5
    # Paper shape 2: treatment mining dominates.
    for row in result.rows:
        assert row.treatment_mining >= row.greedy_selection * 0.5
    # Paper shape 3: rule-coverage settings are the fastest (pruning).
    fastest_half = sorted(result.rows, key=lambda r: r.total)[: len(result.rows) // 2]
    assert any("Rule coverage" in row.setting for row in fastest_half)
