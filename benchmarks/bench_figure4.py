"""Figure 4 benchmark: runtime as a function of dataset size.

The bench runs a representative 3-variant subset of FairCap (the full
9-variant sweep is available by passing ``variant_names=None`` to
:func:`repro.experiments.run_figure4`) plus IDS and FRL.
"""

from repro.experiments import format_figure4, run_figure4

VARIANTS = ("No constraints", "Group fairness", "Individual fairness")


def test_figure4_runtime_vs_size(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_figure4,
        kwargs={
            "dataset": "stackoverflow",
            "settings": settings,
            "variant_names": VARIANTS,
        },
        rounds=1, iterations=1,
    )
    record_output("figure4", format_figure4(result))

    by_method = {s.method: s.seconds for s in result.series}
    # Paper shape 1: runtime grows with dataset size for FairCap.  The
    # check tolerates scheduler noise: the slower half of the sweep (75% and
    # 100% fractions) must not be faster than 80% of the faster half.
    for name in VARIANTS:
        seconds = by_method[name]
        small = max(seconds[0], seconds[1])
        large = max(seconds[-2], seconds[-1])
        assert large >= 0.8 * small, (name, seconds)
    # Paper shape 2: FRL is slower than IDS (ordering search).
    assert sum(by_method["FRL"]) > sum(by_method["IDS"])
