"""Table 3 benchmark: dataset statistics + generation throughput."""

from repro.datasets import load_german, load_stackoverflow
from repro.experiments import format_table3, run_table3


def test_table3_statistics(benchmark, record_output):
    rows = benchmark.pedantic(run_table3, kwargs={"rng": 7}, rounds=1,
                              iterations=1)
    record_output("table3", format_table3(rows))
    so, german = rows
    assert so["tuples"] == 38_000
    assert german["tuples"] == 1_000


def test_stackoverflow_generation_speed(benchmark):
    bundle = benchmark(load_stackoverflow, n=10_000, rng=0)
    assert bundle.table.n_rows == 10_000


def test_german_generation_speed(benchmark):
    bundle = benchmark(load_german, n=1_000, rng=0)
    assert bundle.table.n_rows == 1_000
