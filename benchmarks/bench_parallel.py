"""Speedup curves for the parallel treatment-mining executor.

Runs one FairCap configuration serially, then under the process (and
optionally thread) executor at increasing worker counts, and reports the
wall-clock speedup curve.  Every parallel run's ruleset is differentially
checked against the serial reference — a speedup only counts if the answer
is identical (see the determinism contract in ``repro.parallel``).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py                 # full curve
    PYTHONPATH=src python benchmarks/bench_parallel.py --workers 1,2,4,8
    PYTHONPATH=src python benchmarks/bench_parallel.py --smoke         # CI job

The full curve uses the bundled Stack Overflow dataset at the laptop-scale
experiment size (6,000 rows); ``--smoke`` shrinks it to a plumbing check
(tiny rows, 1/2 workers) that still enforces serial ≡ parallel equality.
Results land in ``benchmarks/results/parallel.txt`` (``--smoke``:
``parallel-smoke.txt``, a deterministic path that never clobbers the
committed full-run table).  Speedups scale with the machine: on a
single-core container every curve is flat at ~1x by construction; the
≥2.5x-at-4-workers target applies to ≥4-core hardware.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.faircap import FairCap
from repro.experiments.settings import ExperimentSettings
from repro.parallel.executors import make_executor

RESULTS_PATH = Path(__file__).resolve().parent / "results" / "parallel.txt"
SMOKE_RESULTS_PATH = (
    Path(__file__).resolve().parent / "results" / "parallel-smoke.txt"
)


def _parse_workers(text: str) -> list[int]:
    counts = sorted({int(part) for part in text.split(",") if part.strip()})
    if not counts or any(c < 1 for c in counts):
        raise argparse.ArgumentTypeError("workers must be positive integers")
    return counts


def _run_once(config, bundle, executor):
    start = time.perf_counter()
    result = FairCap(config, executor=executor).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    return time.perf_counter() - start, result


def _check_identical(reference, candidate, label: str) -> None:
    if candidate.ruleset.rules != reference.ruleset.rules:
        raise SystemExit(f"DIFFERENTIAL FAILURE: {label} ruleset != serial ruleset")
    if candidate.nodes_evaluated != reference.nodes_evaluated:
        raise SystemExit(f"DIFFERENTIAL FAILURE: {label} evaluated a different lattice")
    ref_m, cand_m = reference.metrics, candidate.metrics
    for field in (
        "n_rules", "coverage", "protected_coverage", "expected_utility",
        "expected_utility_protected", "expected_utility_non_protected",
    ):
        if abs(getattr(ref_m, field) - getattr(cand_m, field)) > 1e-12:
            raise SystemExit(f"DIFFERENTIAL FAILURE: {label} metrics differ ({field})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="stackoverflow",
                        choices=["stackoverflow", "german"])
    parser.add_argument("--n", type=int, default=None,
                        help="row count (default: experiment-scale setting)")
    parser.add_argument("--workers", type=_parse_workers, default=[1, 2, 4, 8],
                        help="comma-separated worker counts (default 1,2,4,8)")
    parser.add_argument("--executor", default="process",
                        choices=["process", "thread"],
                        help="parallel strategy to sweep (default process)")
    parser.add_argument("--variant", default="No constraints",
                        help="problem variant to mine (default: the slowest one)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI: 1,200 rows, 1/2 workers")
    args = parser.parse_args(argv)

    settings = ExperimentSettings.from_environment()
    if args.smoke:
        settings = ExperimentSettings(so_n=1_200, german_n=1_200, seed=settings.seed)
        args.workers = [w for w in args.workers if w <= 2] or [1, 2]
    if args.n is not None:
        settings = ExperimentSettings(so_n=args.n, german_n=args.n, seed=settings.seed)

    bundle = settings.load(args.dataset)
    variants = settings.variants_for(bundle)
    if args.variant not in variants:
        raise SystemExit(f"unknown variant {args.variant!r}; "
                         f"choose from: {', '.join(sorted(variants))}")
    config = settings.config_for(bundle, variants[args.variant])

    lines = [
        f"bench_parallel: dataset={args.dataset} rows={bundle.table.n_rows} "
        f"variant={args.variant!r} executor={args.executor} "
        f"cpus={os.cpu_count()}",
        "",
        f"{'executor':<12} {'workers':>7} {'seconds':>9} {'speedup':>9}  identical",
    ]
    print(lines[0])

    serial_seconds, reference = _run_once(config, bundle, make_executor("serial"))
    lines.append(f"{'serial':<12} {1:>7} {serial_seconds:>9.2f} {1.0:>8.2f}x  (reference)")
    print(lines[-1])

    best_speedup = 0.0
    for n_workers in args.workers:
        executor = make_executor(args.executor, n_workers)
        seconds, result = _run_once(config, bundle, executor)
        _check_identical(reference, result, f"{args.executor}[{n_workers}]")
        speedup = serial_seconds / seconds if seconds > 0 else float("inf")
        best_speedup = max(best_speedup, speedup)
        lines.append(
            f"{args.executor:<12} {n_workers:>7} {seconds:>9.2f} {speedup:>8.2f}x  yes"
        )
        print(lines[-1])

    lines.append("")
    lines.append(
        f"best speedup {best_speedup:.2f}x over serial "
        f"({'smoke run — plumbing/equality check only' if args.smoke else 'full run'})"
    )
    print(lines[-1])

    results_path = SMOKE_RESULTS_PATH if args.smoke else RESULTS_PATH
    results_path.parent.mkdir(exist_ok=True)
    results_path.write_text("\n".join(lines) + "\n")
    print(f"wrote {results_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
