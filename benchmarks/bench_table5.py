"""Table 5 benchmark: fairness-threshold sweep (SP, Stack Overflow)."""

from repro.experiments import format_table5, run_table5


def test_table5_epsilon_sweep(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_table5,
        kwargs={"dataset": "stackoverflow", "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("table5", format_table5(result))

    group_rows = [r for r in result.rows if r.label.startswith("Group SP")]
    # Paper shape 1: under group SP the unfairness respects every epsilon.
    # This is the hard guarantee and is checked exactly.
    for row, epsilon in zip(group_rows, result.epsilons):
        assert abs(row.unfairness) <= epsilon + 1e-6
    # Paper shape 2: overall utility grows as epsilon loosens.  The greedy
    # is a heuristic, so a 5% tolerance absorbs selection noise.
    utilities = [r.exp_utility for r in group_rows]
    assert utilities[-1] >= 0.95 * utilities[0]
    # Paper shape 3: unfairness grows with epsilon (same tolerance, on the
    # scale of the largest epsilon).
    gaps = [abs(r.unfairness) for r in group_rows]
    assert gaps[-1] >= gaps[0] - 0.05 * max(result.epsilons)
