"""Shared fixtures for the benchmark harness.

Every table/figure benchmark prints the regenerated rows (visible with
``pytest -s``) and also writes them to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can cite a stable artifact.

Scale: benchmarks default to the laptop-scale settings of
:mod:`repro.experiments.settings` (SO 6,000 rows, German 4,000).  Set
``REPRO_FULL=1`` for the paper's sizes, or ``REPRO_SO_N``/``REPRO_GERMAN_N``
for custom scales.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.settings import ExperimentSettings

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return ExperimentSettings.from_environment()


@pytest.fixture(scope="session")
def record_output():
    """Return a writer that prints and persists a named text artifact."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return write
