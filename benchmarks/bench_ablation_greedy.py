"""Ablation: greedy selection quality vs the brute-force optimum
(DESIGN.md #3).

On a deliberately small candidate pool (one grouping attribute) the exact
optimum is computable; the greedy should land within a small factor of it.
"""

from dataclasses import replace

from repro.core.bruteforce import brute_force_select
from repro.core.faircap import FairCap
from repro.core.greedy import greedy_select
from repro.rules.ruleset import RulesetEvaluator
from repro.utils.text import format_table


def test_greedy_vs_bruteforce(benchmark, settings, record_output):
    bundle = settings.load("stackoverflow")
    variants = settings.variants_for(bundle)
    config = replace(
        settings.config_for(bundle, variants["No constraints"]),
        grouping_attributes=("Age", "Dependents"),
        lambda_size=0.0,
        stop_threshold=0.0,
    )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    evaluator = RulesetEvaluator(
        bundle.table, result.candidate_rules[:12], bundle.protected
    )

    def run_both():
        return (
            greedy_select(evaluator, config),
            brute_force_select(evaluator, config, max_candidates=12),
        )

    greedy, exact = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record_output(
        "ablation_greedy",
        format_table(
            ["solver", "# rules", "exp utility"],
            [
                ["greedy", greedy.metrics.n_rules,
                 f"{greedy.metrics.expected_utility:.0f}"],
                ["brute force", exact.metrics.n_rules,
                 f"{exact.metrics.expected_utility:.0f}"],
            ],
            title="Ablation: greedy vs exact selection (SO, small pool)",
        ),
    )
    assert greedy.metrics.expected_utility >= (
        0.6 * exact.metrics.expected_utility
    )
