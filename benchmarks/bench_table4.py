"""Table 4 benchmark: constraint variants + baselines on both datasets.

Regenerates the paper's central table.  Shape assertions (who wins / by what
factor) are checked; absolute utilities differ from the paper because the
substrate is a synthetic SCM rather than the authors' survey data.
"""

from repro.experiments import format_table4, run_table4


def _row(result, label):
    return next(row for row in result.rows if row.label == label)


def test_table4_stackoverflow(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_table4,
        kwargs={"dataset": "stackoverflow", "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("table4_stackoverflow", format_table4(result))

    free = _row(result, "No constraints")
    group_fair = _row(result, "Group fairness")
    rule_cov = _row(result, "Rule coverage")

    # Paper shape 1: unconstrained maximises expected utility...
    assert free.exp_utility >= group_fair.exp_utility - 1e-9
    # ...at the price of the largest disparity.
    assert abs(free.unfairness) >= abs(group_fair.unfairness)
    # Paper shape 2: group SP keeps the gap under epsilon = 10k.
    assert abs(group_fair.unfairness) <= 10_000.0 + 1e-6
    # Paper shape 3: rule coverage selects the fewest rules.
    assert rule_cov.n_rules <= free.n_rules


def test_table4_german(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_table4,
        kwargs={"dataset": "german", "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("table4_german", format_table4(result))

    free = _row(result, "No constraints")
    group_fair = _row(result, "Group fairness")
    # BGL group fairness lifts the protected floor relative to no-constraints.
    assert group_fair.exp_utility_protected >= free.exp_utility_protected
    # Binary outcome: all utilities are probability differences.
    for row in result.rows:
        assert -1.0 <= row.exp_utility <= 1.0
