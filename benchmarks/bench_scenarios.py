"""Mining wall-clock across the ground-truth scenario grid, oracle-gated.

Runs FairCap end to end on every world of the scenario oracle grid
(:mod:`repro.scenarios`) and records the per-scenario ``treatment_mining``
wall-clock — through both the PR-3 batch engine and the current default
frontier engine (bitset masks + popcount pruning + two-phase frontier
rounds), extending the repo's perf-trajectory record to the known-CATE
workloads — while the built-in oracle gate re-checks, per scenario, that

- CATE estimates sit in the analytic band around the closed-form truth,
- the scenario's fairness constraints hold,
- batch ≡ scalar estimation and serial ≡ process execution, and
- the serving round-trip preserves every decision.

A timing only counts when every check passes; any violation fails the
bench (CI runs ``--smoke`` on every PR).  Reading the recorded per-world
``speedup_vs_pr3``: the bitset kernel's popcount pruning dominates on the
degenerate worlds (``separated``/``zero-effect`` run ~1.5-2x faster), while
the tiny 2-4-context linear worlds sit at ~0.9-1x — at millisecond mining
scale the frontier's digest/plan machinery costs about what its fixed-cost
batching saves, and its per-context GEMM units (the price of serial ≡
process bit-identity) leave no cross-context BLAS win to collect.  The
many-context regime where the frontier pays off is the German/SO curve in
``BENCH_estimation.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py           # full grid
    PYTHONPATH=src python benchmarks/bench_scenarios.py --rows 2400
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke   # CI job

Outputs:

- ``benchmarks/BENCH_scenarios.json`` — machine-readable record (schema in
  ``benchmarks/README.md``); carries the ``smoke_baseline`` block the CI
  ``bench-trend`` job compares against.  Smoke runs never overwrite it.
- ``benchmarks/results/scenarios.txt`` — human-readable table.
- ``--smoke`` writes ``benchmarks/results/scenarios-smoke.{txt,json}``
  (deterministic paths for the CI artifact upload and trend gate).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import (
    ScenarioWorld,
    check_world,
    oracle_config,
    oracle_grid,
    run_world,
)

BENCH_DIR = Path(__file__).resolve().parent
JSON_PATH = BENCH_DIR / "BENCH_scenarios.json"
TEXT_PATH = BENCH_DIR / "results" / "scenarios.txt"
# Smoke runs land in their own files so the committed full-grid record is
# never clobbered by the CI gate.
SMOKE_TEXT_PATH = BENCH_DIR / "results" / "scenarios-smoke.txt"
SMOKE_JSON_PATH = BENCH_DIR / "results" / "scenarios-smoke.json"

#: Scenarios the smoke gate exercises: one plain world, the deepest
#: confounding, a fairness-constrained world, and a degenerate world.
SMOKE_NAMES = (
    "linear-g2-d1-gap-lo",
    "linear-g3-d2-fair-hi",
    "variant-indiv-bgl",
    "separated",
)

#: The at-scale telemetry probe: one world mined at serving-realistic row
#: counts with telemetry on, so the committed record carries an engine
#: counter snapshot (factorization routes, prune rates, cache traffic) at a
#: scale where they mean something.  Full runs only; never part of smoke.
AT_SCALE_NAME = "linear-g3-d2-gap-hi"
AT_SCALE_ROWS = 30_000


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_200,
                        help="rows per scenario (default 1200)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed runs per scenario per engine, order "
                             "alternating; the minimum counts")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated scenario names (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-n CI gate: 4 representative scenarios "
                             "at 400 rows, 1 rep, oracle checks only")
    args = parser.parse_args(argv)

    specs = {spec.name: spec for spec in oracle_grid()}
    if args.smoke:
        names = list(SMOKE_NAMES)
        args.rows = 400
        args.reps = 1
    elif args.scenarios:
        names = [part.strip() for part in args.scenarios.split(",") if part.strip()]
        unknown = [name for name in names if name not in specs]
        if unknown:
            raise SystemExit(f"unknown scenarios: {unknown}")
    else:
        names = sorted(specs)

    rows = []
    failures: list[str] = []
    wall_start = time.perf_counter()
    for name in names:
        world = ScenarioWorld(specs[name])
        bundle = world.bundle(args.rows)
        config = oracle_config(world)
        pr3_config = replace(config, bitset_masks=False, frontier_batching=False)

        problems = check_world(world, bundle, config)
        failures.extend(f"{name}: {p}" for p in problems)

        timings: list[float] = []
        pr3_timings: list[float] = []
        result = None
        for rep in range(args.reps):
            # Alternate the engine order (a fixed order hands the second
            # engine a systematic cache/thermal handicap) and report the
            # minimum: at millisecond scale any slower sample is the same
            # deterministic computation plus scheduler noise.
            ordering = ("default", "pr3") if rep % 2 == 0 else ("pr3", "default")
            for engine in ordering:
                if engine == "default":
                    result = run_world(world, bundle, config)
                    timings.append(result.timings["treatment_mining"])
                elif not args.smoke:
                    pr3_result = run_world(world, bundle, pr3_config)
                    pr3_timings.append(pr3_result.timings["treatment_mining"])
        assert result is not None
        mining_seconds = min(timings)
        row = {
            "scenario": name,
            "rows": bundle.table.n_rows,
            "mining_seconds": round(mining_seconds, 5),
            "total_seconds": round(sum(result.timings.values()), 5),
            "n_rules": len(result.ruleset),
            "nodes_evaluated": result.nodes_evaluated,
            "oracle_ok": not problems,
        }
        if pr3_timings:
            pr3_seconds = min(pr3_timings)
            row["pr3_mining_seconds"] = round(pr3_seconds, 5)
            row["speedup_vs_pr3"] = (
                round(pr3_seconds / mining_seconds, 2)
                if mining_seconds > 0
                else float("inf")
            )
        rows.append(row)
    wall = time.perf_counter() - wall_start

    from repro.parallel.executors import default_worker_count

    payload = {
        "benchmark": "scenarios",
        "step": "treatment_mining",
        "cpu_count": os.cpu_count(),
        "env": {
            "cpu_count": os.cpu_count(),
            # Affinity-aware schedulable CPUs (what pools are sized with).
            "schedulable_cpus": default_worker_count(),
            "python": sys.version.split()[0],
        },
        "smoke": args.smoke,
        "rows_per_scenario": args.rows,
        "reps": args.reps,
        "n_scenarios": len(rows),
        "grid_wall_seconds": round(wall, 3),
        "mining_seconds_total": round(
            sum(r["mining_seconds"] for r in rows), 4
        ),
        "scenarios": rows,
        "oracle_failures": failures,
        "passed": not failures,
    }
    if not args.smoke:
        pr3_total = sum(r["pr3_mining_seconds"] for r in rows)
        payload["pr3_mining_seconds_total"] = round(pr3_total, 4)
        payload["speedup_vs_pr3_grid"] = (
            round(pr3_total / payload["mining_seconds_total"], 2)
            if payload["mining_seconds_total"] > 0
            else float("inf")
        )

    with_pr3 = all("speedup_vs_pr3" in r for r in rows) and rows
    lines = [
        f"bench_scenarios: {len(rows)} worlds at n={args.rows} "
        f"reps={args.reps} cpus={os.cpu_count()}"
        f"{' [smoke]' if args.smoke else ''}",
        "",
        f"{'scenario':<28} {'rows':>6} {'mining s':>9}"
        + (f" {'pr3 s':>8} {'vs pr3':>7}" if with_pr3 else "")
        + f" {'rules':>6}  oracle",
    ]
    for row in rows:
        extra = (
            f" {row['pr3_mining_seconds']:>8.4f} {row['speedup_vs_pr3']:>6.2f}x"
            if with_pr3
            else ""
        )
        lines.append(
            f"{row['scenario']:<28} {row['rows']:>6} "
            f"{row['mining_seconds']:>9.4f}{extra} {row['n_rules']:>6}  "
            f"{'ok' if row['oracle_ok'] else 'FAIL'}"
        )
    lines.append("")
    lines.append(
        f"grid wall-clock: {wall:.2f}s "
        f"(mining only: {payload['mining_seconds_total']:.2f}s)"
    )
    if with_pr3:
        lines.append(
            f"grid speedup vs the PR-3 batch engine: "
            f"{payload['speedup_vs_pr3_grid']:.2f}x"
        )
    print("\n".join(lines))

    text_path = SMOKE_TEXT_PATH if args.smoke else TEXT_PATH
    text_path.parent.mkdir(exist_ok=True)
    text_path.write_text("\n".join(lines) + "\n")
    if args.smoke:
        SMOKE_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {SMOKE_JSON_PATH}")
    else:
        # Measure the smoke configuration through the same code path CI
        # runs, so the committed record carries the trend-gate baseline.
        smoke_start = time.perf_counter()
        for name in SMOKE_NAMES:
            world = ScenarioWorld(specs[name])
            bundle = world.bundle(400)
            config = oracle_config(world)
            smoke_problems = check_world(world, bundle, config)
            failures.extend(f"smoke {name}: {p}" for p in smoke_problems)
            run_world(world, bundle, config)
        payload["smoke_baseline"] = {
            "wall_seconds": round(time.perf_counter() - smoke_start, 3),
            "rows": 400,
            "reps": 1,
            "n_scenarios": len(SMOKE_NAMES),
            "cpu_count": os.cpu_count(),
        }

        # One world at serving-realistic scale, telemetry on: the committed
        # snapshot of what the engine actually does per mined rule (the
        # oracle checks already ran at grid scale; at 30k rows only the
        # counters are the point).
        world = ScenarioWorld(specs[AT_SCALE_NAME])
        bundle = world.bundle(AT_SCALE_ROWS)
        at_scale_config = replace(oracle_config(world), telemetry=True)
        result = run_world(world, bundle, at_scale_config)
        report = result.telemetry or {}
        payload["at_scale"] = {
            "scenario": AT_SCALE_NAME,
            "rows": bundle.table.n_rows,
            "mining_seconds": round(result.timings["treatment_mining"], 4),
            "total_seconds": round(sum(result.timings.values()), 4),
            "n_rules": len(result.ruleset),
            "nodes_evaluated": result.nodes_evaluated,
            "derived": report.get("derived", {}),
            "counters": {
                name: counter["values"]
                for name, counter in report.get("counters", {}).items()
            },
        }
        print(
            f"at-scale telemetry probe: {AT_SCALE_NAME} at "
            f"{bundle.table.n_rows} rows, "
            f"mining {payload['at_scale']['mining_seconds']:.2f}s, "
            f"{payload['at_scale']['n_rules']} rules"
        )

        payload["passed"] = not failures
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {JSON_PATH}")
    print(f"wrote {text_path}")

    if failures:
        print("ORACLE FAILURE:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
