"""Mining wall-clock across the ground-truth scenario grid, oracle-gated.

Runs FairCap end to end on every world of the scenario oracle grid
(:mod:`repro.scenarios`) and records the per-scenario ``treatment_mining``
wall-clock — extending the repo's perf-trajectory record to the known-CATE
workloads — while the built-in oracle gate re-checks, per scenario, that

- CATE estimates sit in the analytic band around the closed-form truth,
- the scenario's fairness constraints hold,
- batch ≡ scalar estimation and serial ≡ process execution, and
- the serving round-trip preserves every decision.

A timing only counts when every check passes; any violation fails the
bench (CI runs ``--smoke`` on every PR).

Usage::

    PYTHONPATH=src python benchmarks/bench_scenarios.py           # full grid
    PYTHONPATH=src python benchmarks/bench_scenarios.py --rows 2400
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke   # CI job

Outputs:

- ``benchmarks/BENCH_scenarios.json`` — machine-readable record (schema in
  ``benchmarks/README.md``); smoke runs never overwrite it.
- ``benchmarks/results/scenarios.txt`` — human-readable table.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import (
    ScenarioWorld,
    check_world,
    oracle_config,
    oracle_grid,
    run_world,
)

BENCH_DIR = Path(__file__).resolve().parent
JSON_PATH = BENCH_DIR / "BENCH_scenarios.json"
TEXT_PATH = BENCH_DIR / "results" / "scenarios.txt"
# Smoke runs land in their own file so the committed full-grid record is
# never clobbered by the CI gate (JSON is guarded the same way).
SMOKE_TEXT_PATH = BENCH_DIR / "results" / "scenarios-smoke.txt"

#: Scenarios the smoke gate exercises: one plain world, the deepest
#: confounding, a fairness-constrained world, and a degenerate world.
SMOKE_NAMES = (
    "linear-g2-d1-gap-lo",
    "linear-g3-d2-fair-hi",
    "variant-indiv-bgl",
    "separated",
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=1_200,
                        help="rows per scenario (default 1200)")
    parser.add_argument("--reps", type=int, default=3,
                        help="timed runs per scenario; the median counts")
    parser.add_argument("--scenarios", default=None,
                        help="comma-separated scenario names (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-n CI gate: 4 representative scenarios "
                             "at 400 rows, 1 rep, oracle checks only")
    args = parser.parse_args(argv)

    specs = {spec.name: spec for spec in oracle_grid()}
    if args.smoke:
        names = list(SMOKE_NAMES)
        args.rows = 400
        args.reps = 1
    elif args.scenarios:
        names = [part.strip() for part in args.scenarios.split(",") if part.strip()]
        unknown = [name for name in names if name not in specs]
        if unknown:
            raise SystemExit(f"unknown scenarios: {unknown}")
    else:
        names = sorted(specs)

    rows = []
    failures: list[str] = []
    wall_start = time.perf_counter()
    for name in names:
        world = ScenarioWorld(specs[name])
        bundle = world.bundle(args.rows)
        config = oracle_config(world)

        problems = check_world(world, bundle, config)
        failures.extend(f"{name}: {p}" for p in problems)

        timings = []
        result = None
        for __ in range(args.reps):
            result = run_world(world, bundle, config)
            timings.append(result.timings["treatment_mining"])
        assert result is not None
        rows.append(
            {
                "scenario": name,
                "rows": bundle.table.n_rows,
                "mining_seconds": round(statistics.median(timings), 5),
                "total_seconds": round(sum(result.timings.values()), 5),
                "n_rules": len(result.ruleset),
                "nodes_evaluated": result.nodes_evaluated,
                "oracle_ok": not problems,
            }
        )
    wall = time.perf_counter() - wall_start

    payload = {
        "benchmark": "scenarios",
        "step": "treatment_mining",
        "cpu_count": os.cpu_count(),
        "smoke": args.smoke,
        "rows_per_scenario": args.rows,
        "reps": args.reps,
        "n_scenarios": len(rows),
        "grid_wall_seconds": round(wall, 3),
        "mining_seconds_total": round(
            sum(r["mining_seconds"] for r in rows), 4
        ),
        "scenarios": rows,
        "oracle_failures": failures,
        "passed": not failures,
    }

    lines = [
        f"bench_scenarios: {len(rows)} worlds at n={args.rows} "
        f"reps={args.reps} cpus={os.cpu_count()}"
        f"{' [smoke]' if args.smoke else ''}",
        "",
        f"{'scenario':<28} {'rows':>6} {'mining s':>9} {'rules':>6}  oracle",
    ]
    for row in rows:
        lines.append(
            f"{row['scenario']:<28} {row['rows']:>6} "
            f"{row['mining_seconds']:>9.4f} {row['n_rules']:>6}  "
            f"{'ok' if row['oracle_ok'] else 'FAIL'}"
        )
    lines.append("")
    lines.append(
        f"grid wall-clock: {wall:.2f}s "
        f"(mining only: {payload['mining_seconds_total']:.2f}s)"
    )
    print("\n".join(lines))

    text_path = SMOKE_TEXT_PATH if args.smoke else TEXT_PATH
    text_path.parent.mkdir(exist_ok=True)
    text_path.write_text("\n".join(lines) + "\n")
    if not args.smoke:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {JSON_PATH}")
    print(f"wrote {text_path}")

    if failures:
        print("ORACLE FAILURE:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
