"""Apriori-threshold sweep benchmark (Sec. 7.3)."""

from repro.experiments import format_apriori_sweep, run_apriori_sweep

TAUS = (0.05, 0.1, 0.2, 0.3)


def test_apriori_threshold_sweep(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_apriori_sweep,
        kwargs={"dataset": "stackoverflow", "taus": TAUS, "settings": settings},
        rounds=1, iterations=1,
    )
    record_output("apriori_sweep", format_apriori_sweep(result))

    rows = list(result.rows)
    # Paper shape 1: higher tau -> fewer grouping patterns.
    groups = [row.n_grouping_patterns for row in rows]
    assert groups == sorted(groups, reverse=True)
    # Paper shape 2: higher tau -> lower (or equal) utility.
    assert rows[-1].expected_utility <= rows[0].expected_utility + 1e-6
