"""Serving benchmark: compiled rule index vs naive per-rule scanning.

Two serving workloads over a ruleset mined from the German Credit bundle:

- **single lookup**: one individual per request (the ``POST /prescribe``
  hot path) — naive predicate scan vs compiled index vs the engine's
  LRU-cached path;
- **batch scoring**: all rows at once — per-row Python scanning vs per-rule
  vectorized masks vs the index's shared-predicate batch path, reported as
  rows/sec.

The compiled index must beat the naive scan on batch throughput (ISSUE 1
acceptance criterion); the recorded artifact keeps the evidence.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.core.variants import unconstrained
from repro.datasets import load_german
from repro.rules.ruleset import RuleSet
from repro.serve.engine import PrescriptionEngine
from repro.serve.index import (
    CompiledRuleIndex,
    naive_match_row,
    naive_match_table,
)

N_ROWS = 4_000
N_SINGLE_LOOKUPS = 300


def _mine_ruleset(n_rows: int, seed: int) -> tuple[RuleSet, object]:
    bundle = load_german(n=n_rows, rng=seed)
    config = FairCapConfig(
        variant=unconstrained(),
        apriori_min_support=0.1,
        max_grouping_size=2,
        max_intervention_size=1,
        max_values_per_attribute=5,
    )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    return result.ruleset, bundle


def _timeit(fn, repeats: int = 3) -> float:
    best = float("inf")
    for __ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_serve_lookup_and_batch_throughput(record_output, settings):
    ruleset, bundle = _mine_ruleset(N_ROWS, settings.seed)
    assert ruleset.size > 0
    table = bundle.table
    rows = table.to_rows()
    index = CompiledRuleIndex(ruleset.rules)
    engine = PrescriptionEngine(
        ruleset, protected=bundle.protected, schema=bundle.schema
    )

    # -- single-lookup latency ----------------------------------------------------
    sample = rows[:N_SINGLE_LOOKUPS]
    naive_single = _timeit(
        lambda: [naive_match_row(ruleset.rules, row) for row in sample]
    )
    index_single = _timeit(lambda: [index.match_row(row) for row in sample])
    engine.clear_cache()
    engine_cached = _timeit(lambda: [engine.prescribe(row) for row in sample])

    # -- batch throughput ---------------------------------------------------------
    def python_scan():
        return [
            [rule.grouping.matches_row(row) for rule in ruleset] for row in rows
        ]

    naive_batch = _timeit(python_scan, repeats=1)
    mask_batch = _timeit(lambda: naive_match_table(ruleset.rules, table))
    index_batch = _timeit(lambda: index.match_table(table))

    # Correctness guard: same matches from every path.
    np.testing.assert_array_equal(
        index.match_table(table), naive_match_table(ruleset.rules, table)
    )

    n = table.n_rows
    us = 1e6
    lines = [
        "Serving benchmark (German Credit, "
        f"{n} rows, {ruleset.size} rules, {index.n_predicates} distinct predicates)",
        "",
        f"single lookup (avg over {len(sample)}):",
        f"  naive predicate scan   {naive_single / len(sample) * us:10.1f} us",
        f"  compiled index         {index_single / len(sample) * us:10.1f} us",
        f"  engine (LRU cached)    {engine_cached / len(sample) * us:10.1f} us",
        "",
        "batch scoring (rows/sec):",
        f"  per-row python scan    {n / naive_batch:12,.0f}",
        f"  per-rule masks         {n / mask_batch:12,.0f}",
        f"  compiled index         {n / index_batch:12,.0f}",
        "",
        f"batch speedup vs python scan: {naive_batch / index_batch:6.1f}x",
        f"batch speedup vs per-rule masks: {mask_batch / index_batch:6.2f}x",
    ]
    record_output("serve", "\n".join(lines))

    # Acceptance: the compiled index beats the naive scan on batch throughput.
    assert index_batch < naive_batch
