"""Serving-tier load benchmark: sustained RPS, tail latency, hot reload.

Drives the full production serving tier — :class:`ArtifactRegistry` on
disk, :class:`PrescriptionService` behind the RCU hot-reload pointer, the
threaded HTTP server with the ``/v1`` API — with keep-alive HTTP clients
and records three things:

- **sustained load**: N client threads hammer ``POST /v1/prescribe`` over
  real German Credit rows against a mined ruleset; the record keeps
  requests/sec and p50/p99 latency.  Every response is differentially
  checked against a local reference engine — a throughput number only
  counts if the answers are right.
- **hot-reload probe**: the same load runs while ``POST
  /v1/artifacts/activate`` swaps the active artifact mid-flight.  The two
  versions answer provably different utilities per row, so a torn
  generation (new version number with the old engine, or vice versa) is
  detectable per response.  Zero failed requests and zero hybrids is a
  *hard* gate: any miss fails the run.
- **coalescing differential**: the same concurrent rows against a batched
  server (``batch_window_ms > 0``, requests coalesced into one vectorized
  index match) and an unbatched one — byte-for-byte identical
  prescriptions is a hard gate; the record keeps the observed batch sizes.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py            # full run
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke    # CI job

Outputs:

- ``benchmarks/BENCH_serve.json`` — machine-readable record (schema in
  ``benchmarks/README.md``); the committed copy carries the
  ``smoke_baseline`` block the CI ``bench-trend`` job compares against
  (wall-clock, RPS, p99).
- ``benchmarks/results/serve.txt`` — human-readable table.
- ``--smoke`` writes ``benchmarks/results/serve-smoke.{txt,json}``
  instead (deterministic paths; never touches the committed record).

Wall-clock/RPS/latency are *soft* trend signals (shared CI boxes vary);
the hard gates are the three correctness contracts above.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import sys
import tempfile
import threading
import time
from dataclasses import replace
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.core.variants import unconstrained
from repro.datasets import load_german
from repro.rules.ruleset import RuleSet
from repro.serve.artifact import ServingArtifact
from repro.serve.config import ServeConfig
from repro.serve.engine import PrescriptionEngine
from repro.serve.http import make_server
from repro.serve.registry import ArtifactRegistry

BENCH_DIR = Path(__file__).resolve().parent
JSON_PATH = BENCH_DIR / "BENCH_serve.json"
TEXT_PATH = BENCH_DIR / "results" / "serve.txt"
SMOKE_TEXT_PATH = BENCH_DIR / "results" / "serve-smoke.txt"
SMOKE_JSON_PATH = BENCH_DIR / "results" / "serve-smoke.json"

SMOKE_ROWS = 800
FULL_ROWS = 4_000

# v2 of the registry shifts every rule utility by this constant.  A shift
# preserves the argmax (same rule resolves), so each request row answers
# exactly ``v1_utility + SHIFT`` under v2 — a per-row, per-version tell
# that exposes hybrid responses during the hot-reload probe.
UTILITY_SHIFT = 1_000.0

#: (clients, requests per client, probe requests per client, coalesce rows)
SMOKE_LOAD = (3, 60, 30, 16)
FULL_LOAD = (4, 300, 60, 24)


def _mine_artifact(n_rows: int, seed: int) -> tuple[ServingArtifact, object]:
    """Mine a real ruleset from the German Credit bundle."""
    bundle = load_german(n=n_rows, rng=seed)
    config = FairCapConfig(
        variant=unconstrained(),
        apriori_min_support=0.1,
        max_grouping_size=2,
        max_intervention_size=1,
        max_values_per_attribute=5,
    )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    artifact = ServingArtifact(
        result.ruleset,
        schema=bundle.schema,
        protected=bundle.protected,
        metadata={"dataset": "german", "rows": n_rows},
    )
    return artifact, bundle


def _shifted(artifact: ServingArtifact) -> ServingArtifact:
    """The same ruleset with every utility shifted by ``UTILITY_SHIFT``."""
    return replace(
        artifact,
        ruleset=RuleSet(
            replace(
                rule,
                utility=rule.utility + UTILITY_SHIFT,
                utility_protected=rule.utility_protected + UTILITY_SHIFT,
                utility_non_protected=rule.utility_non_protected + UTILITY_SHIFT,
            )
            for rule in artifact.ruleset
        ),
    )


def _request_rows(table, limit: int = 64) -> list[dict]:
    """JSON-ready request rows (numpy scalars decay to plain Python)."""
    return [
        {
            key: value.item() if isinstance(value, np.generic) else value
            for key, value in row.items()
        }
        for row in table.to_rows()[:limit]
    ]


def _percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[index]


class _Client(threading.Thread):
    """One keep-alive HTTP client looping over pre-encoded request bodies."""

    def __init__(self, port: int, bodies: list[bytes], n_requests: int,
                 barrier: threading.Barrier) -> None:
        super().__init__(daemon=True)
        self._port = port
        self._bodies = bodies
        self._n = n_requests
        self._barrier = barrier
        self.latencies: list[float] = []
        self.responses: list[tuple[int, dict]] = []
        self.error: BaseException | None = None

    def run(self) -> None:  # noqa: D102 - thread body
        try:
            connection = http.client.HTTPConnection(
                "127.0.0.1", self._port, timeout=30
            )
            self._barrier.wait(timeout=30)
            for i in range(self._n):
                body = self._bodies[i % len(self._bodies)]
                start = time.perf_counter()
                connection.request(
                    "POST", "/v1/prescribe", body,
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                self.latencies.append(time.perf_counter() - start)
                self.responses.append((response.status, payload))
            connection.close()
        except BaseException as exc:  # noqa: BLE001 - reported by the caller
            self.error = exc


def _drive(port: int, bodies: list[bytes], clients: int, per_client: int,
           mid_load=None) -> tuple[list[_Client], float]:
    """Run ``clients`` keep-alive clients; optionally fire ``mid_load()``."""
    barrier = threading.Barrier(clients + 1)
    threads = [_Client(port, bodies, per_client, barrier) for __ in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait(timeout=30)
    start = time.perf_counter()
    if mid_load is not None:
        # Fire once the load is genuinely mid-flight: wait for roughly
        # half the responses to land (a fixed sleep either misses the
        # window on a fast box or dominates the run on a slow one).
        target = clients * per_client // 2
        give_up = time.monotonic() + 60
        while (
            sum(len(t.responses) for t in threads) < target
            and time.monotonic() < give_up
        ):
            time.sleep(0.001)
        mid_load()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    return threads, elapsed


def _expected_utilities(artifact: ServingArtifact,
                        rows: list[dict]) -> list[float]:
    engine = PrescriptionEngine.from_artifact(artifact, cache_size=0)
    return [engine.prescribe(row).expected_utility for row in rows]


def _measure_load(port: int, bodies: list[bytes], expected: list[float],
                  clients: int, per_client: int) -> tuple[dict, list[str]]:
    """Sustained-RPS phase with a per-response differential check."""
    threads, elapsed = _drive(port, bodies, clients, per_client)
    failures = [f"load client crashed: {t.error!r}" for t in threads if t.error]
    latencies: list[float] = []
    bad = 0
    for thread in threads:
        latencies.extend(thread.latencies)
        for i, (status, payload) in enumerate(thread.responses):
            want = expected[i % len(expected)]
            if status != 200:
                bad += 1
            elif payload["prescription"]["expected_utility"] != want:
                bad += 1
                failures.append(
                    f"load answer mismatch: got "
                    f"{payload['prescription']['expected_utility']}, "
                    f"want {want}"
                )
    total = clients * per_client
    if len(latencies) != total:
        failures.append(
            f"load dropped requests: {len(latencies)}/{total} completed"
        )
    if bad:
        failures.append(f"load phase: {bad} bad responses out of {total}")
    latencies.sort()
    return {
        "clients": clients,
        "requests_per_client": per_client,
        "total_requests": total,
        "completed": len(latencies),
        "rps": round(total / elapsed, 1) if elapsed > 0 else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1e3, 3),
        "p99_ms": round(_percentile(latencies, 0.99) * 1e3, 3),
        "wall_seconds": round(elapsed, 3),
    }, failures


def _measure_hot_reload(port: int, bodies: list[bytes],
                        expected_by_version: dict[int, list[float]],
                        clients: int, per_client: int) -> tuple[dict, list[str]]:
    """Swap the active artifact mid-load; every response must be whole."""

    def activate_v2():
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.request(
            "POST", "/v1/artifacts/activate",
            json.dumps({"version": 2}).encode(),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = response.read()
        connection.close()
        if response.status != 200:
            raise RuntimeError(f"activate failed: {response.status} {body!r}")

    threads, elapsed = _drive(
        port, bodies, clients, per_client, mid_load=activate_v2
    )
    failures = [f"probe client crashed: {t.error!r}" for t in threads if t.error]
    total = clients * per_client
    completed = failed = hybrids = 0
    versions_seen: set[int] = set()
    for thread in threads:
        for i, (status, payload) in enumerate(thread.responses):
            completed += 1
            if status != 200:
                failed += 1
                continue
            version = payload.get("ruleset_version")
            utility = payload["prescription"]["expected_utility"]
            expected = expected_by_version.get(version)
            if expected is None:
                failed += 1
                failures.append(f"probe answered unknown version {version!r}")
                continue
            versions_seen.add(version)
            if utility != expected[i % len(bodies)]:
                hybrids += 1
                failures.append(
                    f"hybrid response: version {version} answered {utility}"
                )
    if completed != total:
        failures.append(f"probe dropped requests: {completed}/{total} completed")
    if failed:
        failures.append(f"probe: {failed} failed requests out of {total}")
    if 2 not in versions_seen:
        failures.append("probe never observed the new generation (v2)")
    return {
        "clients": clients,
        "requests_per_client": per_client,
        "total_requests": total,
        "completed": completed,
        "failed": failed,
        "hybrids": hybrids,
        "versions_seen": sorted(versions_seen),
        "zero_failed": failed == 0 and completed == total and hybrids == 0,
        "wall_seconds": round(elapsed, 3),
    }, failures


def _measure_coalescing(artifact: ServingArtifact,
                        rows: list[dict]) -> tuple[dict, list[str]]:
    """Batched server == unbatched server on the same concurrent rows."""
    failures: list[str] = []
    answers: dict[bool, list] = {}
    batch_sizes: list[float] = []
    for batched in (False, True):
        engine = PrescriptionEngine.from_artifact(artifact)
        config = ServeConfig(
            port=0,
            batch_window_ms=10.0 if batched else 0.0,
            batch_max_size=8,
        )
        server = make_server(engine, config=config)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        collected: list = [None] * len(rows)
        barrier = threading.Barrier(len(rows))

        def post(i, port=server.port, collected=collected, barrier=barrier):
            try:
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=30
                )
                barrier.wait(timeout=30)
                connection.request(
                    "POST", "/v1/prescribe",
                    json.dumps({"individual": rows[i]}).encode(),
                    {"Content-Type": "application/json"},
                )
                response = connection.getresponse()
                payload = json.loads(response.read())
                collected[i] = (
                    response.status, payload.get("prescription")
                )
                connection.close()
            except BaseException as exc:  # noqa: BLE001
                collected[i] = ("crash", repr(exc))

        workers = [
            threading.Thread(target=post, args=(i,), daemon=True)
            for i in range(len(rows))
        ]
        try:
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
            answers[batched] = collected
            if batched:
                snapshot = server.metrics.snapshot()
                histogram = snapshot["histograms"].get("serve.batch_size", {})
                for cell in histogram.get("values", {}).values():
                    batch_sizes.append((cell["sum"], cell["count"]))
                if not batch_sizes:
                    failures.append(
                        "coalescing: no batch was ever dispatched "
                        "(serve.batch_size histogram empty)"
                    )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    if answers[True] != answers[False]:
        diffs = sum(
            1 for a, b in zip(answers[True], answers[False]) if a != b
        )
        failures.append(
            f"coalescing differential: batched server diverged from "
            f"unbatched on {diffs}/{len(rows)} rows"
        )
    if not all(status == 200 for status, __ in answers[False]):
        failures.append("coalescing: unbatched server returned non-200s")
    dispatched = sum(count for __, count in batch_sizes)
    submitted = sum(total for total, __ in batch_sizes)
    return {
        "rows": len(rows),
        "identical": answers[True] == answers[False],
        "batches_dispatched": int(dispatched),
        "mean_batch_size": round(submitted / dispatched, 2) if dispatched else 0,
        "batch_window_ms": 10.0,
        "batch_max_size": 8,
    }, failures


def _run_workload(artifact: ServingArtifact, rows: list[dict],
                  load_shape: tuple[int, int, int, int]) -> tuple[dict, list[str]]:
    """The full three-phase workload against a two-version registry."""
    clients, per_client, probe_per_client, coalesce_rows = load_shape
    failures: list[str] = []
    bodies = [json.dumps({"individual": row}).encode() for row in rows]
    shifted = _shifted(artifact)
    # Reference answers per row per version (rows no rule covers answer
    # 0.0 under *both* versions — the shift only moves matched rules).
    expected_v1 = _expected_utilities(artifact, rows)
    expected_v2 = _expected_utilities(shifted, rows)

    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        registry = ArtifactRegistry(Path(tmp) / "artifacts")
        registry.publish(artifact)
        registry.publish(shifted)
        registry.activate(1)
        server = make_server(
            config=ServeConfig(port=0, artifact_dir=str(registry.root))
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            load, problems = _measure_load(
                server.port, bodies, expected_v1, clients, per_client
            )
            failures.extend(problems)
            probe, problems = _measure_hot_reload(
                server.port, bodies, {1: expected_v1, 2: expected_v2},
                clients, probe_per_client,
            )
            failures.extend(problems)
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    coalescing, problems = _measure_coalescing(
        artifact, rows[:coalesce_rows]
    )
    failures.extend(problems)
    return {"load": load, "hot_reload_probe": probe,
            "coalescing": coalescing}, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rows", type=int, default=None,
                        help="rows to mine the ruleset from "
                             f"(default {FULL_ROWS}, smoke {SMOKE_ROWS})")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--smoke", action="store_true",
                        help="tiny configuration for CI; writes "
                             "results/serve-smoke.{txt,json}")
    args = parser.parse_args(argv)

    n_rows = args.rows or (SMOKE_ROWS if args.smoke else FULL_ROWS)
    load_shape = SMOKE_LOAD if args.smoke else FULL_LOAD

    wall_start = time.perf_counter()
    print(f"mining German ruleset @ {n_rows} rows ...")
    artifact, bundle = _mine_artifact(n_rows, args.seed)
    rows = _request_rows(bundle.table)
    results, failures = _run_workload(artifact, rows, load_shape)
    wall = time.perf_counter() - wall_start

    from repro.parallel.executors import default_worker_count

    load = results["load"]
    probe = results["hot_reload_probe"]
    coalescing = results["coalescing"]
    payload = {
        "benchmark": "serve",
        "dataset": "german",
        "env": {
            "cpu_count": os.cpu_count(),
            "schedulable_cpus": default_worker_count(),
            "python": sys.version.split()[0],
        },
        "smoke": args.smoke,
        "ruleset": {
            "rows_mined": n_rows,
            "n_rules": len(artifact.ruleset),
            "request_rows": len(rows),
        },
        **results,
        "wall_seconds": round(wall, 3),
        "failures": failures,
        "passed": not failures,
    }

    lines = [
        f"bench_serve: german rows={n_rows} rules={len(artifact.ruleset)} "
        f"cpus={os.cpu_count()} "
        f"schedulable={payload['env']['schedulable_cpus']}"
        f"{' [smoke]' if args.smoke else ''}",
        "",
        f"sustained load ({load['clients']} keep-alive clients x "
        f"{load['requests_per_client']} requests):",
        f"  throughput   {load['rps']:>10,.1f} req/s",
        f"  p50 latency  {load['p50_ms']:>10.2f} ms",
        f"  p99 latency  {load['p99_ms']:>10.2f} ms",
        "",
        f"hot-reload probe ({probe['total_requests']} requests, activate "
        "v2 mid-load):",
        f"  completed {probe['completed']}/{probe['total_requests']}, "
        f"failed {probe['failed']}, hybrids {probe['hybrids']}, "
        f"versions seen {probe['versions_seen']} — "
        f"{'OK' if probe['zero_failed'] else 'FAILED (hard gate)'}",
        "",
        f"coalescing differential ({coalescing['rows']} concurrent rows, "
        f"window {coalescing['batch_window_ms']}ms):",
        f"  batched == unbatched: "
        f"{'yes' if coalescing['identical'] else 'NO (hard gate)'}; "
        f"{coalescing['batches_dispatched']} batches, "
        f"mean size {coalescing['mean_batch_size']}",
    ]
    print("\n".join(lines))

    text_path = SMOKE_TEXT_PATH if args.smoke else TEXT_PATH
    text_path.parent.mkdir(exist_ok=True)
    text_path.write_text("\n".join(lines) + "\n")
    print(f"wrote {text_path}")
    if args.smoke:
        SMOKE_JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {SMOKE_JSON_PATH}")
    else:
        # The committed record doubles as the CI trend baseline: re-run the
        # exact smoke configuration so baseline wall-clock/RPS/p99 are
        # measured by the same code path CI executes.
        print(f"re-running smoke configuration @ {SMOKE_ROWS} rows ...")
        smoke_start = time.perf_counter()
        smoke_artifact, smoke_bundle = _mine_artifact(SMOKE_ROWS, args.seed)
        smoke_rows = _request_rows(smoke_bundle.table)
        smoke_results, smoke_failures = _run_workload(
            smoke_artifact, smoke_rows, SMOKE_LOAD
        )
        failures.extend(f"smoke baseline: {f}" for f in smoke_failures)
        payload["failures"] = failures
        payload["passed"] = not failures
        payload["smoke_baseline"] = {
            "wall_seconds": round(time.perf_counter() - smoke_start, 3),
            "rps": smoke_results["load"]["rps"],
            "p50_ms": smoke_results["load"]["p50_ms"],
            "p99_ms": smoke_results["load"]["p99_ms"],
            "rows": SMOKE_ROWS,
            "clients": SMOKE_LOAD[0],
            "requests_per_client": SMOKE_LOAD[1],
            "cpu_count": os.cpu_count(),
        }
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {JSON_PATH}")

    if failures:
        print("FAILURE:", *failures, sep="\n  ", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
