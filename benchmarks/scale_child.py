"""Child process for the out-of-core scale curve (``bench_estimation.py``).

Mines one scenario world — sampled chunk-by-chunk into a columnar shard
store (``sharded``) or fully in RAM (``unsharded``) — and prints a
one-line JSON record with the wall-clock and the process's peak address
space / peak RSS.  One subprocess per curve point keeps the memory
numbers honest: ``ru_maxrss`` and ``VmPeak`` are process-lifetime
high-water marks, so points sharing an interpreter would inherit each
other's peaks.  Invoked as::

    python benchmarks/scale_child.py <mode> <world> <n_rows> <shard_rows>
"""

from __future__ import annotations

import dataclasses
import json
import resource
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.scenarios import ScenarioWorld, run_world
from repro.scenarios.oracle import oracle_config
from repro.scenarios.spec import spec_by_name


def _vm_peak_kb() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmPeak:"):
                return int(line.split()[1])
    return -1


def main() -> int:
    mode, name, n, shard_rows = (
        sys.argv[1],
        sys.argv[2],
        int(sys.argv[3]),
        int(sys.argv[4]),
    )
    world = ScenarioWorld(spec_by_name(name))
    # Memory-lean mining on BOTH sides so the peaks compare the data
    # layer, not the frontier's context retention: per-context mining and
    # no estimation cache — the same configuration as the memory-cap
    # regression test (tests/integration/test_memory_cap.py).
    config = dataclasses.replace(
        oracle_config(world), frontier_batching=False, cache_size=0
    )
    directory = tempfile.mkdtemp(prefix="bench-scale-shards-")
    try:
        start = time.perf_counter()
        if mode == "sharded":
            bundle = world.sharded_bundle(n, directory, shard_rows)
        else:
            bundle = world.bundle(n)
        result = run_world(world, bundle, config)
        seconds = time.perf_counter() - start
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    print(
        json.dumps(
            {
                "seconds": round(seconds, 3),
                "peak_kb": _vm_peak_kb(),
                "rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
                "rules": result.metrics.n_rules,
            }
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
