"""Figure 5 benchmark: runtime vs number of mutable / immutable attributes."""

from repro.experiments import format_figure5, run_figure5

MUTABLE_COUNTS = (2, 4, 6)
IMMUTABLE_COUNTS = (5, 8, 10)


def test_figure5_attribute_sweeps(benchmark, settings, record_output):
    result = benchmark.pedantic(
        run_figure5,
        kwargs={
            "dataset": "stackoverflow",
            "settings": settings,
            "mutable_counts": MUTABLE_COUNTS,
            "immutable_counts": IMMUTABLE_COUNTS,
        },
        rounds=1, iterations=1,
    )
    record_output("figure5", format_figure5(result))

    def total_seconds(method, n_immutable=None, n_mutable=None):
        return sum(
            p.seconds
            for p in result.points
            if p.method == method
            and (n_immutable is None or p.n_immutable == n_immutable)
            and (n_mutable is None or p.n_mutable == n_mutable)
        )

    # Paper shape 1: FairCap runtime grows with the mutable-attribute count
    # (the intervention lattice grows).
    n_imm = max(IMMUTABLE_COUNTS)
    assert total_seconds("No constraint", n_imm, MUTABLE_COUNTS[-1]) >= (
        total_seconds("No constraint", n_imm, MUTABLE_COUNTS[0])
    )
    # Paper shape 2: ...and with the immutable-attribute count (more groups).
    n_mut = max(MUTABLE_COUNTS)
    assert total_seconds("No constraint", IMMUTABLE_COUNTS[-1], n_mut) >= (
        total_seconds("No constraint", IMMUTABLE_COUNTS[0], n_mut)
    )
