"""Ablation: lattice depth (DESIGN.md #2).

Depth-1 (single-predicate treatments only) vs depth-2 (the paper's pruned
lattice).  Depth 2 explores compound treatments and should find at least the
depth-1 utility, at extra runtime cost.
"""

from dataclasses import replace

from repro.core.faircap import FairCap
from repro.utils.text import format_table


def _run(settings, depth):
    bundle = settings.load("stackoverflow")
    variants = settings.variants_for(bundle)
    config = replace(
        settings.config_for(bundle, variants["No constraints"]),
        max_intervention_size=depth,
    )
    return FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )


def test_lattice_depth_ablation(benchmark, settings, record_output):
    def run_both():
        return {depth: _run(settings, depth) for depth in (1, 2)}

    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        [
            f"depth {depth}",
            result.nodes_evaluated,
            f"{result.metrics.expected_utility:.0f}",
            f"{result.timings['treatment_mining']:.1f}s",
        ]
        for depth, result in results.items()
    ]
    record_output(
        "ablation_lattice",
        format_table(
            ["lattice", "nodes evaluated", "exp utility", "step-2 time"],
            rows,
            title="Ablation: intervention-lattice depth (SO, no constraints)",
        ),
    )
    # Depth 2 evaluates strictly more nodes...
    assert results[2].nodes_evaluated > results[1].nodes_evaluated
    # ...and cannot lose utility (supersets of depth-1 candidates).
    assert results[2].metrics.expected_utility >= (
        0.95 * results[1].metrics.expected_utility
    )
