"""CI perf-trend gate: compare smoke wall-clock against committed baselines.

The committed ``benchmarks/BENCH_*.json`` records each carry a
``smoke_baseline`` block — the wall-clock of the exact ``--smoke``
configuration CI runs, measured when the record was last regenerated.  This
script compares the current CI run's ``benchmarks/results/*-smoke.json``
outputs against those baselines and

- prints a markdown trend table (the workflow appends it to
  ``$GITHUB_STEP_SUMMARY``), and
- emits a GitHub ``::warning::`` annotation for every benchmark whose
  wall-clock regressed by more than ``--threshold`` (default 20%).

It is a *soft* gate, like the coverage floor: CI runners are heterogeneous
and a wall-clock ratio across machines is a trend signal, not a verdict —
the differential/oracle gates inside the benches themselves remain the hard
correctness gates.  The only hard failures here are missing or malformed
inputs (they mean the pipeline is miswired, not slow).

Usage::

    PYTHONPATH=src python benchmarks/bench_estimation.py --smoke
    PYTHONPATH=src python benchmarks/bench_scenarios.py --smoke
    python benchmarks/trend_gate.py >> "$GITHUB_STEP_SUMMARY"
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent
RESULTS_DIR = BENCH_DIR / "results"

#: (name, committed baseline record, smoke output written by --smoke)
GATES = (
    ("estimation", BENCH_DIR / "BENCH_estimation.json",
     RESULTS_DIR / "estimation-smoke.json"),
    ("scenarios", BENCH_DIR / "BENCH_scenarios.json",
     RESULTS_DIR / "scenarios-smoke.json"),
    ("serve", BENCH_DIR / "BENCH_serve.json",
     RESULTS_DIR / "serve-smoke.json"),
)


def _load(path: Path) -> dict:
    if not path.exists():
        raise SystemExit(f"trend gate input missing: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise SystemExit(f"trend gate input unreadable: {path}: {exc}") from exc


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="soft-warn when wall-clock regresses by more "
                             "than this fraction (default 0.20)")
    parser.add_argument("--rate-threshold", type=float, default=0.05,
                        help="soft-warn when a telemetry-derived engine rate "
                             "(cache hit rate, prune rate) drops by more than "
                             "this absolute amount vs the committed baseline "
                             "(default 0.05)")
    args = parser.parse_args(argv)

    lines = [
        "## Benchmark trend (smoke wall-clock vs committed baseline)",
        "",
        "| benchmark | baseline s | current s | ratio | status |",
        "|---|---|---|---|---|",
    ]
    warnings: list[str] = []
    for name, baseline_path, smoke_path in GATES:
        baseline_record = _load(baseline_path)
        smoke_record = _load(smoke_path)
        baseline = baseline_record.get("smoke_baseline", {})
        baseline_wall = baseline.get("wall_seconds")
        current_wall = smoke_record.get("wall_seconds") or smoke_record.get(
            "grid_wall_seconds"
        )
        if not smoke_record.get("passed", False):
            warnings.append(
                f"::warning::bench-trend: {name} smoke run reported failures "
                "(see its job step) — timing ignored"
            )
            lines.append(f"| {name} | — | — | — | :x: smoke failed |")
            continue
        if baseline_wall is None or current_wall is None:
            lines.append(
                f"| {name} | {baseline_wall or '—'} | {current_wall or '—'} "
                "| — | no baseline recorded |"
            )
            continue
        ratio = current_wall / baseline_wall if baseline_wall > 0 else float("inf")
        regressed = ratio > 1.0 + args.threshold
        status = (
            f":warning: +{(ratio - 1) * 100:.0f}% over baseline"
            if regressed
            else "ok"
        )
        lines.append(
            f"| {name} | {baseline_wall:.2f} | {current_wall:.2f} "
            f"| {ratio:.2f}x | {status} |"
        )
        if regressed:
            warnings.append(
                f"::warning::bench-trend: {name} smoke wall-clock "
                f"{current_wall:.2f}s is {(ratio - 1) * 100:.0f}% over the "
                f"committed baseline {baseline_wall:.2f}s "
                f"(soft gate, threshold {args.threshold * 100:.0f}%)"
            )

    # -- throughput-mode point (tiny-world break-even vs PR-3) -----------------
    # Recorded by bench_estimation on every run, smoke included.  Soft, like
    # the wall-clock trend: the probe times millisecond-scale runs, so a
    # shared runner can push it under 1.0x without an engine regression —
    # but a persistent miss says the merged rounds stopped paying for
    # themselves in the regime they exist for.
    smoke_estimation = RESULTS_DIR / "estimation-smoke.json"
    estimation_record = (
        _load(smoke_estimation) if smoke_estimation.exists() else {}
    )
    probe = estimation_record.get("throughput_probe", {})
    if probe:
        speedup = probe.get("speedup_vs_pr3")
        target = probe.get("target_min", 1.0)
        ok = speedup is not None and speedup >= target
        lines.append("")
        lines.append(
            f"**Throughput mode** ({probe.get('world')}, "
            f"{probe.get('contexts')} contexts): {speedup}x vs the PR-3 "
            f"engine (target ≥ {target}x) — "
            + ("ok" if ok else ":warning: below break-even")
        )
        if not ok:
            warnings.append(
                f"::warning::bench-trend: throughput-mode probe "
                f"{speedup}x is below the {target}x break-even target on "
                f"{probe.get('world')} (soft gate; certified by the "
                "scenario oracle, timed here)"
            )

    # -- serving tier (RPS / tail latency / hot-reload probe) ------------------
    # Throughput and p99 against the committed smoke baseline, same soft
    # philosophy as wall-clock.  The hot-reload probe is hard-gated inside
    # bench_serve itself (a failed/hybrid response fails the smoke job);
    # the row here keeps the zero-failed claim visible in the summary.
    smoke_serve = RESULTS_DIR / "serve-smoke.json"
    serve_record = _load(smoke_serve) if smoke_serve.exists() else {}
    serve_baseline = (
        _load(BENCH_DIR / "BENCH_serve.json").get("smoke_baseline", {})
        if (BENCH_DIR / "BENCH_serve.json").exists()
        else {}
    )
    serve_load = serve_record.get("load", {})
    if serve_load and serve_baseline:
        lines.append("")
        lines.append("### Serving tier (smoke load, keep-alive clients)")
        lines.append("")
        lines.append("| metric | baseline | current | status |")
        lines.append("|---|---|---|---|")
        for metric, unit, higher_is_better in (
            ("rps", "req/s", True),
            ("p99_ms", "ms", False),
        ):
            base_value = serve_baseline.get(metric)
            cur_value = serve_load.get(metric)
            if not base_value or cur_value is None:
                lines.append(f"| {metric} | — | — | not recorded |")
                continue
            ratio = cur_value / base_value
            regressed = (
                ratio < 1.0 - args.threshold
                if higher_is_better
                else ratio > 1.0 + args.threshold
            )
            status = (
                f":warning: {'-' if higher_is_better else '+'}"
                f"{abs(ratio - 1) * 100:.0f}% vs baseline"
                if regressed
                else "ok"
            )
            lines.append(
                f"| {metric} | {base_value:,} {unit} | {cur_value:,} {unit} "
                f"| {status} |"
            )
            if regressed:
                direction = "below" if higher_is_better else "over"
                warnings.append(
                    f"::warning::bench-trend: serve {metric} {cur_value:,} "
                    f"is {abs(ratio - 1) * 100:.0f}% {direction} the "
                    f"committed baseline {base_value:,} (soft gate, "
                    f"threshold {args.threshold * 100:.0f}%)"
                )
        probe = serve_record.get("hot_reload_probe", {})
        if probe:
            lines.append(
                f"| hot-reload probe | zero failed | "
                f"{probe.get('completed')}/{probe.get('total_requests')} ok, "
                f"{probe.get('failed')} failed, {probe.get('hybrids')} hybrids "
                f"| {'ok' if probe.get('zero_failed') else ':x: FAILED'} |"
            )

    # -- overhead probes (telemetry, resilience) -------------------------------
    # Hard-gated inside bench_estimation itself (over-budget fails the smoke
    # job after one re-probe); surfaced here so the job summary shows the
    # trend even while both sit comfortably inside budget.
    overhead_probes = [
        ("telemetry", estimation_record.get("telemetry_overhead", {})),
        ("resilience", estimation_record.get("resilience_overhead", {})),
        # Out-of-core probe: off = in-RAM table, on = ShardedTable spill.
        # Bit-identity is hard-gated inside the bench; the trend table
        # shows the mining-cost trend.
        ("sharding", estimation_record.get("shard_overhead", {})),
    ]
    if any(probe for _, probe in overhead_probes):
        lines.append("")
        lines.append("### Overhead probes (smoke scale, fault-free run)")
        lines.append("")
        lines.append("| probe | off s | on s | overhead | budget | status |")
        lines.append("|---|---|---|---|---|---|")
        for probe_name, probe_row in overhead_probes:
            if not probe_row:
                lines.append(f"| {probe_name} | — | — | — | — | not recorded |")
                continue
            budget = (
                f"{probe_row.get('max_overhead_pct', 0):.0f}% or "
                f"{probe_row.get('absolute_floor_seconds', 0) * 1e3:.0f}ms"
            )
            lines.append(
                f"| {probe_name} | {probe_row.get('off_seconds', 0):.3f} "
                f"| {probe_row.get('on_seconds', 0):.3f} "
                f"| {probe_row.get('overhead_pct', 0):+.2f}% | {budget} "
                f"| {'ok' if probe_row.get('within_budget') else ':x: over budget'} |"
            )

    # -- out-of-core scale curve (committed record) ----------------------------
    # The curve itself only runs on full bench invocations (three
    # subprocess pairs up to 1M rows), so the gate renders the committed
    # record rather than a smoke measurement: the job summary always shows
    # the current payoff claim of the sharded data layer, and a commit
    # that regenerates the record with an unbounded largest point gets a
    # warning annotation here on top of the bench's own hard failure.
    curve = _load(BENCH_DIR / "BENCH_estimation.json").get("shard_scale_curve")
    if curve:
        lines.append("")
        lines.append(
            f"### Out-of-core scale curve (committed; {curve.get('world')}, "
            f"shard_rows={curve.get('shard_rows')})"
        )
        lines.append("")
        lines.append(
            "| rows | sharded s | sharded peak RSS | in-RAM s "
            "| in-RAM peak RSS | RSS saved |"
        )
        lines.append("|---|---|---|---|---|---|")
        for point in curve.get("points", []):
            sharded, in_ram = point.get("sharded", {}), point.get("in_ram", {})
            lines.append(
                f"| {point.get('rows'):,} | {sharded.get('seconds')} "
                f"| {sharded.get('rss_kb', 0) / 1024:.0f} MB "
                f"| {in_ram.get('seconds')} "
                f"| {in_ram.get('rss_kb', 0) / 1024:.0f} MB "
                f"| {point.get('rss_saving_kb', 0) / 1024:.0f} MB |"
            )
        bounded = curve.get("rss_bounded_at_largest")
        lines.append("")
        lines.append(
            "Peak RSS at the largest point bounded below the full-table "
            "footprint: " + ("yes" if bounded else ":warning: **no**")
        )
        if not bounded:
            warnings.append(
                "::warning::bench-trend: committed shard scale curve shows "
                "the sharded run's peak RSS at its largest point is NOT "
                "below the in-RAM footprint — the out-of-core payoff claim "
                "no longer holds in the committed record"
            )

    # -- engine-rate trend (telemetry run report) ------------------------------
    # Unlike wall-clock, these rates are machine-independent: a drop means
    # the engine is genuinely doing more work per answer (cache churn, lost
    # pruning), not that the runner is slow.  Still soft — rates move
    # legitimately when the mining configuration changes.
    baseline_derived = _load(BENCH_DIR / "BENCH_estimation.json").get(
        "run_report_baseline", {}
    ).get("derived", {})
    smoke_path = RESULTS_DIR / "estimation-smoke.json"
    current_derived = (
        _load(smoke_path).get("run_report_baseline", {}).get("derived", {})
        if smoke_path.exists()
        else {}
    )
    if baseline_derived and current_derived:
        lines.append("")
        lines.append("### Engine rates (telemetry run report, smoke scale)")
        lines.append("")
        lines.append("| rate | baseline | current | status |")
        lines.append("|---|---|---|---|")
        for rate in ("cache_hit_rate", "prune_rate"):
            base_value = baseline_derived.get(rate)
            cur_value = current_derived.get(rate)
            if base_value is None or cur_value is None:
                lines.append(f"| {rate} | — | — | not recorded |")
                continue
            dropped = base_value - cur_value > args.rate_threshold
            status = (
                f":warning: dropped {base_value - cur_value:.3f}"
                if dropped
                else "ok"
            )
            lines.append(
                f"| {rate} | {base_value:.3f} | {cur_value:.3f} | {status} |"
            )
            if dropped:
                warnings.append(
                    f"::warning::bench-trend: {rate} {cur_value:.3f} is "
                    f"{base_value - cur_value:.3f} below the committed "
                    f"baseline {base_value:.3f} (soft gate, threshold "
                    f"{args.rate_threshold:.2f} absolute)"
                )

    lines.append("")
    lines.append(
        "_Soft gate: CI runner speed varies; regressions >"
        f"{args.threshold * 100:.0f}% emit a warning annotation, never a_ "
        "_failure.  Baselines live in the committed `BENCH_*.json` records_ "
        "_(`smoke_baseline` block) and are refreshed by full bench runs._"
    )
    print("\n".join(lines))
    for warning in warnings:
        print(warning)
    return 0


if __name__ == "__main__":
    sys.exit(main())
