"""Legacy setup shim: lets `python setup.py develop` work in offline
environments that lack the `wheel` package required by PEP 660 editable
installs. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
