"""Tests for the Figure 2 decision tree."""

import pytest

from repro.fairness.decision_tree import select_variant
from repro.utils.errors import ConfigError


def test_no_constraints_leaf():
    variant = select_variant(fairness=False, coverage=False)
    assert variant.name == "No constraints"
    assert variant.fairness is None
    assert variant.coverage is None


def test_group_fairness_leaf():
    variant = select_variant(
        fairness=True, group_fairness=True, fairness_threshold=10.0
    )
    assert variant.name == "Group fairness"
    assert variant.has_group_fairness


def test_individual_fairness_leaf():
    variant = select_variant(
        fairness=True, group_fairness=False, fairness_threshold=10.0
    )
    assert variant.name == "Individual fairness"
    assert variant.has_individual_fairness


def test_group_coverage_leaf():
    variant = select_variant(
        fairness=False, coverage=True, per_rule_coverage=False, theta=0.5
    )
    assert variant.name == "Group coverage"
    assert variant.has_group_coverage


def test_rule_coverage_leaf():
    variant = select_variant(
        fairness=False, coverage=True, per_rule_coverage=True, theta=0.5
    )
    assert variant.name == "Rule coverage"
    assert variant.has_rule_coverage


def test_combined_leaves():
    variant = select_variant(
        fairness=True, group_fairness=True, fairness_threshold=1.0,
        coverage=True, per_rule_coverage=True, theta=0.3, theta_protected=0.2,
    )
    assert variant.name == "Rule coverage, Group fairness"
    assert variant.coverage.theta == 0.3
    assert variant.coverage.theta_protected == 0.2


def test_bgl_kind_selectable():
    variant = select_variant(
        fairness=True, group_fairness=True, fairness_kind="BGL",
        fairness_threshold=0.1,
    )
    assert variant.fairness.kind.value == "BGL"


def test_missing_answers_rejected():
    with pytest.raises(ConfigError):
        select_variant(fairness=True)  # group_fairness unanswered
    with pytest.raises(ConfigError):
        select_variant(fairness=False, coverage=True)  # per-rule unanswered
