"""Tests for the benefit functions (Secs. 5.2, 5.4)."""

import pytest

from repro.fairness.benefit import benefit, total_benefit
from repro.fairness.constraints import bounded_group_loss, statistical_parity
from repro.mining.patterns import Pattern

from tests.conftest import make_rule


def rule(utility, protected, non_protected):
    return make_rule(
        Pattern.of(g="a"), Pattern.of(m="x"),
        utility=utility, utility_protected=protected,
        utility_non_protected=non_protected,
    )


def test_no_constraint_is_utility():
    assert benefit(rule(10.0, 1.0, 20.0), None) == 10.0


class TestSPBenefit:
    def test_penalised_when_gap_positive(self):
        constraint = statistical_parity("group", 5.0)
        r = rule(10.0, 2.0, 6.0)  # gap = 4
        assert benefit(r, constraint) == pytest.approx(10.0 / 5.0)

    def test_unpenalised_when_protected_ahead(self):
        constraint = statistical_parity("group", 5.0)
        r = rule(10.0, 8.0, 6.0)  # protected does better
        assert benefit(r, constraint) == 10.0

    def test_zero_gap_keeps_utility(self):
        constraint = statistical_parity("group", 5.0)
        assert benefit(rule(10.0, 6.0, 6.0), constraint) == pytest.approx(10.0)

    def test_larger_gap_smaller_benefit(self):
        constraint = statistical_parity("group", 5.0)
        small_gap = benefit(rule(10.0, 5.0, 6.0), constraint)
        large_gap = benefit(rule(10.0, 1.0, 6.0), constraint)
        assert large_gap < small_gap

    def test_threshold_does_not_enter_formula(self):
        r = rule(10.0, 2.0, 6.0)
        assert benefit(r, statistical_parity("group", 1.0)) == pytest.approx(
            benefit(r, statistical_parity("group", 99.0))
        )


class TestBGLBenefit:
    def test_penalised_below_floor(self):
        constraint = bounded_group_loss("group", 0.5)
        r = rule(10.0, 0.2, 6.0)  # shortfall = 0.3
        assert benefit(r, constraint) == pytest.approx(10.0 / 1.3)

    def test_unpenalised_above_floor(self):
        constraint = bounded_group_loss("group", 0.5)
        assert benefit(rule(10.0, 0.8, 6.0), constraint) == 10.0

    def test_exactly_at_floor_penalised_by_one(self):
        constraint = bounded_group_loss("group", 0.5)
        assert benefit(rule(10.0, 0.5, 6.0), constraint) == pytest.approx(10.0)


def test_total_benefit_sums():
    constraint = statistical_parity("group", 5.0)
    rules = [rule(10.0, 2.0, 6.0), rule(4.0, 4.0, 4.0)]
    assert total_benefit(rules, constraint) == pytest.approx(
        benefit(rules[0], constraint) + benefit(rules[1], constraint)
    )
