"""Tests for coverage constraints (Sec. 4.5)."""

import pytest

from repro.fairness.coverage import (
    CoverageConstraint,
    CoverageKind,
    group_coverage,
    rule_coverage,
)
from repro.mining.patterns import Pattern
from repro.rules.ruleset import RulesetMetrics
from repro.utils.errors import ConfigError

from tests.conftest import make_rule


def metrics(coverage: float, protected: float) -> RulesetMetrics:
    return RulesetMetrics(
        n_rules=1, coverage=coverage, protected_coverage=protected,
        expected_utility=0.0, expected_utility_protected=0.0,
        expected_utility_non_protected=0.0,
    )


def test_group_coverage_metrics():
    constraint = group_coverage(0.5, 0.4)
    assert constraint.satisfied_by_metrics(metrics(0.6, 0.5))
    assert not constraint.satisfied_by_metrics(metrics(0.4, 0.5))
    assert not constraint.satisfied_by_metrics(metrics(0.6, 0.3))


def test_group_coverage_default_protected_threshold():
    constraint = group_coverage(0.5)
    assert constraint.theta_protected == 0.5


def test_rule_coverage_per_rule():
    constraint = rule_coverage(0.3, 0.2)
    good = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1, 1, 1,
                     coverage=40, protected_coverage=10)
    bad_total = make_rule(Pattern.of(g="b"), Pattern.of(m="x"), 1, 1, 1,
                          coverage=20, protected_coverage=10)
    bad_protected = make_rule(Pattern.of(g="c"), Pattern.of(m="x"), 1, 1, 1,
                              coverage=40, protected_coverage=2)
    n, n_p = 100, 30
    assert constraint.satisfied_by_rule(good, n, n_p)
    assert not constraint.satisfied_by_rule(bad_total, n, n_p)
    assert not constraint.satisfied_by_rule(bad_protected, n, n_p)


def test_rule_coverage_empty_population():
    constraint = rule_coverage(0.3, 0.2)
    r = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1, 1, 1)
    assert not constraint.satisfied_by_rule(r, 0, 0)


def test_rule_coverage_no_protected_population():
    r = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1, 1, 1,
                  coverage=50, protected_coverage=0)
    assert rule_coverage(0.3, 0.0).satisfied_by_rule(r, 100, 0)
    assert not rule_coverage(0.3, 0.1).satisfied_by_rule(r, 100, 0)


def test_dispatch():
    group = group_coverage(0.5, 0.5)
    rule_c = rule_coverage(0.5, 0.0)
    big = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1, 1, 1,
                    coverage=60, protected_coverage=30)
    small = make_rule(Pattern.of(g="b"), Pattern.of(m="x"), 1, 1, 1,
                      coverage=10, protected_coverage=5)
    m = metrics(0.7, 0.7)
    assert group.satisfied(m, [big, small], 100, 50)
    assert not rule_c.satisfied(m, [big, small], 100, 50)  # small fails


def test_is_matroid():
    assert rule_coverage(0.1).is_matroid
    assert not group_coverage(0.1).is_matroid


def test_invalid_thresholds():
    for bad in (-0.1, 1.1):
        with pytest.raises(ConfigError):
            CoverageConstraint(CoverageKind.GROUP, bad, 0.5)
        with pytest.raises(ConfigError):
            CoverageConstraint(CoverageKind.GROUP, 0.5, bad)


def test_describe():
    assert "Group" in group_coverage(0.5).describe()
    assert "Rule" in rule_coverage(0.5).describe()
