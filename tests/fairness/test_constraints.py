"""Tests for the four fairness constraints (Sec. 4.6)."""

import pytest

from repro.fairness.constraints import (
    FairnessConstraint,
    FairnessKind,
    FairnessScope,
    bounded_group_loss,
    statistical_parity,
)
from repro.mining.patterns import Pattern
from repro.rules.ruleset import RulesetMetrics
from repro.utils.errors import ConfigError

from tests.conftest import make_rule


def metrics(protected: float, non_protected: float) -> RulesetMetrics:
    return RulesetMetrics(
        n_rules=1, coverage=1.0, protected_coverage=1.0,
        expected_utility=(protected + non_protected) / 2,
        expected_utility_protected=protected,
        expected_utility_non_protected=non_protected,
    )


def rule(protected: float, non_protected: float):
    return make_rule(
        Pattern.of(g="a"), Pattern.of(m="x"),
        utility=(protected + non_protected) / 2,
        utility_protected=protected,
        utility_non_protected=non_protected,
    )


class TestStatisticalParity:
    def test_group_satisfied_within_epsilon(self):
        constraint = statistical_parity("group", 10.0)
        assert constraint.satisfied_by_metrics(metrics(100.0, 105.0))
        assert not constraint.satisfied_by_metrics(metrics(100.0, 120.0))

    def test_group_symmetric(self):
        constraint = statistical_parity("group", 10.0)
        assert constraint.satisfied_by_metrics(metrics(105.0, 100.0))
        assert not constraint.satisfied_by_metrics(metrics(120.0, 100.0))

    def test_rule_level(self):
        constraint = statistical_parity("individual", 5.0)
        assert constraint.satisfied_by_rule(rule(10.0, 13.0))
        assert not constraint.satisfied_by_rule(rule(10.0, 20.0))

    def test_violation_magnitude(self):
        constraint = statistical_parity("group", 10.0)
        assert constraint.metrics_violation(metrics(100.0, 125.0)) == 15.0
        assert constraint.metrics_violation(metrics(100.0, 105.0)) == 0.0
        assert constraint.rule_violation(rule(0.0, 13.0)) == 3.0

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ConfigError):
            statistical_parity("group", -1.0)


class TestBoundedGroupLoss:
    def test_group_floor(self):
        constraint = bounded_group_loss("group", 0.3)
        assert constraint.satisfied_by_metrics(metrics(0.35, 0.9))
        assert not constraint.satisfied_by_metrics(metrics(0.2, 0.9))

    def test_rule_level(self):
        constraint = bounded_group_loss("individual", 0.3)
        assert constraint.satisfied_by_rule(rule(0.31, 0.9))
        assert not constraint.satisfied_by_rule(rule(0.29, 0.9))

    def test_ignores_non_protected(self):
        """BGL only looks at the protected floor (Sec. 6, German)."""
        constraint = bounded_group_loss("group", 0.1)
        assert constraint.satisfied_by_metrics(metrics(0.2, 99.0))

    def test_negative_tau_allowed(self):
        constraint = bounded_group_loss("group", -0.5)
        assert constraint.satisfied_by_metrics(metrics(-0.2, 0.0))


class TestScopeDispatch:
    def test_group_scope_uses_metrics(self):
        constraint = statistical_parity("group", 10.0)
        unfair_rule = rule(0.0, 100.0)
        # Metrics fine, rules unfair: group scope passes.
        assert constraint.satisfied(metrics(50.0, 55.0), [unfair_rule])

    def test_individual_scope_uses_rules(self):
        constraint = statistical_parity("individual", 10.0)
        unfair_rule = rule(0.0, 100.0)
        assert not constraint.satisfied(metrics(50.0, 55.0), [unfair_rule])

    def test_is_matroid(self):
        assert statistical_parity("individual", 1.0).is_matroid
        assert not statistical_parity("group", 1.0).is_matroid


def test_describe():
    text = statistical_parity("group", 10_000.0).describe()
    assert "SP" in text and "Group" in text
    text = bounded_group_loss("individual", 0.1).describe()
    assert "BGL" in text and "Individual" in text


def test_string_coercion():
    constraint = FairnessConstraint("SP", "group", 1.0)
    assert constraint.kind is FairnessKind.STATISTICAL_PARITY
    assert constraint.scope is FairnessScope.GROUP
