"""Tests for repro.obs.runtime: the ambient telemetry session."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    current,
    install,
    telemetry_session,
)
from repro.obs.trace import NullTracer, Tracer


def test_default_is_null_telemetry():
    assert current() is NULL_TELEMETRY
    assert not NULL_TELEMETRY.enabled
    assert isinstance(NULL_TELEMETRY.registry, NullRegistry)
    assert isinstance(NULL_TELEMETRY.tracer, NullTracer)


def test_enabled_bundle_gets_live_parts():
    telemetry = Telemetry(enabled=True)
    assert isinstance(telemetry.registry, MetricsRegistry)
    assert not isinstance(telemetry.registry, NullRegistry)
    assert isinstance(telemetry.tracer, Tracer)
    assert not isinstance(telemetry.tracer, NullTracer)


def test_session_installs_and_restores():
    before = current()
    with telemetry_session(enabled=True) as telemetry:
        assert current() is telemetry
        assert telemetry.enabled
        telemetry.registry.inc("inside")
    assert current() is before


def test_disabled_session_yields_the_shared_null_bundle():
    with telemetry_session(enabled=False) as telemetry:
        assert telemetry is NULL_TELEMETRY
        assert current() is NULL_TELEMETRY
        telemetry.registry.inc("discarded")  # must be a silent no-op
    assert NULL_TELEMETRY.registry.snapshot()["counters"] == {}


def test_sessions_nest_and_unwind_in_order():
    with telemetry_session(enabled=True) as outer:
        with telemetry_session(enabled=True) as inner:
            assert current() is inner
        assert current() is outer
    assert current() is NULL_TELEMETRY


def test_session_restores_on_exception():
    try:
        with telemetry_session(enabled=True):
            raise ValueError("boom")
    except ValueError:
        pass
    assert current() is NULL_TELEMETRY


def test_install_returns_previous():
    mine = Telemetry(enabled=True)
    previous = install(mine)
    try:
        assert current() is mine
    finally:
        assert install(previous) is mine
    assert current() is previous


def test_drain_absorb_roundtrip():
    """The worker transport: drained counters and spans land in the caller."""
    worker = Telemetry(enabled=True)
    worker.registry.inc("mined", 3, deterministic=True, level=1)
    with worker.tracer.span("chunk"):
        pass
    payload = worker.drain()
    assert worker.registry.snapshot()["counters"] == {}  # drained clean

    caller = Telemetry(enabled=True)
    with caller.tracer.span("run"):
        caller.absorb(payload)
    assert caller.registry.counter_value("mined", level=1) == 3.0
    run = caller.tracer.to_dicts()[0]
    assert [child["name"] for child in run["children"]] == ["chunk"]


def test_absorb_none_is_a_noop():
    caller = Telemetry(enabled=True)
    caller.absorb(None)
    caller.absorb({})
    assert caller.registry.snapshot()["counters"] == {}
