"""Tests for repro.obs.metrics: registry semantics and Prometheus output."""

from __future__ import annotations

from repro.obs.metrics import (
    MetricsRegistry,
    NullRegistry,
    _label_key,
    render_prometheus,
)


def test_labels_are_canonicalised_sorted():
    registry = MetricsRegistry()
    registry.inc("hits", tier="l1", outcome="hit")
    registry.inc("hits", outcome="hit", tier="l1")  # kwarg order ignored
    assert registry.counter_value("hits", tier="l1", outcome="hit") == 2.0
    snapshot = registry.snapshot()
    assert list(snapshot["counters"]["hits"]["values"]) == ["outcome=hit,tier=l1"]


def test_inc_key_matches_inc():
    """The hot-site spelling lands in the same cell as the kwargs spelling."""
    registry = MetricsRegistry()
    registry.inc("routes", route="gram")
    registry.inc_key("routes", _label_key({"route": "gram"}), 2.0)
    assert registry.counter_value("routes", route="gram") == 3.0


def test_unlabelled_counter_uses_empty_key():
    registry = MetricsRegistry()
    registry.inc("rules", 3)
    assert registry.counter_total("rules") == 3.0
    assert registry.snapshot()["counters"]["rules"]["values"] == {"": 3.0}


def test_deterministic_flag_sticks_at_first_touch():
    registry = MetricsRegistry()
    registry.inc("mined", deterministic=True, level=1)
    registry.inc("mined", level=2)  # later touches don't demote the counter
    assert registry.snapshot()["counters"]["mined"]["deterministic"] is True


def test_snapshot_deterministic_only_filters():
    registry = MetricsRegistry()
    registry.inc("mined", deterministic=True)
    registry.inc("cache.lookups", outcome="hit")
    registry.set_gauge("entries", 5.0)
    registry.observe("latency", 0.01)
    view = registry.snapshot(deterministic_only=True)
    assert set(view["counters"]) == {"mined"}
    assert view["gauges"] == {} and view["histograms"] == {}


def test_counter_reads_absent_name_is_zero():
    registry = MetricsRegistry()
    assert registry.counter_total("nope") == 0.0
    assert registry.counter_value("nope", a="b") == 0.0


def test_gauge_last_write_wins():
    registry = MetricsRegistry()
    registry.set_gauge("entries", 5, tier="l1")
    registry.set_gauge("entries", 7, tier="l1")
    assert registry.snapshot()["gauges"]["entries"] == {"tier=l1": 7.0}


def test_histogram_buckets_are_cumulative():
    registry = MetricsRegistry()
    bounds = (0.1, 1.0, 10.0)
    for value in (0.05, 0.5, 5.0, 50.0):
        registry.observe("latency", value, buckets=bounds)
    cell = registry.snapshot()["histograms"]["latency"]["values"][""]
    assert cell["buckets"] == [1, 2, 3]  # le=0.1, le=1, le=10
    assert cell["count"] == 4
    assert cell["sum"] == 55.55


def test_drain_resets_everything():
    registry = MetricsRegistry()
    registry.inc("hits")
    registry.set_gauge("entries", 1.0)
    registry.observe("latency", 0.2)
    payload = registry.drain()
    assert payload["counters"]["hits"]["values"] == {"": 1.0}
    empty = registry.snapshot()
    assert empty == {"counters": {}, "gauges": {}, "histograms": {}}


def test_merge_adds_counters_and_histograms():
    a, b = MetricsRegistry(), MetricsRegistry()
    for registry in (a, b):
        registry.inc("hits", 2, tier="l1")
        registry.observe("latency", 0.3, buckets=(0.1, 1.0))
        registry.set_gauge("entries", 1.0)
    b.set_gauge("entries", 9.0)
    a.merge(b.drain())
    assert a.counter_value("hits", tier="l1") == 4.0
    cell = a.snapshot()["histograms"]["latency"]["values"][""]
    assert cell["count"] == 2 and cell["buckets"] == [0, 2]
    assert a.snapshot()["gauges"]["entries"][""] == 9.0  # last write wins


def test_merge_roundtrip_equals_single_registry():
    """drain + merge reproduces what one registry would have counted."""
    combined = MetricsRegistry()
    parts = [MetricsRegistry() for _ in range(3)]
    for i, registry in enumerate(parts):
        for target in (combined, registry):
            target.inc("work", i + 1, deterministic=True, worker=i % 2)
    merged = MetricsRegistry()
    for registry in parts:
        merged.merge(registry.drain())
    assert merged.snapshot() == combined.snapshot()


def test_null_registry_discards_everything():
    registry = NullRegistry()
    registry.inc("hits", tier="l1")
    registry.inc_key("hits", "tier=l1")
    registry.set_gauge("entries", 1.0)
    registry.observe("latency", 0.5)
    registry.merge({"counters": {"hits": {"deterministic": False,
                                          "values": {"": 1.0}}}})
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_render_prometheus_counters_and_gauges():
    registry = MetricsRegistry()
    registry.inc("http.requests", 3, method="GET", path="/health")
    registry.set_gauge("engine.rules", 7)
    text = render_prometheus(
        registry.snapshot(), help_texts={"http.requests": "served requests"}
    )
    assert "# HELP http_requests_total served requests" in text
    assert "# TYPE http_requests_total counter" in text
    assert 'http_requests_total{method="GET",path="/health"} 3' in text
    assert "# TYPE engine_rules gauge" in text
    assert "engine_rules 7" in text
    assert text.endswith("\n")


def test_render_prometheus_histogram_series():
    registry = MetricsRegistry()
    registry.observe("http.request_seconds", 0.05, buckets=(0.01, 0.1),
                     method="GET")
    text = render_prometheus(registry.snapshot())
    assert 'http_request_seconds_bucket{method="GET",le="0.01"} 0' in text
    assert 'http_request_seconds_bucket{method="GET",le="0.1"} 1' in text
    assert 'http_request_seconds_bucket{method="GET",le="+Inf"} 1' in text
    assert 'http_request_seconds_sum{method="GET"} 0.05' in text
    assert 'http_request_seconds_count{method="GET"} 1' in text


def test_render_prometheus_integer_values_render_without_decimal():
    registry = MetricsRegistry()
    registry.inc("hits", 2.0)
    registry.inc("ratio", 0.5)
    text = render_prometheus(registry.snapshot())
    assert "hits_total 2\n" in text
    assert "ratio_total 0.5" in text
