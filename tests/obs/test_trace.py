"""Tests for repro.obs.trace: span nesting, grafting, thread-local stacks."""

from __future__ import annotations

import threading

from repro.obs.trace import NullTracer, Tracer, iter_spans


def test_spans_nest_under_the_open_span():
    tracer = Tracer()
    with tracer.span("outer", kind="test"):
        with tracer.span("inner"):
            pass
    trees = tracer.to_dicts()
    assert len(trees) == 1
    outer = trees[0]
    assert outer["name"] == "outer"
    assert outer["attrs"] == {"kind": "test"}
    assert [child["name"] for child in outer["children"]] == ["inner"]
    assert outer["duration_seconds"] >= outer["children"][0]["duration_seconds"]


def test_sibling_spans_share_a_parent():
    tracer = Tracer()
    with tracer.span("run"):
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    run = tracer.to_dicts()[0]
    assert [child["name"] for child in run["children"]] == ["a", "b"]


def test_span_yields_the_live_span_for_attr_updates():
    tracer = Tracer()
    with tracer.span("work") as span:
        span.attrs["batches"] = 3
    assert tracer.to_dicts()[0]["attrs"] == {"batches": 3}


def test_exception_still_closes_the_span():
    tracer = Tracer()
    try:
        with tracer.span("doomed"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    tree = tracer.to_dicts()[0]
    assert tree["duration_seconds"] is not None
    with tracer.span("after"):
        pass
    assert [t["name"] for t in tracer.to_dicts()] == ["doomed", "after"]


def test_thread_stacks_are_independent():
    """A span opened on a bare thread becomes its own root, never a child
    of whatever span happens to be open on the main thread."""
    tracer = Tracer()

    def worker():
        with tracer.span("worker"):
            pass

    with tracer.span("main"):
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    names = sorted(t["name"] for t in tracer.to_dicts())
    assert names == ["main", "worker"]
    main = next(t for t in tracer.to_dicts() if t["name"] == "main")
    assert main["children"] == []


def test_attach_grafts_under_the_open_span():
    tracer = Tracer()
    shipped = [{"name": "chunk", "duration_seconds": 0.1, "attrs": {},
                "children": []}]
    with tracer.span("merge"):
        tracer.attach(shipped)
    merge = tracer.to_dicts()[0]
    assert [child["name"] for child in merge["children"]] == ["chunk"]


def test_attach_without_open_span_lands_at_the_root():
    tracer = Tracer()
    tracer.attach([{"name": "orphan", "duration_seconds": 0.0, "attrs": {},
                    "children": []}])
    assert [t["name"] for t in tracer.to_dicts()] == ["orphan"]


def test_drain_serialises_and_forgets():
    tracer = Tracer()
    with tracer.span("once"):
        pass
    first = tracer.drain()
    assert [t["name"] for t in first] == ["once"]
    assert tracer.drain() == []
    assert tracer.to_dicts() == []


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    with tracer.span("ignored", anything=1) as span:
        assert span is None
    tracer.attach([{"name": "x", "children": []}])
    assert tracer.to_dicts() == []
    assert tracer.drain() == []


def test_null_tracer_span_context_is_shared():
    tracer = NullTracer()
    assert tracer.span("a") is tracer.span("b")


def test_iter_spans_walks_every_node():
    tracer = Tracer()
    with tracer.span("root"):
        with tracer.span("child"):
            with tracer.span("grandchild"):
                pass
    names = {node["name"] for node in iter_spans(tracer.to_dicts())}
    assert names == {"root", "child", "grandchild"}
