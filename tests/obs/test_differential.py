"""Telemetry differential obligations.

Two contracts from the observability issue:

1. **Bit-identity**: turning telemetry on must not perturb the numerics —
   a traced run returns the identical ``FairCapResult`` (rule for rule,
   metric for metric) as an untraced one.
2. **Executor invariance**: the ``deterministic`` counter family (mining
   candidates / pruned / kept / estimated columns / rules) is derived from
   the lattice traversal, which the :mod:`repro.parallel` contract pins
   across executors — so serial, thread(2) and process(2) runs must report
   *exactly* the same deterministic counters.  Engine counters (cache
   traffic, factorization routes) legitimately differ per executor and are
   only checked for presence.

Checked on the German credit dataset and on two oracle-grid worlds (one
plain linear world, one degenerate world that exercises popcount pruning).
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from tests.parallel.test_equivalence import assert_identical_results
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.obs.trace import iter_spans
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.scenarios import ScenarioWorld, oracle_config, oracle_grid

EXECUTORS = {
    "serial": lambda: SerialExecutor(),
    "thread2": lambda: ThreadExecutor(n_workers=2),
    "process2": lambda: ProcessExecutor(n_workers=2),
}

#: One plain linear world, one degenerate world (perfectly separated
#: treatment, so the invalid-estimate counters light up).
WORLD_NAMES = ("linear-g2-d1-gap-lo", "separated")


def deterministic_counters(report: dict) -> dict:
    assert report is not None, "telemetry report missing from FairCapResult"
    return {
        name: counter["values"]
        for name, counter in report["counters"].items()
        if counter["deterministic"]
    }


@pytest.fixture(scope="module")
def german_problem(small_german_bundle):
    bundle = small_german_bundle
    config = FairCapConfig(
        max_grouping_size=2,
        max_values_per_attribute=4,
        min_subgroup_size=10,
        telemetry=True,
    )
    return bundle.table, bundle.schema, bundle.dag, bundle.protected, config


def _run(problem, executor=None):
    table, schema, dag, protected, config = problem
    return FairCap(config, executor=executor).run(table, schema, dag, protected)


@pytest.fixture(scope="module")
def german_runs(german_problem):
    """One traced German run per executor kind."""
    return {
        name: _run(german_problem, executor=make())
        for name, make in EXECUTORS.items()
    }


@pytest.mark.slow
def test_tracing_is_bit_identical_to_untraced(german_problem, german_runs):
    table, schema, dag, protected, config = german_problem
    untraced = FairCap(replace(config, telemetry=False)).run(
        table, schema, dag, protected
    )
    assert untraced.telemetry is None
    traced = german_runs["serial"]
    assert traced.telemetry is not None
    assert_identical_results(untraced, traced)


@pytest.mark.slow
@pytest.mark.parametrize("executor_name", ["thread2", "process2"])
def test_deterministic_counters_executor_invariant_german(
    german_runs, executor_name
):
    reference = deterministic_counters(german_runs["serial"].telemetry)
    candidate = deterministic_counters(german_runs[executor_name].telemetry)
    assert candidate == reference


@pytest.mark.slow
def test_deterministic_family_covers_the_mining_pipeline(german_runs):
    counters = deterministic_counters(german_runs["serial"].telemetry)
    assert {"mining.contexts", "mining.candidates", "mining.kept",
            "mining.estimated_columns", "mining.rules"} <= set(counters)
    report = german_runs["serial"].telemetry
    # Engine counters exist but make no cross-executor promise.
    assert "cache.lookups" in report["counters"]
    assert "estimation.factorizations" in report["counters"]
    assert not report["counters"]["cache.lookups"]["deterministic"]


@pytest.mark.slow
def test_run_report_meta_and_spans(german_runs):
    result = german_runs["serial"]
    report = result.telemetry
    meta = report["meta"]
    assert meta["n_rows"] == result.n_rows
    assert meta["executor"] == "serial"
    assert meta["n_rules"] == len(result.ruleset)
    assert meta["nodes_evaluated"] == result.nodes_evaluated
    assert set(meta["timings"]) == set(result.timings)
    names = {span["name"] for span in iter_spans(report["spans"])}
    assert "faircap.run" in names
    assert "frontier.round" in names
    assert "estimation.level" in names


@pytest.mark.slow
def test_process_spans_graft_into_the_run_tree(german_runs):
    report = german_runs["process2"].telemetry
    roots = [span["name"] for span in report["spans"]]
    assert roots == ["faircap.run"]
    names = {span["name"] for span in iter_spans(report["spans"])}
    assert "parallel.map" in names
    assert "frontier.round" in names  # worker trees grafted, not dropped


# -- oracle-grid worlds --------------------------------------------------------

_SPECS = {spec.name: spec for spec in oracle_grid()}


@pytest.fixture(scope="module", params=WORLD_NAMES, ids=lambda n: n)
def world_runs(request):
    world = ScenarioWorld(_SPECS[request.param])
    bundle = world.bundle(500)
    config = replace(oracle_config(world), telemetry=True)
    problem = (bundle.table, bundle.schema, bundle.dag, bundle.protected, config)
    return request.param, {
        name: _run(problem, executor=make())
        for name, make in EXECUTORS.items()
    }


@pytest.mark.scenario
def test_deterministic_counters_executor_invariant_worlds(world_runs):
    name, runs = world_runs
    reference = deterministic_counters(runs["serial"].telemetry)
    assert reference, f"{name}: no deterministic counters recorded"
    for executor_name in ("thread2", "process2"):
        candidate = deterministic_counters(runs[executor_name].telemetry)
        assert candidate == reference, f"{name}: {executor_name} differs"


@pytest.mark.scenario
def test_world_results_identical_across_executors(world_runs):
    _, runs = world_runs
    for executor_name in ("thread2", "process2"):
        assert_identical_results(runs["serial"], runs[executor_name])


@pytest.mark.scenario
def test_degenerate_world_records_invalid_estimates(world_runs):
    name, runs = world_runs
    if name != "separated":
        pytest.skip("only the degenerate world rejects every candidate")
    counters = deterministic_counters(runs["serial"].telemetry)
    assert sum(counters.get("mining.invalid_estimates", {}).values()) > 0


@pytest.mark.slow
def test_popcount_prunes_are_counted():
    """At small n some German intervention values lose all support inside a
    subgroup, which is exactly what the popcount prune rejects — the counter
    and the derived prune rate must see it."""
    from repro.datasets import load_german
    from repro.obs.report import derived_stats

    bundle = load_german(n=300, rng=5)
    config = FairCapConfig(
        max_grouping_size=2,
        max_values_per_attribute=4,
        min_subgroup_size=10,
        telemetry=True,
    )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    counters = deterministic_counters(result.telemetry)
    assert sum(counters["mining.pruned"].values()) > 0
    assert result.telemetry["derived"]["prune_rate"] > 0
    assert derived_stats(result.telemetry["counters"]) == result.telemetry["derived"]
