"""Tests for repro.obs.report: derived rates and the run-report document."""

from __future__ import annotations

import json

from repro.obs.report import (
    REPORT_VERSION,
    build_report,
    derived_stats,
    write_report,
)
from repro.obs.runtime import Telemetry


def _counters_fixture() -> dict:
    telemetry = Telemetry(enabled=True)
    registry = telemetry.registry
    registry.inc("cache.lookups", 30, tier="estimation", outcome="miss")
    registry.inc("cache.lookups", 10, tier="factorization", outcome="hit")
    registry.inc("cache.lookups", 40, tier="factorization", outcome="miss")
    registry.inc("mining.candidates", 80, deterministic=True, level=1)
    registry.inc("mining.candidates", 20, deterministic=True, level=2)
    registry.inc("mining.pruned", 25, deterministic=True, level=1)
    registry.inc("mining.estimated_columns", 50, deterministic=True,
                 phase="overall", level=1)
    registry.inc("estimation.scalar_fallbacks", 5, kernel="columns",
                 reason="collinear_design")
    return registry.snapshot()["counters"]


def test_derived_rates():
    derived = derived_stats(_counters_fixture())
    assert derived["cache_hit_rate"] == 10 / 80  # hits across every tier
    assert derived["prune_rate"] == 25 / 100
    assert derived["scalar_fallback_rate"] == 5 / 50


def test_derived_rates_empty_counters_are_zero_not_nan():
    derived = derived_stats({})
    assert derived == {
        "cache_hit_rate": 0.0,
        "prune_rate": 0.0,
        "scalar_fallback_rate": 0.0,
    }


def test_build_report_structure():
    telemetry = Telemetry(enabled=True)
    telemetry.registry.inc("mining.rules", 2, deterministic=True)
    telemetry.registry.set_gauge("cache.entries", 12, tier="estimation")
    with telemetry.tracer.span("faircap.run"):
        pass
    report = build_report(telemetry, meta={"n_rows": 100})
    assert report["version"] == REPORT_VERSION
    assert report["meta"] == {"n_rows": 100}
    assert report["counters"]["mining.rules"]["values"] == {"": 2.0}
    assert report["gauges"]["cache.entries"] == {"tier=estimation": 12.0}
    assert set(report["derived"]) == {
        "cache_hit_rate", "prune_rate", "scalar_fallback_rate",
    }
    assert [span["name"] for span in report["spans"]] == ["faircap.run"]


def test_write_report_roundtrips_as_json(tmp_path):
    telemetry = Telemetry(enabled=True)
    telemetry.registry.inc("mining.rules", deterministic=True)
    report = build_report(telemetry, meta={"dataset": "german"})
    path = tmp_path / "trace.json"
    write_report(str(path), report)
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == report
