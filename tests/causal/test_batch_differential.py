"""Differential suite: the batched FWL engine vs the scalar estimator path.

The batch engine (:mod:`repro.causal.batch`) is only allowed to change
*latency*: every estimate must agree with the scalar
:class:`~repro.causal.estimators.LinearAdjustmentEstimator` to rtol 1e-9,
exactly (bit-for-bit) on the degenerate fallbacks, and the mined rulesets of
every problem variant must be identical rule-for-rule.  This file is the
contract:

- column-by-column equality of :func:`estimate_cate_batch` against
  ``estimator.estimate`` on synthetic, German, and Stack Overflow data;
- exactness on rank-deficient designs (they take the scalar path inside the
  batch engine);
- property tests: batch-of-one ≡ scalar, column-permutation invariance,
  FWL affine equivariance of the batched estimates;
- end-to-end: FairCap with ``batch_estimation=True`` (the default) selects
  the same rules as the scalar path on every Table-4 variant.

The golden snapshots under ``tests/experiments/goldens/`` complete the
picture: they were recorded before the batch engine existed and must keep
passing unmodified with it on.
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from tests.conftest import build_toy_dag, build_toy_table
from repro.causal.batch import (
    build_factorization,
    estimate_cate_batch,
    estimate_cate_level,
)
from repro.causal.estimators import LinearAdjustmentEstimator
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng

RTOL = 1e-9
ESTIMATOR = LinearAdjustmentEstimator()

CATE_FLOAT_FIELDS = ("estimate", "stderr", "p_value")
CATE_INT_FIELDS = ("n", "n_treated", "n_control")


def assert_cate_close(got, want, exact: bool = False) -> None:
    """Field-wise comparison of two CateResults."""
    assert got.valid == want.valid
    assert got.adjustment == want.adjustment
    assert got.reason == want.reason
    for field in CATE_INT_FIELDS:
        assert getattr(got, field) == getattr(want, field), field
    for field in CATE_FLOAT_FIELDS:
        a, b = getattr(got, field), getattr(want, field)
        if isinstance(a, float) and math.isnan(a):
            assert math.isnan(b), field
        elif exact:
            assert a == b, field
        else:
            assert a == pytest.approx(b, rel=RTOL, abs=1e-12), field


def assert_batch_matches_scalar(
    table, treated_matrix, outcome, adjustment, exact: bool = False
) -> None:
    batch = estimate_cate_batch(table, treated_matrix, outcome, adjustment)
    assert len(batch) == treated_matrix.shape[1]
    for j, got in enumerate(batch):
        want = ESTIMATOR.estimate(table, treated_matrix[:, j], outcome, adjustment)
        assert_cate_close(got, want, exact=exact)


def random_masks(rng, n: int, m: int) -> np.ndarray:
    masks = rng.random((n, m)) < rng.uniform(0.15, 0.6, size=m)
    return masks


# -- column-by-column equality on the bundled datasets -------------------------


def test_batch_matches_scalar_synth(rng):
    table = build_toy_table(n=700, seed=3)
    masks = random_masks(rng, 700, 24)
    assert_batch_matches_scalar(table, masks, "Income", ("City",))
    assert_batch_matches_scalar(table, masks, "Income", ("City", "Gender"))
    assert_batch_matches_scalar(table, masks, "Income", ())


@pytest.mark.slow
def test_batch_matches_scalar_german(rng, small_german_bundle):
    bundle = small_german_bundle
    outcome = bundle.schema.outcome_name
    adjustment = tuple(
        name
        for name in bundle.table.column_names
        if name != outcome
    )[:3]
    masks = random_masks(rng, bundle.table.n_rows, 16)
    assert_batch_matches_scalar(bundle.table, masks, outcome, adjustment)


@pytest.mark.slow
def test_batch_matches_scalar_stackoverflow(rng, small_so_bundle):
    bundle = small_so_bundle
    outcome = bundle.schema.outcome_name
    adjustment = tuple(
        name for name in bundle.table.column_names if name != outcome
    )[:3]
    masks = random_masks(rng, bundle.table.n_rows, 16)
    assert_batch_matches_scalar(bundle.table, masks, outcome, adjustment)


# -- degenerate designs take the scalar path bit-identically -------------------


def test_rank_deficient_design_exact(rng):
    """Perfectly collinear adjustment columns: scalar fallback, bit-identical."""
    n = 300
    z = rng.choice(["a", "b", "c"], size=n).astype(object)
    table = Table(
        {
            "z1": z,
            "z2": z.copy(),  # duplicate attribute: W is rank deficient
            "y": rng.normal(size=n),
        }
    )
    factorization = build_factorization(table, "y", ("z1", "z2"))
    assert factorization.degenerate
    masks = random_masks(rng, n, 6)
    assert_batch_matches_scalar(table, masks, "y", ("z1", "z2"), exact=True)


def test_treated_collinear_with_adjustment_exact(rng):
    """t inside col(W): per-column scalar fallback, bit-identical."""
    n = 400
    group = rng.choice(["g0", "g1"], size=n).astype(object)
    table = Table({"z": group, "y": rng.normal(size=n)})
    treated = group == "g1"  # exactly the one-hot column of z
    masks = np.column_stack([treated, random_masks(rng, n, 2)[:, 0]])
    assert_batch_matches_scalar(table, masks, "y", ("z",), exact=False)
    batch = estimate_cate_batch(table, masks, "y", ("z",))
    want = ESTIMATOR.estimate(table, treated, "y", ("z",))
    assert_cate_close(batch[0], want, exact=True)


def test_absent_categories_not_degenerate(rng):
    """Zero one-hot columns (absent categories) stay on the fast path."""
    n = 500
    z = rng.choice(["a", "b", "c", "d"], size=n).astype(object)
    y = rng.normal(size=n)
    table = Table({"z": z, "y": y})
    sub = table.filter(np.asarray(z != "c"))  # category 'c' never appears
    factorization = build_factorization(sub, "y", ("z",))
    assert not factorization.degenerate
    masks = random_masks(rng, sub.n_rows, 8)
    assert_batch_matches_scalar(sub, masks, "y", ("z",))


def test_positivity_and_small_batches(rng):
    """Empty treated/control columns give the scalar invalid results."""
    table = build_toy_table(n=200, seed=5)
    masks = np.zeros((200, 3), dtype=bool)
    masks[:, 1] = True
    masks[:100, 2] = True
    # Columns 0/1 violate positivity -> invalid results, bit-identical to
    # the scalar spelling; column 2 is a regular estimate (rtol).
    batch = estimate_cate_batch(table, masks, "Income", ("City",))
    for j, exact in ((0, True), (1, True), (2, False)):
        want = ESTIMATOR.estimate(table, masks[:, j], "Income", ("City",))
        assert_cate_close(batch[j], want, exact=exact)
    assert not batch[0].valid and not batch[1].valid and batch[2].valid


# -- property tests ------------------------------------------------------------


@pytest.mark.parametrize("seed", range(5))
def test_batch_of_one_matches_scalar(seed):
    rng = ensure_rng(seed)
    table = build_toy_table(n=300 + 40 * seed, seed=seed)
    mask = random_masks(rng, table.n_rows, 1)
    assert_batch_matches_scalar(table, mask, "Income", ("City", "Gender"))


def test_column_permutation_invariance(rng):
    """Permuting batch columns permutes results bit-for-bit (fixed width)."""
    table = build_toy_table(n=600, seed=9)
    masks = random_masks(rng, 600, 12)
    perm = rng.permutation(12)
    base = estimate_cate_batch(table, masks, "Income", ("City",))
    permuted = estimate_cate_batch(
        table, np.ascontiguousarray(masks[:, perm]), "Income", ("City",)
    )
    for pos, j in enumerate(perm):
        assert_cate_close(permuted[pos], base[j], exact=True)


def test_fwl_affine_equivariance(rng):
    """O -> a*O + b scales estimates/stderrs by a, keeps p-values."""
    table = build_toy_table(n=500, seed=13)
    a, b = 3.5, -20_000.0
    scaled = table.with_column("Income", a * table.values("Income") + b)
    masks = random_masks(rng, 500, 10)
    base = estimate_cate_batch(table, masks, "Income", ("City", "Gender"))
    trans = estimate_cate_batch(scaled, masks, "Income", ("City", "Gender"))
    for got, want in zip(trans, base):
        assert got.valid == want.valid
        if not want.valid:
            continue
        assert got.estimate == pytest.approx(a * want.estimate, rel=1e-9)
        assert got.stderr == pytest.approx(a * want.stderr, rel=1e-9)
        assert got.p_value == pytest.approx(want.p_value, rel=1e-7, abs=1e-300)


def test_level_driver_matches_batch(rng):
    """estimate_cate_level groups mixed adjustments correctly."""
    table = build_toy_table(n=400, seed=21)
    masks = random_masks(rng, 400, 9)
    adjustments = [("City",), ("City", "Gender"), ()] * 3
    level = estimate_cate_level(table, masks, "Income", adjustments)
    for j, adjustment in enumerate(adjustments):
        same_adj = [i for i, adj in enumerate(adjustments) if adj == adjustment]
        grouped = estimate_cate_batch(
            table, masks[:, same_adj], "Income", adjustment
        )
        want = grouped[same_adj.index(j)]
        assert_cate_close(level[j], want, exact=True)


# -- end-to-end: batch-mined rulesets are identical to scalar-path rulesets ----


def _assert_same_ruleset(batch_result, scalar_result) -> None:
    assert batch_result.nodes_evaluated == scalar_result.nodes_evaluated
    assert len(batch_result.candidate_rules) == len(scalar_result.candidate_rules)
    for got, want in zip(batch_result.candidate_rules, scalar_result.candidate_rules):
        assert got.grouping == want.grouping
        assert got.intervention == want.intervention
        for field in ("utility", "utility_protected", "utility_non_protected"):
            a, b = getattr(got, field), getattr(want, field)
            assert a == pytest.approx(b, rel=RTOL, abs=1e-12), field
    assert [
        (r.grouping, r.intervention) for r in batch_result.ruleset.rules
    ] == [(r.grouping, r.intervention) for r in scalar_result.ruleset.rules]
    for field in (
        "coverage",
        "protected_coverage",
        "expected_utility",
        "expected_utility_protected",
        "expected_utility_non_protected",
    ):
        assert getattr(batch_result.metrics, field) == pytest.approx(
            getattr(scalar_result.metrics, field), rel=1e-9, abs=1e-12
        ), field


def _run_both(table, schema, dag, protected, config):
    batch = FairCap(config).run(table, schema, dag, protected)
    scalar = FairCap(replace(config, batch_estimation=False)).run(
        table, schema, dag, protected
    )
    return batch, scalar


def test_faircap_batch_equals_scalar_synth():
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    batch, scalar = _run_both(table, None, build_toy_dag(), protected, FairCapConfig())
    _assert_same_ruleset(batch, scalar)


@pytest.mark.slow
@pytest.mark.parametrize("dataset_fixture", ["small_german_bundle", "small_so_bundle"])
def test_faircap_batch_equals_scalar_all_variants(request, dataset_fixture):
    """Every Table-4 constraint variant mines the same rules either way."""
    from repro.experiments.settings import ExperimentSettings

    bundle = request.getfixturevalue(dataset_fixture)
    settings = ExperimentSettings(so_n=0, german_n=0, seed=7)
    variants = settings.variants_for(bundle)
    base = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    for variant in variants.values():
        config = base.with_variant(variant)
        batch, scalar = _run_both(
            bundle.table, bundle.schema, bundle.dag, bundle.protected, config
        )
        _assert_same_ruleset(batch, scalar)


def test_stratified_estimator_ignores_batch_flag():
    """StratifiedEstimator has no batched path; the flag must be harmless."""
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    config = FairCapConfig(estimator="stratified")
    batch, scalar = _run_both(table, None, build_toy_dag(), protected, config)
    assert batch.ruleset.rules == scalar.ruleset.rules
