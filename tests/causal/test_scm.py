"""Tests for structural causal models."""

import numpy as np
import pytest

from repro.causal.scm import SCMNode, StructuralCausalModel
from repro.datasets.synth import uniform_noise
from repro.utils.errors import SchemaError


def simple_scm(effect=4.0):
    """z -> t -> y with z -> y."""
    def mk_z(parents, noise):
        return (noise > 0).astype(np.float64)

    def mk_t(parents, noise):
        return (noise < 0.3 + 0.4 * parents["z"]).astype(np.float64)

    def mk_y(parents, noise):
        return effect * parents["t"] + 2.0 * parents["z"] + noise

    return StructuralCausalModel(
        [
            SCMNode("z", (), mk_z),
            SCMNode("t", ("z",), mk_t, uniform_noise),
            SCMNode("y", ("z", "t"), mk_y),
        ]
    )


def test_dag_matches_parents():
    scm = simple_scm()
    dag = scm.dag()
    assert set(dag.edges) == {("z", "t"), ("z", "y"), ("t", "y")}


def test_sample_shapes():
    values = simple_scm().sample(100, rng=0)
    assert set(values) == {"z", "t", "y"}
    assert all(v.shape == (100,) for v in values.values())


def test_sampling_deterministic():
    scm = simple_scm()
    a = scm.sample(50, rng=7)
    b = scm.sample(50, rng=7)
    for name in a:
        assert np.array_equal(a[name], b[name])


def test_do_intervention_sets_constant():
    scm = simple_scm()
    values = scm.sample(100, rng=0, interventions={"t": 1.0})
    assert (values["t"] == 1.0).all()


def test_do_breaks_dependence_on_parents():
    scm = simple_scm()
    values = scm.sample(5000, rng=1, interventions={"t": 1.0})
    # Under do(t=1), t no longer depends on z.
    assert (values["t"] == 1.0).all()


def test_noise_replay_isolates_effect():
    scm = simple_scm(effect=4.0)
    noise = scm.draw_noise(10_000, rng=2)
    treated = scm.sample_with_noise(noise, {"t": 1.0})
    control = scm.sample_with_noise(noise, {"t": 0.0})
    diff = treated["y"] - control["y"]
    # With shared noise the difference is *exactly* the structural effect.
    assert np.allclose(diff, 4.0)


def test_ground_truth_ate():
    scm = simple_scm(effect=4.0)
    ate = scm.ground_truth_ate({"t": 1.0}, {"t": 0.0}, "y", n=5000, rng=3)
    assert ate == pytest.approx(4.0, abs=1e-9)


def test_ground_truth_cate_with_condition():
    scm = simple_scm(effect=4.0)
    cate = scm.ground_truth_cate(
        {"t": 1.0}, {"t": 0.0}, "y", n=5000, rng=4,
        condition=lambda values: values["z"] == 1.0,
    )
    assert cate == pytest.approx(4.0, abs=1e-9)


def test_condition_selecting_nothing_rejected():
    scm = simple_scm()
    with pytest.raises(SchemaError):
        scm.ground_truth_cate(
            {"t": 1.0}, {"t": 0.0}, "y", n=100, rng=0,
            condition=lambda values: np.zeros(100, dtype=bool),
        )


def test_sample_table_with_schema():
    scm = simple_scm()
    table = scm.sample_table(50, rng=5)
    assert table.n_rows == 50
    assert set(table.column_names) == {"z", "t", "y"}


def test_cycle_rejected():
    def identity(parents, noise):
        return noise

    with pytest.raises(SchemaError):
        StructuralCausalModel(
            [
                SCMNode("a", ("b",), identity),
                SCMNode("b", ("a",), identity),
            ]
        )


def test_unknown_parent_rejected():
    with pytest.raises(SchemaError):
        StructuralCausalModel([SCMNode("a", ("ghost",), lambda p, n: n)])


def test_duplicate_names_rejected():
    with pytest.raises(SchemaError):
        StructuralCausalModel(
            [SCMNode("a", (), lambda p, n: n), SCMNode("a", (), lambda p, n: n)]
        )


def test_self_parent_rejected():
    with pytest.raises(SchemaError):
        SCMNode("a", ("a",), lambda p, n: n)


def test_intervention_on_unknown_node_rejected():
    scm = simple_scm()
    with pytest.raises(SchemaError):
        scm.sample(10, rng=0, interventions={"ghost": 1})


def test_bad_mechanism_shape_rejected():
    scm = StructuralCausalModel(
        [SCMNode("a", (), lambda p, n: np.zeros(3))]
    )
    with pytest.raises(SchemaError):
        scm.sample(10, rng=0)


def test_categorical_intervention():
    def mk_c(parents, noise):
        return np.where(noise > 0, "hi", "lo").astype(object)

    scm = StructuralCausalModel([SCMNode("c", (), mk_c)])
    values = scm.sample(20, rng=0, interventions={"c": "hi"})
    assert (values["c"] == "hi").all()
