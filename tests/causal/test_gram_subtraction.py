"""Gram subtraction: ``WᵀW`` for a sub-population by donor subtraction.

The identity under test: when ``parent = table ∪ sibling`` partitions row
sets, the sub-population Gram equals the parent's minus the sibling's,
entry for entry — exactly for the integer-count one-hot blocks, and to
float rounding for continuous columns.  The obligations:

- the subtracted factorization estimates agree with the accumulated one
  at the 1e-9 relative-tolerance contract, with the route counter firing;
- every guard (row-count mismatch, non-positive derived diagonal) falls
  back to the standard routing rather than certifying a bad Gram;
- end-to-end, ``gram_subtraction`` on/off selects the same ruleset on the
  German bundle, and the default-on engine stays inside the executor
  differential suite's bit-identity contract.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from tests.conftest import build_toy_dag, build_toy_table
from repro.causal.batch import (
    GramFactorization,
    build_rows_factorization,
)
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.mining.patterns import Pattern
from repro.obs import telemetry_session
from repro.rules.protected import ProtectedGroup


@pytest.fixture(scope="module")
def partition():
    """A table split into (parent, sub, sibling) along the Gender column."""
    parent = build_toy_table(n=400, seed=3)
    mask = parent.column("Gender").decode() == "Female"
    return parent, parent.filter(mask), parent.filter(~mask)


def test_subtracted_factorization_matches_accumulated(partition):
    parent, sub, sibling = partition
    adjustment = ("City", "Training")
    with telemetry_session(enabled=True) as telemetry:
        direct = build_rows_factorization(sub, "Income", adjustment)
        derived = build_rows_factorization(
            sub, "Income", adjustment, donor=(parent, sibling)
        )
    assert isinstance(derived, GramFactorization)
    counters = telemetry.registry.snapshot()["counters"]
    routes = counters["estimation.factorizations"]["values"]
    assert routes["route=gram_subtracted"] == 1.0
    assert counters["factorization.gram_subtracted"]["values"][""] == 1.0

    assert derived.n == direct.n and derived.rank == direct.rank
    np.testing.assert_allclose(derived.gram_inv, direct.gram_inv, rtol=1e-9)
    np.testing.assert_allclose(derived.y_res, direct.y_res, rtol=1e-9, atol=1e-9)
    np.testing.assert_allclose(derived.y_res_sq, direct.y_res_sq, rtol=1e-9)
    # One-hot cross products are integer counts: subtraction is exact there,
    # so the Gram inverses agree to the last few bits.
    np.testing.assert_array_equal(derived.w, direct.w)


def test_row_count_mismatch_falls_back_to_standard_route(partition):
    parent, sub, sibling = partition
    bogus_sibling = sibling.filter(np.arange(sibling.n_rows) < sibling.n_rows - 5)
    with telemetry_session(enabled=True) as telemetry:
        factorization = build_rows_factorization(
            sub, "Income", ("City",), donor=(parent, bogus_sibling)
        )
    routes = telemetry.registry.snapshot()["counters"][
        "estimation.factorizations"
    ]["values"]
    assert "route=gram_subtracted" not in routes
    assert routes.get("route=gram") == 1.0
    assert isinstance(factorization, GramFactorization)


def test_absent_category_falls_back_to_standard_route():
    """A category present only in the sibling zeroes a derived diagonal."""
    parent = build_toy_table(n=400, seed=3)
    city = parent.column("City").decode()
    mask = city == "Metro"  # the sub-population never sees Rural
    sub, sibling = parent.filter(mask), parent.filter(~mask)
    with telemetry_session(enabled=True) as telemetry:
        factorization = build_rows_factorization(
            sub, "Income", ("City",), donor=(parent, sibling)
        )
    routes = telemetry.registry.snapshot()["counters"][
        "estimation.factorizations"
    ]["values"]
    assert "route=gram_subtracted" not in routes
    assert factorization is not None  # answered by the standard routing


@pytest.mark.slow
def test_german_ruleset_invariant_under_gram_subtraction(small_german_bundle):
    bundle = small_german_bundle
    config = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    on = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    off = FairCap(replace(config, gram_subtraction=False)).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    assert [
        (r.grouping, r.intervention) for r in on.ruleset.rules
    ] == [(r.grouping, r.intervention) for r in off.ruleset.rules]
    for got, want in zip(on.ruleset.rules, off.ruleset.rules):
        assert got.utility == pytest.approx(want.utility, rel=1e-9)
        assert got.utility_protected == pytest.approx(
            want.utility_protected, rel=1e-9, abs=1e-12
        )


@pytest.mark.slow
def test_toy_route_fires_and_executors_stay_identical():
    """Default-on subtraction keeps serial ≡ process bit-identity."""
    from tests.parallel.test_equivalence import assert_identical_results
    from repro.parallel import ProcessExecutor, SerialExecutor

    table = build_toy_table(n=300, seed=7)
    dag = build_toy_dag()
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    config = FairCapConfig(telemetry=True)
    serial = FairCap(config, executor=SerialExecutor()).run(
        table, None, dag, protected
    )
    process = FairCap(config, executor=ProcessExecutor(2)).run(
        table, None, dag, protected
    )
    assert_identical_results(serial, process)
    counters = serial.telemetry["counters"]
    assert counters["factorization.gram_subtracted"]["values"][""] > 0
