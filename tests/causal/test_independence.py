"""Tests for the conditional-independence tests."""

import numpy as np
import pytest

from repro.causal.independence import CITester, fisher_z_test, g_square_test
from repro.tabular.table import Table
from repro.utils.errors import EstimationError
from repro.utils.rng import ensure_rng


def test_fisher_z_detects_dependence():
    rng = ensure_rng(0)
    n = 2000
    x = rng.normal(size=n)
    y = x + 0.5 * rng.normal(size=n)
    data = np.column_stack([x, y])
    assert fisher_z_test(data, 0, 1) < 0.01


def test_fisher_z_independent():
    rng = ensure_rng(1)
    data = rng.normal(size=(2000, 2))
    assert fisher_z_test(data, 0, 1) > 0.01


def test_fisher_z_conditional_independence():
    rng = ensure_rng(2)
    n = 3000
    z = rng.normal(size=n)
    x = z + 0.5 * rng.normal(size=n)
    y = z + 0.5 * rng.normal(size=n)
    data = np.column_stack([x, y, z])
    assert fisher_z_test(data, 0, 1) < 0.01      # marginally dependent
    assert fisher_z_test(data, 0, 1, (2,)) > 0.01  # independent given z


def test_fisher_z_small_sample_returns_one():
    data = ensure_rng(0).normal(size=(4, 3))
    assert fisher_z_test(data, 0, 1, (2,)) == 1.0


def test_g_square_detects_dependence():
    rng = ensure_rng(3)
    n = 2000
    x = rng.integers(0, 2, n)
    y = np.where(rng.random(n) < 0.8, x, 1 - x)
    codes = np.column_stack([x, y])
    assert g_square_test(codes, (2, 2), 0, 1) < 0.001


def test_g_square_independent():
    rng = ensure_rng(4)
    codes = np.column_stack([rng.integers(0, 2, 3000), rng.integers(0, 3, 3000)])
    assert g_square_test(codes, (2, 3), 0, 1) > 0.01


def test_g_square_conditional_independence():
    rng = ensure_rng(5)
    n = 5000
    z = rng.integers(0, 2, n)
    x = np.where(rng.random(n) < 0.7, z, 1 - z)
    y = np.where(rng.random(n) < 0.7, z, 1 - z)
    codes = np.column_stack([x, y, z])
    assert g_square_test(codes, (2, 2, 2), 0, 1) < 0.001
    assert g_square_test(codes, (2, 2, 2), 0, 1, (2,)) > 0.01


def test_g_square_constant_column_independent():
    codes = np.column_stack([np.zeros(100, dtype=int), np.arange(100) % 2])
    assert g_square_test(codes, (1, 2), 0, 1) == 1.0


class TestCITester:
    def make_table(self, n=3000, seed=6):
        rng = ensure_rng(seed)
        z = rng.integers(0, 2, n)
        x = np.where(rng.random(n) < 0.75, z, 1 - z)
        w = rng.normal(size=n)
        y = w + rng.normal(size=n)
        return Table(
            {
                "z": [f"z{v}" for v in z],
                "x": [f"x{v}" for v in x],
                "w": w,
                "y": y,
            }
        )

    def test_categorical_query(self):
        tester = CITester(self.make_table())
        assert tester.p_value("x", "z") < 0.001
        assert not tester.independent("x", "z")

    def test_continuous_query(self):
        tester = CITester(self.make_table())
        assert tester.p_value("w", "y") < 0.001

    def test_mixed_query_discretises(self):
        tester = CITester(self.make_table())
        # w and x are independent.
        assert tester.independent("w", "x")

    def test_unknown_attribute(self):
        tester = CITester(self.make_table())
        with pytest.raises(EstimationError):
            tester.p_value("ghost", "x")

    def test_empty_table_rejected(self):
        table = Table({"a": np.array([], dtype=float)})
        with pytest.raises(EstimationError):
            CITester(table)
