"""Tests for the Table 6 synthetic DAG builders."""

import pytest

from repro.causal.dagbuilders import (
    named_dag_variants,
    one_layer_independent_dag,
    two_layer_dag,
    two_layer_mutable_dag,
    validate_dag_covers_schema,
)
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.utils.errors import SchemaError


@pytest.fixture
def schema():
    return Schema(
        [
            AttributeSpec("g1", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("g2", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("m1", AttributeKind.CATEGORICAL, AttributeRole.MUTABLE),
            AttributeSpec("m2", AttributeKind.CATEGORICAL, AttributeRole.MUTABLE),
            AttributeSpec("o", AttributeKind.CONTINUOUS, AttributeRole.OUTCOME),
        ]
    )


def test_one_layer(schema):
    dag = one_layer_independent_dag(schema)
    assert set(dag.edges) == {("g1", "o"), ("g2", "o"), ("m1", "o"), ("m2", "o")}


def test_two_layer_mutable(schema):
    dag = two_layer_mutable_dag(schema)
    # Immutables feed mutables but not the outcome directly.
    assert ("g1", "m1") in dag.edges
    assert ("m1", "o") in dag.edges
    assert ("g1", "o") not in dag.edges


def test_two_layer(schema):
    dag = two_layer_dag(schema)
    assert ("g1", "m1") in dag.edges
    assert ("g1", "o") in dag.edges
    assert ("m1", "o") in dag.edges


def test_all_cover_schema(schema):
    for builder in (one_layer_independent_dag, two_layer_mutable_dag, two_layer_dag):
        dag = builder(schema)
        validate_dag_covers_schema(dag, schema)


def test_validate_detects_missing(schema):
    dag = one_layer_independent_dag(schema).restricted_to(["g1", "o"])
    with pytest.raises(SchemaError):
        validate_dag_covers_schema(dag, schema)


def test_named_variants(schema):
    original = two_layer_dag(schema)
    variants = named_dag_variants(schema, original)
    assert set(variants) == {
        "Original causal DAG", "1-Layer Indep DAG",
        "2-Layer Mutable DAG", "2-Layer DAG",
    }
    with_pc = named_dag_variants(schema, original, pc=original)
    assert "PC DAG" in with_pc


def test_requires_prescription_schema():
    bad = Schema(
        [AttributeSpec("a", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE)]
    )
    with pytest.raises(SchemaError):
        one_layer_independent_dag(bad)
