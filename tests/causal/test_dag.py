"""Tests for repro.causal.dag."""

import pytest

from repro.causal.dag import CausalDAG
from repro.utils.errors import SchemaError


@pytest.fixture
def chain():
    return CausalDAG(edges=[("a", "b"), ("b", "c")])


def test_cycle_rejected():
    with pytest.raises(SchemaError):
        CausalDAG(edges=[("a", "b"), ("b", "a")])


def test_self_loop_rejected():
    with pytest.raises(SchemaError):
        CausalDAG(edges=[("a", "a")])


def test_nodes_and_edges(chain):
    assert set(chain.nodes) == {"a", "b", "c"}
    assert set(chain.edges) == {("a", "b"), ("b", "c")}
    assert "a" in chain
    assert len(chain) == 3


def test_isolated_nodes():
    dag = CausalDAG(edges=[("a", "b")], nodes=["z"])
    assert "z" in dag
    assert dag.parents("z") == ()


def test_parents_children(chain):
    assert chain.parents("b") == ("a",)
    assert chain.children("b") == ("c",)
    assert chain.parents("a") == ()


def test_unknown_node_raises(chain):
    with pytest.raises(SchemaError):
        chain.parents("ghost")


def test_ancestors_descendants(chain):
    assert chain.ancestors("c") == {"a", "b"}
    assert chain.descendants("a") == {"b", "c"}
    assert chain.ancestors("a") == frozenset()


def test_topological_order(chain):
    order = chain.topological_order()
    assert order.index("a") < order.index("b") < order.index("c")


def test_has_directed_path(chain):
    assert chain.has_directed_path("a", "c")
    assert not chain.has_directed_path("c", "a")


def test_causally_relevant():
    dag = CausalDAG(edges=[("x", "o"), ("y", "x"), ("z", "q")], nodes=["o"])
    assert dag.causally_relevant("o") == {"x", "y"}


def test_without_outgoing_edges(chain):
    cut = chain.without_outgoing_edges(["b"])
    assert ("a", "b") in cut.edges
    assert ("b", "c") not in cut.edges
    assert set(cut.nodes) == set(chain.nodes)


def test_restricted_to(chain):
    sub = chain.restricted_to(["a", "b"])
    assert set(sub.nodes) == {"a", "b"}
    assert sub.edges == (("a", "b"),)
    with pytest.raises(SchemaError):
        chain.restricted_to(["ghost"])


def test_networkx_roundtrip(chain):
    clone = CausalDAG.from_networkx(chain.to_networkx())
    assert clone == chain


def test_equality():
    a = CausalDAG(edges=[("x", "y")])
    b = CausalDAG(edges=[("x", "y")])
    assert a == b
    assert a != CausalDAG(edges=[("y", "x")])
