"""Tests for the OLS helper."""

import numpy as np
import pytest

from repro.causal.linalg import ols, one_hot
from repro.utils.errors import EstimationError
from repro.utils.rng import ensure_rng


def test_recovers_exact_coefficients():
    rng = ensure_rng(0)
    X = np.column_stack([np.ones(200), rng.normal(size=200), rng.normal(size=200)])
    beta = np.array([1.0, 2.0, -3.0])
    y = X @ beta
    fit = ols(X, y)
    assert np.allclose(fit.coefficients, beta, atol=1e-10)
    assert fit.rank == 3


def test_stderr_shrinks_with_n():
    rng = ensure_rng(1)

    def stderr_at(n):
        X = np.column_stack([np.ones(n), rng.normal(size=n)])
        y = X @ np.array([0.0, 1.0]) + rng.normal(size=n)
        return ols(X, y).stderr[1]

    assert stderr_at(4000) < stderr_at(100)


def test_stderr_matches_closed_form():
    rng = ensure_rng(2)
    n = 500
    x = rng.normal(size=n)
    X = np.column_stack([np.ones(n), x])
    y = 2.0 + 0.5 * x + rng.normal(size=n)
    fit = ols(X, y)
    residuals = y - X @ fit.coefficients
    s2 = residuals @ residuals / (n - 2)
    expected = np.sqrt(s2 * np.linalg.inv(X.T @ X)[1, 1])
    assert fit.stderr[1] == pytest.approx(expected, rel=1e-9)


def test_full_covariance_flag_matches_default():
    """The Cholesky-derived stderrs equal the opt-in pinv covariance path."""
    rng = ensure_rng(5)
    n = 400
    X = np.column_stack([np.ones(n), rng.normal(size=(n, 3))])
    y = X @ np.array([1.0, 2.0, -1.0, 0.5]) + rng.normal(size=n)
    fast = ols(X, y)
    full = ols(X, y, full_covariance=True)
    assert np.array_equal(fast.coefficients, full.coefficients)
    assert fast.stderr == pytest.approx(full.stderr, rel=1e-9)
    assert fast.dof == full.dof and fast.rank == full.rank


def test_full_covariance_flag_identical_when_rank_deficient():
    """Deficient designs take the pinv route under either spelling."""
    n = 60
    x = np.linspace(0, 1, n)
    X = np.column_stack([np.ones(n), x, 2 * x])
    y = 1.0 + x + np.sin(x)
    fast = ols(X, y)
    full = ols(X, y, full_covariance=True)
    assert np.array_equal(fast.stderr, full.stderr)


def test_rank_deficient_design_handled():
    n = 50
    x = np.linspace(0, 1, n)
    X = np.column_stack([np.ones(n), x, 2 * x])  # collinear
    y = 1.0 + x
    fit = ols(X, y)
    assert fit.rank == 2
    assert np.allclose(X @ fit.coefficients, y, atol=1e-8)


def test_zero_dof():
    X = np.eye(3)
    y = np.arange(3.0)
    fit = ols(X, y)
    assert fit.dof == 0
    assert np.isnan(fit.residual_variance)
    assert np.isnan(fit.stderr).all()


def test_shape_validation():
    with pytest.raises(EstimationError):
        ols(np.ones(5), np.ones(5))  # 1-D design
    with pytest.raises(EstimationError):
        ols(np.ones((5, 2)), np.ones(4))  # length mismatch
    with pytest.raises(EstimationError):
        ols(np.ones((0, 2)), np.ones(0))  # empty


class TestOneHot:
    def test_drop_first(self):
        codes = np.array([0, 1, 2, 1])
        matrix = one_hot(codes, 3)
        assert matrix.shape == (4, 2)
        assert list(matrix[:, 0]) == [0.0, 1.0, 0.0, 1.0]  # category 1
        assert list(matrix[:, 1]) == [0.0, 0.0, 1.0, 0.0]  # category 2

    def test_keep_all(self):
        matrix = one_hot(np.array([0, 1]), 2, drop_first=False)
        assert matrix.shape == (2, 2)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_empty_input(self):
        assert one_hot(np.array([], dtype=int), 3).shape == (0, 2)

    def test_invalid_cardinality(self):
        with pytest.raises(EstimationError):
            one_hot(np.array([0]), 0)
