"""Tests for the PC causal-discovery algorithm."""

import numpy as np

from repro.causal.discovery import pc_dag, pc_skeleton
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng


def collider_table(n=6000, seed=0):
    """x -> c <- y with an extra child c -> d."""
    rng = ensure_rng(seed)
    x = rng.normal(size=n)
    y = rng.normal(size=n)
    c = x + y + 0.3 * rng.normal(size=n)
    d = c + 0.3 * rng.normal(size=n)
    return Table({"x": x, "y": y, "c": c, "d": d})


def chain_table(n=6000, seed=1):
    rng = ensure_rng(seed)
    a = rng.normal(size=n)
    b = a + 0.5 * rng.normal(size=n)
    c = b + 0.5 * rng.normal(size=n)
    return Table({"a": a, "b": b, "c": c})


def test_skeleton_recovers_chain():
    table = chain_table()
    skeleton, sepsets = pc_skeleton(table, alpha=0.01)
    assert skeleton.has_edge("a", "b")
    assert skeleton.has_edge("b", "c")
    assert not skeleton.has_edge("a", "c")
    assert sepsets[frozenset(("a", "c"))] == ("b",)


def test_skeleton_recovers_collider_structure():
    table = collider_table()
    skeleton, __ = pc_skeleton(table, alpha=0.01)
    assert skeleton.has_edge("x", "c")
    assert skeleton.has_edge("y", "c")
    assert not skeleton.has_edge("x", "y")


def test_v_structure_oriented():
    table = collider_table()
    dag = pc_dag(table, alpha=0.01)
    assert ("x", "c") in dag.edges
    assert ("y", "c") in dag.edges


def test_result_is_acyclic_dag():
    table = collider_table()
    dag = pc_dag(table, alpha=0.01)
    # CausalDAG construction enforces acyclicity; reaching here is the test.
    assert len(dag.nodes) == 4


def test_outcome_orientation_bias():
    # Independent features, all correlated with outcome only.
    rng = ensure_rng(2)
    n = 5000
    a = rng.normal(size=n)
    b = rng.normal(size=n)
    o = a + b + 0.5 * rng.normal(size=n)
    table = Table({"a": a, "b": b, "o": o})
    dag = pc_dag(table, outcome="o", alpha=0.01)
    for edge in dag.edges:
        if "o" in edge:
            assert edge[1] == "o"  # edges point INTO the outcome


def test_categorical_discovery():
    rng = ensure_rng(3)
    n = 6000
    z = rng.integers(0, 2, n)
    x = np.where(rng.random(n) < 0.85, z, 1 - z)
    y = np.where(rng.random(n) < 0.85, z, 1 - z)
    table = Table(
        {"z": [f"z{v}" for v in z], "x": [f"x{v}" for v in x],
         "y": [f"y{v}" for v in y]}
    )
    skeleton, __ = pc_skeleton(table, alpha=0.01)
    assert skeleton.has_edge("x", "z")
    assert skeleton.has_edge("y", "z")
    assert not skeleton.has_edge("x", "y")


def test_max_cond_size_zero():
    table = chain_table()
    skeleton, __ = pc_skeleton(table, alpha=0.01, max_cond_size=0)
    # Without conditioning, a-c cannot be separated in a chain.
    assert skeleton.has_edge("a", "c")
