"""Tests for d-separation against textbook structures."""

import pytest

from repro.causal.dag import CausalDAG
from repro.utils.errors import SchemaError


@pytest.fixture
def chain():
    return CausalDAG(edges=[("x", "m"), ("m", "y")])


@pytest.fixture
def fork():
    return CausalDAG(edges=[("z", "x"), ("z", "y")])


@pytest.fixture
def collider():
    return CausalDAG(edges=[("x", "c"), ("y", "c"), ("c", "d")])


def test_chain_blocked_by_mediator(chain):
    assert not chain.d_separated(["x"], ["y"])
    assert chain.d_separated(["x"], ["y"], ["m"])


def test_fork_blocked_by_common_cause(fork):
    assert not fork.d_separated(["x"], ["y"])
    assert fork.d_separated(["x"], ["y"], ["z"])


def test_collider_blocks_by_default(collider):
    assert collider.d_separated(["x"], ["y"])


def test_conditioning_on_collider_opens_path(collider):
    assert not collider.d_separated(["x"], ["y"], ["c"])


def test_conditioning_on_collider_descendant_opens_path(collider):
    assert not collider.d_separated(["x"], ["y"], ["d"])


def test_m_structure():
    # x <- a -> c <- b -> y : conditioning on c opens the path.
    dag = CausalDAG(edges=[("a", "x"), ("a", "c"), ("b", "c"), ("b", "y")])
    assert dag.d_separated(["x"], ["y"])
    assert not dag.d_separated(["x"], ["y"], ["c"])
    assert dag.d_separated(["x"], ["y"], ["c", "a"])


def test_set_arguments():
    dag = CausalDAG(edges=[("a", "y"), ("b", "y")])
    assert dag.d_separated(["a"], ["b"])
    assert not dag.d_separated(["a", "b"], ["y"])


def test_overlapping_sets_rejected():
    dag = CausalDAG(edges=[("a", "b")])
    with pytest.raises(SchemaError):
        dag.d_separated(["a"], ["a"])
    with pytest.raises(SchemaError):
        dag.d_separated(["a"], ["b"], ["a"])


def test_empty_sets_rejected():
    dag = CausalDAG(edges=[("a", "b")])
    with pytest.raises(SchemaError):
        dag.d_separated([], ["b"])


def test_unknown_node_rejected():
    dag = CausalDAG(edges=[("a", "b")])
    with pytest.raises(SchemaError):
        dag.d_separated(["a"], ["ghost"])


def test_matches_networkx_reference():
    """Cross-check against networkx's d-separation on a richer DAG."""
    import networkx as nx
    from itertools import combinations

    edges = [
        ("a", "b"), ("b", "c"), ("a", "d"), ("d", "c"),
        ("c", "e"), ("f", "d"), ("f", "e"),
    ]
    dag = CausalDAG(edges=edges)
    graph = nx.DiGraph(edges)
    nodes = sorted(dag.nodes)
    for x, y in combinations(nodes, 2):
        others = [n for n in nodes if n not in (x, y)]
        for size in range(len(others) + 1):
            for zs in combinations(others, size):
                ours = dag.d_separated([x], [y], list(zs))
                reference = nx.is_d_separator(graph, {x}, {y}, set(zs))
                assert ours == reference, (x, y, zs)
