"""Tests for the CATE estimators against known ground truth."""

import numpy as np
import pytest

from repro.causal.estimators import (
    CateResult,
    LinearAdjustmentEstimator,
    StratifiedEstimator,
    estimate_cate,
)
from repro.tabular.table import Table
from repro.utils.errors import EstimationError
from repro.utils.rng import ensure_rng


def confounded_table(n=4000, effect=5.0, seed=0):
    """z confounds both treatment uptake and the outcome."""
    rng = ensure_rng(seed)
    z = rng.integers(0, 3, n)
    t = rng.random(n) < (0.2 + 0.2 * z)
    y = effect * t + 3.0 * z + rng.normal(size=n)
    table = Table(
        {"z": [f"z{v}" for v in z], "y": y}
    )
    return table, t, z


@pytest.mark.parametrize("estimator", [LinearAdjustmentEstimator(), StratifiedEstimator()])
def test_recovers_effect_with_adjustment(estimator):
    table, t, _ = confounded_table()
    result = estimator.estimate(table, t, "y", ("z",))
    assert result.valid
    assert result.estimate == pytest.approx(5.0, abs=0.25)
    assert result.p_value < 1e-6


@pytest.mark.parametrize("estimator", [LinearAdjustmentEstimator(), StratifiedEstimator()])
def test_unadjusted_estimate_is_biased(estimator):
    table, t, _ = confounded_table()
    naive = estimator.estimate(table, t, "y", ())
    adjusted = estimator.estimate(table, t, "y", ("z",))
    # Confounding inflates the naive estimate well above the truth.
    assert naive.estimate > adjusted.estimate + 0.5


def test_null_effect_not_significant():
    table, t, _ = confounded_table(effect=0.0, seed=3)
    result = LinearAdjustmentEstimator().estimate(table, t, "y", ("z",))
    assert abs(result.estimate) < 0.2
    assert result.p_value > 0.01


def test_continuous_adjustment_column():
    rng = ensure_rng(4)
    n = 3000
    z = rng.normal(size=n)
    t = rng.random(n) < 1 / (1 + np.exp(-z))
    y = 2.0 * t + 1.5 * z + rng.normal(size=n)
    table = Table({"z": z, "y": y})
    result = LinearAdjustmentEstimator().estimate(table, t, "y", ("z",))
    assert result.estimate == pytest.approx(2.0, abs=0.15)


def test_empty_treated_group_invalid():
    table, t, _ = confounded_table(n=100)
    result = LinearAdjustmentEstimator().estimate(
        table, np.zeros(100, dtype=bool), "y", ()
    )
    assert not result.valid
    assert "positivity" in result.reason
    assert np.isnan(result.estimate)


def test_empty_control_group_invalid():
    table, t, _ = confounded_table(n=100)
    result = LinearAdjustmentEstimator().estimate(
        table, np.ones(100, dtype=bool), "y", ()
    )
    assert not result.valid


def test_counts_reported():
    table, t, _ = confounded_table(n=500)
    result = LinearAdjustmentEstimator().estimate(table, t, "y", ("z",))
    assert result.n == 500
    assert result.n_treated == int(t.sum())
    assert result.n_control == 500 - int(t.sum())
    assert result.adjustment == ("z",)


def test_mask_length_validation():
    table, t, _ = confounded_table(n=100)
    with pytest.raises(EstimationError):
        LinearAdjustmentEstimator().estimate(table, t[:50], "y", ())


def test_categorical_outcome_rejected():
    table = Table({"y": ["a", "b"], "t": [0.0, 1.0]})
    with pytest.raises(EstimationError):
        LinearAdjustmentEstimator().estimate(
            table, np.array([True, False]), "y", ()
        )


def test_stratified_no_overlap_invalid():
    # Treatment perfectly determined by stratum: no stratum has both groups.
    table = Table({"z": ["a"] * 50 + ["b"] * 50, "y": [1.0] * 100})
    treated = np.array([True] * 50 + [False] * 50)
    result = StratifiedEstimator().estimate(table, treated, "y", ("z",))
    assert not result.valid


def test_stratified_drops_partial_overlap():
    # Stratum 'a' has both groups, stratum 'b' only controls: 'b' dropped,
    # but 'b' holds 50% of rows -> still valid at the default threshold.
    rng = ensure_rng(5)
    z = np.array(["a"] * 100 + ["b"] * 100)
    treated = np.concatenate([rng.random(100) < 0.5, np.zeros(100, dtype=bool)])
    y = 3.0 * treated + rng.normal(size=200)
    table = Table({"z": z, "y": y})
    result = StratifiedEstimator(max_dropped_fraction=0.6).estimate(
        table, treated, "y", ("z",)
    )
    assert result.valid
    assert result.estimate == pytest.approx(3.0, abs=0.5)


def test_stratified_continuous_binning():
    rng = ensure_rng(6)
    n = 4000
    z = rng.normal(size=n)
    t = rng.random(n) < 1 / (1 + np.exp(-2 * z))
    y = 1.0 * t + 2.0 * z + rng.normal(size=n) * 0.5
    table = Table({"z": z, "y": y})
    result = StratifiedEstimator(n_bins=8).estimate(table, t, "y", ("z",))
    assert result.valid
    assert result.estimate == pytest.approx(1.0, abs=0.3)


def test_cate_result_significance_helpers():
    good = CateResult(1.0, 0.1, 0.001, 100, 50, 50)
    assert good.is_significant(0.05)
    assert not good.is_significant(0.0001)
    bad = CateResult.invalid("nope")
    assert not bad.is_significant()
    assert not bad.valid


def test_estimate_cate_facade():
    table, t, _ = confounded_table(n=1000)
    default = estimate_cate(table, t, "y", ("z",))
    explicit = estimate_cate(
        table, t, "y", ("z",), estimator=LinearAdjustmentEstimator()
    )
    assert default.estimate == pytest.approx(explicit.estimate)


def test_stratified_invalid_bins():
    with pytest.raises(EstimationError):
        StratifiedEstimator(n_bins=1)


def test_collinear_treatment_is_flagged_not_estimated(rng):
    """A treatment exactly determined by the adjustment set is unidentified.

    lstsq's minimum-norm solution would otherwise split the combined
    coefficient arbitrarily between the treatment and the collinear
    confounder and report it as a valid, significant CATE (caught by the
    ``separated`` oracle scenario; also surfaced on a German Table-4
    subgroup of 11 rows where the treated mask coincided with the
    CreditAmount dummies).
    """
    n = 200
    z = rng.integers(0, 2, n)
    t = z == 1  # treatment is a deterministic function of the confounder
    y = 2.0 * t + 1.0 * z + rng.normal(size=n)
    table = Table({"z": [f"z{v}" for v in z], "y": y})
    result = LinearAdjustmentEstimator().estimate(table, t, "y", ("z",))
    assert not result.valid
    assert "collinear" in result.reason


def test_rank_deficiency_among_confounders_keeps_the_fit(rng):
    """Redundant adjustment columns do not invalidate an identified effect.

    With two byte-identical confounder columns the design is rank
    deficient, but every null-space direction lives among the adjustment
    columns — the treatment coefficient is unique and must survive.
    """
    n = 2000
    z = rng.integers(0, 2, n)
    t = rng.random(n) < (0.3 + 0.4 * z)
    y = 5.0 * t + 3.0 * z + rng.normal(size=n)
    labels = [f"z{v}" for v in z]
    table = Table({"z1": labels, "z2": labels, "y": y})
    result = LinearAdjustmentEstimator().estimate(table, t, "y", ("z1", "z2"))
    assert result.valid
    assert result.estimate == pytest.approx(5.0, abs=0.3)
