"""Robustness tests: PC must return a DAG even under noisy CI decisions.

With small samples and loose significance levels the v-structure phase can
emit conflicting orientations; ``_extend_to_dag`` must resolve them (by
dropping cycle-closing edges deterministically) instead of raising.
"""

import networkx as nx
import pytest

from repro.causal.dag import CausalDAG
from repro.causal.discovery import _extend_to_dag, pc_dag
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng


def test_extend_resolves_conflicting_orientations():
    """A pre-oriented 3-cycle (conflicting v-structures) must not crash."""
    mixed = nx.DiGraph()
    # a -> b -> c -> a, each single-direction (as if "oriented").
    mixed.add_edges_from([("a", "b"), ("b", "c"), ("c", "a")])
    result = _extend_to_dag(mixed, outcome=None)
    assert nx.is_directed_acyclic_graph(result)
    # Deterministic: the lexicographically last edge is the one dropped.
    assert set(result.edges()) == {("a", "b"), ("b", "c")}


def test_extend_keeps_consistent_orientations():
    mixed = nx.DiGraph()
    mixed.add_edges_from([("a", "b"), ("b", "c")])
    result = _extend_to_dag(mixed, outcome=None)
    assert set(result.edges()) == {("a", "b"), ("b", "c")}


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_pc_always_returns_dag_on_noisy_data(seed):
    """Small-sample, high-alpha PC runs must always produce a valid DAG."""
    rng = ensure_rng(seed)
    n = 300
    a = rng.integers(0, 3, n)
    b = (a + rng.integers(0, 2, n)) % 3
    c = (b + rng.integers(0, 2, n)) % 3
    d = (a + c + rng.integers(0, 2, n)) % 3
    table = Table(
        {
            "a": [f"v{v}" for v in a],
            "b": [f"v{v}" for v in b],
            "c": [f"v{v}" for v in c],
            "d": [f"v{v}" for v in d],
        }
    )
    dag = pc_dag(table, outcome="d", alpha=0.2, max_cond_size=2)
    assert isinstance(dag, CausalDAG)  # construction validates acyclicity
    assert set(dag.nodes) == {"a", "b", "c", "d"}
