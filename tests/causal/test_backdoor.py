"""Tests for backdoor adjustment-set selection."""

import pytest

from repro.causal.backdoor import (
    backdoor_adjustment_set,
    is_valid_backdoor_set,
    minimal_backdoor_set,
    parents_adjustment_set,
)
from repro.causal.dag import CausalDAG
from repro.utils.errors import EstimationError


@pytest.fixture
def confounded():
    # z confounds t -> y
    return CausalDAG(edges=[("z", "t"), ("z", "y"), ("t", "y")])


def test_confounder_identified(confounded):
    assert backdoor_adjustment_set(confounded, ["t"], "y") == ("z",)


def test_empty_set_when_unconfounded():
    dag = CausalDAG(edges=[("t", "y"), ("w", "y")])
    assert backdoor_adjustment_set(dag, ["t"], "y") == ()


def test_mediator_not_included():
    # t -> m -> y; no confounding: adjustment should be empty, never m.
    dag = CausalDAG(edges=[("t", "m"), ("m", "y")])
    assert backdoor_adjustment_set(dag, ["t"], "y") == ()


def test_minimality_prunes_redundant():
    # Two parents of t, but only z1 reaches y: z2 is prunable.
    dag = CausalDAG(
        edges=[("z1", "t"), ("z2", "t"), ("z1", "y"), ("t", "y")]
    )
    assert backdoor_adjustment_set(dag, ["t"], "y") == ("z1",)


def test_is_valid_backdoor_set(confounded):
    assert is_valid_backdoor_set(confounded, ["t"], "y", ["z"])
    assert not is_valid_backdoor_set(confounded, ["t"], "y", [])


def test_descendant_invalid():
    dag = CausalDAG(edges=[("t", "m"), ("m", "y"), ("z", "t"), ("z", "y")])
    assert not is_valid_backdoor_set(dag, ["t"], "y", ["m"])
    assert not is_valid_backdoor_set(dag, ["t"], "y", ["z", "m"])


def test_outcome_in_adjustment_invalid(confounded):
    assert not is_valid_backdoor_set(confounded, ["t"], "y", ["y"])


def test_treatment_in_adjustment_invalid(confounded):
    assert not is_valid_backdoor_set(confounded, ["t"], "y", ["t"])


def test_multi_treatment():
    dag = CausalDAG(
        edges=[
            ("z", "t1"), ("z", "t2"), ("z", "y"), ("t1", "y"), ("t2", "y"),
        ]
    )
    assert backdoor_adjustment_set(dag, ["t1", "t2"], "y") == ("z",)


def test_compound_treatment_without_strict_set():
    # t1 -> m -> t2 with m -> y: parents(t2) includes m, a descendant of t1,
    # so no strict backdoor set exists.
    dag = CausalDAG(
        edges=[
            ("t1", "m"), ("m", "t2"), ("m", "y"), ("t1", "y"), ("t2", "y"),
        ]
    )
    with pytest.raises(EstimationError):
        backdoor_adjustment_set(dag, ["t1", "t2"], "y")
    # The practical fallback still returns the parents union.
    assert parents_adjustment_set(dag, ["t1", "t2"], "y") == ("m",)


def test_minimal_backdoor_requires_valid_start(confounded):
    with pytest.raises(EstimationError):
        minimal_backdoor_set(confounded, ["t"], "y", [])


def test_minimal_keeps_necessary(confounded):
    assert minimal_backdoor_set(confounded, ["t"], "y", ["z"]) == ("z",)


def test_unknown_nodes_rejected(confounded):
    with pytest.raises(EstimationError):
        backdoor_adjustment_set(confounded, ["ghost"], "y")
    with pytest.raises(EstimationError):
        backdoor_adjustment_set(confounded, ["t"], "ghost")


def test_empty_treatments_rejected(confounded):
    with pytest.raises(EstimationError):
        backdoor_adjustment_set(confounded, [], "y")


def test_outcome_as_treatment_rejected(confounded):
    with pytest.raises(EstimationError):
        is_valid_backdoor_set(confounded, ["y"], "y", [])
