"""Property-based tests for the CATE estimators (randomized, seeded).

Two invariants the paper's estimates implicitly rely on:

- :class:`LinearAdjustmentEstimator` is *affine-equivariant* in the outcome:
  rescaling ``O -> a*O + b`` scales the effect (and its standard error) by
  ``a`` and leaves the t-statistic — hence the p-value and every
  significance decision — unchanged.  Rule mining on dollars and on
  kilodollars must keep the same treatments.
- :class:`StratifiedEstimator` enforces its ``max_dropped_fraction``
  contract: a *valid* estimate never comes from strata dropping more than
  that fraction of rows, and a drop beyond it is reported as invalid with a
  positivity reason.

Tables are randomized with seeded numpy generators (no new dependencies),
so every property is exercised across many draws yet fully reproducible.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.estimators import LinearAdjustmentEstimator, StratifiedEstimator
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng

SEEDS = tuple(range(10))


def random_confounded_table(
    rng: np.random.Generator, n: int = 300
) -> tuple[Table, np.ndarray]:
    """A random table where Z confounds treatment and outcome."""
    z1 = rng.choice(["a", "b", "c"], size=n, p=[0.5, 0.3, 0.2]).astype(object)
    z2 = rng.choice(["u", "v"], size=n).astype(object)
    p_treat = np.select([z1 == "a", z1 == "b"], [0.7, 0.4], default=0.2)
    treated = rng.random(n) < p_treat
    outcome = (
        10.0
        + 3.0 * (z1 == "a")
        - 2.0 * (z2 == "v")
        + rng.uniform(0.5, 4.0) * treated
        + rng.normal(0.0, 1.0, size=n)
    )
    table = Table({"Z1": z1, "Z2": z2, "Y": outcome})
    return table, treated


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("scale,shift", [(1000.0, 0.0), (-2.5, 7.0), (0.001, -3.0)])
def test_linear_estimator_affine_equivariance(seed, scale, shift):
    rng = ensure_rng(seed)
    table, treated = random_confounded_table(rng)
    estimator = LinearAdjustmentEstimator()

    base = estimator.estimate(table, treated, "Y", ("Z1", "Z2"))
    assert base.valid

    rescaled = table.with_column("Y", scale * table.values("Y") + shift)
    mapped = estimator.estimate(rescaled, treated, "Y", ("Z1", "Z2"))
    assert mapped.valid

    assert mapped.estimate == pytest.approx(scale * base.estimate, rel=1e-9)
    assert mapped.stderr == pytest.approx(abs(scale) * base.stderr, rel=1e-9)
    assert mapped.p_value == pytest.approx(base.p_value, rel=1e-9, abs=1e-12)
    # Significance decisions (what Step 2 prunes on) are scale-free.
    assert mapped.is_significant() == base.is_significant()
    assert (mapped.n, mapped.n_treated, mapped.n_control) == (
        base.n, base.n_treated, base.n_control,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_linear_estimator_shift_only_leaves_effect(seed):
    """A pure shift (a=1) changes nothing but the intercept."""
    rng = ensure_rng(1000 + seed)
    table, treated = random_confounded_table(rng)
    estimator = LinearAdjustmentEstimator()
    base = estimator.estimate(table, treated, "Y", ("Z1",))
    shifted_table = table.with_column("Y", table.values("Y") + 12345.0)
    shifted = estimator.estimate(shifted_table, treated, "Y", ("Z1",))
    assert shifted.estimate == pytest.approx(base.estimate, rel=1e-9)
    assert shifted.p_value == pytest.approx(base.p_value, rel=1e-9, abs=1e-12)


def sparse_overlap_table(
    rng: np.random.Generator, n: int = 240
) -> tuple[Table, np.ndarray, np.ndarray]:
    """A table where a random subset of strata has no treated rows.

    Returns the table, the treated mask, and the stratum label per row.
    """
    strata = rng.choice(["s0", "s1", "s2", "s3", "s4", "s5"], size=n).astype(object)
    # Treatment exists only inside a random subset of strata; the rest are
    # pure-control and must be dropped by exact stratification.
    n_overlapping = int(rng.integers(1, 6))
    overlapping = set(rng.choice(["s0", "s1", "s2", "s3", "s4", "s5"],
                                 size=n_overlapping, replace=False))
    in_overlap = np.isin(strata.astype(str), list(overlapping))
    treated = in_overlap & (rng.random(n) < 0.5)
    outcome = 1.0 + 0.5 * treated + rng.normal(0.0, 0.3, size=n)
    return Table({"Z": strata, "Y": outcome}), treated, strata


def expected_dropped_fraction(
    strata: np.ndarray, treated: np.ndarray
) -> float:
    """Independent computation of the row fraction in no-overlap strata."""
    dropped = 0
    for value in np.unique(strata):
        in_stratum = strata == value
        has_treated = bool((in_stratum & treated).any())
        has_control = bool((in_stratum & ~treated).any())
        if not (has_treated and has_control):
            dropped += int(in_stratum.sum())
    return dropped / len(strata)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_dropped", [0.1, 0.3, 0.5, 0.9])
def test_stratified_never_exceeds_drop_bound(seed, max_dropped):
    rng = ensure_rng(2000 + seed)
    table, treated, strata = sparse_overlap_table(rng)
    if not treated.any() or treated.all():
        pytest.skip("degenerate draw: no treated/control split")
    estimator = StratifiedEstimator(max_dropped_fraction=max_dropped)
    result = estimator.estimate(table, treated, "Y", ("Z",))

    dropped = expected_dropped_fraction(strata, treated)
    if result.valid:
        # The contract under test: a valid estimate never silently drops
        # more than max_dropped_fraction of the subpopulation.
        assert dropped <= max_dropped + 1e-12
    else:
        assert "positivity" in result.reason or "stratum" in result.reason
        if "too weak" in result.reason:
            assert dropped > max_dropped


@pytest.mark.parametrize("seed", SEEDS[:5])
def test_stratified_drop_bound_is_tight(seed):
    """The same draw flips valid<->invalid as the bound crosses the drop."""
    rng = ensure_rng(3000 + seed)
    table, treated, strata = sparse_overlap_table(rng)
    dropped = expected_dropped_fraction(strata, treated)
    if not 0.05 < dropped < 0.95:
        pytest.skip("draw lacks a usable dropped fraction")
    loose = StratifiedEstimator(max_dropped_fraction=min(dropped + 0.05, 1.0))
    tight = StratifiedEstimator(max_dropped_fraction=max(dropped - 0.05, 0.0))
    assert loose.estimate(table, treated, "Y", ("Z",)).valid
    assert not tight.estimate(table, treated, "Y", ("Z",)).valid
