"""Differential suite for frontier batching and the fused row-major kernel.

Contract (mirroring the PR-3 batch engine's):

- :func:`repro.causal.batch.estimate_level_rows` agrees with the reference
  :func:`~repro.causal.batch.estimate_cate_level` column by column to rtol
  1e-9, and bit-for-bit on every fallback path (positivity, degenerate
  designs, minimum-subgroup guards) — the scalar path defines those;
- the Gram factorization routes ill-conditioned designs to the QR build;
- FairCap with ``frontier_batching=True`` (the default) explores the same
  lattice and selects the same rules as the per-context PR-3 engine on
  every flag combination, and serial ≡ process(2) stays bit-identical with
  the frontier on;
- frontier results are independent of how contexts are chunked into
  rounds (composition independence — the property that makes the
  serial ≡ process contract hold at any worker count).
"""

from __future__ import annotations

import math
from dataclasses import replace

import numpy as np
import pytest

from tests.conftest import build_toy_dag, build_toy_table
from repro.causal.batch import (
    DesignFactorization,
    GramFactorization,
    build_rows_factorization,
    estimate_cate_level,
    estimate_level_rows,
)
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.core.intervention import frontier_mine_patterns, intervention_items
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.utility import RuleEvaluator
from repro.tabular.table import Table

RTOL = 1e-9


def assert_results_close(got, want, exact: bool = False) -> None:
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.valid == w.valid
        assert g.reason == w.reason
        assert g.adjustment == w.adjustment
        assert (g.n, g.n_treated, g.n_control) == (w.n, w.n_treated, w.n_control)
        for field in ("estimate", "stderr", "p_value"):
            a, b = getattr(g, field), getattr(w, field)
            if isinstance(a, float) and math.isnan(a):
                assert math.isnan(b), field
            elif exact:
                assert a == b, field
            else:
                assert a == pytest.approx(b, rel=RTOL, abs=1e-12), field


def random_masks(rng, n: int, m: int) -> np.ndarray:
    return rng.random((n, m)) < rng.uniform(0.15, 0.6, size=m)


# -- fused kernel vs reference kernel ------------------------------------------


def test_rows_kernel_matches_reference(rng):
    table = build_toy_table(n=701, seed=3)
    masks = random_masks(rng, 701, 18)
    masks[:, 0] = False  # positivity: empty treated
    masks[:, 1] = True  # positivity: empty control
    adjustments = [("City",), ("City", "Gender"), ()] * 6
    want = estimate_cate_level(table, masks, "Income", adjustments)
    got = estimate_level_rows(
        table, np.ascontiguousarray(masks.T), "Income", adjustments
    )
    assert_results_close(got, want)
    # The positivity rejections are the scalar spelling bit-for-bit.
    assert_results_close(got[:2], want[:2], exact=True)


def test_rows_kernel_shared_float_and_counts(rng):
    """Pre-converted float stacks and popcount counts change nothing."""
    table = build_toy_table(n=500, seed=5)
    masks = random_masks(rng, 500, 7)
    rows = np.ascontiguousarray(masks.T)
    adjustments = [("City",)] * 7
    plain = estimate_level_rows(table, rows, "Income", adjustments)
    shared = estimate_level_rows(
        table,
        rows,
        "Income",
        adjustments,
        float_rows=rows.astype(np.float64),
        counts=rows.sum(axis=1),
    )
    assert_results_close(shared, plain, exact=True)


def test_rows_kernel_degenerate_design_exact(rng):
    """Duplicated adjustment columns: scalar fallback, bit-identical."""
    n = 300
    z = rng.choice(["a", "b", "c"], size=n).astype(object)
    table = Table({"z1": z, "z2": z.copy(), "y": rng.normal(size=n)})
    factorization = build_rows_factorization(table, "y", ("z1", "z2"))
    assert isinstance(factorization, DesignFactorization)
    assert factorization.degenerate
    masks = random_masks(rng, n, 5)
    want = estimate_cate_level(table, masks, "y", [("z1", "z2")] * 5)
    got = estimate_level_rows(
        table, np.ascontiguousarray(masks.T), "y", [("z1", "z2")] * 5
    )
    assert_results_close(got, want, exact=True)


def test_gram_factorization_drops_absent_categories(rng):
    n = 400
    z = rng.choice(["a", "b", "c", "d"], size=n).astype(object)
    table = Table({"z": z, "y": rng.normal(size=n)})
    sub = table.filter(np.asarray(z != "c"))
    factorization = build_rows_factorization(sub, "y", ("z",))
    assert isinstance(factorization, GramFactorization)
    # Intercept + 2 surviving dummies: one-hot drops the first category
    # and the absent category's exactly-zero column deflates off the Gram
    # diagonal.
    assert factorization.rank == 3
    masks = random_masks(rng, sub.n_rows, 6)
    want = estimate_cate_level(sub, masks, "y", [("z",)] * 6)
    got = estimate_level_rows(
        sub, np.ascontiguousarray(masks.T), "y", [("z",)] * 6
    )
    assert_results_close(got, want)


def test_rows_kernel_empty_and_shape_checks(rng):
    table = build_toy_table(n=100, seed=1)
    assert estimate_level_rows(table, np.empty((0, 100), dtype=bool), "Income", []) == []
    from repro.utils.errors import EstimationError

    with pytest.raises(EstimationError):
        estimate_level_rows(table, np.zeros((2, 99), dtype=bool), "Income", [(), ()])
    with pytest.raises(EstimationError):
        estimate_level_rows(table, np.zeros((2, 100), dtype=bool), "Income", [()])


# -- frontier mining vs per-context mining -------------------------------------


def _mine(config, table, dag, protected):
    return FairCap(config).run(table, None, dag, protected)


def _assert_same_mining(got, want, exact: bool = False) -> None:
    assert got.nodes_evaluated == want.nodes_evaluated
    assert len(got.candidate_rules) == len(want.candidate_rules)
    for g, w in zip(got.candidate_rules, want.candidate_rules):
        assert g.grouping == w.grouping and g.intervention == w.intervention
        for field in ("utility", "utility_protected", "utility_non_protected"):
            a, b = getattr(g, field), getattr(w, field)
            if exact:
                assert a == b, field
            else:
                assert a == pytest.approx(b, rel=RTOL, abs=1e-12), field
    assert [(r.grouping, r.intervention) for r in got.ruleset.rules] == [
        (r.grouping, r.intervention) for r in want.ruleset.rules
    ]


@pytest.mark.parametrize(
    "flags",
    [
        {"bitset_masks": True, "frontier_batching": False},
        {"bitset_masks": False, "frontier_batching": True},
        {"bitset_masks": True, "frontier_batching": True},
    ],
)
def test_faircap_flag_matrix_matches_pr3_engine(flags):
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    reference = _mine(
        FairCapConfig(bitset_masks=False, frontier_batching=False),
        table,
        dag,
        protected,
    )
    got = _mine(FairCapConfig(**flags), table, dag, protected)
    # Bitset pruning alone re-runs the reference kernel on identical
    # stacks: bit-exact.  Frontier rounds change GEMM/reduction shapes:
    # working-precision agreement.
    _assert_same_mining(got, reference, exact=not flags["frontier_batching"])


def test_frontier_bitsets_on_off_bit_identical():
    """Popcount pruning narrows stacks, but the row-major kernel extracts
    every adjustment group C-contiguously, so surviving columns' bits do
    not depend on how many dead columns were removed."""
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    on = _mine(FairCapConfig(bitset_masks=True), table, dag, protected)
    off = _mine(FairCapConfig(bitset_masks=False), table, dag, protected)
    _assert_same_mining(on, off, exact=True)


def test_frontier_matches_scalar_reference():
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    scalar = _mine(FairCapConfig(batch_estimation=False), table, dag, protected)
    frontier = _mine(FairCapConfig(), table, dag, protected)
    _assert_same_mining(frontier, scalar)


def test_frontier_composition_independence():
    """Chunking contexts into separate frontiers must not change any bit."""
    table = build_toy_table(n=700, seed=17)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    config = FairCapConfig()
    evaluator = RuleEvaluator(
        table,
        "Income",
        dag,
        protected,
        min_subgroup_size=config.min_subgroup_size,
        cache=config.make_cache(),
    )
    items = intervention_items(table, table.schema, dag, config)
    groupings = [
        Pattern.of(City="Metro"),
        Pattern.of(City="Rural"),
        Pattern.of(Gender="Female"),
        Pattern.of(Gender="Male"),
    ]
    together = frontier_mine_patterns(evaluator, groupings, items, config)
    solo: list = []
    for grouping in groupings:
        fresh = RuleEvaluator(
            table,
            "Income",
            dag,
            protected,
            min_subgroup_size=config.min_subgroup_size,
            cache=config.make_cache(),
        )
        solo.extend(frontier_mine_patterns(fresh, [grouping], items, config))
    for a, b in zip(together, solo):
        assert a.nodes_evaluated == b.nodes_evaluated
        assert len(a.candidates) == len(b.candidates)
        for x, y in zip(a.candidates, b.candidates):
            assert x.utility == y.utility
            assert x.utility_protected == y.utility_protected
            assert x.utility_non_protected == y.utility_non_protected
        assert (a.best is None) == (b.best is None)


def test_frontier_window_invariance(monkeypatch):
    """Processing contexts in small memory windows must not change any bit."""
    import repro.core.intervention as intervention_mod

    table = build_toy_table(n=700, seed=17)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    wide = _mine(FairCapConfig(), table, dag, protected)
    monkeypatch.setattr(intervention_mod, "FRONTIER_WINDOW", 1)
    narrow = _mine(FairCapConfig(), table, dag, protected)
    _assert_same_mining(narrow, wide, exact=True)
    assert narrow.ruleset.rules == wide.ruleset.rules


def test_frontier_serial_equals_process():
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    serial = _mine(FairCapConfig(), table, dag, protected)
    process = _mine(
        FairCapConfig(executor="process", n_workers=2), table, dag, protected
    )
    _assert_same_mining(process, serial, exact=True)
    assert process.ruleset.rules == serial.ruleset.rules


def test_frontier_without_cache_matches_cached():
    table = build_toy_table(n=800, seed=23)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    cached = _mine(FairCapConfig(), table, dag, protected)
    uncached = _mine(FairCapConfig(cache_size=0), table, dag, protected)
    _assert_same_mining(uncached, cached, exact=True)


def test_stratified_estimator_ignores_frontier_flags():
    table = build_toy_table(n=900, seed=11)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    config = FairCapConfig(estimator="stratified")
    on = _mine(config, table, dag, protected)
    off = _mine(
        replace(config, frontier_batching=False, bitset_masks=False),
        table,
        dag,
        protected,
    )
    assert on.ruleset.rules == off.ruleset.rules
