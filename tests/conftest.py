"""Shared fixtures for the FairCap reproduction test suite.

Randomness policy
-----------------
Tests never call ``np.random.*`` directly.  Deterministic streams come from
one of two spellings:

- the ``rng`` fixture — a per-test generator derived from the session-scoped
  ``rng_root`` seed sequence (fixed seed) and the test's node id, so every
  test gets its own reproducible stream *independent of execution order*;
- :func:`repro.utils.rng.ensure_rng` with an explicit seed — for tests whose
  assertions are tuned to a specific stream (ground-truth recovery checks
  and module-level data builders).

Both are order-independent: running a single test, a file, or the whole
suite yields identical draws.
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest

from repro.causal.dag import CausalDAG
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.tabular.table import Table
from repro.utils.rng import DEFAULT_SEED, ensure_rng


@pytest.fixture(scope="session")
def rng_root() -> np.random.SeedSequence:
    """Session-scoped root entropy for every test's random stream."""
    return np.random.SeedSequence(DEFAULT_SEED)


@pytest.fixture
def rng(request, rng_root: np.random.SeedSequence) -> np.random.Generator:
    """A per-test generator: fixed root seed + the test's node id.

    Deriving the child seed from the node id (rather than drawing from a
    shared generator) removes order dependence: a test's stream is the same
    whether the suite runs fully, filtered, or in parallel.
    """
    digest = zlib.crc32(request.node.nodeid.encode())
    return np.random.default_rng(
        np.random.SeedSequence(entropy=rng_root.entropy, spawn_key=(digest,))
    )


def build_toy_table(n: int = 400, seed: int = 11) -> Table:
    """A small confounded dataset with a known treatment effect.

    Structure: ``City -> Training -> Income`` with ``City -> Income``
    (City confounds Training).  The training effect is +10,000 for men and
    +5,000 for women (women are the natural protected group).
    """
    rng = ensure_rng(seed)
    gender = rng.choice(["Male", "Female"], size=n, p=[0.6, 0.4])
    city = rng.choice(["Metro", "Rural"], size=n, p=[0.5, 0.5])
    p_training = np.where(city == "Metro", 0.6, 0.3)
    training = rng.random(n) < p_training
    effect = np.where(gender == "Female", 5_000.0, 10_000.0)
    income = (
        30_000.0
        + 8_000.0 * (city == "Metro")
        + effect * training
        + rng.normal(0.0, 1_500.0, size=n)
    )
    schema = Schema(
        [
            AttributeSpec("Gender", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("City", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("Training", AttributeKind.CATEGORICAL, AttributeRole.MUTABLE),
            AttributeSpec("Income", AttributeKind.CONTINUOUS, AttributeRole.OUTCOME),
        ]
    )
    return Table(
        {
            "Gender": gender.astype(object),
            "City": city.astype(object),
            "Training": np.where(training, "Yes", "No").astype(object),
            "Income": income,
        },
        schema=schema,
    )


def build_toy_dag() -> CausalDAG:
    """The DAG matching :func:`build_toy_table`."""
    return CausalDAG(
        edges=[
            ("City", "Training"),
            ("City", "Income"),
            ("Training", "Income"),
            ("Gender", "Income"),
        ]
    )


@pytest.fixture(scope="session")
def toy_table() -> Table:
    return build_toy_table()


@pytest.fixture(scope="session")
def toy_dag() -> CausalDAG:
    return build_toy_dag()


@pytest.fixture(scope="session")
def toy_protected() -> ProtectedGroup:
    return ProtectedGroup(Pattern.of(Gender="Female"), name="women")


def make_rule(
    grouping: Pattern,
    intervention: Pattern,
    utility: float,
    utility_protected: float,
    utility_non_protected: float,
    coverage: int = 100,
    protected_coverage: int = 40,
) -> PrescriptionRule:
    """Build an evaluated rule directly (no estimation) for selector tests."""
    return PrescriptionRule(
        grouping=grouping,
        intervention=intervention,
        utility=utility,
        utility_protected=utility_protected,
        utility_non_protected=utility_non_protected,
        coverage_count=coverage,
        protected_coverage_count=protected_coverage,
    )


@pytest.fixture(scope="session")
def small_so_bundle():
    """A small Stack Overflow bundle shared across integration tests."""
    from repro.datasets import load_stackoverflow

    return load_stackoverflow(n=1_500, rng=5)


@pytest.fixture(scope="session")
def small_german_bundle():
    """A small German bundle shared across integration tests."""
    from repro.datasets import load_german

    return load_german(n=1_500, rng=5)
