"""Tests for RuleEvaluator: utilities recover the planted effects."""

import pytest

from repro.mining.patterns import Pattern
from repro.rules.utility import RuleEvaluator
from repro.utils.errors import EstimationError

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def evaluator():
    from repro.mining.patterns import Pattern
    from repro.rules.protected import ProtectedGroup

    table = build_toy_table(n=3000, seed=2)
    return RuleEvaluator(
        table,
        "Income",
        build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female"), name="women"),
    )


def test_overall_effect_recovered(evaluator):
    rule = evaluator.evaluate(Pattern.empty(), Pattern.of(Training="Yes"))
    # Population effect = 0.6 * 10k + 0.4 * 5k = 8k.
    assert rule.utility == pytest.approx(8_000.0, rel=0.1)


def test_subgroup_utilities_split(evaluator):
    rule = evaluator.evaluate(Pattern.empty(), Pattern.of(Training="Yes"))
    assert rule.utility_protected == pytest.approx(5_000.0, rel=0.15)
    assert rule.utility_non_protected == pytest.approx(10_000.0, rel=0.15)


def test_grouping_restricts_population(evaluator):
    rule = evaluator.evaluate(
        Pattern.of(Gender="Female"), Pattern.of(Training="Yes")
    )
    assert rule.utility == pytest.approx(5_000.0, rel=0.15)
    # All covered tuples are protected.
    assert rule.protected_coverage_count == rule.coverage_count
    # Non-protected subgroup empty -> utility 0 by convention.
    assert rule.utility_non_protected == 0.0


def test_empty_coverage_utility_zero(evaluator):
    rule = evaluator.evaluate(
        Pattern.of(Gender="Nonexistent"), Pattern.of(Training="Yes")
    )
    assert rule.coverage_count == 0
    assert rule.utility == 0.0
    assert rule.utility_protected == 0.0


def test_adjustment_from_dag(evaluator):
    # Training's parent in the DAG is City.
    assert evaluator.adjustment_for(("Training",)) == ("City",)


def test_adjustment_cached(evaluator):
    first = evaluator.adjustment_for(("Training",))
    second = evaluator.adjustment_for(("Training",))
    assert first is second


def test_small_subgroup_zeroed():
    from repro.mining.patterns import Pattern
    from repro.rules.protected import ProtectedGroup

    table = build_toy_table(n=30, seed=3)
    evaluator = RuleEvaluator(
        table,
        "Income",
        build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female")),
        min_subgroup_size=100,
    )
    rule = evaluator.evaluate(Pattern.empty(), Pattern.of(Training="Yes"))
    assert rule.utility == 0.0


def test_empty_intervention_rejected(evaluator):
    with pytest.raises(EstimationError):
        evaluator.evaluate(Pattern.empty(), Pattern.empty())


def test_context_reuse_matches_direct(evaluator):
    context = evaluator.context(Pattern.of(City="Metro"))
    via_context = context.evaluate(Pattern.of(Training="Yes"))
    direct = evaluator.evaluate(Pattern.of(City="Metro"), Pattern.of(Training="Yes"))
    assert via_context == direct


def test_constant_adjustment_dropped():
    """Grouping on the confounder must not break the design matrix."""
    from repro.mining.patterns import Pattern
    from repro.rules.protected import ProtectedGroup

    table = build_toy_table(n=3000, seed=4)
    evaluator = RuleEvaluator(
        table, "Income", build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female")),
    )
    # City is the adjustment attribute AND fixed by the grouping pattern.
    rule = evaluator.evaluate(Pattern.of(City="Metro"), Pattern.of(Training="Yes"))
    assert rule.utility == pytest.approx(8_000.0, rel=0.15)
