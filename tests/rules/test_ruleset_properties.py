"""Property-based validation of the expected-utility metrics (Eqs. 5-7).

A naive per-tuple reference implementation of Def. 4.5 is compared against
the vectorised :class:`RulesetEvaluator` on randomly generated tables and
rule pools.  Any divergence between the two is a correctness bug in the
fast path used by the greedy selector.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RulesetEvaluator
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng


def reference_metrics(table, rules, protected_mask, indices):
    """Literal transcription of Eqs. 5-7 over individual tuples."""
    n = table.n_rows
    masks = [rules[i].grouping.mask(table) for i in indices]
    chosen = [rules[i] for i in indices]

    total_overall = 0.0
    protected_values = []
    non_protected_values = []
    covered = 0
    for t in range(n):
        applicable = [r for r, m in zip(chosen, masks) if m[t]]
        if not applicable:
            continue
        covered += 1
        total_overall += max(r.utility for r in applicable)
        if protected_mask[t]:
            protected_values.append(
                min(r.utility_protected for r in applicable)
            )
        else:
            non_protected_values.append(
                max(r.utility_non_protected for r in applicable)
            )
    coverage = covered / n if n else 0.0
    n_protected = int(protected_mask.sum())
    protected_coverage = (
        len(protected_values) / n_protected if n_protected else 0.0
    )
    return {
        "coverage": coverage,
        "protected_coverage": protected_coverage,
        "expected_utility": total_overall / n if n else 0.0,
        "expected_utility_protected": (
            float(np.mean(protected_values)) if protected_values else 0.0
        ),
        "expected_utility_non_protected": (
            float(np.mean(non_protected_values)) if non_protected_values else 0.0
        ),
    }


@st.composite
def table_and_rules(draw):
    n = draw(st.integers(5, 40))
    n_groups = draw(st.integers(1, 4))
    rng_seed = draw(st.integers(0, 10_000))
    rng = ensure_rng(rng_seed)
    groups = rng.integers(0, n_groups, n)
    protected = rng.random(n) < 0.35
    table = Table(
        {
            "g": [f"g{v}" for v in groups],
            "p": np.where(protected, "yes", "no").astype(object),
        }
    )
    n_rules = draw(st.integers(1, 5))
    rules = []
    for i in range(n_rules):
        target = int(rng.integers(0, n_groups + 1))
        grouping = (
            Pattern.empty() if target == n_groups else Pattern.of(g=f"g{target}")
        )
        mask = grouping.mask(table)
        rules.append(
            PrescriptionRule(
                grouping=grouping,
                intervention=Pattern.of(m=f"x{i}"),
                utility=float(rng.normal(10, 5)),
                utility_protected=float(rng.normal(5, 5)),
                utility_non_protected=float(rng.normal(12, 5)),
                coverage_count=int(mask.sum()),
                protected_coverage_count=int((mask & protected).sum()),
            )
        )
    subset = sorted(
        set(draw(st.lists(st.integers(0, n_rules - 1), max_size=n_rules)))
    )
    return table, rules, protected, subset


@settings(max_examples=60, deadline=None)
@given(table_and_rules())
def test_fast_metrics_match_reference(case):
    table, rules, protected_mask, subset = case
    protected = ProtectedGroup(Pattern.of(p="yes"))
    # Guard: the generated protected mask must match the pattern mask.
    assert np.array_equal(protected.mask(table), protected_mask)

    evaluator = RulesetEvaluator(table, rules, protected)
    fast = evaluator.metrics(subset)
    slow = reference_metrics(table, rules, protected_mask, subset)

    assert fast.coverage == pytest.approx(slow["coverage"])
    assert fast.protected_coverage == pytest.approx(slow["protected_coverage"])
    assert fast.expected_utility == pytest.approx(slow["expected_utility"])
    assert fast.expected_utility_protected == pytest.approx(
        slow["expected_utility_protected"]
    )
    assert fast.expected_utility_non_protected == pytest.approx(
        slow["expected_utility_non_protected"]
    )


def _assert_metrics_close(got, want) -> None:
    """Field-wise equality up to summation-order rounding (rel 1e-12)."""
    assert got.n_rules == want.n_rules
    for field in (
        "coverage",
        "protected_coverage",
        "expected_utility",
        "expected_utility_protected",
        "expected_utility_non_protected",
    ):
        assert getattr(got, field) == pytest.approx(
            getattr(want, field), rel=1e-12, abs=1e-12
        ), field


@settings(max_examples=40, deadline=None)
@given(table_and_rules())
def test_incremental_state_matches_batch(case):
    """The greedy's incremental previews must equal batch metrics.

    Previews accumulate metric deltas over the candidate's covered slice
    (no full-length recompute), so sums may differ from the batch spelling
    by summation order only — hence the 1e-12 tolerance.  Committed states
    are recomputed from the full arrays and must match exactly.
    """
    from repro.core.greedy import _IncrementalState

    table, rules, __, subset = case
    protected = ProtectedGroup(Pattern.of(p="yes"))
    evaluator = RulesetEvaluator(table, rules, protected)
    state = _IncrementalState(evaluator)
    committed: list[int] = []
    for index in subset:
        preview = state.preview(index)
        _assert_metrics_close(preview, evaluator.metrics(committed + [index]))
        state.commit(index)
        committed.append(index)
        assert state.metrics() == evaluator.metrics(committed)
