"""Hashability and equality of the rule value objects.

The serving index dedupes predicates across rules, the engine's LRU cache
keys on attribute profiles, and the evaluator's mask cache keys on grouping
patterns — all of which require Predicate/Pattern/PrescriptionRule/RuleSet
to be hashable with value semantics.
"""

from __future__ import annotations

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetEvaluator

from tests.conftest import make_rule


def test_predicate_value_semantics():
    a = Predicate("Age", Operator.GE, 30.0)
    b = Predicate("Age", Operator.GE, 30.0)
    assert a == b and hash(a) == hash(b)
    assert a != Predicate("Age", Operator.GT, 30.0)
    assert len({a, b}) == 1


def test_pattern_order_insensitive_identity():
    p1 = Predicate.eq("Country", "US")
    p2 = Predicate("Age", Operator.LT, 40.0)
    assert Pattern([p1, p2]) == Pattern([p2, p1])
    assert hash(Pattern([p1, p2])) == hash(Pattern([p2, p1]))


def test_rules_dedupe_in_sets():
    rule = make_rule(Pattern.of(City="Metro"), Pattern.of(Training="Yes"), 3.0, 1.0, 4.0)
    twin = make_rule(Pattern.of(City="Metro"), Pattern.of(Training="Yes"), 3.0, 1.0, 4.0)
    other = make_rule(Pattern.of(City="Rural"), Pattern.of(Training="Yes"), 3.0, 1.0, 4.0)
    assert rule == twin and hash(rule) == hash(twin)
    assert len({rule, twin, other}) == 2


def test_rule_equality_ignores_estimation_diagnostics():
    from repro.causal.estimators import CateResult

    diagnostics = CateResult(3.0, 0.5, 0.01, 100, 50, 50)
    with_diag = PrescriptionRule(
        Pattern.of(City="Metro"), Pattern.of(Training="Yes"),
        3.0, 1.0, 4.0, 100, 40, estimate=diagnostics,
    )
    without = PrescriptionRule(
        Pattern.of(City="Metro"), Pattern.of(Training="Yes"),
        3.0, 1.0, 4.0, 100, 40,
    )
    assert with_diag == without
    assert hash(with_diag) == hash(without)


def test_ruleset_value_semantics():
    r1 = make_rule(Pattern.of(City="Metro"), Pattern.of(Training="Yes"), 3.0, 1.0, 4.0)
    r2 = make_rule(Pattern.of(City="Rural"), Pattern.of(Training="Yes"), 2.0, 1.0, 3.0)
    assert RuleSet([r1, r2]) == RuleSet([r1, r2])
    assert hash(RuleSet([r1, r2])) == hash(RuleSet([r1, r2]))
    assert RuleSet([r1, r2]) != RuleSet([r2, r1])  # rulesets are ordered
    assert RuleSet() == RuleSet()


def test_protected_group_value_semantics():
    a = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    b = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    assert a == b and hash(a) == hash(b)
    assert a != ProtectedGroup(Pattern.of(Gender="Female"), name="other-name")


def test_evaluator_mask_cache_shared_across_evaluators(toy_table, toy_protected):
    rules = [
        make_rule(Pattern.of(City="Metro"), Pattern.of(Training="Yes"), 3.0, 1.0, 4.0),
        make_rule(Pattern.of(City="Rural"), Pattern.of(Training="Yes"), 2.0, 1.0, 3.0),
    ]
    first = RulesetEvaluator(toy_table, rules, toy_protected)
    second = RulesetEvaluator(toy_table, rules, toy_protected)
    for i in range(len(rules)):
        assert first.mask_of(i) is second.mask_of(i)  # recomputation skipped
        assert not first.mask_of(i).flags.writeable
    assert set(toy_table.mask_cache()) >= {r.grouping for r in rules}


def test_mask_cache_is_lru_bounded():
    from tests.conftest import build_toy_table

    table = build_toy_table(n=50)
    cache = table.mask_cache(max_entries=2)
    for city in ("Metro", "Rural"):
        cache[Pattern.of(City=city)] = Pattern.of(City=city).mask(table)
    cache.get(Pattern.of(City="Metro"))  # refresh: Rural is now LRU
    cache[Pattern.of(Gender="Female")] = Pattern.of(Gender="Female").mask(table)
    assert len(cache) == 2
    assert Pattern.of(City="Rural") not in cache
    assert Pattern.of(City="Metro") in cache


def test_evaluator_mask_cache_is_per_table(toy_table, toy_protected):
    rules = [
        make_rule(Pattern.of(City="Metro"), Pattern.of(Training="Yes"), 3.0, 1.0, 4.0),
    ]
    shrunk = toy_table.filter(toy_table.column("City").eq("Metro"))
    a = RulesetEvaluator(toy_table, rules, toy_protected)
    b = RulesetEvaluator(shrunk, rules, toy_protected)
    assert a.mask_of(0) is not b.mask_of(0)
    assert a.mask_of(0).shape != b.mask_of(0).shape
