"""Tests for RuleSet / RulesetEvaluator (Def. 4.5, Eqs. 5-7)."""

import numpy as np
import pytest

from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RuleSet, RulesetEvaluator
from repro.tabular.table import Table
from repro.utils.errors import PatternError

from tests.conftest import make_rule


@pytest.fixture
def table():
    # 10 rows: 4 in group A (2 protected), 4 in group B (2 protected),
    # 2 uncovered (1 protected).
    return Table(
        {
            "g": ["A"] * 4 + ["B"] * 4 + ["C"] * 2,
            "p": ["yes", "yes", "no", "no"] * 2 + ["yes", "no"],
        }
    )


@pytest.fixture
def protected():
    return ProtectedGroup(Pattern.of(p="yes"))


@pytest.fixture
def rules():
    rule_a = make_rule(Pattern.of(g="A"), Pattern.of(m="x"),
                       utility=10.0, utility_protected=4.0,
                       utility_non_protected=12.0, coverage=4,
                       protected_coverage=2)
    rule_b = make_rule(Pattern.of(g="B"), Pattern.of(m="y"),
                       utility=20.0, utility_protected=8.0,
                       utility_non_protected=22.0, coverage=4,
                       protected_coverage=2)
    # Overlapping rule covering both A and B via no predicate on g.
    rule_all = make_rule(Pattern.empty(), Pattern.of(m="z"),
                         utility=5.0, utility_protected=5.0,
                         utility_non_protected=5.0, coverage=10,
                         protected_coverage=5)
    return [rule_a, rule_b, rule_all]


def test_ruleset_container(rules):
    ruleset = RuleSet(rules[:2])
    assert len(ruleset) == 2
    assert ruleset.size == 2
    assert ruleset[0] is rules[0]
    extended = ruleset.with_rule(rules[2])
    assert extended.size == 3
    assert ruleset.size == 2  # immutability


def test_empty_metrics(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    metrics = evaluator.metrics([])
    assert metrics.n_rules == 0
    assert metrics.coverage == 0.0
    assert metrics.expected_utility == 0.0


def test_single_rule_metrics(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    metrics = evaluator.metrics([0])  # rule A: 4 of 10 rows
    assert metrics.coverage == pytest.approx(0.4)
    assert metrics.protected_coverage == pytest.approx(2 / 5)
    # Eq. 5: sum over covered of max utility / n = 4*10/10.
    assert metrics.expected_utility == pytest.approx(4.0)
    # Eq. 6: covered protected get min utility_p = 4; averaged over the
    # 2 covered protected.
    assert metrics.expected_utility_protected == pytest.approx(4.0)
    # Eq. 7: covered non-protected get max utility_np = 12.
    assert metrics.expected_utility_non_protected == pytest.approx(12.0)
    assert metrics.unfairness == pytest.approx(8.0)


def test_overlap_max_for_overall(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    metrics = evaluator.metrics([0, 2])  # A rows get max(10,5)=10; C rows 5
    expected = (4 * 10.0 + 6 * 5.0) / 10
    assert metrics.expected_utility == pytest.approx(expected)


def test_overlap_min_for_protected(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    metrics = evaluator.metrics([0, 2])
    # Protected in A: min(4, 5) = 4 (2 rows); protected in B or C covered
    # only by rule_all: 5 (3 rows).
    assert metrics.expected_utility_protected == pytest.approx(
        (2 * 4.0 + 3 * 5.0) / 5
    )


def test_full_coverage(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    metrics = evaluator.metrics([2])
    assert metrics.coverage == 1.0
    assert metrics.protected_coverage == 1.0
    assert metrics.unfairness == pytest.approx(0.0)


def test_unfairness_signed(table, rules, protected):
    favor_protected = make_rule(
        Pattern.of(g="A"), Pattern.of(m="x"),
        utility=10.0, utility_protected=20.0, utility_non_protected=5.0,
        coverage=4, protected_coverage=2,
    )
    evaluator = RulesetEvaluator(table, [favor_protected], protected)
    assert evaluator.metrics([0]).unfairness < 0


def test_subset_materialisation(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    ruleset = evaluator.subset([1])
    assert ruleset.size == 1
    assert ruleset[0] is rules[1]


def test_invalid_index(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    with pytest.raises(PatternError):
        evaluator.metrics([99])


def test_objective(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    value = evaluator.objective([0], lambda_size=1.0, lambda_utility=2.0)
    metrics = evaluator.metrics([0])
    assert value == pytest.approx((3 - 1) + 2.0 * metrics.expected_utility)


def test_metrics_for_rules_matches_subset(table, rules, protected):
    evaluator = RulesetEvaluator(table, rules, protected)
    direct = evaluator.metrics([0, 1])
    via_rules = evaluator.metrics_for_rules([rules[0], rules[1]])
    assert direct == via_rules


def test_incremental_matches_batch(table, rules, protected):
    """The greedy's incremental state must agree with batch metrics."""
    from repro.core.greedy import _IncrementalState

    evaluator = RulesetEvaluator(table, rules, protected)
    state = _IncrementalState(evaluator)
    assert state.preview(0) == evaluator.metrics([0])
    state.commit(0)
    assert state.metrics() == evaluator.metrics([0])
    assert state.preview(2) == evaluator.metrics([0, 2])
    state.commit(2)
    assert state.metrics() == evaluator.metrics([0, 2])
