"""Tests for PrescriptionRule (Defs. 4.3-4.4)."""

import pytest

from repro.mining.patterns import Pattern
from repro.rules.rule import PrescriptionRule
from repro.utils.errors import PatternError

from tests.conftest import make_rule


def test_basic_construction():
    rule = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 10.0, 5.0, 12.0)
    assert rule.utility == 10.0
    assert rule.utility_gap == pytest.approx(7.0)
    assert rule.non_protected_coverage_count == 60


def test_empty_grouping_allowed():
    rule = make_rule(Pattern.empty(), Pattern.of(m="x"), 1.0, 1.0, 1.0)
    assert rule.grouping.is_empty()


def test_empty_intervention_rejected():
    with pytest.raises(PatternError):
        make_rule(Pattern.of(g="a"), Pattern.empty(), 1.0, 1.0, 1.0)


def test_negative_coverage_rejected():
    with pytest.raises(PatternError):
        PrescriptionRule(
            grouping=Pattern.of(g="a"),
            intervention=Pattern.of(m="x"),
            utility=1.0,
            utility_protected=1.0,
            utility_non_protected=1.0,
            coverage_count=-1,
            protected_coverage_count=0,
        )


def test_protected_exceeding_total_rejected():
    with pytest.raises(PatternError):
        PrescriptionRule(
            grouping=Pattern.of(g="a"),
            intervention=Pattern.of(m="x"),
            utility=1.0,
            utility_protected=1.0,
            utility_non_protected=1.0,
            coverage_count=10,
            protected_coverage_count=11,
        )


def test_check_role_split():
    rule = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1.0, 1.0, 1.0)
    rule.check_role_split(immutable=("g",), mutable=("m",))
    with pytest.raises(PatternError):
        rule.check_role_split(immutable=("other",), mutable=("m",))
    with pytest.raises(PatternError):
        rule.check_role_split(immutable=("g",), mutable=("other",))


def test_str_contains_patterns():
    rule = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1.0, 1.0, 1.0)
    text = str(rule)
    assert "g = a" in text and "m = x" in text


def test_equality_ignores_diagnostics():
    from repro.causal.estimators import CateResult

    base = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 1.0, 1.0, 1.0)
    with_diag = PrescriptionRule(
        grouping=Pattern.of(g="a"),
        intervention=Pattern.of(m="x"),
        utility=1.0,
        utility_protected=1.0,
        utility_non_protected=1.0,
        coverage_count=100,
        protected_coverage_count=40,
        estimate=CateResult(1.0, 0.1, 0.01, 100, 50, 50),
    )
    assert base == with_diag
