"""Tests for the natural-language rule templating."""

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.templates import RuleTemplates, describe_pattern, describe_rule

from tests.conftest import make_rule


def test_describe_empty_pattern():
    assert describe_pattern(Pattern.empty()) == "everyone"


def test_describe_with_template():
    templates = {"Age": "individuals aged {value}"}
    assert describe_pattern(Pattern.of(Age="25-34"), templates) == (
        "individuals aged 25-34"
    )


def test_describe_fallback_without_template():
    assert describe_pattern(Pattern.of(Role="QA")) == "Role = QA"


def test_describe_non_equality_uses_operator_words():
    pattern = Pattern([Predicate("Salary", Operator.GE, 100)])
    assert describe_pattern(pattern, {"Salary": "earning {value}"}) == (
        "Salary at least 100"
    )


def test_describe_joins_with_and():
    text = describe_pattern(Pattern.of(a=1, b=2))
    assert " and " in text


def test_describe_rule_full_sentence():
    rule = make_rule(
        Pattern.of(Age="25-34"), Pattern.of(Role="Back-end developer"),
        utility=30_000.0, utility_protected=10_292.0,
        utility_non_protected=22_586.0,
    )
    templates = RuleTemplates(
        grouping={"Age": "individuals aged {value}"},
        intervention={"Role": "work as a {value}"},
    )
    text = describe_rule(rule, templates)
    assert text == (
        "For individuals aged 25-34, work as a Back-end developer "
        "(exp utility protected: 10,292, exp utility non-protected: 22,586)."
    )


def test_describe_rule_custom_format():
    rule = make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 0.3, 0.26, 0.35)
    text = describe_rule(rule, utility_format="{:.2f}")
    assert "0.26" in text and "0.35" in text
