"""Tests for ProtectedGroup."""

import pytest

from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.tabular.table import Table
from repro.utils.errors import PatternError


@pytest.fixture
def table():
    return Table({"eth": ["White", "Black", "White", "Asian"]})


def test_mask_and_size(table):
    group = ProtectedGroup(Pattern.of(eth="Black"))
    assert group.size(table) == 1
    assert group.fraction(table) == 0.25


def test_negation_style_pattern(table):
    from repro.mining.patterns import Operator, Predicate

    group = ProtectedGroup(Pattern([Predicate("eth", Operator.NE, "White")]))
    assert group.size(table) == 2


def test_empty_pattern_rejected():
    with pytest.raises(PatternError):
        ProtectedGroup(Pattern.empty())


def test_empty_table_fraction():
    import numpy as np

    table = Table({"eth": np.array([], dtype=object)})
    group = ProtectedGroup(Pattern.of(eth="Black"))
    assert group.fraction(table) == 0.0


def test_repr_contains_name():
    group = ProtectedGroup(Pattern.of(eth="Black"), name="minority")
    assert "minority" in repr(group)
