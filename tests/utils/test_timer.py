"""Tests for repro.utils.timer."""

import time

from repro.utils.timer import StepTimer, Timer


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_initial_zero():
    assert Timer().elapsed == 0.0


def test_step_timer_records_steps():
    timer = StepTimer()
    with timer.step("a"):
        time.sleep(0.005)
    with timer.step("b"):
        pass
    assert set(timer.steps) == {"a", "b"}
    assert timer.steps["a"] >= 0.004


def test_step_timer_accumulates_same_step():
    timer = StepTimer()
    for _ in range(3):
        with timer.step("x"):
            time.sleep(0.002)
    assert timer.steps["x"] >= 0.005


def test_step_timer_total_and_dict():
    timer = StepTimer()
    with timer.step("a"):
        pass
    with timer.step("b"):
        pass
    assert timer.total == sum(timer.as_dict().values())
    # as_dict returns a copy
    timer.as_dict()["a"] = 999.0
    assert timer.steps["a"] != 999.0


def test_step_timer_records_on_exception():
    timer = StepTimer()
    try:
        with timer.step("err"):
            raise ValueError("boom")
    except ValueError:
        pass
    assert "err" in timer.steps


def test_step_timer_repr():
    timer = StepTimer()
    with timer.step("phase"):
        pass
    assert "phase" in repr(timer)


def test_step_timer_nested_same_name_counts_once():
    """Re-entrancy: a helper timing "x" inside an outer "x" block must not
    double-count the shared wall-clock span."""
    timer = StepTimer()
    with timer.step("x"):
        with timer.step("x"):
            time.sleep(0.005)
    assert 0.004 <= timer.steps["x"] < 0.1
    # Sequential entries still accumulate after the nested exit.
    with timer.step("x"):
        time.sleep(0.002)
    assert timer.steps["x"] >= 0.006


def test_step_timer_nested_distinct_names_both_recorded():
    timer = StepTimer()
    with timer.step("outer"):
        with timer.step("inner"):
            time.sleep(0.002)
    assert set(timer.steps) == {"outer", "inner"}
    assert timer.steps["outer"] >= timer.steps["inner"]


def test_step_timer_opens_telemetry_spans():
    from repro.obs.runtime import telemetry_session

    with telemetry_session(enabled=True) as telemetry:
        timer = StepTimer()
        with timer.step("a"):
            with timer.step("a"):  # nested entry must not open a second span
                pass
    names = [span["name"] for span in telemetry.tracer.to_dicts()]
    assert names == ["step.a"]


def test_step_timer_records_nothing_on_tracer_when_disabled():
    from repro.obs.runtime import current

    timer = StepTimer()
    with timer.step("a"):
        pass
    assert current().tracer.to_dicts() == []
