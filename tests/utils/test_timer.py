"""Tests for repro.utils.timer."""

import time

from repro.utils.timer import StepTimer, Timer


def test_timer_measures_elapsed():
    with Timer() as t:
        time.sleep(0.01)
    assert t.elapsed >= 0.009


def test_timer_initial_zero():
    assert Timer().elapsed == 0.0


def test_step_timer_records_steps():
    timer = StepTimer()
    with timer.step("a"):
        time.sleep(0.005)
    with timer.step("b"):
        pass
    assert set(timer.steps) == {"a", "b"}
    assert timer.steps["a"] >= 0.004


def test_step_timer_accumulates_same_step():
    timer = StepTimer()
    for _ in range(3):
        with timer.step("x"):
            time.sleep(0.002)
    assert timer.steps["x"] >= 0.005


def test_step_timer_total_and_dict():
    timer = StepTimer()
    with timer.step("a"):
        pass
    with timer.step("b"):
        pass
    assert timer.total == sum(timer.as_dict().values())
    # as_dict returns a copy
    timer.as_dict()["a"] = 999.0
    assert timer.steps["a"] != 999.0


def test_step_timer_records_on_exception():
    timer = StepTimer()
    try:
        with timer.step("err"):
            raise ValueError("boom")
    except ValueError:
        pass
    assert "err" in timer.steps


def test_step_timer_repr():
    timer = StepTimer()
    with timer.step("phase"):
        pass
    assert "phase" in repr(timer)
