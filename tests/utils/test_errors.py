"""Tests for the exception hierarchy."""

import pytest

from repro.utils.errors import (
    ConfigError,
    EstimationError,
    PatternError,
    ReproError,
    SchemaError,
)


@pytest.mark.parametrize(
    "exc", [SchemaError, PatternError, EstimationError, ConfigError]
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("message")


def test_catching_specific_error():
    with pytest.raises(SchemaError):
        raise SchemaError("bad schema")
