"""Tests for repro.utils.text."""

from repro.utils.text import format_float, format_percent, format_table


def test_format_float_basic():
    assert format_float(3.14159, 2) == "3.14"


def test_format_float_negative_zero():
    assert format_float(-0.0) == "0.00"


def test_format_percent():
    assert format_percent(0.9991) == "99.91%"
    assert format_percent(1.0) == "100.00%"
    assert format_percent(0.215, 1) == "21.5%"


def test_format_table_alignment():
    out = format_table(["name", "v"], [["a", 1], ["long-name", 22]])
    lines = out.splitlines()
    assert len(lines) == 4  # header, separator, two rows
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # all lines equally wide


def test_format_table_title():
    out = format_table(["c"], [["x"]], title="My Table")
    assert out.splitlines()[0] == "My Table"
    assert out.splitlines()[1] == "========"


def test_format_table_empty_rows():
    out = format_table(["a", "b"], [])
    assert "a" in out and "b" in out
