"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import DEFAULT_SEED, ensure_rng


def test_none_uses_default_seed():
    a = ensure_rng(None).random(5)
    b = np.random.default_rng(DEFAULT_SEED).random(5)
    assert np.allclose(a, b)


def test_int_seed_is_deterministic():
    assert np.allclose(ensure_rng(42).random(3), ensure_rng(42).random(3))


def test_different_seeds_differ():
    assert not np.allclose(ensure_rng(1).random(8), ensure_rng(2).random(8))


def test_generator_passthrough():
    gen = np.random.default_rng(0)
    assert ensure_rng(gen) is gen


def test_numpy_integer_seed():
    assert np.allclose(
        ensure_rng(np.int64(9)).random(3), ensure_rng(9).random(3)
    )


def test_invalid_type_raises():
    with pytest.raises(TypeError):
        ensure_rng("not-a-seed")
