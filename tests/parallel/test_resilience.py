"""Unit obligations of :mod:`repro.parallel.resilience`.

Three surfaces: the :class:`RetryPolicy` arithmetic (deterministic,
jitter-free), the :class:`FaultPlan` grammar and matching semantics, and
the resilient :class:`ProcessExecutor` loop itself — exercised with toy
picklable workloads so recovery mechanics are tested in isolation from
the mining pipeline (the differential suite covers the composition).
"""

from __future__ import annotations

import pytest

from repro.core.config import FairCapConfig
from repro.obs import telemetry_session
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.parallel.resilience import (
    ANY_ATTEMPT,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
)
from repro.utils.errors import ConfigError


# -- retry policy -------------------------------------------------------------


def test_backoff_is_deterministic_and_exponential():
    policy = RetryPolicy(max_retries=3, backoff_seconds=0.1, backoff_multiplier=2.0)
    assert policy.delay(0) == 0.0
    assert policy.delay(1) == pytest.approx(0.1)
    assert policy.delay(2) == pytest.approx(0.2)
    assert policy.delay(3) == pytest.approx(0.4)
    # No jitter: the schedule is a pure function of the attempt number.
    assert [policy.delay(k) for k in range(4)] == [
        policy.delay(k) for k in range(4)
    ]


def test_retry_policy_validation():
    with pytest.raises(ConfigError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff_seconds=-0.1)
    with pytest.raises(ConfigError):
        RetryPolicy(backoff_multiplier=0.5)
    with pytest.raises(ConfigError):
        RetryPolicy(chunk_timeout_seconds=0.0)


def test_retry_policy_from_config():
    config = FairCapConfig(
        max_chunk_retries=5, retry_backoff_seconds=0.2, chunk_timeout_seconds=3.0
    )
    policy = RetryPolicy.from_config(config)
    assert policy.max_retries == 5
    assert policy.backoff_seconds == pytest.approx(0.2)
    assert policy.chunk_timeout_seconds == pytest.approx(3.0)


# -- fault plan grammar -------------------------------------------------------


def test_fault_plan_parse_round_trip():
    plan = FaultPlan.parse("kill:chunk=1;delay:chunk=0,seconds=0.5;raise:attempt=any")
    assert plan.specs == (
        FaultSpec(kind="kill", chunk=1),
        FaultSpec(kind="delay", chunk=0, seconds=0.5),
        FaultSpec(kind="raise", attempt=ANY_ATTEMPT),
    )
    assert not plan.corrupts_attach()
    assert plan.abort_after() is None


def test_fault_plan_parse_corrupt_and_abort():
    plan = FaultPlan.parse("corrupt_attach;abort:after=3")
    assert plan.corrupts_attach()
    assert plan.abort_after() == 3


@pytest.mark.parametrize(
    "text",
    ["", "explode", "kill:worker=1", "abort:after=0", "delay:seconds=-1"],
)
def test_fault_plan_rejects_malformed_specs(text):
    with pytest.raises(ConfigError):
        FaultPlan.parse(text)


def test_fault_spec_matching_is_keyed_by_chunk_and_attempt():
    spec = FaultSpec(kind="kill", chunk=2, attempt=0)
    assert spec.matches(2, 0)
    assert not spec.matches(2, 1)  # the retry runs clean
    assert not spec.matches(1, 0)
    any_attempt = FaultSpec(kind="raise", chunk=2, attempt=ANY_ATTEMPT)
    assert any_attempt.matches(2, 0) and any_attempt.matches(2, 5)
    wildcard_chunk = FaultSpec(kind="delay", attempt=0)
    assert wildcard_chunk.matches(0, 0) and wildcard_chunk.matches(9, 0)
    # corrupt_attach / abort are not chunk-scoped.
    assert not FaultSpec(kind="corrupt_attach").matches(0, 0)


def test_config_accepts_plan_strings_and_validates_knobs():
    config = FairCapConfig(fault_plan="kill:chunk=1")
    assert isinstance(config.fault_plan, FaultPlan)
    with pytest.raises(ConfigError):
        FairCapConfig(max_chunk_retries=-1)
    with pytest.raises(ConfigError):
        FairCapConfig(chunk_timeout_seconds=0.0)
    with pytest.raises(ConfigError):
        FairCapConfig(retry_backoff_seconds=-1.0)
    with pytest.raises(ConfigError):
        FairCapConfig(fault_plan="bogus:chunk=1")


# -- resilient executor loop --------------------------------------------------
#
# Toy workload: state is the payload dict itself; the work squares items.
# Module-level so ProcessPoolExecutor can pickle them by reference.


def _toy_build_state(payload):
    return payload


def _toy_square(state, item):
    return item * item + state["offset"]


ITEMS = list(range(6))
EXPECTED = [i * i + 3 for i in ITEMS]
PAYLOAD = {"offset": 3}


def _resilient_map(plan, policy=None, n_workers=2, telemetry=None):
    executor = ProcessExecutor(n_workers)
    return executor.map_with_state(
        _toy_build_state,
        PAYLOAD,
        _toy_square,
        ITEMS,
        retry=policy or RetryPolicy(backoff_seconds=0.01),
        fault_plan=plan,
    )


@pytest.mark.slow
def test_fault_free_resilient_map_matches_fast_path():
    executor = ProcessExecutor(2)
    fast = executor.map_with_state(_toy_build_state, PAYLOAD, _toy_square, ITEMS)
    assert fast == EXPECTED
    assert _resilient_map(plan=None) == EXPECTED


@pytest.mark.slow
@pytest.mark.chaos
def test_worker_kill_is_recovered_by_pool_respawn():
    with telemetry_session(enabled=True) as telemetry:
        got = _resilient_map(FaultPlan.parse("kill:chunk=1"))
    assert got == EXPECTED
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["pool.respawns"]["values"][""] >= 1.0
    assert counters["retry.attempts"]["values"]["reason=worker_lost"] >= 1.0
    assert "chunks.degraded_serial" not in counters


@pytest.mark.slow
@pytest.mark.chaos
def test_injected_error_is_retried_on_the_same_pool():
    with telemetry_session(enabled=True) as telemetry:
        got = _resilient_map(FaultPlan.parse("raise:chunk=0"))
    assert got == EXPECTED
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["retry.attempts"]["values"] == {"reason=error": 1.0}
    # An ordinary exception leaves the pool healthy: no respawn.
    assert "pool.respawns" not in counters


@pytest.mark.slow
@pytest.mark.chaos
def test_stuck_chunk_times_out_and_is_retried():
    plan = FaultPlan.parse("delay:chunk=0,seconds=30")
    policy = RetryPolicy(backoff_seconds=0.01, chunk_timeout_seconds=1.0)
    with telemetry_session(enabled=True) as telemetry:
        got = _resilient_map(plan, policy=policy)
    assert got == EXPECTED
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["retry.attempts"]["values"]["reason=timeout"] >= 1.0


@pytest.mark.slow
@pytest.mark.chaos
def test_retry_exhaustion_degrades_to_in_process_serial():
    # The fault fires on *every* attempt, so only the caller-side degraded
    # path (which never installs the plan) can complete the chunk.
    plan = FaultPlan.parse("raise:chunk=3,attempt=any")
    policy = RetryPolicy(max_retries=1, backoff_seconds=0.01)
    with telemetry_session(enabled=True) as telemetry:
        got = _resilient_map(plan, policy=policy)
    assert got == EXPECTED
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["chunks.degraded_serial"]["values"][""] == 1.0
    assert counters["retry.attempts"]["values"]["reason=error"] == 2.0


@pytest.mark.slow
@pytest.mark.chaos
def test_persistent_kill_degrades_instead_of_failing():
    plan = FaultPlan.parse("kill:chunk=2,attempt=any")
    policy = RetryPolicy(max_retries=1, backoff_seconds=0.01)
    with telemetry_session(enabled=True) as telemetry:
        got = _resilient_map(plan, policy=policy)
    assert got == EXPECTED
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["chunks.degraded_serial"]["values"][""] >= 1.0


def test_genuine_error_surfaces_from_the_degraded_path():
    # A deterministic bug must not be swallowed by recovery: after retries
    # exhaust, the degraded-serial execution re-raises it to the caller.
    executor = ProcessExecutor(2)
    with pytest.raises(ZeroDivisionError):
        executor.map_with_state(
            _toy_build_state,
            PAYLOAD,
            _toy_divide_by_item,
            [2, 1, 0],
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
        )


def _toy_divide_by_item(state, item):
    return state["offset"] / item


# -- checkpoint store ---------------------------------------------------------


class _StubTable:
    def fingerprint(self):
        return "table-v1"


class _StubEvaluator:
    table = _StubTable()
    outcome = "income"
    dag = None
    protected = None


def _checkpoint_for(tmp_path, config):
    from repro.parallel.resilience import RunCheckpoint

    return RunCheckpoint.for_run(
        tmp_path, _StubEvaluator(), config, items=["t1", "t2"]
    )


def test_checkpoint_save_load_round_trip(tmp_path):
    checkpoint = _checkpoint_for(tmp_path, FairCapConfig())
    assert checkpoint.load(0, "pattern-a") is None
    checkpoint.save(0, "pattern-a", best={"rule": 1}, nodes=42)
    assert checkpoint.load(0, "pattern-a") == ({"rule": 1}, 42)
    # The file is addressed by (index, pattern): neither alone hits.
    assert checkpoint.load(1, "pattern-a") is None
    assert checkpoint.load(0, "pattern-b") is None


def test_checkpoint_torn_file_reads_as_miss(tmp_path):
    checkpoint = _checkpoint_for(tmp_path, FairCapConfig())
    checkpoint.save(0, "pattern-a", best=None, nodes=7)
    path = checkpoint._path(0, "pattern-a")
    path.write_bytes(path.read_bytes()[:3])  # crash mid-write
    assert checkpoint.load(0, "pattern-a") is None


def test_run_key_pins_algorithm_but_not_execution(tmp_path):
    import dataclasses

    base = FairCapConfig()
    fresh = _checkpoint_for(tmp_path, base)
    # Result-determining fields re-key the run: stale results cannot leak.
    algo = dataclasses.replace(base, min_subgroup_size=25)
    assert _checkpoint_for(tmp_path, algo).root != fresh.root
    # Result-neutral fields (where the work runs) resume the same run.
    moved = dataclasses.replace(
        base,
        executor="process",
        n_workers=8,
        fault_plan="kill:chunk=0",
        max_chunk_retries=9,
        checkpoint_dir=str(tmp_path),
    )
    assert _checkpoint_for(tmp_path, moved).root == fresh.root


def test_serial_executor_ignores_fault_plans():
    # In-process executors cannot lose workers; plans are process-pool-only.
    got = SerialExecutor().map_with_state(
        _toy_build_state,
        PAYLOAD,
        _toy_square,
        ITEMS,
        retry=RetryPolicy(),
        fault_plan=FaultPlan.parse("kill:chunk=0,attempt=any"),
    )
    assert got == EXPECTED
