"""Unit tests for the pluggable execution layer."""

from __future__ import annotations

import pytest

from repro.mining.lattice import traverse_lattice
from repro.mining.patterns import Pattern
from repro.parallel.executors import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
    make_executor,
)
from repro.utils.errors import ConfigError


def _square(x: int) -> int:
    return x * x


def _add_state(state: int, x: int) -> int:
    return state + x


def _identity_state(payload: int) -> int:
    return payload


class TestChunkIndices:
    def test_covers_every_index_exactly_once(self):
        chunks = chunk_indices(103, n_workers=4)
        flat = [i for chunk in chunks for i in chunk]
        assert flat == list(range(103))

    def test_chunk_count_targets_work_stealing(self):
        # Roughly chunks_per_worker chunks per worker: enough granularity
        # for stealing, not so much that scheduling overhead dominates.
        chunks = chunk_indices(1000, n_workers=4, chunks_per_worker=4)
        assert 8 <= len(chunks) <= 32

    def test_small_inputs(self):
        assert chunk_indices(0, 4) == []
        assert chunk_indices(1, 4) == [[0]]
        assert chunk_indices(3, 8) == [[0], [1], [2]]


@pytest.mark.parametrize(
    "executor",
    [SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)],
    ids=["serial", "thread", "process"],
)
class TestExecutorContract:
    def test_map_preserves_input_order(self, executor):
        items = list(range(23))
        assert executor.map(_square, items) == [x * x for x in items]

    def test_map_with_state(self, executor):
        got = executor.map_with_state(_identity_state, 100, _add_state, [1, 2, 3])
        assert got == [101, 102, 103]

    def test_map_empty(self, executor):
        assert executor.map(_square, []) == []
        assert executor.map_with_state(_identity_state, 0, _add_state, []) == []


class TestMakeExecutor:
    def test_kinds(self):
        assert make_executor("serial").kind == "serial"
        assert make_executor("thread", 3).n_workers == 3
        assert make_executor("process", 2).kind == "process"

    def test_default_worker_count_is_positive(self):
        assert make_executor("thread").n_workers >= 1
        assert make_executor("process", None).n_workers >= 1

    def test_default_worker_count_honors_cpu_affinity(self, monkeypatch):
        """A cgroup/taskset-limited container must not oversubscribe."""
        import os

        from repro.parallel.executors import default_worker_count

        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1, 2})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert default_worker_count() == 3

    def test_default_worker_count_without_affinity_uses_cpu_count(
        self, monkeypatch
    ):
        import os

        from repro.parallel.executors import default_worker_count

        monkeypatch.delattr(os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(os, "cpu_count", lambda: 5)
        assert default_worker_count() == 5
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert default_worker_count() == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            make_executor("gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ConfigError):
            ThreadExecutor(-1)


class TestLatticeExecutor:
    """The lattice's per-level batch evaluation is executor-invariant."""

    @staticmethod
    def _items():
        return [
            Pattern.of(A="a1"),
            Pattern.of(B="b1"),
            Pattern.of(C="c1"),
            Pattern.of(D="d1"),
        ]

    @staticmethod
    def _evaluate(pattern: Pattern):
        # Keep everything except patterns touching D; payload echoes size.
        return "D" not in pattern.attributes, len(pattern)

    def _nodes(self, executor=None, **kwargs):
        return traverse_lattice(
            self._items(), self._evaluate, max_level=3, executor=executor, **kwargs
        )

    def test_thread_executor_matches_serial(self):
        serial = self._nodes()
        threaded = self._nodes(executor=ThreadExecutor(2))
        assert [(n.pattern, n.level, n.keep, n.payload) for n in serial] == [
            (n.pattern, n.level, n.keep, n.payload) for n in threaded
        ]

    def test_process_executor_falls_back_to_serial(self):
        # `evaluate` is a closure, which cannot cross a process boundary;
        # traverse_lattice must quietly evaluate in-process instead of
        # handing the closure to a pool (which would PicklingError).
        serial = self._nodes()
        processed = self._nodes(executor=ProcessExecutor(2))
        assert [(n.pattern, n.keep) for n in serial] == [
            (n.pattern, n.keep) for n in processed
        ]

    def test_max_nodes_truncation_matches_serial(self):
        for cap in (1, 2, 3, 5, 7):
            serial = self._nodes(max_nodes=cap)
            threaded = self._nodes(executor=ThreadExecutor(2), max_nodes=cap)
            assert len(serial) <= cap
            assert [(n.pattern, n.keep) for n in serial] == [
                (n.pattern, n.keep) for n in threaded
            ]
