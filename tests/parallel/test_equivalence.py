"""Differential tests: every executor returns the *identical* FairCap result.

This is the core correctness contract of the parallel mining layer
(:mod:`repro.parallel`): for every bundled dataset, running FairCap with
``ProcessExecutor(n_workers=4)`` (or any other executor / worker count)
returns the same ``RuleSet`` as the serial reference — same rules, same
order, same metrics to 1e-12 — and evaluates the same lattice.
"""

from __future__ import annotations

import math

import pytest

from tests.conftest import build_toy_dag, build_toy_table
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap, FairCapResult
from repro.mining.patterns import Pattern
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.rules.protected import ProtectedGroup

METRIC_FIELDS = (
    "n_rules",
    "coverage",
    "protected_coverage",
    "expected_utility",
    "expected_utility_protected",
    "expected_utility_non_protected",
    "unfairness",
)

CATE_FIELDS = ("estimate", "stderr", "p_value", "n", "n_treated", "n_control")


def _same_float(a: float, b: float) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def assert_same_cate(a, b) -> None:
    assert (a is None) == (b is None)
    if a is None:
        return
    assert a.valid == b.valid and a.adjustment == b.adjustment
    for field in CATE_FIELDS:
        assert _same_float(getattr(a, field), getattr(b, field)), field


def assert_identical_results(
    reference: FairCapResult, candidate: FairCapResult
) -> None:
    """Rule-for-rule, metric-for-metric equality (1e-12 on metrics)."""
    assert candidate.grouping_patterns == reference.grouping_patterns
    assert candidate.nodes_evaluated == reference.nodes_evaluated

    assert len(candidate.candidate_rules) == len(reference.candidate_rules)
    for got, want in zip(candidate.candidate_rules, reference.candidate_rules):
        assert got == want  # patterns, utilities, coverage counts
        assert_same_cate(got.estimate, want.estimate)
        assert_same_cate(got.estimate_protected, want.estimate_protected)
        assert_same_cate(got.estimate_non_protected, want.estimate_non_protected)

    # Same selected rules in the same order.
    assert candidate.ruleset.rules == reference.ruleset.rules
    assert candidate.greedy.indices == reference.greedy.indices

    for field in METRIC_FIELDS:
        got = getattr(candidate.metrics, field)
        want = getattr(reference.metrics, field)
        assert got == pytest.approx(want, abs=1e-12), field


@pytest.fixture(scope="module")
def synth_problem():
    """The bundled synthetic toy problem (known ground-truth effects)."""
    table = build_toy_table(n=900, seed=11)
    return (
        table,
        None,
        build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female"), name="women"),
        FairCapConfig(),
    )


@pytest.fixture(scope="module")
def german_problem(small_german_bundle):
    bundle = small_german_bundle
    config = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    return bundle.table, bundle.schema, bundle.dag, bundle.protected, config


@pytest.fixture(scope="module")
def stackoverflow_problem(small_so_bundle):
    bundle = small_so_bundle
    config = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    return bundle.table, bundle.schema, bundle.dag, bundle.protected, config


PROBLEMS = ("synth_problem", "german_problem", "stackoverflow_problem")


def _run(problem, executor=None, cache=None) -> FairCapResult:
    table, schema, dag, protected, config = problem
    return FairCap(config, executor=executor, cache=cache).run(
        table, schema, dag, protected
    )


@pytest.fixture(scope="module")
def serial_reference(request):
    """Memoised serial runs, one per problem fixture."""
    memo: dict[str, FairCapResult] = {}

    def get(name: str) -> FairCapResult:
        if name not in memo:
            memo[name] = _run(
                request.getfixturevalue(name), executor=SerialExecutor()
            )
        return memo[name]

    return get


@pytest.mark.slow
@pytest.mark.parametrize("problem_name", PROBLEMS)
def test_process_executor_4_workers_identical(
    request, serial_reference, problem_name
):
    """The issue's headline contract: ProcessExecutor(4) ≡ SerialExecutor."""
    problem = request.getfixturevalue(problem_name)
    result = _run(problem, executor=ProcessExecutor(n_workers=4))
    assert_identical_results(serial_reference(problem_name), result)


@pytest.mark.slow
@pytest.mark.parametrize("problem_name", PROBLEMS)
def test_thread_executor_identical(request, serial_reference, problem_name):
    problem = request.getfixturevalue(problem_name)
    result = _run(problem, executor=ThreadExecutor(n_workers=2))
    assert_identical_results(serial_reference(problem_name), result)


@pytest.mark.slow
@pytest.mark.parametrize("n_workers", [2, 3])
def test_process_worker_count_invariance(
    request, serial_reference, n_workers
):
    """Chunk boundaries move with the worker count; results must not."""
    problem = request.getfixturevalue("synth_problem")
    result = _run(problem, executor=ProcessExecutor(n_workers=n_workers))
    assert_identical_results(serial_reference("synth_problem"), result)


@pytest.mark.slow
def test_cache_transparent(request, serial_reference):
    """A shared, pre-warmed cache changes latency, never results."""
    from repro.parallel import EstimationCache

    problem = request.getfixturevalue("synth_problem")
    cache = EstimationCache(max_entries=8192)
    first = _run(problem, cache=cache)
    warmed = _run(problem, cache=cache)
    assert cache.stats().hits > 0
    assert_identical_results(serial_reference("synth_problem"), first)
    assert_identical_results(serial_reference("synth_problem"), warmed)


@pytest.mark.slow
def test_shared_cache_survives_process_executor(request, serial_reference):
    """Worker-computed entries merge back into the caller's cache.

    Process pools die at the end of each run, so cross-run reuse only
    exists because workers ship their new entries home; a warm second run
    must be answered from the merged cache and stay identical.
    """
    from repro.parallel import EstimationCache

    problem = request.getfixturevalue("synth_problem")
    cache = EstimationCache(max_entries=65_536)
    first = _run(problem, executor=ProcessExecutor(n_workers=2), cache=cache)
    assert len(cache) > 0, "worker entries were not merged back"
    entries_after_first = len(cache)
    warmed = _run(problem, executor=ProcessExecutor(n_workers=2), cache=cache)
    assert len(cache) == entries_after_first  # nothing new to compute
    assert_identical_results(serial_reference("synth_problem"), first)
    assert_identical_results(serial_reference("synth_problem"), warmed)


@pytest.mark.slow
@pytest.mark.parametrize("n_patterns", [1, 2])
def test_thread_executor_few_patterns_uses_lattice_batching(
    request, serial_reference, n_patterns
):
    """With fewer patterns than workers, threads batch lattice levels
    instead — same rules, same node count as the serial traversal."""
    from repro.core.intervention import (
        intervention_items,
        mine_interventions_for_groups,
    )
    from repro.rules.utility import RuleEvaluator

    table, schema, dag, protected, config = request.getfixturevalue(
        "synth_problem"
    )
    schema = schema if schema is not None else table.schema
    reference = serial_reference("synth_problem")
    subset = reference.grouping_patterns[:n_patterns]

    evaluator = RuleEvaluator(
        table, schema.outcome_name, dag, protected,
        estimator=config.make_estimator(),
        min_subgroup_size=config.min_subgroup_size,
    )
    items = intervention_items(table, schema, dag, config)
    serial_rules, serial_nodes = mine_interventions_for_groups(
        evaluator, subset, items, config
    )
    thread_rules, thread_nodes = mine_interventions_for_groups(
        evaluator, subset, items, config, executor=ThreadExecutor(n_workers=4)
    )
    assert thread_rules == serial_rules
    assert thread_nodes == serial_nodes


@pytest.mark.slow
def test_explicit_cache_respected_when_config_disables_caching(request):
    """FairCap(cache=...) wins over config.cache_size == 0 in workers too:
    the caller's cache must accumulate entries under the process executor."""
    from dataclasses import replace

    from repro.parallel import EstimationCache

    table, schema, dag, protected, config = request.getfixturevalue(
        "synth_problem"
    )
    no_cache_config = replace(config, cache_size=0)
    cache = EstimationCache(max_entries=65_536)
    result = FairCap(
        no_cache_config, executor=ProcessExecutor(n_workers=2), cache=cache
    ).run(table, schema, dag, protected)
    assert len(cache) > 0, "explicitly-passed cache was dropped by workers"
    baseline = FairCap(no_cache_config).run(table, schema, dag, protected)
    assert_identical_results(baseline, result)


@pytest.mark.slow
def test_config_spelling_matches_explicit_executor(request, serial_reference):
    """`FairCapConfig(executor=..., n_workers=...)` routes identically."""
    table, schema, dag, protected, config = request.getfixturevalue(
        "synth_problem"
    )
    from dataclasses import replace

    configured = replace(config, executor="process", n_workers=2)
    result = FairCap(configured).run(table, schema, dag, protected)
    assert_identical_results(serial_reference("synth_problem"), result)
