"""Recovery-determinism differentials: faulted runs ≡ the clean serial run.

The fault-tolerance layer (:mod:`repro.parallel.resilience`) promises that
recovery never changes results — a run that survived a worker kill, a
stuck chunk, a corrupted shm attach, or a degraded-serial chunk is
bit-for-bit identical to the fault-free serial reference, and a resumed
run is identical to a fresh one.  These tests inject each failure mode
deterministically (faults are keyed by ``(chunk, attempt)``, no timing
races) and compare through the same rule-for-rule assertion the executor
differentials use.
"""

from __future__ import annotations

import subprocess
import sys
import time
from dataclasses import replace
from pathlib import Path

import pytest

from tests.conftest import build_toy_dag, build_toy_table
from tests.parallel.test_equivalence import assert_identical_results
from tests.parallel.test_shm import _psm_segments
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.mining.patterns import Pattern
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.rules.protected import ProtectedGroup

pytestmark = [pytest.mark.slow, pytest.mark.chaos]


@pytest.fixture(scope="module")
def toy_problem():
    return (
        build_toy_table(n=300, seed=7),
        None,
        build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female"), name="women"),
    )


def _run(problem, config, executor=None):
    table, schema, dag, protected = problem
    return FairCap(config, executor=executor).run(table, schema, dag, protected)


@pytest.fixture(scope="module")
def toy_reference(toy_problem):
    return _run(toy_problem, FairCapConfig(), SerialExecutor())


# -- fault matrix -------------------------------------------------------------
#
# One entry per recovery mechanism.  The toy problem mines 8 grouping
# contexts, so with 2 workers the resilient loop sees chunks 0-7.

FAULT_MATRIX = [
    # A worker dies mid-chunk (os._exit, like an OOM kill): the pool is
    # respawned and unfinished chunks retried.
    ("worker-kill", dict(fault_plan="kill:chunk=1", retry_backoff_seconds=0.01)),
    # A chunk wedges past the per-chunk timeout: the stuck pool is torn
    # down, the chunk retried on a fresh one.
    (
        "chunk-timeout",
        dict(
            fault_plan="delay:chunk=0,seconds=30",
            chunk_timeout_seconds=1.5,
            retry_backoff_seconds=0.01,
        ),
    ),
    # The shm manifest is corrupted inside workers: attach fails and every
    # worker falls back to rebuilding its blocks locally.
    ("attach-corruption", dict(fault_plan="corrupt_attach")),
    # A chunk fails every attempt: after max_retries it runs in-process on
    # the driver (degraded serial).
    (
        "degraded-serial",
        dict(
            fault_plan="raise:chunk=2,attempt=any",
            max_chunk_retries=1,
            retry_backoff_seconds=0.01,
        ),
    ),
]


@pytest.mark.parametrize(
    "overrides", [entry[1] for entry in FAULT_MATRIX],
    ids=[entry[0] for entry in FAULT_MATRIX],
)
def test_faulted_run_identical_to_clean_serial(
    toy_problem, toy_reference, overrides
):
    before = _psm_segments()
    config = FairCapConfig(**overrides)
    result = _run(toy_problem, config, executor=ProcessExecutor(2))
    assert_identical_results(toy_reference, result)
    # Recovery must not leak shared-memory segments either.
    assert _psm_segments() <= before


def test_recovery_events_reach_the_metrics_registry(toy_problem, toy_reference):
    config = FairCapConfig(
        fault_plan="kill:chunk=1", retry_backoff_seconds=0.01, telemetry=True
    )
    result = _run(toy_problem, config, executor=ProcessExecutor(2))
    assert_identical_results(toy_reference, result)
    counters = result.telemetry["counters"]
    assert counters["pool.respawns"]["values"][""] >= 1.0
    assert counters["retry.attempts"]["values"]["reason=worker_lost"] >= 1.0


@pytest.fixture(scope="module")
def german_problem(small_german_bundle):
    bundle = small_german_bundle
    config = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    problem = (bundle.table, bundle.schema, bundle.dag, bundle.protected)
    return problem, config


def test_faulted_run_identical_on_german(german_problem):
    problem, config = german_problem
    reference = _run(problem, config, executor=SerialExecutor())
    faulted = replace(
        config,
        fault_plan="kill:chunk=0;raise:chunk=1",
        retry_backoff_seconds=0.01,
    )
    result = _run(problem, faulted, executor=ProcessExecutor(2))
    assert_identical_results(reference, result)


@pytest.mark.parametrize("world_name", ["imbalanced-groups", "single-stratum"])
def test_faulted_run_identical_on_oracle_worlds(world_name):
    from repro.scenarios import ScenarioWorld, oracle_grid
    from repro.scenarios.oracle import oracle_config, run_world

    spec = {s.name: s for s in oracle_grid()}[world_name]
    world = ScenarioWorld(spec)
    bundle = world.bundle(500)
    config = oracle_config(world)
    reference = run_world(world, bundle, config)
    faulted = replace(
        config, fault_plan="kill:chunk=0", retry_backoff_seconds=0.01
    )
    result = run_world(world, bundle, faulted, executor=ProcessExecutor(2))
    assert_identical_results(reference, result)


# -- checkpoint / resume ------------------------------------------------------


def test_resume_identical_to_fresh_run(tmp_path, toy_problem, toy_reference):
    config = FairCapConfig(checkpoint_dir=str(tmp_path), telemetry=True)
    fresh = _run(toy_problem, config)
    assert_identical_results(toy_reference, fresh)
    saved = fresh.telemetry["counters"]["checkpoint.saved"]["values"][""]
    assert saved == 8.0  # one file per grouping context
    assert "checkpoint.resumed" not in fresh.telemetry["counters"]

    resumed = _run(toy_problem, config)
    assert_identical_results(toy_reference, resumed)
    counters = resumed.telemetry["counters"]
    assert counters["checkpoint.resumed"]["values"][""] == saved
    assert "checkpoint.saved" not in counters  # nothing left to mine


def test_resume_works_across_executors(tmp_path, toy_problem, toy_reference):
    # Executor and worker count are result-neutral, so they are excluded
    # from the run key: a serial run's checkpoint resumes a process run.
    serial_config = FairCapConfig(checkpoint_dir=str(tmp_path))
    assert_identical_results(toy_reference, _run(toy_problem, serial_config))
    process_config = replace(serial_config, telemetry=True)
    resumed = _run(toy_problem, process_config, executor=ProcessExecutor(2))
    assert_identical_results(toy_reference, resumed)
    counters = resumed.telemetry["counters"]
    assert counters["checkpoint.resumed"]["values"][""] == 8.0


def test_aborted_driver_resumes_identically(tmp_path, toy_problem, toy_reference):
    config = FairCapConfig(
        checkpoint_dir=str(tmp_path), fault_plan="abort:after=3"
    )
    with pytest.raises(SystemExit):
        _run(toy_problem, config)
    partial = list(tmp_path.rglob("ctx-*.pkl"))
    assert len(partial) == 3  # the abort fired after exactly three saves

    resumed_config = replace(config, fault_plan=None, telemetry=True)
    resumed = _run(toy_problem, resumed_config)
    assert_identical_results(toy_reference, resumed)
    counters = resumed.telemetry["counters"]
    assert counters["checkpoint.resumed"]["values"][""] == 3.0
    assert counters["checkpoint.saved"]["values"][""] == 5.0


_SIGKILL_CHILD = """\
import sys
sys.path.insert(0, "src")
sys.path.insert(0, ".")
import repro.core.intervention as intervention
intervention.CHECKPOINT_WINDOW = 1  # spread saves across the whole run
from tests.conftest import build_toy_dag, build_toy_table
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup

table = build_toy_table(n=300, seed=7)
config = FairCapConfig(checkpoint_dir=sys.argv[1])
FairCap(config).run(
    table, None, build_toy_dag(),
    ProtectedGroup(Pattern.of(Gender="Female"), name="women"),
)
"""


def test_sigkilled_driver_resumes_identically(tmp_path, toy_problem, toy_reference):
    """The acceptance scenario: SIGKILL the driver mid-run, resume, compare."""
    repo_root = Path(__file__).resolve().parents[2]
    child = subprocess.Popen(
        [sys.executable, "-c", _SIGKILL_CHILD, str(tmp_path)], cwd=repo_root
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if any(tmp_path.rglob("ctx-*.pkl")) or child.poll() is not None:
                break
            time.sleep(0.005)
        child.kill()
    finally:
        child.wait(timeout=30)

    resumed = _run(
        toy_problem, FairCapConfig(checkpoint_dir=str(tmp_path), telemetry=True)
    )
    assert_identical_results(toy_reference, resumed)
    if child.returncode and child.returncode < 0:
        # The kill genuinely interrupted the run: the resume must have
        # picked up at least the first checkpointed context.
        counters = resumed.telemetry["counters"]
        assert counters["checkpoint.resumed"]["values"][""] >= 1.0
