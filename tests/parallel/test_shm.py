"""Shared-memory factorization pools: protocol, lifecycle, differentials.

Three layers of obligation for :mod:`repro.parallel.shm`:

- protocol round-trip: published buffers come back bit-identical through
  attach / lookup / adopt, keyed strictly by table fingerprint;
- lifecycle: the caller unlinks its segment whatever happens (no
  ``/dev/shm`` leaks across runs) and every worker-side failure falls
  back to the rebuild path behind a ``shm.fallbacks`` counter;
- differential: mining with shared memory on is bit-for-bit identical to
  mining with it off, across executors, on the German bundle and on
  oracle worlds.
"""

from __future__ import annotations

import os
from dataclasses import replace

import numpy as np
import pytest

from tests.conftest import build_toy_dag, build_toy_table
from tests.parallel.test_equivalence import assert_identical_results
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.mining.patterns import Pattern
from repro.obs import telemetry_session
from repro.parallel import ProcessExecutor, SerialExecutor
from repro.parallel import shm
from repro.rules.protected import ProtectedGroup


@pytest.fixture(autouse=True)
def _clean_attachments():
    """Tests attach in-process; never leak registry state between tests."""
    yield
    shm.detach_all()


def _psm_segments() -> set[str]:
    try:
        return {f for f in os.listdir("/dev/shm") if f.startswith("psm_")}
    except FileNotFoundError:  # pragma: no cover - non-tmpfs platforms
        return set()


@pytest.fixture()
def toy_table():
    return build_toy_table(n=300, seed=7)


# -- protocol round-trip ------------------------------------------------------


def test_publish_attach_lookup_round_trip(toy_table):
    from repro.causal.batch import _attribute_block, _block_column_sums

    share = shm.publish_table(toy_table, "Income")
    assert share is not None
    try:
        views = shm.attach(share.manifest)
        assert views is not None
        # Attach is idempotent per fingerprint.
        assert shm.attach(share.manifest) is views
        for name in ("City", "Training", "Gender"):
            block = _attribute_block(toy_table, name)
            got = views[("block", name)]
            np.testing.assert_array_equal(got, block)
            assert not got.flags.writeable
            # Stride fidelity, not just value fidelity: a local one_hot
            # block is the strided [:, 1:] reference-level slice, and BLAS
            # reduction order (the last ulp) follows the memory layout.  A
            # contiguous copy here broke serial ≡ process on the
            # single-stratum oracle world by one ulp.
            assert got.strides == block.strides
            np.testing.assert_array_equal(
                views[("sums", name)], _block_column_sums(toy_table, name)
            )
        assert ("block", "Income") not in views  # outcome never published
    finally:
        shm.detach_all()
        share.close()


def test_lookup_is_fingerprint_keyed(toy_table):
    share = shm.publish_table(toy_table, "Income")
    try:
        shm.attach(share.manifest)
        assert shm.lookup(toy_table, ("block", "City")) is not None
        other = build_toy_table(n=310, seed=8)
        assert shm.lookup(other, ("block", "City")) is None
    finally:
        shm.detach_all()
        share.close()


def test_adopt_seeds_table_caches_bit_identically(toy_table):
    from repro.causal.batch import _attribute_block

    reference = {
        name: _attribute_block(build_toy_table(n=300, seed=7), name).copy()
        for name in ("City", "Training", "Gender")
    }
    share = shm.publish_table(toy_table, "Income")
    try:
        shm.attach(share.manifest)
        fresh = build_toy_table(n=300, seed=7)  # same content, cold caches
        assert shm.adopt(fresh) > 0
        for name, want in reference.items():
            got = _attribute_block(fresh, name)
            np.testing.assert_array_equal(got, want)
            assert not got.flags.writeable  # served from the shared segment
    finally:
        shm.detach_all()
        share.close()


# -- lifecycle ----------------------------------------------------------------


def test_close_unlinks_and_is_idempotent(toy_table):
    share = shm.publish_table(toy_table, "Income")
    name = share.name
    assert name.lstrip("/") in _psm_segments()
    share.close()
    assert name.lstrip("/") not in _psm_segments()
    share.close()  # second close (already unlinked) must not raise


def test_attach_failure_counts_a_fallback_and_returns_none():
    with telemetry_session(enabled=True) as telemetry:
        manifest = {
            "name": "psm_repro_test_does_not_exist",
            "fingerprint": "nope",
            "n_rows": 1,
            "entries": [],
        }
        assert shm.attach(manifest) is None
    counters = telemetry.registry.snapshot()["counters"]
    assert counters["shm.fallbacks"]["values"] == {"reason=attach_failed": 1.0}


def test_bad_manifest_counts_a_fallback_and_detaches(toy_table):
    share = shm.publish_table(toy_table, "Income")
    try:
        manifest = dict(share.manifest)
        manifest["entries"] = [("malformed",)]  # missing offset/shape
        with telemetry_session(enabled=True) as telemetry:
            assert shm.attach(manifest) is None
        counters = telemetry.registry.snapshot()["counters"]
        assert counters["shm.fallbacks"]["values"] == {
            "reason=bad_manifest": 1.0
        }
        assert not shm._ATTACHED  # nothing registered on failure
    finally:
        share.close()


# Safety-net child: publishes a segment, reports its name, then either
# exits abnormally (atexit path) or waits to be signalled (handler path).
_SAFETY_NET_CHILD = """\
import sys, time
sys.path.insert(0, "src")
sys.path.insert(0, ".")
from tests.conftest import build_toy_table
from repro.parallel import shm

share = shm.publish_table(build_toy_table(n=120, seed=3), "Income")
print(share.name.lstrip("/"), flush=True)
if sys.argv[1] == "exit":
    sys.exit(3)
time.sleep(60)
"""


@pytest.mark.chaos
@pytest.mark.parametrize(
    "mode, signum",
    [("exit", None), ("wait", "SIGTERM"), ("wait", "SIGINT")],
    ids=["abnormal-exit", "sigterm", "sigint"],
)
def test_safety_net_unlinks_on_driver_death(mode, signum):
    """A dying publisher never strands its segment in ``/dev/shm``.

    ``sys.exit`` exercises the atexit hook; SIGTERM/SIGINT exercise the
    signal handlers — which must also preserve the default die-by-signal
    semantics (the child's exit status still reports the signal).
    """
    import signal as signal_module
    import subprocess
    import sys as _sys
    from pathlib import Path

    repo_root = Path(__file__).resolve().parents[2]
    child = subprocess.Popen(
        [_sys.executable, "-c", _SAFETY_NET_CHILD, mode],
        cwd=repo_root,
        stdout=subprocess.PIPE,
        text=True,
    )
    try:
        name = child.stdout.readline().strip()
        assert name, "child failed before publishing"
        if signum is not None:
            assert name in _psm_segments()  # alive until we signal
            child.send_signal(getattr(signal_module, signum))
        returncode = child.wait(timeout=30)
    finally:
        child.kill()
        child.wait(timeout=30)
        child.stdout.close()
    assert name not in _psm_segments()
    if mode == "exit":
        assert returncode == 3  # exit code flows through untouched
    else:
        # Cleanup must not swallow the signal: default semantics restored.
        assert returncode == -getattr(signal_module, signum)


def _toy_problem():
    return (
        build_toy_table(n=300, seed=7),
        None,
        build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female"), name="women"),
    )


@pytest.mark.slow
def test_process_mining_leaves_no_segments_behind():
    """Repeated process-pool runs publish, attach, and fully clean up."""
    table, schema, dag, protected = _toy_problem()
    config = FairCapConfig(telemetry=True)
    before = _psm_segments()
    for _ in range(2):
        result = FairCap(config, executor=ProcessExecutor(2)).run(
            table, schema, dag, protected
        )
        counters = result.telemetry["counters"]
        assert counters["shm.published"]["values"] == {"": 1.0}
        assert counters["shm.attached"]["values"][""] >= 1.0
    assert _psm_segments() <= before


# -- differentials ------------------------------------------------------------


def _run(problem, config, executor=None):
    table, schema, dag, protected = problem
    return FairCap(config, executor=executor).run(table, schema, dag, protected)


@pytest.mark.slow
def test_shm_differential_toy_problem():
    problem = _toy_problem()
    on = FairCapConfig(shared_memory=True)
    off = replace(on, shared_memory=False)
    reference = _run(problem, off, executor=SerialExecutor())
    assert_identical_results(
        reference, _run(problem, on, executor=ProcessExecutor(2))
    )
    assert_identical_results(
        reference, _run(problem, off, executor=ProcessExecutor(2))
    )


@pytest.mark.slow
def test_shm_differential_german(small_german_bundle):
    bundle = small_german_bundle
    on = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    problem = (bundle.table, bundle.schema, bundle.dag, bundle.protected)
    reference = _run(problem, replace(on, shared_memory=False), SerialExecutor())
    assert_identical_results(
        reference, _run(problem, on, executor=ProcessExecutor(2))
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    # single-stratum regressed once: its lone context equals the published
    # root table byte-for-byte, so every worker estimate rides the shared
    # views — the world that exposed the contiguous-copy stride bug.
    "world_name",
    ["imbalanced-groups", "overlap-regions", "single-stratum"],
)
def test_shm_differential_oracle_worlds(world_name):
    from repro.scenarios import ScenarioWorld, oracle_grid
    from repro.scenarios.oracle import oracle_config, run_world

    spec = {s.name: s for s in oracle_grid()}[world_name]
    world = ScenarioWorld(spec)
    bundle = world.bundle(500)
    config = oracle_config(world)
    reference = run_world(world, bundle, config)
    with_shm = run_world(
        world, bundle, config, executor=ProcessExecutor(2)
    )
    without = run_world(
        world,
        bundle,
        replace(config, shared_memory=False),
        executor=ProcessExecutor(2),
    )
    assert_identical_results(reference, with_shm)
    assert_identical_results(reference, without)
