"""Unit tests for the content-addressed CATE estimation cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.causal.estimators import (
    LinearAdjustmentEstimator,
    StratifiedEstimator,
    estimate_cate,
)
from repro.parallel.cache import EstimationCache, treated_mask_digest
from repro.tabular.table import Table


class CountingEstimator(LinearAdjustmentEstimator):
    """Linear estimator that counts real estimation calls."""

    def __init__(self) -> None:
        self.calls = 0

    def estimate(self, table, treated, outcome, adjustment=()):
        self.calls += 1
        return super().estimate(table, treated, outcome, adjustment)


def make_table(rng: np.random.Generator, n: int = 120) -> Table:
    group = rng.choice(["x", "y"], size=n).astype(object)
    noise = rng.normal(size=n)
    return Table({"Group": group, "Outcome": 1.0 + noise})


def test_hit_returns_identical_result(rng):
    table = make_table(rng)
    treated = np.asarray(table.values("Group") == "x")
    estimator = CountingEstimator()
    cache = EstimationCache()

    first = cache.get_or_estimate(estimator, table, treated, "Outcome", ())
    second = cache.get_or_estimate(estimator, table, treated, "Outcome", ())
    assert estimator.calls == 1
    assert second is first
    assert cache.stats().hits == 1 and cache.stats().misses == 1


def test_content_addressing_shares_across_equal_tables(rng):
    """Two separately-filtered but identical sub-tables share one entry."""
    table = make_table(rng, n=200)
    mask = np.asarray(table.values("Group") == "x")
    sub_a = table.filter(mask)
    sub_b = table.filter(mask)  # distinct object, same content
    assert sub_a is not sub_b
    assert sub_a.fingerprint() == sub_b.fingerprint()

    treated = np.zeros(sub_a.n_rows, dtype=bool)
    treated[::2] = True
    estimator = CountingEstimator()
    cache = EstimationCache()
    cache.get_or_estimate(estimator, sub_a, treated, "Outcome", ())
    cache.get_or_estimate(estimator, sub_b, treated, "Outcome", ())
    assert estimator.calls == 1


def test_key_distinguishes_every_input(rng):
    table = make_table(rng)
    other = make_table(rng)  # different draws -> different fingerprint
    treated = np.zeros(table.n_rows, dtype=bool)
    treated[:10] = True
    flipped = ~treated

    base = EstimationCache.key_for(
        LinearAdjustmentEstimator(), table, treated, "Outcome", ()
    )
    assert base != EstimationCache.key_for(
        LinearAdjustmentEstimator(), other, treated, "Outcome", ()
    )
    assert base != EstimationCache.key_for(
        LinearAdjustmentEstimator(), table, flipped, "Outcome", ()
    )
    assert base != EstimationCache.key_for(
        LinearAdjustmentEstimator(), table, treated, "Outcome", ("Group",)
    )
    assert base != EstimationCache.key_for(
        StratifiedEstimator(), table, treated, "Outcome", ()
    )
    assert StratifiedEstimator(n_bins=4).cache_key() != StratifiedEstimator(
        n_bins=8
    ).cache_key()


def test_treated_mask_digest_not_length_blind():
    a = np.array([True, False, True])
    assert treated_mask_digest(a) == treated_mask_digest(a.copy())
    assert treated_mask_digest(a) != treated_mask_digest(a[:2])
    # packbits pads with zeros; the length guard must keep these apart.
    assert treated_mask_digest(np.array([True, False])) != treated_mask_digest(
        np.array([True, False, False])
    )


def test_lru_eviction_bounds_entries(rng):
    table = make_table(rng)
    estimator = LinearAdjustmentEstimator()
    cache = EstimationCache(max_entries=4)
    for start in range(8):
        treated = np.zeros(table.n_rows, dtype=bool)
        treated[start::7] = True
        cache.get_or_estimate(estimator, table, treated, "Outcome", ())
    assert len(cache) == 4


def test_estimate_cate_facade_uses_cache(rng):
    table = make_table(rng)
    treated = np.asarray(table.values("Group") == "x")
    estimator = CountingEstimator()
    cache = EstimationCache()
    uncached = estimate_cate(table, treated, "Outcome", estimator=estimator)
    cached = estimate_cate(
        table, treated, "Outcome", estimator=estimator, cache=cache
    )
    again = estimate_cate(
        table, treated, "Outcome", estimator=estimator, cache=cache
    )
    assert estimator.calls == 2  # uncached + one miss
    assert again is cached
    assert cached.estimate == pytest.approx(uncached.estimate)


def test_fingerprint_distinguishes_category_dictionaries():
    """Same codes, different category meanings -> different fingerprints."""
    a = Table({"G": np.array(["u", "v", "u"], dtype=object), "O": [1.0, 2.0, 3.0]})
    b = Table({"G": np.array(["u", "w", "u"], dtype=object), "O": [1.0, 2.0, 3.0]})
    assert a.fingerprint() != b.fingerprint()


def test_snapshot_seed_roundtrip(rng):
    """Seeding from a snapshot reproduces hits without stats noise."""
    table = make_table(rng)
    treated = np.asarray(table.values("Group") == "x")
    estimator = CountingEstimator()
    source = EstimationCache()
    source.get_or_estimate(estimator, table, treated, "Outcome", ())

    clone = EstimationCache()
    clone.seed(source.snapshot())
    stats = clone.stats()
    assert (stats.hits, stats.misses, stats.entries) == (0, 0, 1)
    clone.get_or_estimate(estimator, table, treated, "Outcome", ())
    assert estimator.calls == 1  # answered from the seeded entry
    assert clone.stats().hits == 1


def test_record_and_drain_new_entries(rng):
    table = make_table(rng)
    estimator = LinearAdjustmentEstimator()
    cache = EstimationCache()

    def estimate(start: int):
        treated = np.zeros(table.n_rows, dtype=bool)
        treated[start::5] = True
        cache.get_or_estimate(estimator, table, treated, "Outcome", ())

    estimate(0)  # before recording: must not be drained later
    cache.record_new_entries()
    estimate(1)
    estimate(2)
    drained = cache.drain_new_entries()
    assert len(drained) == 2
    assert cache.drain_new_entries() == {}  # drained exactly once


def test_drain_without_record_is_inert(rng):
    """Draining a non-recording cache must not switch recording on
    (the serial path shares the caller's cache and drains per chunk)."""
    table = make_table(rng)
    estimator = LinearAdjustmentEstimator()
    cache = EstimationCache()
    assert cache.drain_new_entries() == {}
    treated = np.zeros(table.n_rows, dtype=bool)
    treated[:7] = True
    cache.get_or_estimate(estimator, table, treated, "Outcome", ())
    assert cache.drain_new_entries() == {}  # still not recording


def test_clear_resets_counters(rng):
    table = make_table(rng)
    treated = np.zeros(table.n_rows, dtype=bool)
    treated[:5] = True
    cache = EstimationCache()
    cache.get_or_estimate(LinearAdjustmentEstimator(), table, treated, "Outcome", ())
    cache.clear()
    stats = cache.stats()
    assert (stats.hits, stats.misses, stats.entries) == (0, 0, 0)
    assert stats.hit_rate == 0.0


# -- LRU eviction ordering ---------------------------------------------------------


def test_lru_evicts_least_recently_used_first():
    """Eviction follows recency of *use* (get refreshes), not insertion."""
    cache = EstimationCache(max_entries=3)
    cache.put(("k", 1), "r1")
    cache.put(("k", 2), "r2")
    cache.put(("k", 3), "r3")
    assert cache.get(("k", 1)) == "r1"  # refresh k1: k2 is now the LRU entry
    cache.put(("k", 4), "r4")  # evicts k2, not k1
    assert cache.get(("k", 2)) is None
    assert cache.get(("k", 1)) == "r1"
    assert cache.get(("k", 3)) == "r3"
    assert cache.get(("k", 4)) == "r4"


def test_lru_put_refreshes_recency_too():
    cache = EstimationCache(max_entries=2)
    cache.put(("k", 1), "r1")
    cache.put(("k", 2), "r2")
    cache.put(("k", 1), "r1-updated")  # rewrite refreshes k1
    cache.put(("k", 3), "r3")  # evicts k2
    assert cache.get(("k", 2)) is None
    assert cache.get(("k", 1)) == "r1-updated"


def test_lru_seed_respects_the_bound_and_recency():
    """Bulk seeding keeps at most max_entries, preferring the newest."""
    cache = EstimationCache(max_entries=2)
    cache.put(("k", 1), "r1")
    cache.seed({("k", 2): "r2", ("k", 3): "r3"})
    assert len(cache) == 2
    assert cache.get(("k", 1)) is None  # oldest fell out
    assert cache.get(("k", 2)) == "r2"
    assert cache.get(("k", 3)) == "r3"
    # Seeding never touches the hit/miss counters.
    stats = cache.stats()
    assert stats.entries == 2


def test_factorization_store_is_bounded_lru(rng):
    """The sibling factorization LRU honours its own bound."""
    table = make_table(rng)
    cache = EstimationCache(max_entries=2)  # -> max_factorizations == 2
    assert cache.max_factorizations == 2
    for adjustment in ((), ("Group",), ("Group", "Outcome")):
        cache.get_or_factorize(table, "Outcome", adjustment)
    assert len(cache._factorizations) == 2
    # The most recent two survive.
    keys = list(cache._factorizations)
    assert keys[-1] == cache.factorization_key(
        table, "Outcome", ("Group", "Outcome")
    )
