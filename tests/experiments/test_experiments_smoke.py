"""Smoke tests for the table/figure harness at tiny scale.

These validate the plumbing (rows produced, formatting renders, key paper
shapes hold directionally); the real reproductions run in benchmarks/.
"""

import pytest

from repro.experiments import (
    ExperimentSettings,
    format_apriori_sweep,
    format_figure3,
    format_figure4,
    format_figure5,
    format_table3,
    format_table4,
    format_table5,
    format_table6,
    run_apriori_sweep,
    run_figure3,
    run_figure4,
    run_figure5,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
)

TINY = ExperimentSettings(so_n=1_200, german_n=1_200, seed=3)


def test_table3():
    rows = run_table3(rng=1)
    assert len(rows) == 2
    text = format_table3(rows)
    assert "stackoverflow" in text and "german" in text


@pytest.mark.slow
def test_table4_stackoverflow():
    result = run_table4("stackoverflow", settings=TINY, include_baselines=True)
    labels = [row.label for row in result.rows]
    assert "No constraints" in labels
    assert any("IDS" in label for label in labels)
    assert any("FRL" in label for label in labels)
    assert len(result.rows) == 13  # 9 variants + 4 baseline adaptations
    text = format_table4(result)
    assert "Table 4" in text


@pytest.mark.slow
def test_table5_sweep_shape():
    result = run_table5("stackoverflow", epsilons=(2_500.0, 20_000.0),
                        settings=TINY)
    assert len(result.rows) == 4  # 2 epsilons x {group, individual}
    text = format_table5(result)
    assert "Group SP (2.5K)" in text


@pytest.mark.slow
def test_table6_dag_variants():
    result = run_table6("german", settings=TINY, pc_sample_rows=600)
    labels = [row.label for row in result.rows]
    assert labels == [
        "Original causal DAG", "1-Layer Indep DAG", "2-Layer Mutable DAG",
        "2-Layer DAG", "PC DAG",
    ]
    assert "Table 6" in format_table6(result)


@pytest.mark.slow
def test_figure3_step_breakdown():
    result = run_figure3("german", settings=TINY)
    assert len(result.rows) == 9
    for row in result.rows:
        assert row.total > 0
        # Paper: group mining is negligible next to treatment mining.
        assert row.group_mining <= row.treatment_mining
    assert "Figure 3" in format_figure3(result)


@pytest.mark.slow
def test_figure4_runtime_series():
    result = run_figure4(
        "german", fractions=(0.5, 1.0), settings=TINY,
        variant_names=("No constraints",), include_baselines=True,
    )
    methods = {s.method for s in result.series}
    assert methods == {"No constraints", "IDS", "FRL"}
    for series in result.series:
        assert len(series.seconds) == 2
    assert "Figure 4" in format_figure4(result)


@pytest.mark.slow
def test_figure5_attribute_sweep():
    result = run_figure5(
        "german", settings=TINY, mutable_counts=(2, 3),
        immutable_counts=(3,), include_baselines=False,
    )
    assert result.points
    mutable_counts = {p.n_mutable for p in result.points}
    assert {2, 3} <= mutable_counts
    assert "Figure 5" in format_figure5(result)


@pytest.mark.slow
def test_apriori_sweep_monotone_groups():
    result = run_apriori_sweep("german", taus=(0.1, 0.4), settings=TINY)
    assert result.rows[0].n_grouping_patterns >= result.rows[1].n_grouping_patterns
    assert "Apriori" in format_apriori_sweep(result)
