"""Golden regression tests: paper numbers must not drift silently.

Snapshots of small-config experiment outputs live in
``tests/experiments/goldens/*.json``.  Any refactor that changes them —
parallel executors, estimation caching, numeric rewrites — fails here until
the change is either fixed or consciously accepted by regenerating the
snapshots::

    PYTHONPATH=src python -m pytest tests/experiments/test_goldens.py --update-goldens

Comparisons use a 1e-6 relative tolerance so goldens survive BLAS/numpy
version skew across CI machines while still catching real regressions.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.settings import ExperimentSettings
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4

GOLDENS_DIR = Path(__file__).parent / "goldens"

# Small-config: fast enough for every CI run, big enough that all nine
# variants select non-trivial rulesets.
GOLDEN_SETTINGS = ExperimentSettings(so_n=1_000, german_n=1_000, seed=7)


@pytest.fixture
def golden(request):
    """Compare-or-update helper bound to ``--update-goldens``."""
    update = request.config.getoption("--update-goldens")

    def check(name: str, payload) -> None:
        path = GOLDENS_DIR / f"{name}.json"
        payload = json.loads(json.dumps(payload))  # normalise numpy scalars
        if update:
            GOLDENS_DIR.mkdir(exist_ok=True)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
            return
        assert path.exists(), (
            f"golden {path.name} missing; generate it with --update-goldens"
        )
        expected = json.loads(path.read_text())
        _assert_matches(expected, payload, where=name)

    return check


def _assert_matches(expected, actual, where: str) -> None:
    assert type(expected) is type(actual) or (
        isinstance(expected, (int, float)) and isinstance(actual, (int, float))
    ), f"{where}: type changed ({type(expected).__name__} -> {type(actual).__name__})"
    if isinstance(expected, dict):
        assert sorted(expected) == sorted(actual), f"{where}: keys changed"
        for key in expected:
            _assert_matches(expected[key], actual[key], f"{where}.{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{where}: length changed"
        for i, (e, a) in enumerate(zip(expected, actual)):
            _assert_matches(e, a, f"{where}[{i}]")
    elif isinstance(expected, float):
        assert actual == pytest.approx(expected, rel=1e-6, abs=1e-9), where
    else:
        assert expected == actual, where


@pytest.mark.slow
def test_table3_golden(golden):
    rows = run_table3(rng=GOLDEN_SETTINGS.seed)
    payload = [
        {
            "dataset": str(row["dataset"]),
            "tuples": int(row["tuples"]),
            "attributes": int(row["attributes"]),
            "mutable_attributes": int(row["mutable_attributes"]),
            "protected_group": str(row["protected_group"]),
            "protected_fraction": float(row["protected_fraction"]),
        }
        for row in rows
    ]
    golden("table3", payload)


def _table4_payload(dataset: str) -> list[dict]:
    result = run_table4(
        dataset, settings=GOLDEN_SETTINGS, include_baselines=False
    )
    return [
        {
            "label": row.label,
            "n_rules": int(row.n_rules),
            "coverage": float(row.coverage),
            "coverage_protected": float(row.coverage_protected),
            "exp_utility": float(row.exp_utility),
            "exp_utility_non_protected": float(row.exp_utility_non_protected),
            "exp_utility_protected": float(row.exp_utility_protected),
            "unfairness": float(row.unfairness),
            # runtime_seconds deliberately excluded: wall-clock is not a
            # reproducible quantity.
        }
        for row in result.rows
    ]


@pytest.mark.slow
def test_table4_german_golden(golden):
    golden("table4_german", _table4_payload("german"))


@pytest.mark.slow
def test_table4_stackoverflow_golden(golden):
    golden("table4_stackoverflow", _table4_payload("stackoverflow"))
