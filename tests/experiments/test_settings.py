"""Tests for experiment settings."""


from repro.experiments.settings import ExperimentSettings


def test_from_environment_defaults(monkeypatch):
    for var in ("REPRO_FULL", "REPRO_SO_N", "REPRO_GERMAN_N", "REPRO_SEED"):
        monkeypatch.delenv(var, raising=False)
    settings = ExperimentSettings.from_environment()
    assert settings.so_n == 6_000
    assert settings.german_n == 4_000


def test_env_overrides(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    monkeypatch.setenv("REPRO_SO_N", "1234")
    monkeypatch.setenv("REPRO_SEED", "99")
    settings = ExperimentSettings.from_environment()
    assert settings.so_n == 1234
    assert settings.seed == 99


def test_full_scale(monkeypatch):
    monkeypatch.setenv("REPRO_FULL", "1")
    settings = ExperimentSettings.from_environment()
    assert settings.so_n == 38_000


def test_rows_for():
    settings = ExperimentSettings(so_n=100, german_n=50, seed=1)
    assert settings.rows_for("stackoverflow") == 100
    assert settings.rows_for("german") == 50


def test_variants_and_config():
    settings = ExperimentSettings(so_n=300, german_n=300, seed=1)
    bundle = settings.load("german")
    variants = settings.variants_for(bundle)
    assert len(variants) == 9
    config = settings.config_for(bundle, variants["No constraints"])
    assert config.apriori_min_support == 0.1
    fair = variants["Group fairness"]
    assert fair.fairness.kind.value == "BGL"
    assert fair.fairness.threshold == 0.1
