"""Tests for the Sec. 6 case-study module."""

from repro.experiments.casestudy import (
    BALANCED,
    FAVORS_NON_PROTECTED,
    FAVORS_PROTECTED,
    categorize_rules,
    pick_case_study_rules,
    render_case_study,
)
from repro.mining.patterns import Pattern
from repro.rules.ruleset import RuleSet

from tests.conftest import make_rule


def build_ruleset():
    return RuleSet(
        [
            # Strongly favours non-protected (paper's S1a).
            make_rule(Pattern.of(Age="24-34"), Pattern.of(Major="CS"),
                      utility=20_000.0, utility_protected=10_292.0,
                      utility_non_protected=22_586.0),
            # Balanced (paper's S1b).
            make_rule(Pattern.of(Years="6-8"), Pattern.of(Hours="9-12"),
                      utility=18_000.0, utility_protected=17_161.0,
                      utility_non_protected=19_254.0),
            # Favours protected (paper's S1c).
            make_rule(Pattern.of(Parents="Secondary"), Pattern.of(Role="Backend"),
                      utility=48_000.0, utility_protected=51_542.0,
                      utility_non_protected=46_354.0 - 20_000.0),
        ]
    )


def test_categorisation():
    categories = categorize_rules(build_ruleset())
    assert len(categories[FAVORS_NON_PROTECTED]) == 1
    assert len(categories[BALANCED]) == 1
    assert len(categories[FAVORS_PROTECTED]) == 1


def test_zero_utilities_are_balanced():
    ruleset = RuleSet(
        [make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 0.0, 0.0, 0.0)]
    )
    categories = categorize_rules(ruleset)
    assert len(categories[BALANCED]) == 1


def test_tolerance_widens_balanced():
    ruleset = build_ruleset()
    strict = categorize_rules(ruleset, balance_tolerance=0.01)
    loose = categorize_rules(ruleset, balance_tolerance=5.0)
    assert len(strict[BALANCED]) <= len(loose[BALANCED])
    assert len(loose[BALANCED]) == 3


def test_pick_one_per_category():
    selection = pick_case_study_rules(build_ruleset(), rng=0)
    assert selection.favors_protected is not None
    assert selection.favors_non_protected is not None
    assert selection.balanced is not None
    assert len(selection.rules()) == 3


def test_pick_handles_empty_categories():
    ruleset = RuleSet(
        [make_rule(Pattern.of(g="a"), Pattern.of(m="x"), 10.0, 1.0, 10.0)]
    )
    selection = pick_case_study_rules(ruleset, rng=0)
    assert selection.favors_non_protected is not None
    assert selection.favors_protected is None
    assert len(selection.rules()) == 1


def test_render_layout():
    text = render_case_study("SO (SP group fairness)", build_ruleset(), rng=1)
    lines = text.splitlines()
    assert lines[0] == "3 Selected Rules out of 3 for SO (SP group fairness):"
    assert all(line.startswith("> For ") for line in lines[1:])
    assert "exp utility protected" in lines[1]


def test_render_deterministic_with_seed():
    ruleset = build_ruleset()
    assert render_case_study("X", ruleset, rng=5) == (
        render_case_study("X", ruleset, rng=5)
    )
