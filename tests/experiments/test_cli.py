"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["table4", "--dataset", "german", "--n", "500"])
    assert args.command == "table4"
    assert args.dataset == "german"
    assert args.n == 500


def test_run_requires_known_variant(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--dataset", "german", "--n", "400",
              "--variant", "Bogus"])


def test_table3_prints(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "stackoverflow" in out


@pytest.mark.slow
def test_run_command_prints_case_study(capsys):
    assert main(["run", "--dataset", "german", "--n", "1000",
                 "--variant", "No constraints", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "expected utility" in out
    assert "Selected Rules" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])


def test_version_flag(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    from repro import __version__

    assert f"repro {__version__}" in out


def test_list_datasets(capsys):
    assert main(["list-datasets"]) == 0
    out = capsys.readouterr().out
    assert "german" in out
    assert "stackoverflow" in out


def test_export_writes_loadable_artifact(tmp_path, capsys):
    out_path = tmp_path / "ruleset.json"
    assert main(["export", "--dataset", "german", "--n", "500", "--seed", "3",
                 "--variant", "No constraints", "--out", str(out_path)]) == 0
    assert "exported" in capsys.readouterr().out

    from repro.serve.artifact import ServingArtifact

    artifact = ServingArtifact.load(str(out_path))
    assert artifact.ruleset.size > 0
    assert artifact.protected is not None
    assert artifact.metadata["dataset"] == "german"


def test_export_rejects_unknown_variant(tmp_path):
    with pytest.raises(SystemExit):
        main(["export", "--dataset", "german", "--n", "400",
              "--variant", "Bogus", "--out", str(tmp_path / "x.json")])


def test_serve_missing_artifact_is_clean_error(capsys):
    assert main(["serve", "--artifact", "/nonexistent/ruleset.json"]) == 1
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "ruleset.json" in err


def test_serve_parser_arguments():
    args = build_parser().parse_args(
        ["serve", "--artifact", "ruleset.json", "--port", "9000"]
    )
    assert args.command == "serve"
    assert args.artifact == "ruleset.json"
    assert args.port == 9000
    # Parser defaults are None so REPRO_SERVE_* env vars can layer under
    # explicit flags; the real default (1024) lives on ServeConfig.
    assert args.cache_size is None

    from repro.serve import ServeConfig

    assert ServeConfig().cache_size == 1024


@pytest.mark.slow
def test_run_trace_json_writes_a_run_report(tmp_path, capsys):
    trace_path = tmp_path / "trace.json"
    assert main(["run", "--dataset", "german", "--n", "400",
                 "--variant", "No constraints", "--seed", "3",
                 "--trace-json", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert f"telemetry report written to {trace_path}" in out

    import json

    from repro.obs import REPORT_VERSION

    report = json.loads(trace_path.read_text())
    assert report["version"] == REPORT_VERSION
    assert report["meta"]["dataset"] == "german"
    assert report["meta"]["variant"] == "No constraints"
    assert report["meta"]["seed"] == 3
    assert report["counters"]["mining.contexts"]["deterministic"] is True
    assert set(report["derived"]) == {
        "cache_hit_rate", "prune_rate", "scalar_fallback_rate",
    }
    assert report["spans"], "span tree missing from the trace"


@pytest.mark.slow
def test_run_without_trace_json_keeps_telemetry_off(capsys):
    assert main(["run", "--dataset", "german", "--n", "400",
                 "--variant", "No constraints", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "telemetry report" not in out
