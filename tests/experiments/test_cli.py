"""Tests for the ``python -m repro`` CLI."""

import pytest

from repro.__main__ import build_parser, main


def test_parser_commands():
    parser = build_parser()
    args = parser.parse_args(["table4", "--dataset", "german", "--n", "500"])
    assert args.command == "table4"
    assert args.dataset == "german"
    assert args.n == 500


def test_run_requires_known_variant(capsys):
    with pytest.raises(SystemExit):
        main(["run", "--dataset", "german", "--n", "400",
              "--variant", "Bogus"])


def test_table3_prints(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out
    assert "stackoverflow" in out


@pytest.mark.slow
def test_run_command_prints_case_study(capsys):
    assert main(["run", "--dataset", "german", "--n", "1000",
                 "--variant", "No constraints", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "expected utility" in out
    assert "Selected Rules" in out


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
