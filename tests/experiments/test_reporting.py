"""Tests for experiment reporting helpers."""

from repro.experiments.reporting import format_rows, row_from_metrics
from repro.rules.ruleset import RulesetMetrics


def make_metrics():
    return RulesetMetrics(
        n_rules=3, coverage=0.95, protected_coverage=0.9,
        expected_utility=100.0, expected_utility_protected=60.0,
        expected_utility_non_protected=110.0,
    )


def test_row_from_metrics():
    row = row_from_metrics("setting", make_metrics(), runtime_seconds=1.5)
    assert row.n_rules == 3
    assert row.unfairness == 50.0
    assert row.runtime_seconds == 1.5


def test_format_rows_layout():
    rows = [row_from_metrics("No constraints", make_metrics())]
    text = format_rows(rows, "Table X", utility_decimals=1)
    assert "Table X" in text
    assert "95.00%" in text
    assert "100.0" in text
    assert "50.0" in text


def test_format_rows_runtime_column():
    rows = [row_from_metrics("a", make_metrics(), runtime_seconds=2.0)]
    text = format_rows(rows, "T", include_runtime=True)
    assert "time (s)" in text
    assert "2.0" in text
    missing = [row_from_metrics("b", make_metrics())]
    text = format_rows(missing, "T", include_runtime=True)
    assert "-" in text
