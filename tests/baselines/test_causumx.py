"""Tests for the CauSumX adaptation."""

import pytest

from repro.baselines.causumx import causumx_variant, run_causumx
from repro.core.config import FairCapConfig
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def setup():
    table = build_toy_table(n=1500, seed=12)
    return table, build_toy_dag(), ProtectedGroup(Pattern.of(Gender="Female"))


def test_variant_shape():
    variant = causumx_variant(theta=0.4)
    assert variant.fairness is None
    assert variant.has_group_coverage
    assert variant.coverage.theta == 0.4
    assert variant.coverage.theta_protected == 0.0  # no protected floor


def test_run_produces_rules(setup):
    table, dag, protected = setup
    result = run_causumx(table, table.schema, dag, protected,
                         FairCapConfig(), theta=0.4)
    assert result.metrics.n_rules >= 1
    assert result.metrics.coverage >= 0.4


def test_ignores_fairness(setup):
    """CauSumX maximises utility; its unfairness is at least FairCap's."""
    from repro.core.faircap import FairCap
    from repro.core.variants import canonical_variants

    table, dag, protected = setup
    causumx = run_causumx(table, table.schema, dag, protected)
    variants = canonical_variants("SP", 3_000.0, 0.5, 0.5)
    fair = FairCap(
        FairCapConfig(variant=variants["Group fairness"])
    ).run(table, table.schema, dag, protected)
    assert abs(causumx.metrics.unfairness) >= abs(fair.metrics.unfairness) - 1e-9


def test_config_variant_overridden(setup):
    table, dag, protected = setup
    from repro.core.variants import canonical_variants

    variants = canonical_variants("SP", 1.0, 0.5, 0.5)
    config = FairCapConfig(variant=variants["Individual fairness"])
    result = run_causumx(table, table.schema, dag, protected, config)
    assert result.config.variant.fairness is None
