"""Tests for the IDS/FRL adaptation protocol (Sec. 7.1)."""

import pytest

from repro.baselines.adapt import (
    adapt_if_as_grouping,
    adapt_if_as_intervention,
    merge_rule_pools,
)
from repro.baselines.association import AssociationRule
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def setup():
    table = build_toy_table(n=1500, seed=13)
    return table, build_toy_dag(), ProtectedGroup(Pattern.of(Gender="Female"))


def test_merge_rule_pools_dedupes():
    rule_a = AssociationRule(Pattern.of(a=1), 1, 0.5, 0.9)
    rule_a2 = AssociationRule(Pattern.of(a=1), 0, 0.5, 0.6)  # same pattern
    rule_b = AssociationRule(Pattern.of(b=2), 1, 0.3, 0.8)
    merged = merge_rule_pools([[rule_a], [rule_a2, rule_b]])
    assert [r.pattern for r in merged] == [Pattern.of(a=1), Pattern.of(b=2)]
    assert merged[0].confidence == 0.9  # first pool wins


def test_if_as_grouping_restricts_to_immutables(setup):
    table, dag, protected = setup
    clauses = [
        Pattern.of(City="Metro", Training="Yes"),  # mixed: Training dropped
        Pattern.of(Training="Yes"),                # mutable-only: dropped
        Pattern.of(Gender="Male"),
    ]
    result = adapt_if_as_grouping(
        "IDS", clauses, table, table.schema, dag, protected
    )
    groupings = {rule.grouping for rule in result.ruleset}
    assert Pattern.of(City="Metro") in groupings
    assert Pattern.of(Gender="Male") in groupings
    for rule in result.ruleset:
        assert rule.grouping.is_over(table.schema.immutable_names)
        assert rule.intervention.is_over(table.schema.mutable_names)


def test_if_as_intervention_uses_entire_data(setup):
    table, dag, protected = setup
    clauses = [Pattern.of(Training="Yes", City="Metro")]
    result = adapt_if_as_intervention(
        "FRL", clauses, table, table.schema, dag, protected
    )
    assert result.metrics.n_rules == 1
    rule = result.ruleset[0]
    assert rule.grouping.is_empty()
    assert rule.intervention == Pattern.of(Training="Yes")
    assert result.metrics.coverage == 1.0


def test_if_as_intervention_drops_immutable_only_clauses(setup):
    table, dag, protected = setup
    clauses = [Pattern.of(Gender="Male")]
    result = adapt_if_as_intervention(
        "IDS", clauses, table, table.schema, dag, protected
    )
    assert result.metrics.n_rules == 0


def test_negative_utility_interventions_dropped(setup):
    table, dag, protected = setup
    clauses = [Pattern.of(Training="No")]  # the harmful direction
    result = adapt_if_as_intervention(
        "IDS", clauses, table, table.schema, dag, protected
    )
    assert result.metrics.n_rules == 0


def test_names_follow_paper_layout(setup):
    table, dag, protected = setup
    result = adapt_if_as_grouping(
        "IDS", [Pattern.of(Gender="Male")], table, table.schema, dag, protected
    )
    assert result.name == "IDS (IF clause as grouping pattern)"
    result = adapt_if_as_intervention(
        "FRL", [Pattern.of(Training="Yes")], table, table.schema, dag, protected
    )
    assert result.name == "FRL (IF clause as intervention pattern)"


def test_source_rule_count_recorded(setup):
    table, dag, protected = setup
    clauses = [Pattern.of(Gender="Male"), Pattern.of(City="Metro")]
    result = adapt_if_as_grouping(
        "IDS", clauses, table, table.schema, dag, protected
    )
    assert result.source_rule_count == 2
