"""Tests for the association-rule substrate."""

import numpy as np
import pytest

from repro.baselines.association import (
    binarize_outcome,
    mine_association_rules,
)
from repro.tabular.table import Table
from repro.utils.errors import EstimationError
from repro.utils.rng import ensure_rng


@pytest.fixture
def table():
    rng = ensure_rng(0)
    n = 500
    group = rng.choice(["a", "b"], n)
    outcome = np.where(group == "a", 100.0, 10.0) + rng.normal(0, 1, n)
    return Table({"group": group.astype(object), "outcome": outcome})


def test_binarize_at_mean(table):
    labels = binarize_outcome(table, "outcome")
    values = table.values("outcome")
    assert np.array_equal(labels == 1, values >= values.mean())


def test_binary_outcome_passthrough():
    table = Table({"y": [0.0, 1.0, 1.0, 0.0]})
    assert list(binarize_outcome(table, "y")) == [0, 1, 1, 0]


def test_binarize_requires_numeric():
    table = Table({"y": ["hi", "lo"]})
    with pytest.raises(EstimationError):
        binarize_outcome(table, "y")


def test_rules_have_correct_confidence(table):
    rules = mine_association_rules(
        table, "outcome", ["group"], min_support=0.1, min_confidence=0.0
    )
    labels = binarize_outcome(table, "outcome")
    for rule in rules:
        mask = rule.pattern.mask(table)
        positive_rate = labels[mask].mean()
        expected = positive_rate if rule.outcome_class == 1 else 1 - positive_rate
        assert rule.confidence == pytest.approx(expected)
        assert rule.support == pytest.approx(mask.mean())


def test_perfect_separation_found(table):
    rules = mine_association_rules(
        table, "outcome", ["group"], min_support=0.1, min_confidence=0.9
    )
    by_pattern = {str(r.pattern): r for r in rules}
    assert by_pattern["group = a"].outcome_class == 1
    assert by_pattern["group = b"].outcome_class == 0


def test_min_confidence_filters(table):
    rng = ensure_rng(1)
    noisy = table.with_column("noise", rng.choice(["x", "y"], 500).astype(object))
    rules = mine_association_rules(
        noisy, "outcome", ["noise"], min_support=0.1, min_confidence=0.95
    )
    assert rules == []


def test_sorted_by_confidence(table):
    rules = mine_association_rules(
        table, "outcome", ["group"], min_support=0.1, min_confidence=0.0
    )
    confidences = [r.confidence for r in rules]
    assert confidences == sorted(confidences, reverse=True)


def test_rule_length(table):
    rules = mine_association_rules(
        table, "outcome", ["group"], min_support=0.1, max_length=1
    )
    assert all(r.length == 1 for r in rules)
