"""Tests for the FRL baseline."""

import numpy as np
import pytest

from repro.baselines.frl import FRLConfig, run_frl
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def table():
    rng = ensure_rng(1)
    n = 800
    tier = rng.choice(["gold", "silver", "bronze"], n, p=[0.2, 0.4, 0.4])
    region = rng.choice(["n", "s"], n)
    p_good = {"gold": 0.95, "silver": 0.6, "bronze": 0.15}
    y = np.array([rng.random() < p_good[t] for t in tier], dtype=float)
    return Table(
        {"tier": tier.astype(object), "region": region.astype(object), "y": y}
    )


def test_list_is_falling(table):
    result = run_frl(table, "y", ("tier", "region"))
    assert result.rules
    assert result.is_falling()


def test_top_rule_is_highest_probability(table):
    result = run_frl(table, "y", ("tier", "region"))
    top = result.rules[0]
    assert "gold" in str(top.pattern.pattern)
    assert top.probability > 0.85


def test_else_probability_reported(table):
    result = run_frl(table, "y", ("tier", "region"))
    assert 0.0 <= result.else_probability <= 1.0


def test_max_rules_cap(table):
    result = run_frl(table, "y", ("tier", "region"), FRLConfig(max_rules=2))
    assert len(result.rules) <= 2


def test_min_rule_rows_respected(table):
    result = run_frl(
        table, "y", ("tier", "region"), FRLConfig(min_rule_rows=100)
    )
    assert all(r.captured >= 100 for r in result.rules)


def test_captured_counts_disjoint(table):
    """Captured rows are counted against the not-yet-covered remainder."""
    result = run_frl(table, "y", ("tier", "region"))
    assert sum(r.captured for r in result.rules) <= table.n_rows


def test_ordering_sweeps_scale_runtime(table):
    fast = run_frl(table, "y", ("tier",), FRLConfig(ordering_sweeps=1))
    slow = run_frl(table, "y", ("tier",), FRLConfig(ordering_sweeps=30))
    assert slow.runtime_seconds > fast.runtime_seconds


def test_invalid_sweeps():
    with pytest.raises(ValueError):
        FRLConfig(ordering_sweeps=0)


def test_deterministic(table):
    a = run_frl(table, "y", ("tier", "region"))
    b = run_frl(table, "y", ("tier", "region"))
    assert [r.probability for r in a.rules] == [r.probability for r in b.rules]
