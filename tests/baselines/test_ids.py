"""Tests for the IDS baseline."""

import pytest

from repro.baselines.ids import IDSConfig, run_ids
from repro.tabular.table import Table
from repro.utils.errors import ConfigError
from repro.utils.rng import ensure_rng


@pytest.fixture(scope="module")
def table():
    rng = ensure_rng(0)
    n = 600
    a = rng.choice(["hi", "lo"], n, p=[0.5, 0.5])
    b = rng.choice(["x", "y", "z"], n)
    outcome = (
        50.0 * (a == "hi") + 5.0 * (b == "x") + rng.normal(0, 3, n)
    )
    return Table({"a": a.astype(object), "b": b.astype(object), "y": outcome})


def test_selects_predictive_rules(table):
    result = run_ids(table, "y", ("a", "b"), IDSConfig(max_rules=6))
    assert result.rules
    assert result.accuracy > 0.8
    patterns = {str(r.pattern) for r in result.rules}
    assert "a = hi" in patterns or "a = lo" in patterns


def test_coverage_floor_respected(table):
    result = run_ids(
        table, "y", ("a", "b"), IDSConfig(max_rules=10, min_coverage=0.95)
    )
    assert result.coverage >= 0.95


def test_max_rules_cap(table):
    result = run_ids(table, "y", ("a", "b"), IDSConfig(max_rules=2))
    assert len(result.rules) <= 2


def test_target_rules_fills(table):
    result = run_ids(
        table, "y", ("a", "b"), IDSConfig(max_rules=20, target_rules=8)
    )
    assert len(result.rules) == min(8, result.candidate_count)


def test_runtime_recorded(table):
    result = run_ids(table, "y", ("a", "b"))
    assert result.runtime_seconds > 0


def test_objective_value_positive(table):
    result = run_ids(table, "y", ("a", "b"))
    assert result.objective > 0


def test_invalid_configs():
    with pytest.raises(ConfigError):
        IDSConfig(lambdas=(1.0, 1.0))
    with pytest.raises(ConfigError):
        IDSConfig(lambdas=(1.0,) * 6 + (-1.0,))
    with pytest.raises(ConfigError):
        IDSConfig(target_rules=0)


def test_deterministic(table):
    a = run_ids(table, "y", ("a", "b"), IDSConfig(max_rules=4))
    b = run_ids(table, "y", ("a", "b"), IDSConfig(max_rules=4))
    assert [str(r.pattern) for r in a.rules] == [str(r.pattern) for r in b.rules]
