"""Property-based tests for the tabular substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng

names = st.sampled_from(["a", "b", "c", "d"])
cat_values = st.lists(st.sampled_from(["x", "y", "z"]), min_size=1, max_size=40)
num_values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=40
)


@given(cat_values)
def test_categorical_roundtrip(values):
    col = CategoricalColumn.from_values(values)
    assert list(col.decode()) == values


@given(cat_values, st.sampled_from(["x", "y", "z", "missing"]))
def test_categorical_eq_matches_python(values, probe):
    col = CategoricalColumn.from_values(values)
    assert list(col.eq(probe)) == [v == probe for v in values]


@given(cat_values)
def test_categorical_partition(values):
    """eq and ne partition the rows for any present value."""
    col = CategoricalColumn.from_values(values)
    for value in set(values):
        assert not (col.eq(value) & col.ne(value)).any()
        assert (col.eq(value) | col.ne(value)).all()


@given(num_values, st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_numeric_trichotomy(values, probe):
    col = NumericColumn(values)
    lt, eq, gt = col.lt(probe), col.eq(probe), col.gt(probe)
    combined = lt.astype(int) + eq.astype(int) + gt.astype(int)
    assert (combined == 1).all()


@given(num_values)
def test_value_counts_total(values):
    col = NumericColumn(values)
    assert sum(col.value_counts().values()) == len(values)


@settings(max_examples=30)
@given(cat_values, num_values)
def test_filter_then_filter_equals_and(cats, nums):
    n = min(len(cats), len(nums))
    table = Table({"c": cats[:n], "v": nums[:n]})
    rng = ensure_rng(0)
    m1 = rng.random(n) < 0.5
    m2 = rng.random(n) < 0.5
    sequential = table.filter(m1).filter(m2[m1])
    combined = table.filter(m1 & m2)
    assert sequential == combined


@settings(max_examples=30)
@given(cat_values)
def test_take_identity(values):
    table = Table({"c": values})
    assert table.take(np.arange(len(values))) == table
