"""Tests for repro.tabular.schema."""

import pytest

from repro.tabular.schema import (
    AttributeKind,
    AttributeRole,
    AttributeSpec,
    Schema,
)
from repro.utils.errors import SchemaError


def spec(name, kind="categorical", role="auxiliary"):
    return AttributeSpec(name, AttributeKind(kind), AttributeRole(role))


def test_spec_string_coercion():
    s = AttributeSpec("a", "categorical", "mutable")
    assert s.kind is AttributeKind.CATEGORICAL
    assert s.role is AttributeRole.MUTABLE


def test_spec_empty_name_rejected():
    with pytest.raises(SchemaError):
        AttributeSpec("", "categorical", "mutable")


def test_duplicate_names_rejected():
    with pytest.raises(SchemaError):
        Schema([spec("a"), spec("a")])


def test_two_outcomes_rejected():
    with pytest.raises(SchemaError):
        Schema([spec("a", role="outcome"), spec("b", role="outcome")])


def test_role_views():
    schema = Schema(
        [
            spec("g", role="immutable"),
            spec("t", role="mutable"),
            spec("x", role="auxiliary"),
            spec("o", kind="continuous", role="outcome"),
        ]
    )
    assert schema.immutable_names == ("g",)
    assert schema.mutable_names == ("t",)
    assert schema.auxiliary_names == ("x",)
    assert schema.outcome_name == "o"
    assert schema.has_outcome()


def test_outcome_missing_raises():
    schema = Schema([spec("a")])
    assert not schema.has_outcome()
    with pytest.raises(SchemaError):
        schema.outcome_name


def test_lookup_and_contains():
    schema = Schema([spec("a")])
    assert "a" in schema
    assert "b" not in schema
    assert schema.spec("a").name == "a"
    with pytest.raises(SchemaError):
        schema.spec("b")


def test_with_roles():
    schema = Schema([spec("a", role="immutable")])
    updated = schema.with_roles(a="mutable")
    assert updated.mutable_names == ("a",)
    assert schema.immutable_names == ("a",)  # original untouched


def test_with_roles_unknown_attribute():
    with pytest.raises(SchemaError):
        Schema([spec("a")]).with_roles(b="mutable")


def test_restrict():
    schema = Schema([spec("a"), spec("b"), spec("c")])
    sub = schema.restrict(["c", "a"])
    assert sub.names == ("a", "c")  # declaration order kept
    with pytest.raises(SchemaError):
        schema.restrict(["zzz"])


def test_validate_for_prescription():
    good = Schema(
        [
            spec("g", role="immutable"),
            spec("t", role="mutable"),
            spec("o", kind="continuous", role="outcome"),
        ]
    )
    good.validate_for_prescription()

    for missing_role in ("immutable", "mutable", "outcome"):
        specs = [
            spec("g", role="immutable"),
            spec("t", role="mutable"),
            spec("o", kind="continuous", role="outcome"),
        ]
        specs = [s for s in specs if s.role.value != missing_role]
        with pytest.raises(SchemaError):
            Schema(specs).validate_for_prescription()


def test_iteration_and_len():
    schema = Schema([spec("a"), spec("b")])
    assert len(schema) == 2
    assert [s.name for s in schema] == ["a", "b"]


def test_equality():
    assert Schema([spec("a")]) == Schema([spec("a")])
    assert Schema([spec("a")]) != Schema([spec("b")])
