"""Tests for CSV round-tripping."""

import pytest

from repro.tabular.io import read_csv, write_csv
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.tabular.table import Table
from repro.utils.errors import SchemaError


@pytest.fixture
def table():
    return Table({"name": ["a", "b"], "score": [1.5, 2.5]})


def test_roundtrip(tmp_path, table):
    path = tmp_path / "data.csv"
    write_csv(table, path)
    loaded = read_csv(path)
    assert loaded == table


def test_numeric_sniffing(tmp_path):
    path = tmp_path / "nums.csv"
    path.write_text("x,y\n1,a\n2,b\n")
    loaded = read_csv(path)
    assert loaded.schema.spec("x").kind is AttributeKind.CONTINUOUS
    assert loaded.schema.spec("y").kind is AttributeKind.CATEGORICAL


def test_schema_overrides_sniffing(tmp_path):
    path = tmp_path / "codes.csv"
    path.write_text("code\n1\n2\n")
    schema = Schema(
        [AttributeSpec("code", AttributeKind.CATEGORICAL, AttributeRole.AUXILIARY)]
    )
    loaded = read_csv(path, schema=schema)
    assert loaded.schema.spec("code").kind is AttributeKind.CATEGORICAL
    assert list(loaded.values("code")) == ["1", "2"]


def test_schema_numeric_parse_failure(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("v\nx\n")
    schema = Schema(
        [AttributeSpec("v", AttributeKind.CONTINUOUS, AttributeRole.AUXILIARY)]
    )
    with pytest.raises(SchemaError):
        read_csv(path, schema=schema)


def test_empty_file_rejected(tmp_path):
    path = tmp_path / "empty.csv"
    path.write_text("")
    with pytest.raises(SchemaError):
        read_csv(path)


def test_ragged_row_rejected(tmp_path):
    path = tmp_path / "ragged.csv"
    path.write_text("a,b\n1,2\n3\n")
    with pytest.raises(SchemaError):
        read_csv(path)


def test_quoted_values_roundtrip(tmp_path):
    table = Table({"text": ["hello, world", 'say "hi"']})
    path = tmp_path / "quoted.csv"
    write_csv(table, path)
    assert read_csv(path) == table
