"""Tests for repro.tabular.column."""

import numpy as np
import pytest

from repro.tabular.column import (
    CategoricalColumn,
    NumericColumn,
    column_from_values,
)
from repro.utils.errors import PatternError, SchemaError


class TestCategoricalColumn:
    def test_from_values_factorizes(self):
        col = CategoricalColumn.from_values(["b", "a", "b", "c"])
        assert col.categories == ("a", "b", "c")
        assert list(col.decode()) == ["b", "a", "b", "c"]

    def test_eq_mask(self):
        col = CategoricalColumn.from_values(["x", "y", "x"])
        assert list(col.eq("x")) == [True, False, True]

    def test_eq_unknown_value_all_false(self):
        col = CategoricalColumn.from_values(["x", "y"])
        assert not col.eq("zzz").any()

    def test_ne_is_complement(self):
        col = CategoricalColumn.from_values(["x", "y", "x"])
        assert list(col.ne("x")) == [False, True, False]

    def test_ordered_comparison_raises(self):
        col = CategoricalColumn.from_values(["a", "b"])
        for op in ("lt", "gt", "le", "ge"):
            with pytest.raises(PatternError):
                getattr(col, op)("a")

    def test_take_with_mask_and_indices(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        taken = col.take(np.array([True, False, True]))
        assert list(taken.decode()) == ["a", "c"]
        taken2 = col.take(np.array([2, 0]))
        assert list(taken2.decode()) == ["c", "a"]

    def test_take_preserves_categories(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        taken = col.take(np.array([0]))
        assert taken.categories == col.categories

    def test_value_counts_skips_absent(self):
        col = CategoricalColumn(np.array([0, 0, 2]), ["a", "b", "c"])
        assert col.value_counts() == {"a": 2, "c": 1}

    def test_unique_values(self):
        col = CategoricalColumn(np.array([2, 0]), ["a", "b", "c"])
        assert col.unique_values() == ("a", "c")

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(np.array([0, 3]), ["a", "b"])

    def test_duplicate_categories_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalColumn(np.array([0]), ["a", "a"])

    def test_codes_readonly(self):
        col = CategoricalColumn.from_values(["a", "b"])
        with pytest.raises(ValueError):
            col.codes[0] = 1

    def test_equality(self):
        a = CategoricalColumn.from_values(["x", "y"])
        b = CategoricalColumn.from_values(["x", "y"])
        assert a == b

    def test_code_of(self):
        col = CategoricalColumn.from_values(["x", "y"])
        assert col.code_of("x") == 0
        assert col.code_of("missing") == -1


class TestNumericColumn:
    def test_comparisons(self):
        col = NumericColumn([1.0, 2.0, 3.0])
        assert list(col.lt(2)) == [True, False, False]
        assert list(col.le(2)) == [True, True, False]
        assert list(col.gt(2)) == [False, False, True]
        assert list(col.ge(2)) == [False, True, True]
        assert list(col.eq(2)) == [False, True, False]
        assert list(col.ne(2)) == [True, False, True]

    def test_take(self):
        col = NumericColumn([1.0, 2.0, 3.0])
        assert list(col.take(np.array([False, True, True])).decode()) == [2.0, 3.0]

    def test_unique_and_counts(self):
        col = NumericColumn([2.0, 1.0, 2.0])
        assert col.unique_values() == (1.0, 2.0)
        assert col.value_counts() == {1.0: 1, 2.0: 2}

    def test_array_readonly(self):
        col = NumericColumn([1.0])
        with pytest.raises(ValueError):
            col.array[0] = 5.0

    def test_two_dimensional_rejected(self):
        with pytest.raises(SchemaError):
            NumericColumn(np.zeros((2, 2)))


class TestColumnFromValues:
    def test_numeric_detection(self):
        assert isinstance(column_from_values([1, 2, 3]), NumericColumn)
        assert isinstance(column_from_values([1.5, 2.5]), NumericColumn)

    def test_string_detection(self):
        assert isinstance(column_from_values(["a", "b"]), CategoricalColumn)

    def test_mixed_becomes_categorical(self):
        assert isinstance(column_from_values(["a", 1]), CategoricalColumn)

    def test_numpy_float_array(self):
        assert isinstance(column_from_values(np.array([1.0, 2.0])), NumericColumn)

    def test_numpy_object_array(self):
        arr = np.array(["a", "b"], dtype=object)
        assert isinstance(column_from_values(arr), CategoricalColumn)

    def test_passthrough(self):
        col = NumericColumn([1.0])
        assert column_from_values(col) is col
