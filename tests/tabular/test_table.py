"""Tests for repro.tabular.table."""

import numpy as np
import pytest

from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.tabular.table import Table
from repro.utils.errors import SchemaError


@pytest.fixture
def table():
    return Table(
        {
            "city": ["NY", "LA", "NY", "SF"],
            "value": [1.0, 2.0, 3.0, 4.0],
        }
    )


def test_basic_shape(table):
    assert table.n_rows == 4
    assert len(table) == 4
    assert table.column_names == ("city", "value")


def test_values_decoding(table):
    assert list(table.values("city")) == ["NY", "LA", "NY", "SF"]
    assert list(table.values("value")) == [1.0, 2.0, 3.0, 4.0]


def test_unknown_column(table):
    with pytest.raises(SchemaError):
        table.column("nope")


def test_mismatched_lengths_rejected():
    with pytest.raises(SchemaError):
        Table({"a": [1, 2], "b": [1]})


def test_inferred_schema_kinds(table):
    assert table.schema.spec("city").kind is AttributeKind.CATEGORICAL
    assert table.schema.spec("value").kind is AttributeKind.CONTINUOUS
    assert table.schema.spec("city").role is AttributeRole.AUXILIARY


def test_explicit_schema_mismatch_rejected():
    schema = Schema(
        [AttributeSpec("a", AttributeKind.CONTINUOUS, AttributeRole.AUXILIARY)]
    )
    with pytest.raises(SchemaError):
        Table({"a": ["x", "y"]}, schema=schema)


def test_schema_column_set_mismatch_rejected():
    schema = Schema(
        [AttributeSpec("a", AttributeKind.CONTINUOUS, AttributeRole.AUXILIARY)]
    )
    with pytest.raises(SchemaError):
        Table({"b": [1.0]}, schema=schema)


def test_filter(table):
    mask = np.array([True, False, True, False])
    sub = table.filter(mask)
    assert sub.n_rows == 2
    assert list(sub.values("city")) == ["NY", "NY"]
    assert sub.schema == table.schema


def test_filter_bad_mask(table):
    with pytest.raises(SchemaError):
        table.filter(np.array([1, 0, 1, 0]))  # not boolean
    with pytest.raises(SchemaError):
        table.filter(np.array([True]))  # wrong length


def test_take_preserves_order(table):
    sub = table.take(np.array([3, 0]))
    assert list(sub.values("value")) == [4.0, 1.0]


def test_head(table):
    assert table.head(2).n_rows == 2
    assert table.head(99).n_rows == 4


def test_select_and_drop(table):
    assert table.select(["value"]).column_names == ("value",)
    assert table.drop(["value"]).column_names == ("city",)
    with pytest.raises(SchemaError):
        table.select(["ghost"])


def test_with_column_add_and_replace(table):
    extended = table.with_column("flag", [1.0, 0.0, 1.0, 0.0])
    assert "flag" in extended.schema
    assert table.column_names == ("city", "value")  # original untouched
    replaced = table.with_column("value", [9.0] * 4)
    assert list(replaced.values("value")) == [9.0] * 4


def test_with_column_length_mismatch(table):
    with pytest.raises(SchemaError):
        table.with_column("bad", [1.0])


def test_from_rows_roundtrip():
    rows = [{"a": "x", "b": 1.0}, {"a": "y", "b": 2.0}]
    table = Table.from_rows(rows)
    assert table.to_rows() == rows


def test_from_rows_key_mismatch():
    with pytest.raises(SchemaError):
        Table.from_rows([{"a": 1}, {"b": 2}])


def test_from_rows_empty():
    with pytest.raises(SchemaError):
        Table.from_rows([])


def test_sample_fraction(table):
    sampled = table.sample_fraction(0.5, rng=0)
    assert sampled.n_rows == 2
    assert table.sample_fraction(1.0) is table
    with pytest.raises(ValueError):
        table.sample_fraction(0.0)
    with pytest.raises(ValueError):
        table.sample_fraction(1.5)


def test_sample_deterministic(table):
    a = table.sample_fraction(0.5, rng=3)
    b = table.sample_fraction(0.5, rng=3)
    assert a == b


def test_value_counts_and_unique(table):
    assert table.value_counts("city") == {"LA": 1, "NY": 2, "SF": 1}
    assert table.unique("city") == ("LA", "NY", "SF")


def test_equality(table):
    clone = Table(
        {"city": ["NY", "LA", "NY", "SF"], "value": [1.0, 2.0, 3.0, 4.0]}
    )
    assert table == clone
    assert table != table.filter(np.array([True, True, True, False]))


# -- fingerprint stability (regression: dtype upcasts and copies) ------------------


def test_fingerprint_stable_across_numeric_dtype_upcasts():
    """int / int32 / float sources of the same values share a fingerprint."""
    base = Table({"x": [1.0, 2.0, 3.0], "y": [0.5, 1.5, 2.5]})
    from_ints = Table({"x": [1, 2, 3], "y": [0.5, 1.5, 2.5]})
    from_int32 = Table(
        {
            "x": np.array([1, 2, 3], dtype=np.int32),
            "y": np.array([0.5, 1.5, 2.5], dtype=np.float32).astype(np.float64),
        }
    )
    assert base.fingerprint() == from_ints.fingerprint()
    assert base.fingerprint() == from_int32.fingerprint()


def test_fingerprint_stable_across_numpy_string_backing():
    """numpy-unicode and plain-list string columns hash identically.

    Regression: ``repr`` of a numpy scalar embeds the numpy type name
    (``np.str_('US')``), so a table built from an ``np.ndarray`` of
    strings used to fingerprint differently from a value-identical table
    built from a Python list — silently splitting the estimation cache.
    """
    from_list = Table({"c": ["US", "DE", "US"], "v": [1.0, 2.0, 3.0]})
    from_array = Table(
        {"c": np.array(["US", "DE", "US"]), "v": [1.0, 2.0, 3.0]}
    )
    assert from_list.fingerprint() == from_array.fingerprint()


def test_fingerprint_stable_across_row_order_preserving_copies():
    table = Table(
        {"city": ["NY", "LA", "NY", "SF"], "value": [1.0, 2.0, 3.0, 4.0]}
    )
    via_take = table.take(np.arange(table.n_rows))
    via_filter = table.filter(np.ones(table.n_rows, dtype=bool))
    rebuilt = Table(
        {name: table.values(name) for name in table.column_names},
        schema=table.schema,
    )
    assert via_take.fingerprint() == table.fingerprint()
    assert via_filter.fingerprint() == table.fingerprint()
    assert rebuilt.fingerprint() == table.fingerprint()


def test_fingerprint_still_distinguishes_real_differences():
    table = Table({"c": ["a", "b", "a"], "v": [1.0, 2.0, 3.0]})
    reordered = table.take(np.array([1, 0, 2]))
    assert reordered.fingerprint() != table.fingerprint()
    renamed = Table({"d": ["a", "b", "a"], "v": [1.0, 2.0, 3.0]})
    assert renamed.fingerprint() != table.fingerprint()
    # Separator injection: category values containing the separator byte
    # must not collide with split categories.
    joined = Table({"c": ["a\x1fb", "a\x1fb"], "v": [1.0, 2.0]})
    split = Table({"c": ["a", "b"], "v": [1.0, 2.0]})
    assert joined.fingerprint() != split.fingerprint()
