"""Child workload for the shard-store memory-cap regression test.

Runs one scenario-world mining pass — out of core (``sharded``) or fully
in RAM (``unsharded``) — optionally under an ``RLIMIT_AS`` address-space
cap, and reports the process's peak address space and peak RSS.  Invoked
as::

    python memcap_child.py <mode> <n_rows> <shard_rows> <cap_bytes>

``cap_bytes`` of 0 runs uncapped (the probe runs that size the cap).
Prints ``PEAK_KB=<VmPeak kB> RSS_KB=<ru_maxrss kB> OK`` on success; on
``MemoryError`` prints ``MEMORY_ERROR`` and exits 42.  The cap is applied
*after* imports: the interpreter baseline (~280 MB of address space for
numpy/scipy) is environment noise the test calibrates away — the cap is
about the workload, not the import footprint.
"""

from __future__ import annotations

import dataclasses
import resource
import shutil
import sys
import tempfile

from repro.scenarios import ScenarioWorld, run_world
from repro.scenarios.oracle import oracle_config
from repro.scenarios.spec import spec_by_name

WORLD = "linear-g3-d1-gap-lo"
EXIT_MEMORY_ERROR = 42


def vm_peak_kb() -> int:
    with open("/proc/self/status") as handle:
        for line in handle:
            if line.startswith("VmPeak:"):
                return int(line.split()[1])
    return -1


def main() -> int:
    mode, n, shard_rows, cap = (
        sys.argv[1],
        int(sys.argv[2]),
        int(sys.argv[3]),
        int(sys.argv[4]),
    )
    if cap:
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    world = ScenarioWorld(spec_by_name(WORLD))
    # One memory-lean config for BOTH paths, so the capped comparison is
    # apples to apples: per-context mining (no frontier keeping every
    # context alive) and no estimation cache (no retained factorizations).
    config = dataclasses.replace(
        oracle_config(world), frontier_batching=False, cache_size=0
    )
    directory = tempfile.mkdtemp(prefix="memcap-shards-")
    try:
        if mode == "sharded":
            bundle = world.sharded_bundle(n, directory, shard_rows)
        else:
            bundle = world.bundle(n)
        result = run_world(world, bundle, config)
    except MemoryError:
        print("MEMORY_ERROR")
        return EXIT_MEMORY_ERROR
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(
        f"PEAK_KB={vm_peak_kb()} RSS_KB={rss_kb} "
        f"RULES={result.metrics.n_rules} OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
