"""Full-pipeline integration tests on the synthetic paper datasets.

These assert the *shapes* the paper reports (who wins, directionality of
fairness/utility trade-offs), not absolute numbers.
"""

import pytest

pytestmark = pytest.mark.integration

from repro.core import FairCap, FairCapConfig, canonical_variants


def so_config(bundle, variant_name, variants=None):
    variants = variants or canonical_variants(
        "SP", 10_000.0, theta=0.5, theta_protected=0.5
    )
    return FairCapConfig(
        variant=variants[variant_name],
        max_values_per_attribute=5,
        max_grouping_size=2,
    )


@pytest.fixture(scope="module")
def so_results(small_so_bundle):
    bundle = small_so_bundle
    results = {}
    for name in ("No constraints", "Group fairness", "Rule coverage"):
        config = so_config(bundle, name)
        results[name] = FairCap(config).run(
            bundle.table, bundle.schema, bundle.dag, bundle.protected
        )
    return results


@pytest.mark.slow
def test_unconstrained_maximises_utility(so_results):
    unconstrained = so_results["No constraints"].metrics
    fair = so_results["Group fairness"].metrics
    assert unconstrained.expected_utility >= fair.expected_utility - 1e-9


@pytest.mark.slow
def test_fairness_constraint_reduces_unfairness(so_results):
    unconstrained = so_results["No constraints"].metrics
    fair = so_results["Group fairness"].metrics
    assert abs(fair.unfairness) < abs(unconstrained.unfairness)


@pytest.mark.slow
def test_unconstrained_is_unfair(so_results):
    """The headline finding: without constraints the protected group gets
    far less (paper: 18.4k vs 32.6k on SO)."""
    metrics = so_results["No constraints"].metrics
    assert metrics.expected_utility_protected < (
        0.8 * metrics.expected_utility_non_protected
    )


@pytest.mark.slow
def test_rule_coverage_selects_fewer_rules(so_results):
    assert (
        so_results["Rule coverage"].metrics.n_rules
        <= so_results["No constraints"].metrics.n_rules
    )


@pytest.mark.slow
def test_rules_are_actionable_and_causal(so_results):
    """No rule may recommend changing an immutable attribute, and every
    intervention attribute must be a causal ancestor of the outcome."""
    result = so_results["No constraints"]
    for rule in result.ruleset:
        assert rule.intervention.is_over(
            ("Education", "UndergradMajor", "Role", "HoursComputer",
             "RemoteWork", "PrimaryLanguage", "Exercise", "CompanySize",
             "OpenSource", "Certifications")
        )
        # SexualOrientation is immutable AND causally inert: never prescribed.
        assert "SexualOrientation" not in rule.intervention.attributes


@pytest.mark.slow
def test_german_bgl_shapes(small_german_bundle):
    bundle = small_german_bundle
    variants = canonical_variants("BGL", 0.1, theta=0.3, theta_protected=0.3)
    results = {}
    for name in ("No constraints", "Group fairness"):
        config = FairCapConfig(
            variant=variants[name], max_values_per_attribute=5,
            max_grouping_size=2,
        )
        results[name] = FairCap(config).run(
            bundle.table, bundle.schema, bundle.dag, bundle.protected
        )
    free = results["No constraints"].metrics
    fair = results["Group fairness"].metrics
    # BGL steers protected utility upward relative to the unconstrained run.
    assert fair.expected_utility_protected >= free.expected_utility_protected
    # Outcome is a probability: utilities live in [-1, 1].
    assert -1.0 <= free.expected_utility <= 1.0


@pytest.mark.slow
def test_timings_shape(so_results):
    """Figure 3 shape: treatment mining dominates group mining."""
    timings = so_results["No constraints"].timings
    assert timings["treatment_mining"] > timings["group_mining"]
