"""Memory-cap regression: out-of-core mining fits where in-RAM cannot.

The payoff claim of the sharded data layer, pinned as a hard resource
limit: there exists an ``RLIMIT_AS`` address-space cap under which the
in-RAM pipeline dies with ``MemoryError`` while the sharded pipeline —
same world, same mining configuration — runs to completion.

The cap is *calibrated*, not hardcoded: two uncapped probe runs measure
each path's peak address space, the test requires a wide separation (the
regression signal — if a change makes the sharded path materialise the
table, the separation collapses and this fails), and the capped runs then
execute at the midpoint, leaving half the separation as slack on each
side so allocator jitter cannot flip the outcome.

Row count: the probes run at 1M rows.  At 100k rows *everything* in these
worlds is small next to the ~280 MB numpy/scipy interpreter baseline —
the paths are separated by under 20 MB there, inside allocator noise; at
1M the unsharded path's full-table sampling and materialisation put it
~100 MB above the sharded path's whole-run peak, which a cap can split
robustly.  (The per-shard memory *scaling* story at 30k/100k/1M is the
scale-curve benchmark's job — ``benchmarks/bench_estimation.py``.)
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.slow, pytest.mark.integration]

CHILD = Path(__file__).with_name("memcap_child.py")
N_ROWS = 1_000_000
SHARD_ROWS = 4_096
#: Minimum probe separation for a meaningful cap.  Collapse below this is
#: itself the regression being guarded against.
MIN_SEPARATION_KB = 64 * 1024
EXIT_MEMORY_ERROR = 42


def _run_child(mode: str, cap_bytes: int) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(CHILD), mode, str(N_ROWS), str(SHARD_ROWS),
         str(cap_bytes)],
        capture_output=True,
        text=True,
        env=env,
        timeout=900,
    )


def _peak_kb(completed: subprocess.CompletedProcess) -> int:
    match = re.search(r"PEAK_KB=(\d+)", completed.stdout)
    assert match, (
        f"probe failed (rc={completed.returncode}):\n"
        f"{completed.stdout}\n{completed.stderr}"
    )
    return int(match.group(1))


@pytest.fixture(scope="module")
def probed_peaks() -> tuple[int, int]:
    """(sharded, unsharded) uncapped peak address space, in kB."""
    sharded = _run_child("sharded", 0)
    unsharded = _run_child("unsharded", 0)
    return _peak_kb(sharded), _peak_kb(unsharded)


def test_probes_show_wide_separation(probed_peaks):
    """The sharded run's whole-run peak sits well below the in-RAM run's."""
    sharded_kb, unsharded_kb = probed_peaks
    assert unsharded_kb - sharded_kb >= MIN_SEPARATION_KB, (
        f"memory separation collapsed: sharded peak {sharded_kb} kB, "
        f"unsharded peak {unsharded_kb} kB — the out-of-core path no "
        f"longer saves the full-table footprint"
    )


def test_unsharded_exceeds_cap_and_sharded_completes(probed_peaks):
    sharded_kb, unsharded_kb = probed_peaks
    if unsharded_kb - sharded_kb < MIN_SEPARATION_KB:
        pytest.fail("separation too small to place a meaningful cap")
    cap_bytes = (sharded_kb + unsharded_kb) // 2 * 1024

    in_ram = _run_child("unsharded", cap_bytes)
    assert in_ram.returncode != 0, (
        f"in-RAM mining completed under a {cap_bytes} byte RLIMIT_AS cap "
        f"it was measured to exceed:\n{in_ram.stdout}"
    )
    if in_ram.returncode == EXIT_MEMORY_ERROR:
        assert "MEMORY_ERROR" in in_ram.stdout

    out_of_core = _run_child("sharded", cap_bytes)
    assert out_of_core.returncode == 0, (
        f"sharded mining died under the cap (rc={out_of_core.returncode}):\n"
        f"{out_of_core.stdout}\n{out_of_core.stderr}"
    )
    assert "OK" in out_of_core.stdout
