"""Integration: the Sec. 8 cost extension composes with the full pipeline."""

import pytest

pytestmark = pytest.mark.integration

from repro.core import (
    FairCap,
    FairCapConfig,
    InterventionCostModel,
    select_within_budget,
)
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RulesetEvaluator

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def pipeline_output():
    table = build_toy_table(n=1500, seed=21)
    protected = ProtectedGroup(Pattern.of(Gender="Female"))
    result = FairCap(FairCapConfig(stop_threshold=0.0)).run(
        table, table.schema, build_toy_dag(), protected
    )
    evaluator = RulesetEvaluator(table, result.candidate_rules, protected)
    return result, evaluator


def test_budget_zero_blocks_everything(pipeline_output):
    __, evaluator = pipeline_output
    model = InterventionCostModel(default_cost=1.0)
    selection = select_within_budget(evaluator, model, budget=0.5)
    assert selection.indices == ()


def test_budget_limits_rule_count(pipeline_output):
    __, evaluator = pipeline_output
    model = InterventionCostModel(default_cost=1.0)
    tight = select_within_budget(evaluator, model, budget=2.0)
    loose = select_within_budget(evaluator, model, budget=1e9)
    assert len(tight.indices) <= 2
    assert loose.metrics.expected_utility >= tight.metrics.expected_utility


def test_expensive_treatment_displaced(pipeline_output):
    """Pricing the dominant treatment out of budget changes the selection."""
    __, evaluator = pipeline_output
    free = select_within_budget(
        evaluator, InterventionCostModel(default_cost=1.0), budget=1.0
    )
    assert free.indices  # something selected under uniform pricing
    first_rule = evaluator.rules[free.indices[0]]
    pred = first_rule.intervention.predicates[0]
    pricey = InterventionCostModel(
        value_costs={(pred.attribute, pred.value): 100.0}, default_cost=1.0
    )
    constrained = select_within_budget(evaluator, pricey, budget=1.0)
    assert free.indices[0] not in constrained.indices


def test_total_cost_within_budget(pipeline_output):
    __, evaluator = pipeline_output
    model = InterventionCostModel(default_cost=3.0)
    selection = select_within_budget(evaluator, model, budget=7.0)
    assert selection.total_cost <= 7.0
