"""Estimator validation against SCM ground truth across random models.

Generates random confounded SCMs, computes the true effect by noise replay,
and checks both estimators recover it through the full backdoor pipeline.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.integration

from repro.causal.backdoor import backdoor_adjustment_set
from repro.causal.estimators import LinearAdjustmentEstimator, StratifiedEstimator
from repro.causal.scm import SCMNode, StructuralCausalModel
from repro.datasets.synth import uniform_noise
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng


def random_confounded_scm(seed: int):
    """z (3 categories) -> t (binary) -> y, with z -> y; random effects."""
    rng = ensure_rng(seed)
    effect = float(rng.uniform(1.0, 10.0))
    z_effect = rng.uniform(-5.0, 5.0, size=3)
    uptake = rng.uniform(0.15, 0.85, size=3)

    def mk_z(parents, noise):
        return np.clip((noise * 3).astype(int), 0, 2).astype(np.float64)

    def mk_t(parents, noise):
        z = parents["z"].astype(int)
        return (noise < uptake[z]).astype(np.float64)

    def mk_y(parents, noise):
        z = parents["z"].astype(int)
        return effect * parents["t"] + z_effect[z] + noise

    scm = StructuralCausalModel(
        [
            SCMNode("z", (), mk_z, uniform_noise),
            SCMNode("t", ("z",), mk_t, uniform_noise),
            SCMNode("y", ("z", "t"), mk_y),
        ]
    )
    return scm, effect


@pytest.mark.slow
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_linear_estimator_recovers_random_effects(seed):
    scm, effect = random_confounded_scm(seed)
    values = scm.sample(6_000, rng=seed + 100)
    table = Table(
        {"z": [f"z{int(v)}" for v in values["z"]], "y": values["y"]}
    )
    adjustment = backdoor_adjustment_set(scm.dag(), ["t"], "y")
    assert adjustment == ("z",)
    result = LinearAdjustmentEstimator().estimate(
        table, values["t"].astype(bool), "y", adjustment
    )
    truth = scm.ground_truth_ate({"t": 1.0}, {"t": 0.0}, "y", n=20_000,
                                 rng=seed + 200)
    assert result.estimate == pytest.approx(truth, abs=0.3)


@pytest.mark.slow
@pytest.mark.parametrize("seed", [5, 6, 7])
def test_stratified_estimator_recovers_random_effects(seed):
    scm, effect = random_confounded_scm(seed)
    values = scm.sample(6_000, rng=seed + 100)
    table = Table(
        {"z": [f"z{int(v)}" for v in values["z"]], "y": values["y"]}
    )
    result = StratifiedEstimator().estimate(
        table, values["t"].astype(bool), "y", ("z",)
    )
    truth = scm.ground_truth_ate({"t": 1.0}, {"t": 0.0}, "y", n=20_000,
                                 rng=seed + 200)
    assert result.estimate == pytest.approx(truth, abs=0.3)


@pytest.mark.slow
def test_estimators_agree_with_each_other():
    scm, __ = random_confounded_scm(42)
    values = scm.sample(8_000, rng=9)
    table = Table(
        {"z": [f"z{int(v)}" for v in values["z"]], "y": values["y"]}
    )
    treated = values["t"].astype(bool)
    linear = LinearAdjustmentEstimator().estimate(table, treated, "y", ("z",))
    stratified = StratifiedEstimator().estimate(table, treated, "y", ("z",))
    assert linear.estimate == pytest.approx(stratified.estimate, abs=0.25)
