"""Tests for the appendix property checkers (Props. 9.1-9.2, Lemma 4.1)."""

import numpy as np
import pytest

from repro.fairness.constraints import statistical_parity
from repro.fairness.coverage import rule_coverage
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RulesetEvaluator
from repro.tabular.table import Table
from repro.theory.properties import (
    check_exchange_property,
    check_hereditary_property,
    check_lemma_4_1,
    check_submodularity,
)
from repro.utils.rng import ensure_rng

from tests.conftest import make_rule


@pytest.fixture(scope="module")
def evaluator():
    table = Table(
        {
            "g": ["A"] * 3 + ["B"] * 3 + ["C"] * 2,
            "p": ["yes", "no", "no"] * 2 + ["yes", "no"],
        }
    )
    protected = ProtectedGroup(Pattern.of(p="yes"))
    rules = [
        make_rule(Pattern.of(g="A"), Pattern.of(m="x"), 30.0, 28.0, 31.0,
                  coverage=3, protected_coverage=1),
        make_rule(Pattern.of(g="B"), Pattern.of(m="x"), 20.0, 5.0, 26.0,
                  coverage=3, protected_coverage=1),
        make_rule(Pattern.empty(), Pattern.of(m="y"), 8.0, 8.0, 8.0,
                  coverage=8, protected_coverage=3),
    ]
    return RulesetEvaluator(table, rules, protected)


def test_objective_submodular(evaluator):
    """Prop. 9.1: the Def. 4.6 objective shows diminishing returns."""
    violations = check_submodularity(evaluator, lambda_size=1.0, lambda_utility=1.0)
    assert violations == []


def test_size_only_objective_submodular(evaluator):
    violations = check_submodularity(
        evaluator, lambda_size=1.0, lambda_utility=0.0
    )
    assert violations == []


def test_submodularity_guard(evaluator):
    with pytest.raises(ValueError):
        check_submodularity(evaluator, max_candidates=1)


def test_detects_supermodular_function(evaluator):
    """A deliberately supermodular function must produce violations."""

    def supermodular(indices):
        return float(len(indices)) ** 2

    violations = check_submodularity(evaluator, objective=supermodular)
    assert violations


def test_individual_fairness_matroid(evaluator):
    constraint = statistical_parity("individual", 10.0)
    rules = list(evaluator.rules)
    assert check_hereditary_property(rules, constraint.satisfied_by_rule)
    assert check_exchange_property(rules, constraint.satisfied_by_rule)


def test_rule_coverage_matroid(evaluator):
    constraint = rule_coverage(0.3, 0.3)
    rules = list(evaluator.rules)

    def admissible(rule):
        return constraint.satisfied_by_rule(rule, evaluator.n,
                                            evaluator.n_protected)

    assert check_hereditary_property(rules, admissible)
    assert check_exchange_property(rules, admissible)


def test_lemma_4_1_on_random_utilities():
    rng = ensure_rng(0)
    for _ in range(20):
        utilities = rng.normal(size=rng.integers(1, 50))
        assert check_lemma_4_1(utilities)


def test_lemma_4_1_empty():
    assert check_lemma_4_1(np.array([]))


def test_lemma_4_1_constant():
    assert check_lemma_4_1(np.full(10, 3.0))
