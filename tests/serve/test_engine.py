"""Prescription engine: Eq. 5/6 resolution semantics and the profile cache."""

from __future__ import annotations

from repro.rules.ruleset import RuleSet
from repro.serve.artifact import ServingArtifact
from repro.serve.engine import PrescriptionEngine
from repro.tabular.schema import AttributeKind

from tests.serve.conftest import random_rules, random_table


US_30S = {"Country": "US", "Age": 35.0}


def test_non_protected_gets_max_utility_rule(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    result = engine.prescribe({**US_30S, "Gender": "M"})
    # All three rules match; rule 0 has the highest overall utility (Eq. 5).
    assert result.matched_rules == (0, 1, 2)
    assert result.rule_index == 0
    assert result.expected_utility == 5.0
    assert result.protected is False
    assert result.intervention[0]["attribute"] == "Training"


def test_protected_gets_min_protected_utility_rule(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    result = engine.prescribe({**US_30S, "Gender": "F"})
    # Worst-case semantics (Eq. 6): rule 2 has the lowest protected utility.
    assert result.rule_index == 2
    assert result.expected_utility == 1.0
    assert result.protected is True


def test_unknown_protected_status_uses_overall_semantics(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    result = engine.prescribe(US_30S)  # no Gender attribute supplied
    assert result.protected is None
    assert result.rule_index == 0  # falls back to Eq. 5


def test_no_protected_group_configured(toy_ruleset):
    engine = PrescriptionEngine(toy_ruleset)
    result = engine.prescribe(US_30S)
    assert result.protected is None
    assert result.rule_index == 0


def test_no_matching_rule_yields_empty_prescription(toy_ruleset, serve_protected):
    # Only the US rule, and the individual is German.
    ruleset = RuleSet([toy_ruleset[0]])
    engine = PrescriptionEngine(ruleset, protected=serve_protected)
    result = engine.prescribe({"Country": "DE", "Gender": "M"})
    assert result.rule_index is None
    assert result.matched_rules == ()
    assert result.expected_utility == 0.0
    assert result.intervention == ()


def test_cache_hits_and_eviction(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected, cache_size=2)
    a = {"Country": "US", "Age": 35.0, "Gender": "M"}
    b = {"Country": "DE", "Age": 20.0, "Gender": "F"}
    c = {"Country": "FR", "Age": 50.0, "Gender": "F"}
    assert engine.prescribe(a) == engine.prescribe(a)
    info = engine.cache_info()
    assert info["hits"] == 1 and info["misses"] == 1
    engine.prescribe(b)
    engine.prescribe(c)  # evicts a (LRU, max size 2)
    assert engine.cache_info()["size"] == 2
    engine.prescribe(a)
    assert engine.cache_info()["misses"] == 4


def test_cache_key_ignores_irrelevant_attributes(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    base = {"Country": "US", "Age": 35.0, "Gender": "M"}
    engine.prescribe({**base, "FavouriteColour": "teal"})
    engine.prescribe({**base, "FavouriteColour": "mauve"})
    assert engine.cache_info()["hits"] == 1


def test_cache_disabled(toy_ruleset):
    engine = PrescriptionEngine(toy_ruleset, cache_size=0)
    engine.prescribe(US_30S)
    engine.prescribe(US_30S)
    info = engine.cache_info()
    assert info == {"hits": 0, "misses": 0, "size": 0, "max_size": 0}


def test_clear_cache(toy_ruleset):
    engine = PrescriptionEngine(toy_ruleset)
    engine.prescribe(US_30S)
    engine.prescribe(US_30S)
    engine.clear_cache()
    assert engine.cache_info() == {
        "hits": 0, "misses": 0, "size": 0, "max_size": 1024,
    }


def test_batch_table_path_identical_to_scalar(serve_rng, serve_protected):
    rules = random_rules(serve_rng, 15)
    table = random_table(serve_rng, 300)
    engine = PrescriptionEngine(RuleSet(rules), protected=serve_protected)
    batch = engine.prescribe_table(table)
    engine.clear_cache()
    scalar = engine.prescribe_batch(table.to_rows())
    assert batch == scalar


def test_from_artifact_uses_schema_for_numeric_attributes(
    toy_ruleset, serve_protected, toy_table
):
    artifact = ServingArtifact(
        toy_ruleset, schema=toy_table.schema, protected=serve_protected
    )
    engine = PrescriptionEngine.from_artifact(artifact, cache_size=16)
    assert engine.schema is not None
    continuous = {
        s.name for s in engine.schema if s.kind is AttributeKind.CONTINUOUS
    }
    assert continuous  # the toy schema declares Income as continuous
    result = engine.prescribe({**US_30S, "Gender": "F"})
    assert result.protected is True


# -- thread safety: the profile LRU under concurrent hammering ----------------


def test_cache_survives_concurrent_hammering(toy_ruleset, serve_protected):
    """N threads x M profiles: no lost/corrupt entries, counters consistent.

    The LRU is mutated from every HTTP worker thread; without the lock,
    OrderedDict moves/evictions race (lost entries, corrupted linkage) and
    the hit/miss counters drift from the lookup count.  The invariant
    pinned here: hits + misses == total lookups, every returned
    prescription is bit-identical to an uncontended reference engine, and
    the cache never exceeds its bound.
    """
    import threading

    n_threads, n_rounds = 8, 40
    profiles = [
        {"Country": country, "Age": float(age), "Gender": gender}
        for country in ("US", "DE")
        for age in (20, 35)
        for gender in ("F", "M")
    ]  # 8 distinct profiles against cache_size 4: constant eviction pressure
    engine = PrescriptionEngine(
        toy_ruleset, protected=serve_protected, cache_size=4
    )
    reference = PrescriptionEngine(
        toy_ruleset, protected=serve_protected, cache_size=0
    )
    expected = {i: reference.prescribe(p) for i, p in enumerate(profiles)}

    mismatches: list = []
    errors: list = []
    barrier = threading.Barrier(n_threads)

    def hammer(seed: int) -> None:
        try:
            barrier.wait(timeout=10)
            for round_ in range(n_rounds):
                i = (seed + round_) % len(profiles)
                got = engine.prescribe(profiles[i])
                if got != expected[i]:
                    mismatches.append((i, got))
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(seed,)) for seed in range(n_threads)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert not mismatches, mismatches[:3]
    info = engine.cache_info()
    assert info["hits"] + info["misses"] == n_threads * n_rounds
    assert info["size"] <= 4
    # Cached entries must still resolve correctly after the storm.
    for i, profile in enumerate(profiles):
        assert engine.prescribe(profile) == expected[i]
