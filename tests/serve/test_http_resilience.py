"""Serving-tier resilience: backpressure, deadlines, drain, disconnects.

Each test drives a live :class:`~repro.serve.http.PrescriptionServer` into
one production failure mode and asserts the contract: overload answers an
honest 503 + ``Retry-After`` (never a hang), late requests answer 504, a
draining server finishes in-flight work while rejecting new work, and a
peer hanging up mid-response is counted — never recorded as a 500.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.engine import PrescriptionEngine
from repro.serve.http import make_server
from repro.utils.errors import ServeError

US_ROW = {"Country": "US", "Age": 35.0, "Gender": "M"}


class _GatedEngine:
    """Wraps an engine so ``prescribe`` blocks until the test releases it."""

    def __init__(self, engine: PrescriptionEngine):
        self._engine = engine
        self.entered = threading.Event()
        self.release = threading.Event()

    def __getattr__(self, name):
        return getattr(self._engine, name)

    def prescribe(self, individual):
        self.entered.set()
        assert self.release.wait(timeout=10.0), "test forgot to release the gate"
        return self._engine.prescribe(individual)


@pytest.fixture()
def gated_engine(toy_ruleset, serve_protected):
    return _GatedEngine(PrescriptionEngine(toy_ruleset, protected=serve_protected))


def _serve(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _post(url: str, payload: object) -> tuple[int, dict, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers
            )
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _counter_total(server, name: str) -> float:
    counter = server.metrics.snapshot()["counters"].get(name)
    if counter is None:
        return 0.0
    return sum(counter["values"].values())


# -- backpressure -------------------------------------------------------------


def test_capacity_overflow_rejects_with_503_retry_after(gated_engine):
    server = make_server(gated_engine, port=0, max_concurrency=1)
    thread = _serve(server)
    base = f"http://127.0.0.1:{server.port}"
    slow_result: dict = {}

    def slow_request():
        slow_result["response"] = _post(
            base + "/prescribe", {"individual": US_ROW}
        )

    worker = threading.Thread(target=slow_request)
    worker.start()
    try:
        assert gated_engine.entered.wait(timeout=10.0)
        # The only slot is held by the in-flight request: reject, don't queue.
        status, payload, headers = _post(
            base + "/prescribe", {"individual": US_ROW}
        )
        assert status == 503
        assert payload["error"]["code"] == "over_capacity"
        assert "capacity" in payload["error"]["message"]
        assert headers.get("Retry-After") == "1"
        # Ops endpoints bypass the gate: reachable exactly when overloaded.
        assert _get(base + "/health")[0] == 200
        assert _counter_total(server, "http.backpressure_rejections") == 1.0
    finally:
        gated_engine.release.set()
        worker.join(timeout=10)
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    assert slow_result["response"][0] == 200  # the admitted request finished


def test_concurrency_gate_validation(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    with pytest.raises(ServeError):
        make_server(engine, port=0, max_concurrency=0)
    with pytest.raises(ServeError):
        make_server(engine, port=0, request_deadline_seconds=0.0)


# -- deadlines ----------------------------------------------------------------


@pytest.fixture()
def live_server(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    server = make_server(engine, port=0)
    thread = _serve(server)
    try:
        yield server, f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_request_deadline_header_maps_to_504(live_server):
    server, base = live_server
    request = urllib.request.Request(
        base + "/prescribe",
        data=json.dumps({"individual": US_ROW}).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            # A microsecond deadline is already in the past by dispatch time.
            "X-Request-Deadline-Ms": "0.001",
        },
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 504
    body = json.loads(excinfo.value.read())
    assert body["error"]["code"] == "deadline_exceeded"
    assert "deadline" in body["error"]["message"]
    assert _counter_total(server, "http.deadline_exceeded") == 1.0
    # A 504 is not a success and not a 500: recorded under its own status.
    # The alias request is folded under its canonical /v1 label.
    requests = server.metrics.snapshot()["counters"]["http.requests"]["values"]
    assert requests == {"method=POST,path=/v1/prescribe,status=504": 1.0}


def test_server_level_deadline_bounds_batches(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    server = make_server(engine, port=0, request_deadline_seconds=1e-6)
    thread = _serve(server)
    try:
        status, payload, _ = _post(
            f"http://127.0.0.1:{server.port}/prescribe",
            {"individuals": [US_ROW] * 50},
        )
        assert status == 504
        assert payload["error"]["code"] == "deadline_exceeded"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_generous_deadline_does_not_interfere(live_server):
    _, base = live_server
    request = urllib.request.Request(
        base + "/prescribe",
        data=json.dumps({"individuals": [US_ROW, US_ROW]}).encode("utf-8"),
        headers={
            "Content-Type": "application/json",
            "X-Request-Deadline-Ms": "30000",
        },
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        assert response.status == 200
        assert json.loads(response.read())["count"] == 2


# -- graceful shutdown --------------------------------------------------------


def test_graceful_shutdown_drains_inflight_and_rejects_new(gated_engine):
    server = make_server(gated_engine, port=0)
    thread = _serve(server)
    base = f"http://127.0.0.1:{server.port}"
    slow_result: dict = {}

    def slow_request():
        slow_result["response"] = _post(
            base + "/prescribe", {"individual": US_ROW}
        )

    worker = threading.Thread(target=slow_request)
    worker.start()
    try:
        assert gated_engine.entered.wait(timeout=10.0)
        server.begin_graceful_shutdown(drain_timeout=10.0)
        # The accept loop keeps answering during the drain: new work gets
        # an honest 503, health reports the draining state.
        status, payload, headers = _post(
            base + "/prescribe", {"individual": US_ROW}
        )
        assert status == 503
        assert payload["error"]["code"] == "draining"
        assert "shutting down" in payload["error"]["message"]
        assert headers.get("Retry-After") == "1"
        status, payload = _get(base + "/health")
        assert status == 200 and payload["draining"] is True
    finally:
        gated_engine.release.set()
        worker.join(timeout=10)
    # The in-flight request was drained, not killed.
    assert slow_result["response"][0] == 200
    thread.join(timeout=10)
    assert not thread.is_alive(), "accept loop kept running after the drain"
    server.server_close()
    # Idempotent: a second signal must not start a second drain thread.
    server.begin_graceful_shutdown()


# -- client disconnects -------------------------------------------------------


def test_client_disconnect_is_counted_not_a_500(gated_engine):
    server = make_server(gated_engine, port=0)
    thread = _serve(server)
    try:
        body = json.dumps({"individual": US_ROW}).encode()
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=10)
        sock.sendall(
            b"POST /prescribe HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/json\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n"
            b"\r\n" + body
        )
        # Wait until the handler holds the request, then reset the
        # connection (SO_LINGER 0 sends RST, not FIN) and let it respond
        # into the dead socket.
        assert gated_engine.entered.wait(timeout=10.0)
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
        sock.close()
        gated_engine.release.set()

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if _counter_total(server, "http.client_disconnects") >= 1.0:
                break
            time.sleep(0.01)
        assert _counter_total(server, "http.client_disconnects") >= 1.0
        # The disconnect is the client's event, not a server failure: no
        # request may be recorded with a 5xx status.
        requests = (
            server.metrics.snapshot()["counters"]
            .get("http.requests", {"values": {}})["values"]
        )
        assert not any("status=5" in key for key in requests)
    finally:
        gated_engine.release.set()
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
