"""Request coalescing: the MicroBatcher and the engine's vectorized
prescribe_profiles path must be indistinguishable from per-request dispatch
— same prescriptions, same errors — while actually coalescing."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serve.batching import MicroBatcher
from repro.serve.config import ServeConfig
from repro.serve.engine import PrescriptionEngine
from repro.serve.http import make_server
from repro.utils.errors import ServeError

from tests.serve.conftest import random_row, random_rules

US_ROW = {"Country": "US", "Age": 35.0, "Gender": "M"}


# -- engine differential: prescribe_profiles == per-profile prescribe ----------


def _engine(serve_rng, serve_protected, n_rules=40) -> PrescriptionEngine:
    from repro.rules.ruleset import RuleSet

    return PrescriptionEngine(
        RuleSet(random_rules(serve_rng, n_rules)), protected=serve_protected
    )


def _outcome(engine, row):
    try:
        return ("ok", engine.prescribe(row))
    except ServeError as exc:
        return ("error", str(exc))


def _profile_outcome(result):
    if isinstance(result, ServeError):
        return ("error", str(result))
    return ("ok", result)


def test_prescribe_profiles_matches_scalar_on_random_rows(
    serve_rng, serve_protected
):
    engine = _engine(serve_rng, serve_protected)
    reference = PrescriptionEngine(
        engine.ruleset, protected=serve_protected, cache_size=0
    )
    rows = [random_row(serve_rng) for __ in range(200)]
    results = engine.prescribe_profiles(rows)
    assert len(results) == len(rows)
    for row, result in zip(rows, results):
        assert _profile_outcome(result) == _outcome(reference, row)


def test_prescribe_profiles_isolates_bad_profiles(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    rows = [
        US_ROW,
        {"Country": "US"},  # missing Age: per-profile error
        {"Country": "DE", "Age": 20.0, "Gender": "F"},
    ]
    good, bad, protected = engine.prescribe_profiles(rows)
    assert good.rule_index == 0
    assert isinstance(bad, ServeError)
    assert "missing attributes" in str(bad)
    assert protected.rule_index == 2 and protected.protected is True


def test_prescribe_profiles_handles_heterogeneous_and_odd_values(
    toy_ruleset, serve_protected
):
    """Key-set and value-type oddballs fall back to scalar, identically."""
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    reference = PrescriptionEngine(
        toy_ruleset, protected=serve_protected, cache_size=0
    )
    rows = [
        US_ROW,
        {"Country": "US", "Age": 35.0},               # no Gender key
        {"Country": "US", "Age": "35", "Gender": "M"},  # string on numeric plan
        {"Country": "US", "Age": True, "Gender": "M"},  # bool on numeric plan
        {"Country": "DE", "Age": 31.0, "Gender": "F", "Extra": 1},
        US_ROW,  # duplicate profile (cache interplay)
    ]
    results = engine.prescribe_profiles(rows)
    for row, result in zip(rows, results):
        assert _profile_outcome(result) == _outcome(reference, row)


def test_prescribe_profiles_counters_stay_consistent(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    rows = [
        {"Country": "US", "Age": float(20 + i), "Gender": "M"} for i in range(10)
    ]
    engine.prescribe_profiles(rows)   # all misses
    engine.prescribe_profiles(rows)   # all hits
    info = engine.cache_info()
    assert info["hits"] + info["misses"] == 20
    assert info["hits"] == 10


# -- MicroBatcher --------------------------------------------------------------


def test_batcher_validation():
    with pytest.raises(ServeError):
        MicroBatcher(0.0)
    with pytest.raises(ServeError):
        MicroBatcher(5.0, max_size=0)


def test_batcher_coalesces_concurrent_submissions(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    reference = PrescriptionEngine(
        toy_ruleset, protected=serve_protected, cache_size=0
    )
    sizes: list[int] = []
    batcher = MicroBatcher(window_ms=50.0, max_size=64, on_batch=sizes.append)
    rows = [
        {"Country": "US", "Age": float(25 + i), "Gender": "MF"[i % 2]}
        for i in range(12)
    ]
    results: dict[int, object] = {}
    barrier = threading.Barrier(len(rows))

    def submit(i):
        barrier.wait(timeout=10)
        try:
            results[i] = batcher.submit(engine, rows[i])
        except ServeError as exc:
            results[i] = exc

    threads = [
        threading.Thread(target=submit, args=(i,)) for i in range(len(rows))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=30)
    batcher.close()

    assert len(results) == len(rows)
    for i, row in enumerate(rows):
        assert _profile_outcome(results[i]) == _outcome(reference, row)
    assert sum(sizes) == len(rows)
    assert max(sizes) > 1, "concurrent submissions never coalesced"


def test_batcher_raises_per_request_errors(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    batcher = MicroBatcher(window_ms=5.0)
    try:
        with pytest.raises(ServeError, match="missing attributes"):
            batcher.submit(engine, {"Country": "US"})
        assert batcher.submit(engine, US_ROW).rule_index == 0
    finally:
        batcher.close()


def test_batcher_max_size_dispatches_early(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    sizes: list[int] = []
    # A huge window: only the max-size trigger can dispatch quickly.
    batcher = MicroBatcher(window_ms=10_000.0, max_size=2, on_batch=sizes.append)
    results = []
    barrier = threading.Barrier(2)

    def submit():
        barrier.wait(timeout=10)
        results.append(batcher.submit(engine, US_ROW))

    threads = [threading.Thread(target=submit) for __ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=10)
        assert not thread.is_alive(), "batch did not dispatch at max_size"
    batcher.close()
    assert len(results) == 2
    assert sizes and max(sizes) <= 2


def test_closed_batcher_still_answers(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    batcher = MicroBatcher(window_ms=5.0)
    batcher.close()
    # Zero-dropped-requests contract: late submissions serve directly.
    assert batcher.submit(engine, US_ROW).rule_index == 0


# -- HTTP-level differential ---------------------------------------------------


def _post(base, payload):
    request = urllib.request.Request(
        base + "/v1/prescribe",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_http_coalescing_differential(toy_ruleset, serve_protected, serve_rng):
    """Batched server answers exactly what an unbatched server answers."""
    rows = [random_row(serve_rng) for __ in range(24)]
    answers: dict[bool, list] = {}
    for batched in (False, True):
        engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
        config = ServeConfig(
            port=0,
            batch_window_ms=10.0 if batched else 0.0,
            batch_max_size=8,
        )
        server = make_server(engine, config=config)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.port}"
        try:
            collected: list = [None] * len(rows)
            barrier = threading.Barrier(len(rows))

            def run(i, base=base, collected=collected, barrier=barrier):
                barrier.wait(timeout=10)
                status, payload = _post(base, {"individual": rows[i]})
                collected[i] = (status, payload.get("prescription"))

            workers = [
                threading.Thread(target=run, args=(i,))
                for i in range(len(rows))
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=30)
            answers[batched] = collected
            if batched:
                snapshot = server.metrics.snapshot()
                histogram = snapshot["histograms"].get("serve.batch_size")
                assert histogram is not None, "no batch was ever dispatched"
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
    assert answers[True] == answers[False]
    assert all(status == 200 for status, __ in answers[True])


def test_numpy_values_round_trip_through_profiles(toy_ruleset, serve_protected):
    """np scalar types count as numeric for the vectorized path."""
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    rows = [
        {"Country": "US", "Age": np.float64(35.0), "Gender": "M"},
        {"Country": "US", "Age": np.int64(35), "Gender": "M"},
    ]
    results = engine.prescribe_profiles(rows)
    assert [r.rule_index for r in results] == [0, 0]
