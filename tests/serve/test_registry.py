"""ArtifactRegistry: versioning, activation, rollback, torn-file rejection,
and atomic hot-reload under concurrent load (no hybrid responses)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.mining.patterns import Pattern
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet
from repro.serve.artifact import ServingArtifact
from repro.serve.config import ServeConfig
from repro.serve.http import make_server
from repro.serve.registry import ArtifactRegistry
from repro.serve.schemas import ApiError

US_ROW = {"Country": "US", "Age": 35.0, "Gender": "M"}


def _ruleset_with_utility(utility: float) -> RuleSet:
    """One catch-all rule whose utility identifies the ruleset version."""
    return RuleSet(
        [
            PrescriptionRule(
                Pattern.empty(),
                Pattern.of(Training="Yes"),
                utility, utility, utility, 100, 30,
            )
        ]
    )


@pytest.fixture()
def registry(tmp_path) -> ArtifactRegistry:
    return ArtifactRegistry(tmp_path / "artifacts")


# -- versioning ---------------------------------------------------------------


def test_publish_assigns_monotonic_versions(registry, toy_ruleset):
    artifact = ServingArtifact(toy_ruleset)
    assert registry.list_versions() == []
    assert registry.latest_version() is None
    assert registry.publish(artifact) == 1
    assert registry.publish(artifact) == 2
    assert registry.publish(artifact) == 3
    records = registry.list_versions()
    assert [r.version for r in records] == [1, 2, 3]
    assert all(r.size_bytes > 0 for r in records)
    assert registry.latest_version() == 3


def test_listing_ignores_stray_temp_files(registry, toy_ruleset):
    registry.publish(ServingArtifact(toy_ruleset))
    (registry.root / "v000001.json.abc123.tmp").write_text("{", encoding="utf-8")
    (registry.root / "notes.txt").write_text("hi", encoding="utf-8")
    assert [r.version for r in registry.list_versions()] == [1]


def test_get_round_trips_published_artifact(registry, toy_ruleset):
    registry.publish(ServingArtifact(toy_ruleset))
    loaded = registry.get(1)
    assert len(loaded.ruleset) == len(toy_ruleset)
    assert loaded.ruleset[0].utility == toy_ruleset[0].utility


def test_get_absent_version_is_404(registry):
    with pytest.raises(ApiError) as excinfo:
        registry.get(7)
    assert excinfo.value.status == 404
    assert excinfo.value.code == "not_found"


@pytest.mark.parametrize(
    "torn",
    [
        b"",                           # zero-byte file (crashed writer)
        b'{"format": "faircap-rule',   # truncated mid-JSON
        b'{"format": "other", "version": 1}',  # parseable but wrong format
        b"\x00\x01\x02 garbage",       # not JSON at all
    ],
)
def test_torn_artifact_is_409_never_500(registry, torn):
    registry.path_for(1).write_bytes(torn)
    with pytest.raises(ApiError) as excinfo:
        registry.get(1)
    assert excinfo.value.status == 409
    assert excinfo.value.code == "artifact_invalid"


# -- activation and rollback --------------------------------------------------


def test_activate_rollback_round_trip(registry, toy_ruleset):
    registry.publish(ServingArtifact(_ruleset_with_utility(1.0)))
    registry.publish(ServingArtifact(_ruleset_with_utility(2.0)))
    assert registry.active_version() is None

    registry.activate(1)
    assert registry.active_version() == 1
    assert registry.previous_version() is None

    registry.activate(2)
    assert registry.active_version() == 2
    assert registry.previous_version() == 1

    version, artifact = registry.rollback()
    assert version == 1
    assert artifact.ruleset[0].utility == 1.0
    assert registry.active_version() == 1
    assert registry.previous_version() == 2  # rollback is itself reversible


def test_rollback_without_history_is_409(registry, toy_ruleset):
    registry.publish(ServingArtifact(toy_ruleset))
    with pytest.raises(ApiError) as excinfo:
        registry.rollback()
    assert excinfo.value.status == 409


def test_activating_torn_version_leaves_pointer_untouched(registry, toy_ruleset):
    registry.publish(ServingArtifact(toy_ruleset))
    registry.activate(1)
    registry.path_for(2).write_bytes(b'{"torn":')
    with pytest.raises(ApiError) as excinfo:
        registry.activate(2)
    assert excinfo.value.status == 409
    assert registry.active_version() == 1  # the swap never happened


def test_torn_active_pointer_reads_as_nothing_active(registry, toy_ruleset):
    registry.publish(ServingArtifact(toy_ruleset))
    registry.activate(1)
    (registry.root / "ACTIVE").write_bytes(b'{"version"')
    assert registry.active_version() is None
    registry.activate(1)  # recoverable by re-activating
    assert registry.active_version() == 1


# -- the full tier: HTTP hot reload -------------------------------------------


def _post(url: str, payload: object):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.fixture()
def registry_server(tmp_path):
    """A live server over a two-version registry (v1 active)."""
    registry = ArtifactRegistry(tmp_path / "artifacts")
    registry.publish(ServingArtifact(_ruleset_with_utility(5.0)))
    registry.publish(ServingArtifact(_ruleset_with_utility(9.0)))
    registry.activate(1)
    server = make_server(
        config=ServeConfig(port=0, artifact_dir=str(registry.root))
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.port}", registry
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_artifacts_endpoint_lists_registry(registry_server):
    _, base, __ = registry_server
    with urllib.request.urlopen(base + "/v1/artifacts", timeout=10) as response:
        payload = json.loads(response.read())
    assert payload["registry"] is True
    assert payload["active_version"] == 1
    assert [a["version"] for a in payload["artifacts"]] == [1, 2]
    assert [a["active"] for a in payload["artifacts"]] == [True, False]


def test_http_activate_and_rollback_round_trip(registry_server):
    _, base, __ = registry_server
    status, payload = _post(base + "/v1/artifacts/activate", {"version": 2})
    assert status == 200
    assert payload["active_version"] == 2
    assert payload["previous_version"] == 1

    status, payload = _post(base + "/v1/prescribe", {"individual": US_ROW})
    assert status == 200
    assert payload["ruleset_version"] == 2
    assert payload["prescription"]["expected_utility"] == 9.0

    status, payload = _post(base + "/v1/artifacts/activate", {"rollback": True})
    assert status == 200
    assert payload["active_version"] == 1

    status, payload = _post(base + "/v1/prescribe", {"individual": US_ROW})
    assert status == 200
    assert payload["ruleset_version"] == 1
    assert payload["prescription"]["expected_utility"] == 5.0


def test_http_activating_torn_artifact_is_409_and_keeps_serving(registry_server):
    _, base, registry = registry_server
    registry.path_for(3).write_bytes(b'{"torn":')
    status, payload = _post(base + "/v1/artifacts/activate", {"version": 3})
    assert status == 409
    assert payload["error"]["code"] == "artifact_invalid"
    # The old generation keeps serving.
    status, payload = _post(base + "/v1/prescribe", {"individual": US_ROW})
    assert status == 200
    assert payload["ruleset_version"] == 1


def test_http_activating_absent_version_is_404(registry_server):
    _, base, __ = registry_server
    status, payload = _post(base + "/v1/artifacts/activate", {"version": 42})
    assert status == 404
    assert payload["error"]["code"] == "not_found"


def test_hot_reload_under_concurrent_load_no_hybrids(registry_server):
    """Every response during a mid-load swap is wholly v1 or wholly v2.

    The version-utility pairing is the tell: v1 answers 5.0, v2 answers
    9.0.  A torn generation (new version number with the old engine, or
    vice versa) would break the pairing; a dropped request would surface
    as a non-200 or an exception.
    """
    _, base, __ = registry_server
    utility_by_version = {1: 5.0, 2: 9.0}
    results: list[tuple] = []
    errors: list[BaseException] = []
    lock = threading.Lock()
    start = threading.Barrier(4)

    def hammer():
        try:
            start.wait(timeout=10)
            for __ in range(30):
                status, payload = _post(
                    base + "/v1/prescribe", {"individual": US_ROW}
                )
                with lock:
                    results.append(
                        (
                            status,
                            payload.get("ruleset_version"),
                            payload["prescription"]["expected_utility"],
                        )
                    )
        except BaseException as exc:  # noqa: BLE001 - collected for assert
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=hammer) for __ in range(3)]
    for thread in threads:
        thread.start()
    start.wait(timeout=10)
    # Swap mid-load.
    status, __ = _post(base + "/v1/artifacts/activate", {"version": 2})
    assert status == 200
    for thread in threads:
        thread.join(timeout=30)
    assert not errors, errors
    assert len(results) == 90
    assert all(status == 200 for status, *_ in results)
    versions = {version for __, version, ___ in results}
    assert versions <= {1, 2}
    assert 2 in versions  # requests after the swap saw the new generation
    for __, version, utility in results:
        assert utility == utility_by_version[version], (
            f"hybrid response: version {version} answered utility {utility}"
        )
