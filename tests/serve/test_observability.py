"""Serving-tier observability: /metrics, request ids, structured logs."""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.serve.engine import PrescriptionEngine
from repro.serve.http import make_server


@pytest.fixture()
def observed_server(toy_ruleset, serve_protected):
    """A live server with structured logging captured into a StringIO."""
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    stream = io.StringIO()
    server = make_server(engine, port=0, quiet=False, log_stream=stream)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}", stream
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(url: str, headers: dict | None = None):
    request = urllib.request.Request(url, headers=headers or {})
    with urllib.request.urlopen(request) as response:
        return response, response.read()


def _log_events(stream: io.StringIO, event: str) -> list[dict]:
    records = [json.loads(line) for line in stream.getvalue().splitlines()]
    return [r for r in records if r["event"] == event]


def _wait_until(predicate, timeout: float = 2.0):
    """Poll for a post-response observation.

    A client sees the response body before the handler thread's ``finally``
    block records the request's metrics and access-log line, so assertions
    on those must allow the handler a moment to finish.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value or time.monotonic() > deadline:
            return value
        time.sleep(0.01)


def test_metrics_exposition_after_traffic(observed_server):
    base, _ = observed_server
    _get(base + "/health")
    _get(base + "/health")
    # Alias traffic reports under the canonical /v1 label.
    want = 'http_requests_total{method="GET",path="/v1/health",status="200"} 2'

    def scrape():
        response, body = _get(base + "/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith("text/plain")
        text = body.decode("utf-8")
        return text if want in text else ""

    text = _wait_until(scrape)
    assert "# TYPE http_requests_total counter" in text
    assert want in text
    assert 'http_request_seconds_bucket{method="GET",path="/v1/health",le="+Inf"} 2' in text
    assert 'http_request_seconds_count{method="GET",path="/v1/health"} 2' in text
    assert "# TYPE engine_rules gauge" in text
    assert "engine_rules 3" in text
    assert "engine_cache_size" in text


def test_unknown_paths_fold_into_other_label(observed_server):
    base, _ = observed_server
    for path in ("/nope", "/admin", "/nope/deeper"):
        try:
            _get(base + path)
        except urllib.error.HTTPError:
            pass
    want = 'http_requests_total{method="GET",path="other",status="404"} 3'
    text = _wait_until(
        lambda: next(
            (t for t in [_get(base + "/metrics")[1].decode("utf-8")] if want in t),
            "",
        )
    )
    assert want in text
    assert "/nope" not in text  # scanned paths never become label values


def test_request_id_minted_and_echoed(observed_server):
    base, _ = observed_server
    response, body = _get(base + "/health")
    minted = response.headers["X-Request-Id"]
    assert minted and len(minted) == 12
    assert json.loads(body)["request_id"] == minted

    response, body = _get(base + "/health", headers={"X-Request-Id": "abc-123"})
    assert response.headers["X-Request-Id"] == "abc-123"
    assert json.loads(body)["request_id"] == "abc-123"


def test_access_log_lines_correlate_with_responses(observed_server):
    base, stream = observed_server
    response, _ = _get(base + "/health", headers={"X-Request-Id": "corr-1"})
    assert response.status == 200
    events = _wait_until(lambda: _log_events(stream, "http.request"))
    assert len(events) == 1
    record = events[0]
    assert record["component"] == "serve"
    assert record["request_id"] == "corr-1"
    assert record["method"] == "GET"
    assert record["path"] == "/health"
    assert record["status"] == 200
    assert record["duration_ms"] >= 0
    assert "ts" in record and "client" in record


def test_quiet_server_logs_nothing(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    stream = io.StringIO()
    server = make_server(engine, port=0, quiet=True, log_stream=stream)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        _get(f"http://127.0.0.1:{server.port}/health")
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    time.sleep(0.05)  # let any stray handler thread finish before asserting
    assert stream.getvalue() == ""


def test_prescribe_latency_lands_in_the_histogram(observed_server):
    base, stream = observed_server
    request = urllib.request.Request(
        base + "/prescribe",
        data=json.dumps({"individual": {"Country": "US", "Age": 35.0}}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request) as response:
        payload = json.loads(response.read())
    assert "request_id" in payload
    want = ('http_requests_total{method="POST",path="/v1/prescribe",status="200"} 1')
    text = _wait_until(
        lambda: next(
            (t for t in [_get(base + "/metrics")[1].decode("utf-8")] if want in t),
            "",
        )
    )
    assert want in text
    assert 'http_request_seconds_count{method="POST",path="/v1/prescribe"} 1' in text
    events = _wait_until(lambda: _log_events(stream, "http.request"))
    assert any(r["path"] == "/prescribe" and r["status"] == 200 for r in events)
