"""The /v1 API surface: versioned routes, deprecated aliases (byte-identical),
the uniform error envelope, and method handling."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.engine import PrescriptionEngine
from repro.serve.http import LEGACY_ALIASES, make_server

US_ROW = {"Country": "US", "Age": 35.0, "Gender": "M"}


@pytest.fixture()
def live_server(toy_ruleset, serve_protected):
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    server = make_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _request(
    url: str,
    data: bytes | None = None,
    headers: dict | None = None,
    method: str | None = None,
):
    """(status, raw body bytes, headers) without raising on HTTP errors."""
    request = urllib.request.Request(
        url, data=data, headers=headers or {}, method=method
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read(), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, error.read(), dict(error.headers)


def _counter_total(server, name: str) -> float:
    counter = server.metrics.snapshot()["counters"].get(name)
    return sum(counter["values"].values()) if counter else 0.0


# -- /v1 surface ---------------------------------------------------------------


def test_v1_prescribe_carries_request_id_and_version(live_server):
    _, base = live_server
    status, body, headers = _request(
        base + "/v1/prescribe",
        data=json.dumps({"individual": US_ROW}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 200
    payload = json.loads(body)
    assert payload["prescription"]["rule_index"] == 0
    assert payload["ruleset_version"] is None  # single-artifact mode
    assert payload["request_id"] == headers["X-Request-Id"]


def test_v1_health_and_rules(live_server):
    _, base = live_server
    status, body, __ = _request(base + "/v1/health")
    assert status == 200
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["n_rules"] == 3
    assert payload["ruleset_version"] is None

    status, body, __ = _request(base + "/v1/rules")
    assert status == 200
    assert json.loads(body)["n_rules"] == 3


def test_v1_metrics_is_prometheus_text(live_server):
    _, base = live_server
    status, body, headers = _request(base + "/v1/metrics")
    assert status == 200
    assert headers["Content-Type"].startswith("text/plain")
    assert b"serve_ruleset_version" in body


def test_v1_artifacts_single_mode_is_read_only(live_server):
    _, base = live_server
    status, body, __ = _request(base + "/v1/artifacts")
    assert status == 200
    payload = json.loads(body)
    assert payload["registry"] is False
    assert payload["artifacts"] == []

    status, body, __ = _request(
        base + "/v1/artifacts/activate",
        data=json.dumps({"version": 1}).encode(),
        headers={"Content-Type": "application/json"},
    )
    assert status == 400
    assert json.loads(body)["error"]["code"] == "bad_request"


# -- deprecated aliases --------------------------------------------------------


def test_alias_bodies_are_byte_identical_to_v1(live_server):
    """Same handler, same request id => byte-for-byte identical bodies."""
    _, base = live_server
    prescribe_body = json.dumps({"individual": US_ROW}).encode()
    for alias, canonical in sorted(LEGACY_ALIASES.items()):
        if canonical == "/v1/metrics":
            continue  # counter values legitimately differ between scrapes
        kwargs = (
            {"data": prescribe_body, "headers": {"X-Request-Id": "pin-1"}}
            if canonical == "/v1/prescribe"
            else {"headers": {"X-Request-Id": "pin-1"}}
        )
        status_a, body_a, headers_a = _request(base + alias, **kwargs)
        status_v1, body_v1, headers_v1 = _request(base + canonical, **kwargs)
        assert status_a == status_v1 == 200
        assert body_a == body_v1, f"{alias} diverged from {canonical}"
        assert headers_a.get("Deprecation") == "true"
        assert "Deprecation" not in headers_v1


def test_alias_metrics_document_matches_v1_shape(live_server):
    _, base = live_server
    status, body, headers = _request(base + "/metrics")
    assert status == 200
    assert headers.get("Deprecation") == "true"
    assert b"# TYPE http_requests_total counter" in body or b"engine_rules" in body


def test_alias_errors_share_the_envelope(live_server):
    _, base = live_server
    for path in ("/prescribe", "/v1/prescribe"):
        status, body, __ = _request(
            base + path,
            data=json.dumps({"wrong": 1}).encode(),
            headers={"Content-Type": "application/json", "X-Request-Id": "pin-2"},
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["error"]["code"] == "bad_request"
        assert payload["error"]["request_id"] == "pin-2"


def test_deprecated_path_counter_increments(live_server):
    server, base = live_server
    before = _counter_total(server, "http.deprecated_path")
    _request(base + "/health")
    _request(base + "/rules")
    _request(base + "/v1/health")  # canonical: must NOT count
    assert _counter_total(server, "http.deprecated_path") == before + 2
    values = server.metrics.snapshot()["counters"]["http.deprecated_path"]["values"]
    assert "path=/health" in values and "path=/rules" in values


# -- error envelope and methods ------------------------------------------------


def test_unknown_path_envelope(live_server):
    _, base = live_server
    status, body, __ = _request(base + "/v1/nope")
    assert status == 404
    payload = json.loads(body)
    assert set(payload) == {"error"}
    assert set(payload["error"]) == {"code", "message", "request_id"}
    assert payload["error"]["code"] == "not_found"
    assert "/v1/nope" in payload["error"]["message"]


def test_wrong_method_is_405_not_404(live_server):
    _, base = live_server
    status, body, __ = _request(base + "/v1/prescribe")  # GET on a POST route
    assert status == 405
    assert json.loads(body)["error"]["code"] == "method_not_allowed"

    status, body, __ = _request(
        base + "/v1/health",
        data=b"{}",
        headers={"Content-Type": "application/json"},
    )
    assert status == 405
    assert json.loads(body)["error"]["code"] == "method_not_allowed"


def test_activate_request_validation(live_server):
    _, base = live_server

    def post_activate(payload):
        status, body, __ = _request(
            base + "/v1/artifacts/activate",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        return status, json.loads(body)

    status, payload = post_activate({"version": "two"})
    assert status == 400 and "integer" in payload["error"]["message"]
    status, payload = post_activate({"version": True})
    assert status == 400 and "integer" in payload["error"]["message"]
    status, payload = post_activate({"version": 1, "rollback": True})
    assert status == 400 and "mutually exclusive" in payload["error"]["message"]
    status, payload = post_activate([1, 2])
    assert status == 400 and "JSON object" in payload["error"]["message"]
