"""Artifact (de)serialization: exact round-trips and format validation."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap
from repro.core.variants import unconstrained
from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.ruleset import RuleSet
from repro.serve.artifact import (
    ARTIFACT_FORMAT,
    ARTIFACT_VERSION,
    ServingArtifact,
    predicate_from_dict,
    predicate_to_dict,
    rule_from_dict,
    rule_to_dict,
)
from repro.utils.errors import ServeError
from repro.utils.rng import ensure_rng

from tests.serve.conftest import random_rules


def test_predicate_round_trip_all_operators():
    for op in Operator:
        pred = Predicate("Age", op, 42.5)
        assert predicate_from_dict(predicate_to_dict(pred)) == pred


def test_predicate_numpy_scalar_values_become_plain():
    pred = Predicate("Age", Operator.GE, np.float64(30.0))
    payload = predicate_to_dict(pred)
    assert type(payload["value"]) is float
    assert predicate_from_dict(json.loads(json.dumps(payload))) == pred


def test_predicate_unserializable_value_rejected():
    with pytest.raises(ServeError, match="not JSON-serializable"):
        predicate_to_dict(Predicate("Age", Operator.EQ, object()))


def test_rule_round_trip_drops_diagnostics_but_compares_equal(toy_ruleset):
    for rule in toy_ruleset:
        rebuilt = rule_from_dict(json.loads(json.dumps(rule_to_dict(rule))))
        assert rebuilt == rule
        assert hash(rebuilt) == hash(rule)


def test_ruleset_json_round_trip(toy_ruleset):
    text = toy_ruleset.to_json()
    rebuilt = RuleSet.from_json(text)
    assert rebuilt == toy_ruleset
    # A second serialization of the rebuilt ruleset is byte-identical.
    assert rebuilt.to_json() == text


def test_full_artifact_round_trip(toy_ruleset, serve_protected, toy_table):
    artifact = ServingArtifact(
        ruleset=toy_ruleset,
        schema=toy_table.schema,
        protected=serve_protected,
        metadata={"dataset": "toy", "n_rows": 400},
    )
    rebuilt = ServingArtifact.from_json(artifact.to_json(indent=2))
    assert rebuilt.ruleset == artifact.ruleset
    assert rebuilt.schema == artifact.schema
    assert rebuilt.protected == artifact.protected
    assert rebuilt.metadata == artifact.metadata


def test_artifact_save_load(tmp_path, toy_ruleset):
    path = tmp_path / "ruleset.json"
    ServingArtifact(toy_ruleset).save(str(path))
    assert ServingArtifact.load(str(path)).ruleset == toy_ruleset


@pytest.mark.parametrize(
    "corruption, message",
    [
        ({"format": "something-else"}, "unknown artifact format"),
        ({"version": ARTIFACT_VERSION + 1}, "newer than supported"),
        ({"version": "one"}, "bad artifact version"),
        ({"rules": {"not": "a list"}}, "'rules' must be a list"),
    ],
)
def test_artifact_validation_errors(toy_ruleset, corruption, message):
    payload = ServingArtifact(toy_ruleset).to_dict()
    payload.update(corruption)
    with pytest.raises(ServeError, match=message):
        ServingArtifact.from_dict(payload)


def test_artifact_rejects_non_json_text():
    with pytest.raises(ServeError, match="not valid JSON"):
        ServingArtifact.from_json("{truncated")


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), n_rules=st.integers(0, 12))
def test_random_ruleset_round_trip_property(seed, n_rules):
    """to_json/from_json is the identity on randomized rulesets."""
    rng = ensure_rng(seed)
    ruleset = RuleSet(random_rules(rng, n_rules))
    rebuilt = RuleSet.from_json(ruleset.to_json())
    assert rebuilt == ruleset
    assert rebuilt.to_json() == ruleset.to_json()


@pytest.mark.parametrize("bundle_fixture", ["small_german_bundle", "small_so_bundle"])
def test_mined_ruleset_round_trips_exactly(bundle_fixture, request):
    """Acceptance: rulesets mined from both bundled datasets round-trip."""
    bundle = request.getfixturevalue(bundle_fixture)
    config = FairCapConfig(
        variant=unconstrained(),
        apriori_min_support=0.2,
        max_grouping_size=1,
        max_intervention_size=1,
        max_values_per_attribute=4,
    )
    result = FairCap(config).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )
    assert result.ruleset.size > 0
    artifact = ServingArtifact(
        result.ruleset, schema=bundle.schema, protected=bundle.protected
    )
    rebuilt = ServingArtifact.from_json(artifact.to_json())
    assert rebuilt.ruleset == result.ruleset
    assert rebuilt.schema == bundle.schema
    assert rebuilt.protected == bundle.protected
