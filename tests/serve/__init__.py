# Package marker: gives tests/serve modules unique import names so
# test_config.py / test_registry.py can coexist with the identically
# named modules under tests/core and tests/datasets.
