"""ServeConfig: validation (mirroring FairCapConfig), env defaults, overrides."""

from __future__ import annotations

import pytest

from repro.serve.config import ServeConfig
from repro.utils.errors import ServeError


def test_defaults_are_valid():
    config = ServeConfig()
    assert config.host == "127.0.0.1"
    assert config.port == 8080
    assert config.workers == 8
    assert config.max_concurrency == 64
    assert config.batch_window_ms == 0.0
    assert config.artifact_dir is None
    config.validate()  # idempotent


@pytest.mark.parametrize(
    "overrides",
    [
        {"host": ""},
        {"port": -1},
        {"port": 70_000},
        {"workers": 0},
        {"max_concurrency": 0},
        {"request_deadline_seconds": 0.0},
        {"request_deadline_seconds": -1.0},
        {"drain_timeout_seconds": 0.0},
        {"batch_window_ms": -0.5},
        {"batch_max_size": 0},
        {"cache_size": -1},
    ],
)
def test_invalid_settings_raise_on_construction(overrides):
    with pytest.raises(ServeError):
        ServeConfig(**overrides)


def test_none_disables_optional_bounds():
    config = ServeConfig(max_concurrency=None, request_deadline_seconds=None)
    assert config.max_concurrency is None
    assert config.request_deadline_seconds is None


def test_from_environment_reads_repro_serve_vars(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_HOST", "0.0.0.0")
    monkeypatch.setenv("REPRO_SERVE_PORT", "9999")
    monkeypatch.setenv("REPRO_SERVE_WORKERS", "4")
    monkeypatch.setenv("REPRO_SERVE_MAX_CONCURRENCY", "0")  # 0 = unbounded
    monkeypatch.setenv("REPRO_SERVE_DEADLINE_MS", "250")
    monkeypatch.setenv("REPRO_SERVE_BATCH_WINDOW_MS", "2.5")
    monkeypatch.setenv("REPRO_SERVE_BATCH_MAX", "16")
    monkeypatch.setenv("REPRO_SERVE_CACHE_SIZE", "33")
    monkeypatch.setenv("REPRO_SERVE_ARTIFACT_DIR", "/tmp/artifacts")
    config = ServeConfig.from_environment()
    assert config.host == "0.0.0.0"
    assert config.port == 9999
    assert config.workers == 4
    assert config.max_concurrency is None
    assert config.request_deadline_seconds == 0.25
    assert config.batch_window_ms == 2.5
    assert config.batch_max_size == 16
    assert config.cache_size == 33
    assert config.artifact_dir == "/tmp/artifacts"


def test_from_environment_defaults_without_vars(monkeypatch):
    for name in (
        "REPRO_SERVE_HOST",
        "REPRO_SERVE_PORT",
        "REPRO_SERVE_WORKERS",
        "REPRO_SERVE_MAX_CONCURRENCY",
        "REPRO_SERVE_DEADLINE_MS",
        "REPRO_SERVE_BATCH_WINDOW_MS",
        "REPRO_SERVE_BATCH_MAX",
        "REPRO_SERVE_CACHE_SIZE",
        "REPRO_SERVE_ARTIFACT_DIR",
    ):
        monkeypatch.delenv(name, raising=False)
    assert ServeConfig.from_environment() == ServeConfig()


def test_from_environment_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_SERVE_PORT", "not-a-port")
    with pytest.raises(ServeError, match="REPRO_SERVE_PORT"):
        ServeConfig.from_environment()
    monkeypatch.delenv("REPRO_SERVE_PORT")
    monkeypatch.setenv("REPRO_SERVE_DEADLINE_MS", "soon")
    with pytest.raises(ServeError, match="REPRO_SERVE_DEADLINE_MS"):
        ServeConfig.from_environment()


def test_with_overrides_validates_and_rejects_unknowns():
    config = ServeConfig()
    updated = config.with_overrides(port=0, workers=2, quiet=False)
    assert updated.port == 0 and updated.workers == 2 and updated.quiet is False
    assert config.port == 8080  # original untouched (frozen)
    with pytest.raises(ServeError, match="unknown ServeConfig fields"):
        config.with_overrides(portt=1)
    with pytest.raises(ServeError):
        config.with_overrides(workers=-3)  # replace() re-validates
