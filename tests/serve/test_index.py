"""Compiled index correctness: equivalence with the naive per-rule scan."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.rule import PrescriptionRule
from repro.serve.index import (
    CompiledRuleIndex,
    naive_match_row,
    naive_match_table,
)
from repro.utils.errors import ServeError
from repro.utils.rng import ensure_rng

from tests.serve.conftest import random_rules, random_row, random_table


def test_empty_grouping_matches_everyone(toy_ruleset):
    index = CompiledRuleIndex(toy_ruleset.rules)
    matched = index.match_row({"Country": "XX", "Age": 99.0})
    assert matched.tolist() == [False, False, True]


def test_numeric_interval_boundaries(toy_ruleset):
    index = CompiledRuleIndex(toy_ruleset.rules)
    # Rule 1 is 30 <= Age < 40.
    assert index.match_row({"Country": "DE", "Age": 30.0})[1]
    assert index.match_row({"Country": "DE", "Age": 39.999})[1]
    assert not index.match_row({"Country": "DE", "Age": 40.0})[1]
    assert not index.match_row({"Country": "DE", "Age": 29.999})[1]


def test_predicates_deduplicated_across_rules():
    shared = Predicate("Country", Operator.EQ, "US")
    rules = [
        PrescriptionRule(
            Pattern([shared]), Pattern.of(T="a"), 1.0, 1.0, 1.0, 10, 5
        ),
        PrescriptionRule(
            Pattern([shared, Predicate("Age", Operator.GT, 30.0)]),
            Pattern.of(T="b"), 2.0, 2.0, 2.0, 10, 5,
        ),
    ]
    index = CompiledRuleIndex(rules)
    assert index.n_predicates == 2  # not 3: the shared predicate counted once


def test_missing_attribute_is_reported(toy_ruleset):
    index = CompiledRuleIndex(toy_ruleset.rules)
    with pytest.raises(ServeError, match="missing attributes.*Age"):
        index.match_row({"Country": "US"})


def test_uncomparable_value_is_reported(toy_ruleset):
    index = CompiledRuleIndex(toy_ruleset.rules)
    with pytest.raises(ServeError, match="cannot compare"):
        index.match_row({"Country": "US", "Age": "not-a-number"})


def test_ordered_predicate_on_non_numeric_values_rejected():
    rules = [
        PrescriptionRule(
            Pattern([Predicate("Country", Operator.LT, "US")]),
            Pattern.of(T="a"), 1.0, 1.0, 1.0, 10, 5,
        )
    ]
    with pytest.raises(ServeError, match="ordered comparisons"):
        CompiledRuleIndex(rules)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), n_rules=st.integers(0, 15))
def test_match_row_equals_naive_scan_property(seed, n_rules):
    rng = ensure_rng(seed)
    rules = random_rules(rng, n_rules)
    index = CompiledRuleIndex(rules)
    for __ in range(20):
        row = random_row(rng)
        np.testing.assert_array_equal(
            index.match_row(row), naive_match_row(rules, row)
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000), n_rules=st.integers(0, 15))
def test_match_table_equals_naive_masks_property(seed, n_rules):
    rng = ensure_rng(seed)
    rules = random_rules(rng, n_rules)
    table = random_table(rng, 60)
    np.testing.assert_array_equal(
        CompiledRuleIndex(rules).match_table(table),
        naive_match_table(rules, table),
    )


def test_batch_and_scalar_paths_agree(serve_rng):
    rules = random_rules(serve_rng, 12)
    table = random_table(serve_rng, 250)
    index = CompiledRuleIndex(rules)
    batch = index.match_table(table)
    for i, row in enumerate(table.to_rows()):
        np.testing.assert_array_equal(index.match_row(row), batch[:, i])


def test_nan_value_matches_naive_semantics(toy_ruleset):
    """NaN compares False under every operator except != (naive parity)."""
    rules = list(toy_ruleset.rules) + [
        PrescriptionRule(
            Pattern([Predicate("Age", Operator.NE, 30.0)]),
            Pattern.of(T="c"), 1.0, 1.0, 1.0, 10, 5,
        )
    ]
    index = CompiledRuleIndex(rules)
    row = {"Country": "US", "Age": float("nan")}
    np.testing.assert_array_equal(index.match_row(row), naive_match_row(rules, row))
    assert not index.match_row(row)[1]  # the 30 <= Age < 40 rule must not fire
    assert index.match_row(row)[3]  # NaN != 30 is True


def test_index_equals_naive_scan_on_10k_individuals(serve_rng):
    """Acceptance: bit-identical matches on >= 10k random individuals."""
    rules = random_rules(serve_rng, 40)
    table = random_table(serve_rng, 10_000)
    np.testing.assert_array_equal(
        CompiledRuleIndex(rules).match_table(table),
        naive_match_table(rules, table),
    )
