"""HTTP round-trip smoke tests against a live PrescriptionServer.

These run through the legacy (pre-/v1) alias paths on purpose: the aliases
must answer identically to their /v1 counterparts (test_api_v1.py pins the
byte-for-byte equivalence).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve.engine import PrescriptionEngine
from repro.serve.http import make_server


@pytest.fixture()
def live_server(toy_ruleset, serve_protected):
    """A server on an ephemeral port, torn down after the test."""
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    server = make_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield f"http://127.0.0.1:{server.port}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _get(url: str) -> tuple[int, dict]:
    with urllib.request.urlopen(url) as response:
        return response.status, json.loads(response.read())


def _post(url: str, payload: object) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_health(live_server):
    status, payload = _get(live_server + "/health")
    assert status == 200
    assert payload["status"] == "ok"
    assert payload["n_rules"] == 3
    assert set(payload["cache"]) == {"hits", "misses", "size", "max_size"}


def test_rules_lists_the_served_ruleset(live_server, toy_ruleset):
    status, payload = _get(live_server + "/rules")
    assert status == 200
    assert payload["n_rules"] == len(toy_ruleset)
    assert payload["rules"][0]["utility"] == 5.0
    assert payload["rules"][0]["grouping"][0]["attribute"] == "Country"


def test_prescribe_single(live_server):
    status, payload = _post(
        live_server + "/prescribe",
        {"individual": {"Country": "US", "Age": 35.0, "Gender": "M"}},
    )
    assert status == 200
    prescription = payload["prescription"]
    assert prescription["rule_index"] == 0
    assert prescription["expected_utility"] == 5.0
    assert prescription["matched_rules"] == [0, 1, 2]


def test_prescribe_batch(live_server):
    individuals = [
        {"Country": "US", "Age": 35.0, "Gender": "M"},
        {"Country": "DE", "Age": 20.0, "Gender": "F"},
    ]
    status, payload = _post(
        live_server + "/prescribe", {"individuals": individuals}
    )
    assert status == 200
    assert payload["count"] == 2
    assert payload["prescriptions"][0]["rule_index"] == 0
    # The German 20-year-old only matches the catch-all rule; she is
    # protected, so the worst-case protected utility applies.
    assert payload["prescriptions"][1]["rule_index"] == 2
    assert payload["prescriptions"][1]["protected"] is True


def test_prescribe_missing_attributes_is_400(live_server):
    status, payload = _post(
        live_server + "/prescribe", {"individual": {"Country": "US"}}
    )
    assert status == 400
    assert payload["error"]["code"] == "bad_request"
    assert "missing attributes" in payload["error"]["message"]


def test_prescribe_malformed_json_is_400(live_server):
    request = urllib.request.Request(
        live_server + "/prescribe",
        data=b"{nope",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    body = json.loads(excinfo.value.read())
    assert "not valid JSON" in body["error"]["message"]


def test_prescribe_requires_individuals_key(live_server):
    status, payload = _post(live_server + "/prescribe", {"wrong": 1})
    assert status == 400
    assert "individual" in payload["error"]["message"]


def test_post_unknown_path_closes_keepalive_connection(live_server):
    """The unread body must not bleed into the next keep-alive request."""
    import http.client

    host = live_server.removeprefix("http://")
    connection = http.client.HTTPConnection(host, timeout=5)
    connection.request(
        "POST", "/nope", body=json.dumps({"individual": {}}).encode()
    )
    response = connection.getresponse()
    assert response.status == 404
    assert response.getheader("Connection") == "close"
    response.read()
    connection.close()
    # A fresh connection still serves normally.
    status, __ = _get(live_server + "/health")
    assert status == 200


def test_non_integer_content_length_is_400(live_server):
    import socket

    host, port = live_server.removeprefix("http://").split(":")
    with socket.create_connection((host, int(port)), timeout=5) as sock:
        sock.sendall(
            b"POST /prescribe HTTP/1.1\r\n"
            b"Host: test\r\nContent-Length: abc\r\n\r\n"
        )
        response = sock.recv(65536).decode()
    assert response.startswith("HTTP/1.1 400")
    assert "Content-Length" in response


def test_unknown_paths_are_404(live_server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(live_server + "/nope")
    assert excinfo.value.code == 404
    status, __ = _post(live_server + "/nope", {})
    assert status == 404


def test_oversized_body_is_rejected_with_400(live_server):
    """A Content-Length beyond MAX_BODY_BYTES is refused before reading."""
    import socket

    from repro.serve.http import MAX_BODY_BYTES

    host, port = live_server.removeprefix("http://").split(":")
    with socket.create_connection((host, int(port)), timeout=5) as sock:
        sock.sendall(
            b"POST /prescribe HTTP/1.1\r\n"
            b"Host: test\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        chunks = []
        while True:  # drain to EOF: the 400 closes the connection
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    response = b"".join(chunks).decode()
    assert response.startswith("HTTP/1.1 400")
    assert "exceeds" in response
    # The body was never read, so the connection must be closed.
    assert "Connection: close" in response


def test_oversized_batch_round_trips_under_the_limit(live_server):
    """A large-but-legal batch is served; every element gets an answer."""
    individuals = [
        {"Country": "US", "Age": 35.0, "Gender": "M"} for __ in range(500)
    ]
    status, payload = _post(
        live_server + "/prescribe", {"individuals": individuals}
    )
    assert status == 200
    assert payload["count"] == 500


def test_empty_body_is_400(live_server):
    request = urllib.request.Request(
        live_server + "/prescribe", data=b"", headers={}
    )
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request)
    assert excinfo.value.code == 400
    assert "empty" in json.loads(excinfo.value.read())["error"]["message"]


def test_unknown_ruleset_version_fails_at_load(toy_ruleset, serve_protected):
    """Serving an artifact from a newer format version must refuse early."""
    from repro.serve.artifact import ServingArtifact
    from repro.serve.engine import PrescriptionEngine
    from repro.utils.errors import ServeError

    artifact = ServingArtifact(toy_ruleset, protected=serve_protected)
    payload = json.loads(artifact.to_json())
    payload["version"] = 99
    with pytest.raises(ServeError, match="newer than supported"):
        PrescriptionEngine.from_artifact(
            ServingArtifact.from_json(json.dumps(payload))
        )


def test_individuals_must_be_objects(live_server):
    status, payload = _post(
        live_server + "/prescribe", {"individuals": ["not-an-object"]}
    )
    assert status == 400
    assert "list of JSON objects" in payload["error"]["message"]
