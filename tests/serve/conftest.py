"""Shared generators for the serving-subsystem tests.

Randomized rulesets deliberately reuse a small grid of attribute values and
numeric thresholds so that (a) predicates collide across rules, exercising
the index's deduplication, and (b) table values land exactly on thresholds,
exercising the strict/inclusive boundary handling of the sorted interval
lists.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng

CATEGORICAL_DOMAINS = {
    "Country": ("US", "DE", "IN", "FR"),
    "Role": ("Dev", "Ops", "Data"),
}
NUMERIC_GRID = {
    "Age": (18.0, 25.0, 30.0, 40.0, 55.0),
    "Salary": (30_000.0, 50_000.0, 90_000.0),
}
ALL_ATTRIBUTES = tuple(CATEGORICAL_DOMAINS) + tuple(NUMERIC_GRID)
_CAT_OPS = (Operator.EQ, Operator.NE)
_NUM_OPS = tuple(Operator)


def random_predicate(rng: np.random.Generator, attribute: str) -> Predicate:
    """A random predicate on ``attribute`` drawn from the shared grids."""
    if attribute in CATEGORICAL_DOMAINS:
        domain = CATEGORICAL_DOMAINS[attribute] + ("Unseen",)
        return Predicate(
            attribute,
            _CAT_OPS[rng.integers(len(_CAT_OPS))],
            domain[rng.integers(len(domain))],
        )
    grid = NUMERIC_GRID[attribute]
    return Predicate(
        attribute,
        _NUM_OPS[rng.integers(len(_NUM_OPS))],
        float(grid[rng.integers(len(grid))]),
    )


def random_rules(rng: np.random.Generator, n_rules: int) -> list[PrescriptionRule]:
    """Rules with random grouping patterns (0-3 predicates, distinct attrs)."""
    rules = []
    for __ in range(n_rules):
        n_preds = int(rng.integers(0, 4))
        attrs = rng.choice(len(ALL_ATTRIBUTES), size=n_preds, replace=False)
        grouping = Pattern(
            random_predicate(rng, ALL_ATTRIBUTES[int(a)]) for a in attrs
        )
        utility_p = float(rng.normal(0.0, 5.0))
        utility_np = float(rng.normal(0.0, 5.0))
        rules.append(
            PrescriptionRule(
                grouping=grouping,
                intervention=Pattern.of(Training="Yes"),
                utility=float(rng.normal(0.0, 5.0)),
                utility_protected=utility_p,
                utility_non_protected=utility_np,
                coverage_count=int(rng.integers(10, 500)),
                protected_coverage_count=int(rng.integers(0, 10)),
            )
        )
    return rules


def random_row(rng: np.random.Generator) -> dict[str, object]:
    """One individual covering every attribute in the shared universe."""
    row: dict[str, object] = {}
    for attribute, domain in CATEGORICAL_DOMAINS.items():
        row[attribute] = domain[rng.integers(len(domain))]
    for attribute, grid in NUMERIC_GRID.items():
        # Half the draws land exactly on a threshold, half in between.
        base = float(grid[rng.integers(len(grid))])
        row[attribute] = base if rng.random() < 0.5 else base + float(rng.random())
    row["Gender"] = ("F", "M")[rng.integers(2)]
    return row


def random_table(rng: np.random.Generator, n_rows: int) -> Table:
    """A table of :func:`random_row` individuals."""
    return Table.from_rows([random_row(rng) for __ in range(n_rows)])


@pytest.fixture()
def serve_rng() -> np.random.Generator:
    return ensure_rng(1234)


@pytest.fixture()
def toy_ruleset() -> RuleSet:
    """Three hand-built rules with distinct utility orderings."""
    return RuleSet(
        [
            PrescriptionRule(
                Pattern.of(Country="US"),
                Pattern.of(Training="Yes"),
                5.0, 2.0, 6.0, 100, 30,
            ),
            PrescriptionRule(
                Pattern(
                    [
                        Predicate("Age", Operator.GE, 30.0),
                        Predicate("Age", Operator.LT, 40.0),
                    ]
                ),
                Pattern.of(Training="Mentorship"),
                3.0, 4.0, 2.5, 80, 20,
            ),
            PrescriptionRule(
                Pattern.empty(),
                Pattern.of(Training="Course"),
                1.0, 1.0, 1.0, 200, 50,
            ),
        ]
    )


@pytest.fixture()
def serve_protected() -> ProtectedGroup:
    return ProtectedGroup(Pattern.of(Gender="F"), name="women")
