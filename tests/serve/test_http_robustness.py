"""Regression tests for HTTP-layer robustness bugs.

Covers two serving-tier fixes:

- ``_read_json_body`` must loop until the declared ``Content-Length`` is in
  hand (a single ``rfile.read`` may legally return fewer bytes when the
  body arrives in several TCP segments) and must map a premature EOF to a
  400 that closes the connection;
- a crashed GET route must produce the same JSON 500 fallback ``do_POST``
  has, so the client gets a response and the request metric records the
  real status instead of 0.
"""

from __future__ import annotations

import io
import json
import socket
import threading
import time

import pytest

from repro.serve.engine import PrescriptionEngine
from repro.serve.http import PrescriptionRequestHandler, make_server
from repro.utils.errors import ServeError


@pytest.fixture()
def live_server(toy_ruleset, serve_protected):
    """A server on an ephemeral port, torn down after the test."""
    engine = PrescriptionEngine(toy_ruleset, protected=serve_protected)
    server = make_server(engine, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _drain(sock: socket.socket) -> str:
    chunks = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks).decode()


# -- wire-level: segmented and truncated bodies -------------------------------


def test_body_delivered_in_two_tcp_segments(live_server):
    """A body split across TCP segments must still be read in full."""
    body = json.dumps(
        {"individual": {"Country": "US", "Age": 35.0, "Gender": "M"}}
    ).encode()
    head = (
        b"POST /prescribe HTTP/1.1\r\nHost: test\r\n"
        b"Content-Type: application/json\r\nConnection: close\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
    )
    split = len(body) // 2
    with socket.create_connection(("127.0.0.1", live_server.port), timeout=5) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(head + body[:split])
        time.sleep(0.2)  # force the remainder into a separate segment
        sock.sendall(body[split:])
        response = _drain(sock)
    assert response.startswith("HTTP/1.1 200")
    assert '"rule_index": 0' in response


def test_truncated_body_is_400_and_closes_connection(live_server):
    """EOF before Content-Length bytes arrive is a client error, not a hang."""
    body = json.dumps({"individual": {"Country": "US"}}).encode()
    head = (
        b"POST /prescribe HTTP/1.1\r\nHost: test\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(body)}\r\n\r\n".encode()
    )
    with socket.create_connection(("127.0.0.1", live_server.port), timeout=5) as sock:
        sock.sendall(head + body[: len(body) // 2])
        sock.shutdown(socket.SHUT_WR)  # half-close: server sees EOF mid-body
        response = _drain(sock)
    assert response.startswith("HTTP/1.1 400")
    assert "truncated" in response
    assert "Connection: close" in response


# -- unit-level: the read loop against a stub stream --------------------------


class _Headers:
    def __init__(self, length: int) -> None:
        self._length = length

    def get(self, name: str, default=None):
        if name == "Content-Length":
            return str(self._length)
        return default


class _DribblingStream:
    """A stream that returns at most ``chunk`` bytes per read call."""

    def __init__(self, payload: bytes, chunk: int) -> None:
        self._stream = io.BytesIO(payload)
        self._chunk = chunk

    def read(self, n: int) -> bytes:
        return self._stream.read(min(n, self._chunk))


def _bare_handler(payload: bytes, declared: int, chunk: int):
    handler = object.__new__(PrescriptionRequestHandler)
    handler.headers = _Headers(declared)
    handler.rfile = _DribblingStream(payload, chunk)
    handler.close_connection = False
    return handler


def test_read_json_body_loops_over_short_reads():
    payload = json.dumps({"individuals": [{"a": 1}, {"a": 2}]}).encode()
    handler = _bare_handler(payload, declared=len(payload), chunk=3)
    assert handler._read_json_body() == {"individuals": [{"a": 1}, {"a": 2}]}
    assert handler.close_connection is False


def test_read_json_body_reports_byte_counts_on_eof():
    payload = b'{"individual": {}}'
    handler = _bare_handler(payload[:7], declared=len(payload), chunk=4)
    with pytest.raises(ServeError, match=r"expected 18 bytes, got 7"):
        handler._read_json_body()
    assert handler.close_connection is True


# -- GET crash fallback -------------------------------------------------------


def _boom_rules(state):
    raise RuntimeError("kaboom")


def test_crashed_get_route_returns_json_500(live_server):
    live_server.service.rules = _boom_rules  # the /rules service call crashes
    with socket.create_connection(("127.0.0.1", live_server.port), timeout=5) as sock:
        sock.sendall(b"GET /rules HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        response = _drain(sock)
    status_line, _, rest = response.partition("\r\n")
    assert status_line == "HTTP/1.1 500 Internal Server Error"
    body = json.loads(rest.split("\r\n\r\n", 1)[1])
    assert body["error"]["code"] == "internal"
    assert body["error"]["message"] == "internal error: kaboom"
    assert body["error"]["request_id"]

    # The request metric must record the real status, not 0 (folded under
    # the canonical /v1 label even for the alias path).
    deadline = time.monotonic() + 2.0
    want = 'http_requests_total{method="GET",path="/v1/rules",status="500"} 1'
    while time.monotonic() < deadline:
        if want in live_server.render_metrics():
            break
        time.sleep(0.01)
    assert want in live_server.render_metrics()
    stale = 'status="0"'
    assert stale not in live_server.render_metrics()
