"""Planted-ruleset recovery at the largest n tier (oracle property b).

At each spec's ``recovery_n`` the mined ruleset must equal the planted
optimum — the analytically best treatment per admissible grouping pattern
under the scenario's own problem variant — or tie it in true expected
utility.  The variant scenarios additionally pin down *which* rules the
fairness machinery must flip:

- ``variant-indiv-sp`` / ``variant-indiv-bgl`` plant a top treatment whose
  benefit gap (SP) or protected floor (BGL) disqualifies it, so the
  recovered rules must differ from the unconstrained optimum;
- the coverage scenarios keep the unconstrained optimum feasible, so
  recovery doubles as a feasibility check.
"""

from __future__ import annotations

import pytest

from repro.mining.patterns import Pattern
from repro.scenarios import ScenarioWorld, check_planted_recovery
from repro.scenarios.world import CONTROL_VALUE, TREATED_VALUE

from tests.scenarios.conftest import SPECS, build_run

pytestmark = pytest.mark.scenario

RECOVERY_NAMES = sorted(
    name for name, spec in SPECS.items() if spec.assert_recovery
)


@pytest.fixture(scope="module", params=RECOVERY_NAMES, ids=lambda n: n)
def recovery_run(request):
    spec = SPECS[request.param]
    return build_run(request.param, n=spec.recovery_n)


def test_planted_ruleset_recovered(recovery_run):
    problems = check_planted_recovery(recovery_run.world, recovery_run.result)
    assert not problems, "\n".join(problems)


def test_recovered_rules_cover_every_planted_group(recovery_run):
    """Each admissible grouping pattern contributes exactly one rule."""
    world, result = recovery_run.world, recovery_run.result
    planted = world.planted_ruleset(
        result.config.variant,
        min_support=result.config.apriori_min_support,
    )
    assert {r.grouping for r in result.ruleset} == {
        r.grouping for r in planted
    }


def test_individual_sp_flips_the_best_treatment():
    """The SP constraint must reroute both groups to the low-gap treatment."""
    spec = SPECS["variant-indiv-sp"]
    world = ScenarioWorld(spec)
    result = build_run(spec.name, n=spec.recovery_n).result
    interventions = {rule.intervention for rule in result.ruleset}
    assert interventions == {
        Pattern.of(T2=TREATED_VALUE)
    }, "the high-gap treatment T1 must be disqualified by epsilon"
    # The unconstrained planted optimum prefers T1 — the constraint binds.
    unconstrained = world.planted_ruleset(None)
    assert any(
        rule.intervention
        in (Pattern.of(T1=TREATED_VALUE), Pattern.of(T1=CONTROL_VALUE))
        for rule in unconstrained
    )


def test_individual_bgl_floors_out_the_high_gap_treatment():
    spec = SPECS["variant-indiv-bgl"]
    result = build_run(spec.name, n=spec.recovery_n).result
    assert result.ruleset, "BGL scenario must still produce rules"
    for rule in result.ruleset:
        assert rule.intervention == Pattern.of(T2=TREATED_VALUE)
        assert rule.utility_protected >= spec.fairness_threshold


def test_overlap_scenario_selects_region_rules_too():
    """Overlapping grouping patterns each receive their own best rule."""
    spec = SPECS["overlap-regions"]
    result = build_run(spec.name, n=spec.recovery_n).result
    attributes = {rule.grouping.attributes for rule in result.ruleset}
    assert ("Group",) in attributes and ("Region",) in attributes
