"""Throughput mode against the scenario oracle (its certification gate).

``FairCapConfig.throughput_mode`` merges estimation GEMMs across grouping
contexts and skips the result cache, which deliberately trades the
serial ≡ process bit-identity contract for speed.  Its correctness gate is
therefore *not* the differential suite but this module: on every grid
world the merged engine must sit inside the same analytic CATE bands,
satisfy the same fairness/coverage constraints, recover the planted
ruleset at the recovery tier, and track the default engine at a tight
relative tolerance.
"""

from __future__ import annotations

import pytest

from repro.scenarios import ScenarioWorld, check_cate_recovery, check_fairness
from repro.scenarios.oracle import (
    check_planted_recovery,
    oracle_config,
    run_world,
    _compare_results,
)

from tests.scenarios.conftest import BASE_N, SPECS, ScenarioRun

pytestmark = pytest.mark.scenario

#: Merged GEMMs re-associate float reductions, so throughput mode tracks
#: the default engine at a relative tolerance instead of bit-identity.
THROUGHPUT_RTOL = 1e-6


def _build_throughput_run(name: str, n: int) -> ScenarioRun:
    world = ScenarioWorld(SPECS[name])
    bundle = world.bundle(n)
    config = oracle_config(world, throughput_mode=True)
    return ScenarioRun(world, bundle, run_world(world, bundle, config))


@pytest.fixture(scope="module", params=sorted(SPECS), ids=lambda n: n)
def throughput_run(request) -> ScenarioRun:
    """One throughput-mode FairCap run per grid world (base tier)."""
    return _build_throughput_run(request.param, BASE_N)


def test_cate_estimates_match_truth(throughput_run):
    problems = check_cate_recovery(throughput_run.world, throughput_run.result)
    assert not problems, "\n".join(problems)


def test_fairness_constraints_hold(throughput_run):
    problems = check_fairness(throughput_run.result)
    assert not problems, "\n".join(problems)


def test_tracks_default_engine_at_rtol(throughput_run):
    """Same candidates, same selection, utilities within THROUGHPUT_RTOL."""
    reference = run_world(throughput_run.world, throughput_run.bundle)
    problems = _compare_results(
        reference,
        throughput_run.result,
        THROUGHPUT_RTOL,
        "throughput-vs-default",
    )
    assert not problems, "\n".join(problems)


RECOVERY_NAMES = sorted(
    name for name, spec in SPECS.items() if spec.assert_recovery
)


@pytest.mark.parametrize("name", RECOVERY_NAMES)
def test_planted_ruleset_recovered(name):
    run = _build_throughput_run(name, SPECS[name].recovery_n)
    problems = check_planted_recovery(run.world, run.result)
    assert not problems, "\n".join(problems)
