"""Shared fixtures for the scenario oracle harness.

Every test in this directory carries the ``scenario`` marker (applied in
each module via ``pytestmark``), so CI can shard the oracle grid into its
own job (``-m scenario``) while plain ``pytest -x -q`` still runs it.

The expensive artifacts — a sampled world and its FairCap run — are built
once per scenario through module-scoped parametrized fixtures; the
per-scenario checks then share them.
"""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core.faircap import FairCapResult
from repro.datasets.bundle import DatasetBundle
from repro.scenarios import ScenarioWorld, oracle_grid, run_world

#: Row count of the base tier: every oracle property except exact planted
#: recovery is asserted here (recovery runs at each spec's recovery_n).
BASE_N = 500

SPECS = {spec.name: spec for spec in oracle_grid()}


@dataclass(frozen=True)
class ScenarioRun:
    """One sampled world plus its serial FairCap run."""

    world: ScenarioWorld
    bundle: DatasetBundle
    result: FairCapResult


def build_run(name: str, n: int = BASE_N) -> ScenarioRun:
    """Sample scenario ``name`` at ``n`` rows and mine it serially."""
    world = ScenarioWorld(SPECS[name])
    bundle = world.bundle(n)
    return ScenarioRun(world, bundle, run_world(world, bundle))


@pytest.fixture(scope="module", params=sorted(SPECS), ids=lambda n: n)
def scenario_run(request) -> ScenarioRun:
    """The base-tier run of every grid scenario (one FairCap run each)."""
    return build_run(request.param)
