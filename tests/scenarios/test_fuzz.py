"""Scenario fuzzing: randomized and degenerate worlds never break invariants.

Hypothesis-style randomized probing, seeded through the repo's per-test
``rng`` fixture (so draws are reproducible and order-independent): random
specs from the full parameter space — including zero-effect rows, negative
effects, inverted benefit gaps, depth-0 confounding, inert regions — are
mined end to end and checked against the invariants that hold for *every*
world, plus dedicated tests for the named degenerate worlds.
"""

from __future__ import annotations

import pytest

from repro.core.variants import ProblemVariant
from repro.fairness.constraints import bounded_group_loss, statistical_parity
from repro.scenarios import (
    ScenarioWorld,
    check_batch_scalar,
    check_cate_recovery,
    check_fairness,
    check_serve_roundtrip,
    oracle_config,
    random_spec,
    run_world,
    spec_by_name,
)

pytestmark = pytest.mark.scenario

FUZZ_ROUNDS = 8
FUZZ_N = 300


def _fuzz_variant(rng) -> ProblemVariant:
    """A random matroid-constraint variant (or none)."""
    choice = int(rng.integers(0, 3))
    if choice == 1:
        return ProblemVariant(fairness=statistical_parity("individual", 1.0))
    if choice == 2:
        return ProblemVariant(fairness=bounded_group_loss("individual", 0.2))
    return ProblemVariant()


def test_randomized_worlds_hold_invariants(rng):
    """No crash, truthful CATEs, matroid fairness, batch ≡ scalar."""
    for round_index in range(FUZZ_ROUNDS):
        spec = random_spec(rng, index=round_index)
        world = ScenarioWorld(spec)
        bundle = world.bundle(FUZZ_N, rng=int(rng.integers(2**31)))
        config = oracle_config(world, variant=_fuzz_variant(rng))
        result = run_world(world, bundle, config)

        label = f"round {round_index} ({spec.effects!r})"
        for rule in result.candidate_rules:
            assert rule.utility == rule.utility, label  # not NaN
        problems = check_cate_recovery(world, result)
        problems += check_fairness(result)
        problems += check_batch_scalar(world, bundle, config, reference=result)
        problems += check_serve_roundtrip(result, bundle)
        assert not problems, label + "\n" + "\n".join(problems)


def test_random_specs_are_deterministic_per_stream():
    import numpy as np

    a = random_spec(np.random.default_rng(np.random.SeedSequence(1)), 3)
    b = random_spec(np.random.default_rng(np.random.SeedSequence(1)), 3)
    assert a == b


# -- named degenerate worlds -------------------------------------------------------


def test_zero_effect_world_mines_nothing_of_value():
    """Where nothing moves the outcome, truth is silence (or noise-level)."""
    world = ScenarioWorld(spec_by_name("zero-effect"))
    bundle = world.bundle(800)
    result = run_world(world, bundle)
    # Any selected rule is a false positive at the significance level: its
    # *true* utility is exactly zero, so the true expected utility of the
    # recovered ruleset is zero.
    for rule in result.ruleset:
        predicate = rule.intervention.predicates[0]
        truth = world.true_rule(
            rule.grouping, predicate.attribute, str(predicate.value)
        )
        assert truth.utility == 0.0
        assert abs(rule.utility) < 0.5  # noise-level estimate only
    recovered = [
        world._true_prescription_rule(
            rule.grouping,
            rule.intervention.predicates[0].attribute,
            str(rule.intervention.predicates[0].value),
        )
        for rule in result.ruleset
    ]
    assert world.true_metrics(recovered).expected_utility == 0.0


def test_perfectly_separated_world_yields_no_rules():
    """Treatment determined by the confounder: nothing is identified."""
    world = ScenarioWorld(spec_by_name("separated"))
    bundle = world.bundle(600)
    result = run_world(world, bundle)
    assert len(result.candidate_rules) == 0
    assert len(result.ruleset) == 0
    # The non-identification is flagged, not silently mis-estimated.
    from repro.rules.utility import RuleEvaluator
    from repro.mining.patterns import Pattern

    evaluator = RuleEvaluator(
        bundle.table, "Outcome", bundle.dag, bundle.protected
    )
    rule = evaluator.evaluate(Pattern.of(Group="g0"), Pattern.of(T1="Yes"))
    assert rule.estimate is not None and not rule.estimate.valid
    assert "collinear" in rule.estimate.reason


def test_single_stratum_world_recovers_the_global_rule():
    world = ScenarioWorld(spec_by_name("single-stratum"))
    spec = world.spec
    result = run_world(world, world.bundle(spec.recovery_n))
    assert len(result.ruleset) == 1
    rule = result.ruleset[0]
    assert rule.coverage_count == spec.recovery_n  # covers the whole table
    planted = world.planted_ruleset(None)
    assert rule.grouping == planted[0].grouping
    assert rule.intervention == planted[0].intervention


def test_tiny_sample_respects_the_subgroup_guard():
    """Below min_subgroup_size every estimate is invalid — empty ruleset."""
    world = ScenarioWorld(spec_by_name("linear-g2-d1-fair-lo"))
    bundle = world.bundle(12)
    result = run_world(
        world, bundle, oracle_config(world, min_subgroup_size=10)
    )
    assert len(result.ruleset) == 0
