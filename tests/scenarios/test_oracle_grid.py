"""The oracle grid: every generated world, end to end, against closed form.

For each of the 36 grid scenarios (parametrized through the module-scoped
``scenario_run`` fixture — one FairCap run per world) this module asserts
the oracle properties (a), (c), (d) and (e):

a. CATE estimates sit inside the analytic band around the closed-form
   truth (z standard errors + a small absolute slack);
c. the scenario's fairness/coverage constraints hold on the mined result;
d. batch ≡ scalar estimation and serial ≡ process execution;
e. the serving subsystem round-trips the mined ruleset through
   export → JSON → compile → prescribe with identical decisions.

Property (b) — planted-ruleset recovery at the largest n tier — lives in
``test_recovery.py``.
"""

from __future__ import annotations

import pytest

from repro.scenarios import (
    check_batch_scalar,
    check_cate_recovery,
    check_executors,
    check_fairness,
    check_serve_roundtrip,
)

pytestmark = pytest.mark.scenario


def test_grid_is_large_and_distinct():
    from repro.scenarios import oracle_grid

    specs = oracle_grid()
    assert len(specs) >= 30
    assert len({spec.name for spec in specs}) == len(specs)


def test_pipeline_produces_finite_rules(scenario_run):
    """Structural sanity: the run completes and utilities are finite."""
    result = scenario_run.result
    for rule in result.candidate_rules:
        assert rule.utility == rule.utility  # not NaN
        assert abs(rule.utility) < 1e6
    assert result.nodes_evaluated >= 0


def test_cate_estimates_match_truth(scenario_run):
    problems = check_cate_recovery(scenario_run.world, scenario_run.result)
    assert not problems, "\n".join(problems)


def test_fairness_constraints_hold(scenario_run):
    problems = check_fairness(scenario_run.result)
    assert not problems, "\n".join(problems)


def test_batch_equals_scalar(scenario_run):
    problems = check_batch_scalar(
        scenario_run.world,
        scenario_run.bundle,
        reference=scenario_run.result,
    )
    assert not problems, "\n".join(problems)


def test_serial_equals_process(scenario_run):
    problems = check_executors(
        scenario_run.world,
        scenario_run.bundle,
        reference=scenario_run.result,
    )
    assert not problems, "\n".join(problems)


def test_serve_roundtrip_preserves_decisions(scenario_run):
    problems = check_serve_roundtrip(scenario_run.result, scenario_run.bundle)
    assert not problems, "\n".join(problems)
