"""Unit tests of the closed-form oracle itself.

The scenario harness is only as good as its oracle, so this module checks
the closed-form machinery against independent references: cell enumeration
against basic probability, analytic CATEs against the SCM's replayed-noise
simulation (:meth:`StructuralCausalModel.ground_truth_cate`), and the
planted ruleset against hand-computed optima.
"""

from __future__ import annotations

import pytest

from repro.fairness.constraints import statistical_parity
from repro.core.variants import ProblemVariant
from repro.mining.patterns import Pattern
from repro.scenarios import ScenarioSpec, ScenarioWorld, load_scenario, spec_by_name
from repro.scenarios.world import (
    CONTROL_VALUE,
    PROTECTED_VALUE,
    TREATED_VALUE,
)
from repro.utils.errors import ConfigError

pytestmark = pytest.mark.scenario


@pytest.fixture(scope="module")
def gap_world() -> ScenarioWorld:
    return ScenarioWorld(spec_by_name("linear-g2-d1-gap-lo"))


def test_cells_sum_to_one(gap_world):
    total = sum(prob for __, prob in gap_world.cells())
    assert total == pytest.approx(1.0)


def test_true_rule_matches_hand_computation(gap_world):
    spec = gap_world.spec
    truth = gap_world.true_rule(Pattern.of(Group="g0"), "T1", TREATED_VALUE)
    effect = spec.effects[0][0]
    factor = spec.factors[0]
    q = spec.protected_rate
    assert truth.utility_non_protected == pytest.approx(effect)
    assert truth.utility_protected == pytest.approx(effect * factor)
    assert truth.utility == pytest.approx(
        effect * ((1.0 - q) + factor * q)
    )
    # The control-value rule is the mirror image.
    mirrored = gap_world.true_rule(Pattern.of(Group="g0"), "T1", CONTROL_VALUE)
    assert mirrored.utility == pytest.approx(-truth.utility)


def test_true_cate_matches_scm_simulation(gap_world):
    """Closed form ≡ replayed-noise interventional simulation."""
    truth = gap_world.true_rule(Pattern.of(Group="g1"), "T1", TREATED_VALUE)
    simulated = gap_world.scm.ground_truth_cate(
        interventions={"T1": TREATED_VALUE},
        baseline={"T1": CONTROL_VALUE},
        outcome="Outcome",
        n=120_000,
        rng=7,
        condition=lambda values: values["Group"] == "g1",
    )
    assert simulated == pytest.approx(truth.utility, abs=0.02)

    protected_sim = gap_world.scm.ground_truth_cate(
        interventions={"T1": TREATED_VALUE},
        baseline={"T1": CONTROL_VALUE},
        outcome="Outcome",
        n=120_000,
        rng=7,
        condition=lambda values: (
            (values["Group"] == "g1") & (values["Status"] == PROTECTED_VALUE)
        ),
    )
    assert protected_sim == pytest.approx(truth.utility_protected, abs=0.04)


def test_planted_ruleset_unconstrained(gap_world):
    planted = gap_world.planted_ruleset(None)
    by_group = {rule.grouping: rule for rule in planted}
    assert set(by_group) == {Pattern.of(Group="g0"), Pattern.of(Group="g1")}
    # g0's largest |effect| is +3.0 on T1 (take it); g1's is -2.6 (avoid it).
    assert by_group[Pattern.of(Group="g0")].intervention == Pattern.of(
        T1=TREATED_VALUE
    )
    assert by_group[Pattern.of(Group="g1")].intervention == Pattern.of(
        T1=CONTROL_VALUE
    )


def test_planted_ruleset_respects_individual_fairness():
    world = ScenarioWorld(spec_by_name("variant-indiv-sp"))
    variant = world.spec.variant()
    planted = world.planted_ruleset(variant)
    for rule in planted:
        assert rule.intervention == Pattern.of(T2=TREATED_VALUE)
        assert variant.fairness.satisfied_by_rule(rule)
    unconstrained = world.planted_ruleset(None)
    assert {r.intervention for r in unconstrained} != {
        r.intervention for r in planted
    }


def test_planted_ruleset_rule_coverage_raises_support():
    world = ScenarioWorld(spec_by_name("variant-rule-coverage"))
    variant = world.spec.variant()
    planted = world.planted_ruleset(variant)
    for rule in planted:
        assert world.pattern_probability(rule.grouping) >= 0.3


def test_true_metrics_eq5_semantics(gap_world):
    """Disjoint groups: Eq. 5 is the probability-weighted rule utility."""
    planted = list(gap_world.planted_ruleset(None))
    metrics = gap_world.true_metrics(planted)
    expected = sum(
        gap_world.pattern_probability(rule.grouping) * rule.utility
        for rule in planted
    )
    assert metrics.expected_utility == pytest.approx(expected)
    assert metrics.coverage == pytest.approx(1.0)
    assert metrics.protected_coverage == pytest.approx(1.0)


def test_true_metrics_overlap_uses_max_semantics():
    world = ScenarioWorld(spec_by_name("overlap-regions"))
    planted = list(world.planted_ruleset(None))
    group_only = [r for r in planted if r.grouping.attributes == ("Group",)]
    metrics_all = world.true_metrics(planted)
    metrics_groups = world.true_metrics(group_only)
    # Adding overlapping positive-utility rules can only raise Eq. 5.
    assert metrics_all.expected_utility >= metrics_groups.expected_utility


def test_spec_validation_rejects_bad_shapes():
    with pytest.raises(ConfigError):
        ScenarioSpec(name="bad", effects=((1.0,), (1.0, 2.0)))
    with pytest.raises(ConfigError):
        ScenarioSpec(name="bad", effects=((1.0,),), group_probs=(0.6, 0.4))
    with pytest.raises(ConfigError):
        ScenarioSpec(name="bad", effects=((1.0,),), protected_rate=1.5)
    with pytest.raises(ConfigError):
        ScenarioSpec(
            name="bad",
            effects=((1.0,),),
            base_propensity=0.9,
            propensity_tilt=0.2,
        )
    with pytest.raises(ConfigError):
        ScenarioSpec(name="bad", effects=((1.0,),), fairness_kind="SP")


def test_spec_seed_is_stable():
    spec = spec_by_name("linear-g2-d1-fair-lo")
    assert spec.seed == spec_by_name("linear-g2-d1-fair-lo").seed
    assert spec.seed != spec_by_name("linear-g2-d1-fair-hi").seed


def test_variant_construction():
    spec = spec_by_name("variant-group-sp")
    variant = spec.variant()
    assert variant.has_group_fairness
    other = ProblemVariant(fairness=statistical_parity("group", 3.0))
    assert variant.fairness == other.fairness


def test_load_scenario_via_catalog():
    bundle = load_scenario("scenario:single-stratum", n=200, rng=3)
    assert bundle.table.n_rows == 200
    assert bundle.name == "scenario:single-stratum"
    assert bundle.scm is not None
    # Bare names resolve too.
    bare = load_scenario("single-stratum", n=50, rng=3)
    assert bare.table.n_rows == 50
    with pytest.raises(ConfigError):
        load_scenario("scenario:not-a-world")


def test_protected_count_expectation(gap_world):
    spec = gap_world.spec
    expected = gap_world.protected_count_expectation(
        Pattern.of(Group="g0"), n=1000
    )
    assert expected == pytest.approx(1000 * 0.5 * spec.protected_rate)


def test_bundle_samples_are_seed_stable(gap_world):
    a = gap_world.bundle(100)
    b = gap_world.bundle(100)
    assert a.table.fingerprint() == b.table.fingerprint()
    c = gap_world.bundle(100, rng=123)
    assert c.table.fingerprint() != a.table.fingerprint()
