"""Tests for the problem-variant space (Sec. 4.7)."""

from repro.core.variants import (
    ProblemVariant,
    all_variants,
    canonical_variants,
    unconstrained,
)


def test_unconstrained():
    variant = unconstrained()
    assert variant.name == "No constraints"
    assert not variant.has_group_fairness
    assert not variant.has_rule_coverage


def test_canonical_variants_are_nine():
    variants = canonical_variants("SP", 10_000.0, 0.5, 0.5)
    assert len(variants) == 9
    expected_names = {
        "No constraints", "Group coverage", "Rule coverage",
        "Group fairness", "Individual fairness",
        "Group coverage, Group fairness", "Rule coverage, Group fairness",
        "Group coverage, Individual fairness",
        "Rule coverage, Individual fairness",
    }
    assert set(variants) == expected_names


def test_names_match_structure():
    variants = canonical_variants("SP", 1.0, 0.5, 0.5)
    v = variants["Rule coverage, Group fairness"]
    assert v.has_rule_coverage and v.has_group_fairness
    v = variants["Group coverage, Individual fairness"]
    assert v.has_group_coverage and v.has_individual_fairness


def test_thresholds_propagated():
    variants = canonical_variants("BGL", 0.1, 0.3, 0.25)
    v = variants["Group coverage, Group fairness"]
    assert v.fairness.threshold == 0.1
    assert v.coverage.theta == 0.3
    assert v.coverage.theta_protected == 0.25


def test_all_variants_eighteen_combinations():
    variants = all_variants(10_000.0, 0.1, 0.5, 0.5)
    # 6 SP-fairness + 6 BGL-fairness + 3 shared fairness-free = 15 distinct
    # keys covering the paper's 9 x {SP, BGL} = 18 nominal variants.
    assert len(variants) == 15
    sp = [k for k in variants if k.startswith("SP:")]
    bgl = [k for k in variants if k.startswith("BGL:")]
    shared = [k for k in variants if ":" not in k]
    assert len(sp) == 6 and len(bgl) == 6 and len(shared) == 3


def test_describe_includes_thresholds():
    variants = canonical_variants("SP", 10_000.0, 0.5, 0.5)
    text = variants["Group coverage, Group fairness"].describe()
    assert "10000" in text and "0.5" in text
    assert ProblemVariant().describe() == "no constraints"
