"""Tests for the brute-force reference solver and greedy quality."""

import pytest

from repro.core.bruteforce import brute_force_select
from repro.core.config import FairCapConfig
from repro.core.greedy import greedy_select
from repro.core.variants import canonical_variants
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RulesetEvaluator
from repro.tabular.table import Table
from repro.utils.errors import ConfigError

from tests.conftest import make_rule


def build_small_pool():
    table = Table(
        {
            "g": ["A"] * 3 + ["B"] * 3 + ["C"] * 3,
            "p": ["yes", "no", "no"] * 3,
        }
    )
    protected = ProtectedGroup(Pattern.of(p="yes"))
    rules = [
        make_rule(Pattern.of(g="A"), Pattern.of(m="x"), 30.0, 28.0, 31.0,
                  coverage=3, protected_coverage=1),
        make_rule(Pattern.of(g="B"), Pattern.of(m="x"), 20.0, 19.0, 21.0,
                  coverage=3, protected_coverage=1),
        make_rule(Pattern.of(g="C"), Pattern.of(m="x"), 10.0, 2.0, 14.0,
                  coverage=3, protected_coverage=1),
        make_rule(Pattern.empty(), Pattern.of(m="y"), 5.0, 5.0, 5.0,
                  coverage=9, protected_coverage=3),
    ]
    return RulesetEvaluator(table, rules, protected)


def test_finds_optimum_unconstrained():
    evaluator = build_small_pool()
    config = FairCapConfig(lambda_size=0.1, lambda_utility=1.0)
    result = brute_force_select(evaluator, config)
    # Verify optimality by re-enumeration through the objective helper.
    from itertools import combinations

    best = max(
        (
            config.lambda_size * (4 - len(s))
            + config.lambda_utility * evaluator.metrics(list(s)).expected_utility
            for size in range(0, 5)
            for s in combinations(range(4), size)
        ),
    )
    assert result.objective == pytest.approx(best)


def test_respects_constraints():
    evaluator = build_small_pool()
    variants = canonical_variants("SP", 5.0, theta=0.0, theta_protected=0.0)
    config = FairCapConfig(
        variant=variants["Individual fairness"], lambda_size=0.0
    )
    result = brute_force_select(evaluator, config)
    for rule in result.ruleset:
        assert abs(rule.utility_gap) <= 5.0


def test_infeasible_returns_empty():
    evaluator = build_small_pool()
    variants = canonical_variants("SP", 0.0001, theta=0.9, theta_protected=0.9)
    config = FairCapConfig(variant=variants["Rule coverage, Group fairness"])
    result = brute_force_select(evaluator, config)
    # Only the global rule passes rule coverage, but its gap is 0 -> check.
    for rule in result.ruleset:
        assert abs(rule.utility_gap) <= 0.0001


def test_max_candidates_guard():
    evaluator = build_small_pool()
    with pytest.raises(ConfigError):
        brute_force_select(evaluator, FairCapConfig(), max_candidates=2)


def test_greedy_not_far_from_optimal():
    """On small pools the greedy utility should be near the brute force.

    The 1-1/e bound applies to the submodular objective; empirically we
    check a 50% floor to catch gross regressions.
    """
    evaluator = build_small_pool()
    config = FairCapConfig(lambda_size=0.0, lambda_utility=1.0,
                           stop_threshold=0.0)
    exact = brute_force_select(evaluator, config)
    greedy = greedy_select(evaluator, config)
    assert greedy.metrics.expected_utility >= 0.5 * (
        exact.metrics.expected_utility
    )


def test_subset_count_reported():
    evaluator = build_small_pool()
    result = brute_force_select(evaluator, FairCapConfig())
    assert result.subsets_examined == 16  # 2^4 subsets including empty
