"""Property-based invariants of the greedy selector."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FairCapConfig
from repro.core.greedy import greedy_select
from repro.core.variants import canonical_variants
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RulesetEvaluator
from repro.tabular.table import Table
from repro.utils.rng import ensure_rng


@st.composite
def random_pool(draw):
    seed = draw(st.integers(0, 10_000))
    rng = ensure_rng(seed)
    n = draw(st.integers(10, 60))
    n_groups = draw(st.integers(2, 5))
    groups = rng.integers(0, n_groups, n)
    protected = rng.random(n) < 0.3
    table = Table(
        {
            "g": [f"g{v}" for v in groups],
            "p": np.where(protected, "yes", "no").astype(object),
        }
    )
    rules = []
    for i in range(draw(st.integers(1, 6))):
        target = int(rng.integers(0, n_groups))
        grouping = Pattern.of(g=f"g{target}")
        mask = grouping.mask(table)
        rules.append(
            PrescriptionRule(
                grouping=grouping,
                intervention=Pattern.of(m=f"x{i}"),
                utility=float(abs(rng.normal(10, 5)) + 0.1),
                utility_protected=float(rng.normal(5, 5)),
                utility_non_protected=float(rng.normal(12, 5)),
                coverage_count=int(mask.sum()),
                protected_coverage_count=int((mask & protected).sum()),
            )
        )
    return RulesetEvaluator(table, rules, ProtectedGroup(Pattern.of(p="yes")))


@settings(max_examples=40, deadline=None)
@given(random_pool(), st.integers(1, 6))
def test_greedy_structural_invariants(evaluator, max_rules):
    config = FairCapConfig(max_rules=max_rules, stop_threshold=0.0)
    result = greedy_select(evaluator, config)
    # No duplicates, valid indices, size cap respected.
    assert len(set(result.indices)) == len(result.indices)
    assert all(0 <= i < len(evaluator) for i in result.indices)
    assert len(result.indices) <= max_rules
    # Metrics agree with a batch evaluation of the same subset.
    assert result.metrics == evaluator.metrics(list(result.indices))
    # Trace aligns with selections.
    assert [s.candidate_index for s in result.trace] == list(result.indices)


@settings(max_examples=30, deadline=None)
@given(random_pool())
def test_greedy_individual_fairness_never_violated(evaluator):
    variants = canonical_variants("SP", 6.0, theta=0.0, theta_protected=0.0)
    config = FairCapConfig(
        variant=variants["Individual fairness"], stop_threshold=0.0
    )
    result = greedy_select(evaluator, config)
    for rule in result.ruleset:
        assert abs(rule.utility_gap) <= 6.0


@settings(max_examples=30, deadline=None)
@given(random_pool())
def test_greedy_rule_coverage_never_violated(evaluator):
    variants = canonical_variants("SP", 1e12, theta=0.3, theta_protected=0.0)
    config = FairCapConfig(
        variant=variants["Rule coverage"], stop_threshold=0.0
    )
    result = greedy_select(evaluator, config)
    for rule in result.ruleset:
        assert rule.coverage_count >= 0.3 * evaluator.n
