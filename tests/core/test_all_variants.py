"""Every problem variant must run end-to-end (Sec. 4.7: 18 variants).

The paper stresses that FairCap "can be easily adapted to accommodate all
variants of the Prescription Ruleset Selection problem"; this test runs the
full pipeline under every enumerated variant (9 structural x {SP, BGL},
deduplicated to 15 distinct constraint combinations) on the toy dataset.
"""

import pytest

from repro.core import FairCap, FairCapConfig, all_variants
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def setup():
    table = build_toy_table(n=800, seed=17)
    return table, build_toy_dag(), ProtectedGroup(Pattern.of(Gender="Female"))


VARIANTS = all_variants(
    sp_epsilon=6_000.0, bgl_tau=1_000.0, theta=0.3, theta_protected=0.3
)


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_variant_runs_end_to_end(setup, name):
    table, dag, protected = setup
    variant = VARIANTS[name]
    config = FairCapConfig(variant=variant, apriori_min_support=0.2)
    result = FairCap(config).run(table, table.schema, dag, protected)
    # Pipeline invariants that hold for every variant:
    assert result.metrics.n_rules <= config.max_rules
    for rule in result.ruleset:
        assert rule.utility > 0
        rule.check_role_split(
            table.schema.immutable_names, table.schema.mutable_names
        )
    # Matroid constraints are per-rule guarantees — check them exactly.
    if variant.has_individual_fairness:
        for rule in result.ruleset:
            assert variant.fairness.satisfied_by_rule(rule)
    if variant.has_rule_coverage:
        for rule in result.ruleset:
            assert variant.coverage.satisfied_by_rule(
                rule, result.n_rows, result.n_protected
            )
