"""Tests for Step 1 (grouping-pattern mining)."""

import pytest

from repro.core.config import FairCapConfig
from repro.core.grouping import mine_grouping_patterns
from repro.core.variants import canonical_variants
from repro.utils.errors import ConfigError

from tests.conftest import build_toy_table


@pytest.fixture(scope="module")
def setup():
    from repro.mining.patterns import Pattern
    from repro.rules.protected import ProtectedGroup

    table = build_toy_table(n=500, seed=1)
    protected = ProtectedGroup(Pattern.of(Gender="Female"))
    return table, table.schema, protected


def test_patterns_over_immutables_only(setup):
    table, schema, protected = setup
    config = FairCapConfig(apriori_min_support=0.1)
    patterns = mine_grouping_patterns(table, schema, config, protected)
    assert patterns
    for fp in patterns:
        assert fp.pattern.is_over(schema.immutable_names)


def test_supports_meet_threshold(setup):
    table, schema, protected = setup
    config = FairCapConfig(apriori_min_support=0.3)
    patterns = mine_grouping_patterns(table, schema, config, protected)
    assert all(fp.support >= 0.3 for fp in patterns)


def test_rule_coverage_raises_threshold(setup):
    table, schema, protected = setup
    variants = canonical_variants("SP", 1.0, theta=0.45, theta_protected=0.0)
    config = FairCapConfig(
        variant=variants["Rule coverage"], apriori_min_support=0.1
    )
    patterns = mine_grouping_patterns(table, schema, config, protected)
    assert all(fp.support >= 0.45 for fp in patterns)


def test_rule_coverage_protected_filter(setup):
    table, schema, protected = setup
    variants = canonical_variants("SP", 1.0, theta=0.1, theta_protected=0.5)
    config = FairCapConfig(variant=variants["Rule coverage"])
    patterns = mine_grouping_patterns(table, schema, config, protected)
    protected_mask = protected.mask(table)
    n_protected = int(protected_mask.sum())
    for fp in patterns:
        covered_protected = int((fp.pattern.mask(table) & protected_mask).sum())
        assert covered_protected >= 0.5 * n_protected


def test_explicit_grouping_attributes(setup):
    table, schema, protected = setup
    config = FairCapConfig(grouping_attributes=("City",))
    patterns = mine_grouping_patterns(table, schema, config, protected)
    assert all(fp.pattern.attributes == ("City",) for fp in patterns)


def test_unknown_grouping_attribute_rejected(setup):
    table, schema, protected = setup
    config = FairCapConfig(grouping_attributes=("Ghost",))
    with pytest.raises(ConfigError):
        mine_grouping_patterns(table, schema, config, protected)


def test_no_immutables_rejected(setup):
    table, schema, protected = setup
    stripped = schema.with_roles(Gender="auxiliary", City="auxiliary")
    with pytest.raises(ConfigError):
        mine_grouping_patterns(
            table.with_schema(stripped), stripped, FairCapConfig(), protected
        )
