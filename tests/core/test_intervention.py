"""Tests for Step 2 (intervention mining with benefit selection)."""

import pytest

from repro.core.config import FairCapConfig
from repro.core.intervention import (
    intervention_items,
    mine_intervention,
    mine_interventions_for_groups,
)
from repro.core.variants import canonical_variants
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.utility import RuleEvaluator
from repro.utils.errors import ConfigError

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def setup():
    table = build_toy_table(n=2000, seed=6)
    dag = build_toy_dag()
    protected = ProtectedGroup(Pattern.of(Gender="Female"))
    evaluator = RuleEvaluator(table, "Income", dag, protected)
    return table, dag, protected, evaluator


def test_items_over_mutable_attributes(setup):
    table, dag, __, ___ = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    assert items
    for item in items:
        assert item.is_over(table.schema.mutable_names)


def test_non_causal_attributes_pruned(setup):
    table, __, ___, ____ = setup
    from repro.causal.dag import CausalDAG

    # A DAG where Training does NOT reach Income.
    dag = CausalDAG(
        edges=[("City", "Income"), ("Gender", "Income")],
        nodes=["Training"],
    )
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    assert items == []
    # With pruning disabled the items come back.
    items = intervention_items(
        table, table.schema, dag, FairCapConfig(prune_non_causal=False)
    )
    assert items


def test_unknown_intervention_attribute_rejected(setup):
    table, dag, __, ___ = setup
    config = FairCapConfig(intervention_attributes=("Ghost",))
    with pytest.raises(ConfigError):
        intervention_items(table, table.schema, dag, config)


def test_best_treatment_positive_utility(setup):
    table, dag, __, evaluator = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    result = mine_intervention(
        evaluator.context(Pattern.empty()), items, FairCapConfig()
    )
    assert result.best is not None
    assert result.best.utility > 0
    # Training=Yes is the only real lever in the toy SCM.
    assert result.best.intervention == Pattern.of(Training="Yes")


def test_negative_treatments_pruned(setup):
    table, dag, __, evaluator = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    result = mine_intervention(
        evaluator.context(Pattern.empty()), items, FairCapConfig()
    )
    for rule in result.candidates:
        assert rule.utility > 0


def test_individual_fairness_filters(setup):
    table, dag, __, evaluator = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    # Training gap is ~5000; epsilon=1000 should reject it.
    variants = canonical_variants("SP", 1_000.0, 0.0, 0.0)
    config = FairCapConfig(variant=variants["Individual fairness"])
    result = mine_intervention(evaluator.context(Pattern.empty()), items, config)
    assert result.best is None
    # Looser epsilon admits it again.
    variants = canonical_variants("SP", 10_000.0, 0.0, 0.0)
    config = FairCapConfig(variant=variants["Individual fairness"])
    result = mine_intervention(evaluator.context(Pattern.empty()), items, config)
    assert result.best is not None


def test_group_fairness_uses_benefit(setup):
    """Under group SP the selected treatment maximises benefit, not utility."""
    table, dag, __, evaluator = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    variants = canonical_variants("SP", 10_000.0, 0.0, 0.0)
    config = FairCapConfig(variant=variants["Group fairness"])
    result = mine_intervention(evaluator.context(Pattern.empty()), items, config)
    assert result.best is not None
    from repro.fairness.benefit import benefit

    best_benefit = benefit(result.best, config.variant.fairness)
    for rule in result.candidates:
        assert best_benefit >= benefit(rule, config.variant.fairness) - 1e-9


def test_one_rule_per_group(setup):
    table, dag, __, evaluator = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    from repro.mining.apriori import apriori

    groups = apriori(table, attributes=["Gender", "City"], min_support=0.2,
                     max_length=1)
    rules, nodes = mine_interventions_for_groups(
        evaluator, list(groups), items, FairCapConfig()
    )
    assert len(rules) <= len(list(groups))
    assert nodes > 0
    groupings = [rule.grouping for rule in rules]
    assert len(set(groupings)) == len(groupings)


def test_significance_filter(setup):
    table, dag, __, evaluator = setup
    items = intervention_items(table, table.schema, dag, FairCapConfig())
    strict = mine_intervention(
        evaluator.context(Pattern.empty()), items,
        FairCapConfig(significance_alpha=1e-30),
    )
    loose = mine_intervention(
        evaluator.context(Pattern.empty()), items,
        FairCapConfig(significance_alpha=None),
    )
    assert len(strict.candidates) <= len(loose.candidates)
