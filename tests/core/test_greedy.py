"""Tests for the greedy selector (Step 3, Sec. 5.3)."""


from repro.core.config import FairCapConfig
from repro.core.greedy import greedy_select
from repro.core.variants import canonical_variants
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RulesetEvaluator
from repro.tabular.table import Table

from tests.conftest import make_rule


def build_pool():
    """A 12-row table with three disjoint groups and one global rule."""
    table = Table(
        {
            "g": ["A"] * 4 + ["B"] * 4 + ["C"] * 4,
            "p": (["yes", "no", "no", "no"] * 3),
        }
    )
    protected = ProtectedGroup(Pattern.of(p="yes"))
    rules = [
        make_rule(Pattern.of(g="A"), Pattern.of(m="x"), 100.0, 90.0, 105.0,
                  coverage=4, protected_coverage=1),
        make_rule(Pattern.of(g="B"), Pattern.of(m="x"), 80.0, 20.0, 95.0,
                  coverage=4, protected_coverage=1),
        make_rule(Pattern.of(g="C"), Pattern.of(m="x"), 10.0, 9.0, 11.0,
                  coverage=4, protected_coverage=1),
        make_rule(Pattern.empty(), Pattern.of(m="y"), 50.0, 45.0, 52.0,
                  coverage=12, protected_coverage=3),
    ]
    return table, protected, rules


def test_unconstrained_prefers_high_utility():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    config = FairCapConfig(max_rules=2, stop_threshold=0.01)
    result = greedy_select(evaluator, config)
    assert 0 in result.indices  # the 100-utility rule is picked


def test_max_rules_cap():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    config = FairCapConfig(max_rules=1)
    result = greedy_select(evaluator, config)
    assert len(result.indices) == 1


def test_stop_threshold_halts():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    config = FairCapConfig(max_rules=4, stop_threshold=0.4)
    result = greedy_select(evaluator, config)
    # The weak C rule (utility 10 ~ 0.1 normalised) should not be added.
    assert 2 not in result.indices


def test_group_coverage_drives_selection():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    variants = canonical_variants("SP", 1e9, theta=1.0, theta_protected=1.0)
    config = FairCapConfig(
        variant=variants["Group coverage"], max_rules=4, stop_threshold=1e9
    )
    result = greedy_select(evaluator, config)
    assert result.metrics.coverage == 1.0  # constraint met despite threshold


def test_individual_fairness_filters_candidates():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    variants = canonical_variants("SP", 10.0, theta=0.0, theta_protected=0.0)
    config = FairCapConfig(variant=variants["Individual fairness"], max_rules=4)
    result = greedy_select(evaluator, config)
    # Rule B has gap 75 > 10 and must be excluded.
    assert 1 not in result.indices
    assert all(
        abs(r.utility_gap) <= 10.0 for r in result.ruleset
    )


def test_rule_coverage_filters_candidates():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    variants = canonical_variants("SP", 1e9, theta=0.5, theta_protected=0.5)
    config = FairCapConfig(variant=variants["Rule coverage"], max_rules=4)
    result = greedy_select(evaluator, config)
    # Only the global rule covers >= 50% of rows and protected rows.
    assert tuple(result.indices) == (3,)


def test_group_fairness_enforced():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    variants = canonical_variants("SP", 15.0, theta=0.0, theta_protected=0.0)
    config = FairCapConfig(variant=variants["Group fairness"], max_rules=4)
    result = greedy_select(evaluator, config)
    assert abs(result.metrics.unfairness) <= 15.0


def test_group_fairness_first_pick_fallback():
    """With no satisfying candidate, the least-violating rule is selected."""
    table, protected, __ = build_pool()
    rules = [
        make_rule(Pattern.of(g="A"), Pattern.of(m="x"), 100.0, 0.0, 100.0,
                  coverage=4, protected_coverage=1),
        make_rule(Pattern.of(g="B"), Pattern.of(m="x"), 100.0, 40.0, 100.0,
                  coverage=4, protected_coverage=1),
    ]
    evaluator = RulesetEvaluator(table, rules, protected)
    variants = canonical_variants("SP", 5.0, theta=0.0, theta_protected=0.0)
    config = FairCapConfig(variant=variants["Group fairness"], max_rules=2)
    result = greedy_select(evaluator, config)
    assert len(result.indices) >= 1
    assert 1 in result.indices  # the smaller-violation rule


def test_empty_pool():
    table, protected, __ = build_pool()
    evaluator = RulesetEvaluator(table, [], protected)
    result = greedy_select(evaluator, FairCapConfig())
    assert result.indices == ()
    assert result.metrics.n_rules == 0


def test_trace_records_steps():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    result = greedy_select(evaluator, FairCapConfig(max_rules=3))
    assert len(result.trace) == len(result.indices)
    for step, index in zip(result.trace, result.indices):
        assert step.candidate_index == index


def test_metrics_consistent_with_evaluator():
    table, protected, rules = build_pool()
    evaluator = RulesetEvaluator(table, rules, protected)
    result = greedy_select(evaluator, FairCapConfig(max_rules=4))
    assert result.metrics == evaluator.metrics(list(result.indices))
