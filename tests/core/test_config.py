"""Tests for FairCapConfig validation and derived values."""

import pytest

from repro.causal.estimators import LinearAdjustmentEstimator, StratifiedEstimator
from repro.core.config import FairCapConfig
from repro.core.variants import canonical_variants
from repro.utils.errors import ConfigError


def test_defaults_valid():
    config = FairCapConfig()
    assert config.apriori_min_support == 0.1
    assert config.max_rules == 20


@pytest.mark.parametrize(
    "kwargs",
    [
        {"apriori_min_support": 0.0},
        {"apriori_min_support": 1.5},
        {"max_grouping_size": 0},
        {"max_intervention_size": 0},
        {"estimator": "magic"},
        {"significance_alpha": 1.0},
        {"significance_alpha": 0.0},
        {"lambda_size": -1.0},
        {"lambda_utility": -0.1},
        {"max_rules": 0},
        {"throughput_mode": True, "batch_estimation": False},
        {"throughput_mode": True, "frontier_batching": False},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        FairCapConfig(**kwargs)


def test_throughput_mode_requires_the_batched_frontier():
    config = FairCapConfig(throughput_mode=True)  # defaults satisfy it
    assert config.batch_estimation and config.frontier_batching


def test_alpha_none_allowed():
    FairCapConfig(significance_alpha=None)


def test_make_estimator():
    assert isinstance(FairCapConfig().make_estimator(), LinearAdjustmentEstimator)
    assert isinstance(
        FairCapConfig(estimator="stratified").make_estimator(), StratifiedEstimator
    )


def test_with_variant():
    variants = canonical_variants("SP", 1.0, 0.5, 0.5)
    base = FairCapConfig()
    updated = base.with_variant(variants["Group fairness"])
    assert updated.variant.has_group_fairness
    assert not base.variant.has_group_fairness


def test_effective_apriori_support_raised_by_rule_coverage():
    variants = canonical_variants("SP", 1.0, theta=0.4, theta_protected=0.4)
    config = FairCapConfig(
        variant=variants["Rule coverage"], apriori_min_support=0.1
    )
    assert config.effective_apriori_support() == 0.4
    # Not raised below the configured support.
    low = canonical_variants("SP", 1.0, theta=0.05, theta_protected=0.05)
    config = FairCapConfig(
        variant=low["Rule coverage"], apriori_min_support=0.1
    )
    assert config.effective_apriori_support() == 0.1


def test_effective_support_unchanged_for_group_coverage():
    variants = canonical_variants("SP", 1.0, theta=0.9, theta_protected=0.9)
    config = FairCapConfig(variant=variants["Group coverage"])
    assert config.effective_apriori_support() == config.apriori_min_support
