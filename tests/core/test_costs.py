"""Tests for the cost-aware extension (Sec. 8 future work)."""

import pytest

from repro.core.costs import (
    InterventionCostModel,
    cost_effectiveness,
    select_within_budget,
)
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.ruleset import RulesetEvaluator
from repro.tabular.table import Table
from repro.utils.errors import ConfigError

from tests.conftest import make_rule


@pytest.fixture
def cost_model():
    return InterventionCostModel(
        value_costs={("Education", "PhD"): 10.0},
        attribute_costs={"Education": 5.0, "Language": 1.0},
        default_cost=2.0,
    )


def test_resolution_order(cost_model):
    assert cost_model.predicate_cost("Education", "PhD") == 10.0
    assert cost_model.predicate_cost("Education", "Bachelor") == 5.0
    assert cost_model.predicate_cost("Language", "Python") == 1.0
    assert cost_model.predicate_cost("Role", "Manager") == 2.0


def test_pattern_cost_sums(cost_model):
    pattern = Pattern.of(Education="PhD", Language="Python")
    assert cost_model.cost_of(pattern) == 11.0


def test_negative_costs_rejected():
    with pytest.raises(ConfigError):
        InterventionCostModel(default_cost=-1.0)
    with pytest.raises(ConfigError):
        InterventionCostModel(attribute_costs={"a": -2.0})
    with pytest.raises(ConfigError):
        InterventionCostModel(value_costs={("a", "b"): -2.0})


def test_cost_effectiveness(cost_model):
    rule = make_rule(Pattern.of(g="a"), Pattern.of(Language="Python"),
                     utility=10.0, utility_protected=5.0,
                     utility_non_protected=12.0)
    assert cost_effectiveness(rule, cost_model) == 10.0
    free_model = InterventionCostModel(default_cost=0.0)
    assert cost_effectiveness(rule, free_model) == float("inf")


@pytest.fixture
def pool():
    table = Table(
        {"g": ["A"] * 4 + ["B"] * 4, "p": ["yes", "no"] * 4}
    )
    protected = ProtectedGroup(Pattern.of(p="yes"))
    rules = [
        # Expensive but strong.
        make_rule(Pattern.of(g="A"), Pattern.of(Education="PhD"),
                  utility=100.0, utility_protected=90.0,
                  utility_non_protected=105.0, coverage=4, protected_coverage=2),
        # Cheap and decent.
        make_rule(Pattern.of(g="B"), Pattern.of(Language="Python"),
                  utility=40.0, utility_protected=35.0,
                  utility_non_protected=42.0, coverage=4, protected_coverage=2),
    ]
    return RulesetEvaluator(table, rules, protected)


def test_budget_excludes_expensive(pool, cost_model):
    result = select_within_budget(pool, cost_model, budget=5.0)
    assert result.indices == (1,)  # only the cheap rule fits
    assert result.total_cost == 1.0
    assert result.budget == 5.0


def test_large_budget_takes_both(pool, cost_model):
    result = select_within_budget(pool, cost_model, budget=20.0)
    assert set(result.indices) == {0, 1}
    assert result.total_cost == 11.0


def test_zero_budget_selects_nothing(pool, cost_model):
    result = select_within_budget(pool, cost_model, budget=0.0)
    assert result.indices == ()
    assert result.metrics.n_rules == 0


def test_negative_budget_rejected(pool, cost_model):
    with pytest.raises(ConfigError):
        select_within_budget(pool, cost_model, budget=-1.0)


def test_max_rules_cap(pool, cost_model):
    result = select_within_budget(pool, cost_model, budget=100.0, max_rules=1)
    assert len(result.indices) == 1


def test_metrics_match_selection(pool, cost_model):
    result = select_within_budget(pool, cost_model, budget=20.0)
    assert result.metrics == pool.metrics(list(result.indices))
