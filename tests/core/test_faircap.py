"""End-to-end tests for the FairCap driver (Algorithm 1)."""

import pytest

from repro.core.config import FairCapConfig
from repro.core.faircap import (
    STEP_GREEDY,
    STEP_GROUP_MINING,
    STEP_TREATMENT_MINING,
    FairCap,
    run_faircap,
)
from repro.core.variants import canonical_variants
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.utils.errors import SchemaError

from tests.conftest import build_toy_dag, build_toy_table


@pytest.fixture(scope="module")
def setup():
    table = build_toy_table(n=2000, seed=9)
    return table, build_toy_dag(), ProtectedGroup(Pattern.of(Gender="Female"))


def run(setup, variant_name="No constraints", **config_kwargs):
    table, dag, protected = setup
    variants = canonical_variants("SP", 4_000.0, theta=0.4, theta_protected=0.4)
    config = FairCapConfig(variant=variants[variant_name], **config_kwargs)
    return FairCap(config).run(table, table.schema, dag, protected)


def test_produces_rules(setup):
    result = run(setup)
    assert result.metrics.n_rules >= 1
    assert len(result.candidate_rules) >= result.metrics.n_rules


def test_rules_respect_role_split(setup):
    table, __, ___ = setup
    result = run(setup)
    for rule in result.ruleset:
        rule.check_role_split(
            table.schema.immutable_names, table.schema.mutable_names
        )


def test_timings_cover_three_steps(setup):
    result = run(setup)
    assert set(result.timings) == {
        STEP_GROUP_MINING, STEP_TREATMENT_MINING, STEP_GREEDY,
    }
    assert all(v >= 0 for v in result.timings.values())


def test_positive_utilities(setup):
    result = run(setup)
    for rule in result.ruleset:
        assert rule.utility > 0


def test_group_fairness_variant_reduces_unfairness(setup):
    baseline = run(setup, "No constraints")
    fair = run(setup, "Group fairness")
    assert abs(fair.metrics.unfairness) <= abs(baseline.metrics.unfairness) + 1e-9


def test_group_coverage_met(setup):
    result = run(setup, "Group coverage")
    assert result.metrics.coverage >= 0.4
    assert result.metrics.protected_coverage >= 0.4


def test_rule_coverage_variant(setup):
    result = run(setup, "Rule coverage")
    for rule in result.ruleset:
        assert rule.coverage_count >= 0.4 * result.n_rows
        assert rule.protected_coverage_count >= 0.4 * result.n_protected


def test_satisfied_reports_constraints(setup):
    result = run(setup, "Group coverage")
    assert result.satisfied()


def test_dag_must_cover_schema(setup):
    table, __, protected = setup
    from repro.causal.dag import CausalDAG

    bad_dag = CausalDAG(edges=[("City", "Income")])
    with pytest.raises(SchemaError):
        FairCap(FairCapConfig()).run(table, table.schema, bad_dag, protected)


def test_run_faircap_facade(setup):
    table, dag, protected = setup
    result = run_faircap(table, dag, protected, FairCapConfig())
    assert result.metrics.n_rules >= 1


def test_schema_defaults_to_table_schema(setup):
    table, dag, protected = setup
    result = FairCap(FairCapConfig()).run(table, None, dag, protected)
    assert result.metrics.n_rules >= 1


def test_stratified_estimator_variant(setup):
    result = run(setup, "No constraints", estimator="stratified")
    assert result.metrics.n_rules >= 1
    # Stratified and linear agree on the toy SCM's main effect.
    linear = run(setup, "No constraints")
    assert result.metrics.expected_utility == pytest.approx(
        linear.metrics.expected_utility, rel=0.3
    )


def test_deterministic(setup):
    a = run(setup)
    b = run(setup)
    assert a.metrics == b.metrics
    assert tuple(a.ruleset.rules) == tuple(b.ruleset.rules)
