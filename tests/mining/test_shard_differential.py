"""Shard differential suite: out-of-core mining ≡ in-RAM mining, bit for bit.

The tentpole contract of the sharded data layer: running FairCap with
``config.shard_rows`` set — which spills the table into a columnar shard
store and mines against the :class:`~repro.datasets.sharded.ShardedTable`
handle — returns the *identical* result to the in-RAM run.  Same rules in
the same order, same candidate utilities and CATE fields, same metrics,
for every tested shard size and every executor.  The identity holds
because the spill is a pure re-layout: packed predicate words merge
exactly from shard segments, and every materialised context sub-table is
content-identical (same fingerprint) to the in-RAM gather, so downstream
estimation runs the same arithmetic on the same bytes.

Also pinned here:

- the 36-world scenario oracle smoke passes with sharding on (every grid
  world mines to a bit-identical ruleset out of core);
- the absent-category (exactly-zero design column) route builds its
  reduced Gram by subselecting the assembled block Gram — no materialised
  re-accumulation — and agrees with the QR reference factorization.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from tests.conftest import build_toy_dag, build_toy_table
from tests.parallel.test_equivalence import assert_identical_results
from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap, FairCapResult
from repro.mining.patterns import Pattern
from repro.parallel import ProcessExecutor, SerialExecutor, ThreadExecutor
from repro.rules.protected import ProtectedGroup

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def toy_problem():
    table = build_toy_table(n=400, seed=11)
    return (
        table,
        None,
        build_toy_dag(),
        ProtectedGroup(Pattern.of(Gender="Female"), name="women"),
        FairCapConfig(),
    )


@pytest.fixture(scope="module")
def german_problem(small_german_bundle):
    bundle = small_german_bundle
    config = FairCapConfig(
        max_grouping_size=2, max_values_per_attribute=4, min_subgroup_size=10
    )
    return bundle.table, bundle.schema, bundle.dag, bundle.protected, config


def _run(problem, shard_rows=None, executor=None) -> FairCapResult:
    table, schema, dag, protected, config = problem
    if shard_rows is not None:
        config = replace(config, shard_rows=shard_rows)
    return FairCap(config, executor=executor).run(table, schema, dag, protected)


@pytest.fixture(scope="module")
def in_ram_reference(request):
    """Memoised serial in-RAM runs, one per problem fixture."""
    memo: dict[str, FairCapResult] = {}

    def get(name: str) -> FairCapResult:
        if name not in memo:
            memo[name] = _run(
                request.getfixturevalue(name), executor=SerialExecutor()
            )
        return memo[name]

    return get


# -- shard-size sweep (serial) -----------------------------------------------------


@pytest.mark.parametrize("shard_rows", [53, 97, 400, 4096])
def test_toy_sharded_serial_identical(request, in_ram_reference, shard_rows):
    """Every shard size — ragged, exact-fit, single-shard — same bits."""
    result = _run(
        request.getfixturevalue("toy_problem"),
        shard_rows=shard_rows,
        executor=SerialExecutor(),
    )
    assert_identical_results(in_ram_reference("toy_problem"), result)


@pytest.mark.parametrize("shard_rows", [97, 800])
def test_german_sharded_serial_identical(request, in_ram_reference, shard_rows):
    result = _run(
        request.getfixturevalue("german_problem"),
        shard_rows=shard_rows,
        executor=SerialExecutor(),
    )
    assert_identical_results(in_ram_reference("german_problem"), result)


# -- executor sweep ----------------------------------------------------------------


@pytest.mark.parametrize(
    "executor_factory",
    [lambda: ThreadExecutor(n_workers=2), lambda: ProcessExecutor(n_workers=2)],
    ids=["thread", "process"],
)
def test_toy_sharded_executors_identical(
    request, in_ram_reference, executor_factory
):
    result = _run(
        request.getfixturevalue("toy_problem"),
        shard_rows=97,
        executor=executor_factory(),
    )
    assert_identical_results(in_ram_reference("toy_problem"), result)


@pytest.mark.parametrize(
    "executor_factory",
    [lambda: ThreadExecutor(n_workers=2), lambda: ProcessExecutor(n_workers=2)],
    ids=["thread", "process"],
)
def test_german_sharded_executors_identical(
    request, in_ram_reference, executor_factory
):
    """Process workers reopen the store by path and attach the published
    predicate words / merged Gram stats over shared memory — same bits."""
    result = _run(
        request.getfixturevalue("german_problem"),
        shard_rows=800,
        executor=executor_factory(),
    )
    assert_identical_results(in_ram_reference("german_problem"), result)


# -- oracle worlds -----------------------------------------------------------------


def _world_runs(name: str, n: int, shard_rows: int, executor=None):
    import dataclasses

    from repro.scenarios import ScenarioWorld, run_world
    from repro.scenarios.oracle import oracle_config
    from repro.scenarios.spec import spec_by_name

    world = ScenarioWorld(spec_by_name(name))
    bundle = world.bundle(n)
    reference = run_world(world, bundle)
    sharded = run_world(
        world,
        bundle,
        dataclasses.replace(oracle_config(world), shard_rows=shard_rows),
        executor=executor,
    )
    return world, bundle, reference, sharded


@pytest.mark.scenario
@pytest.mark.parametrize(
    "name", ["linear-g2-d1-gap-lo", "imbalanced-groups"]
)
@pytest.mark.parametrize("shard_rows", [64, 500])
def test_oracle_world_sharded_identical(name, shard_rows):
    _, _, reference, sharded = _world_runs(name, 500, shard_rows)
    assert_identical_results(reference, sharded)


@pytest.mark.scenario
def test_oracle_world_sharded_process_identical():
    _, _, reference, sharded = _world_runs(
        "linear-g2-d1-gap-lo", 500, 128, executor=ProcessExecutor(n_workers=2)
    )
    assert_identical_results(reference, sharded)


@pytest.mark.scenario
def test_full_grid_sharded_oracle_smoke():
    """All 36 grid worlds mine out of core to bit-identical rulesets."""
    import dataclasses

    from repro.scenarios import ScenarioWorld, oracle_grid, run_world
    from repro.scenarios.oracle import oracle_config

    failures = []
    for spec in oracle_grid():
        world = ScenarioWorld(spec)
        bundle = world.bundle(300)
        reference = run_world(world, bundle)
        sharded = run_world(
            world,
            bundle,
            dataclasses.replace(oracle_config(world), shard_rows=128),
        )
        try:
            assert_identical_results(reference, sharded)
        except AssertionError as exc:
            failures.append(f"{spec.name}: {exc}")
    assert not failures, "\n".join(failures)


# -- absent-category routing pin ---------------------------------------------------


def _absent_category_subtable():
    """A sub-population whose ``City`` one-hot block has an all-zero column."""
    table = build_toy_table(n=400, seed=3)
    mask = table.column("City").decode() == "Metro"
    return table.filter(mask)


def test_absent_category_routes_through_reduced_gram():
    """The zero-column design takes the block-Gram subselection route (no
    materialised slow rebuild) and the route counter pins it."""
    from repro.causal.batch import GramFactorization, build_rows_factorization
    from repro.obs import telemetry_session

    sub = _absent_category_subtable()
    with telemetry_session(enabled=True) as telemetry:
        factorization = build_rows_factorization(sub, "Income", ("City",))
    routes = telemetry.registry.snapshot()["counters"][
        "estimation.factorizations"
    ]["values"]
    assert routes.get("route=gram_reduced") == 1.0
    assert "route=qr" not in routes
    assert isinstance(factorization, GramFactorization)


def test_reduced_gram_matches_qr_reference():
    """Differential pin: the subselected-Gram factorization agrees with the
    QR reference build on the same zero-column design."""
    from repro.causal.batch import build_factorization, build_rows_factorization

    sub = _absent_category_subtable()
    gram = build_rows_factorization(sub, "Income", ("City",))
    reference = build_factorization(sub, "Income", ("City",))
    assert gram.n == reference.n
    # One categorical with one present level: intercept only survives.
    assert gram.rank == reference.rank
    np.testing.assert_allclose(
        gram.y_res, reference.y_res, rtol=1e-9, atol=1e-9
    )
    np.testing.assert_allclose(gram.y_res_sq, reference.y_res_sq, rtol=1e-9)


def test_reduced_gram_matches_qr_reference_sharded(tmp_path):
    """Same pin with the parent table out of core: the context gather off
    the shard store feeds the identical reduced-Gram build."""
    from repro.causal.batch import build_factorization, build_rows_factorization
    from repro.datasets.sharded import ShardedTable

    table = build_toy_table(n=400, seed=3)
    store = ShardedTable.write(table, str(tmp_path / "store"), 73)
    mask = store.column("City").decode() == "Metro"
    sub = store.filter(mask)
    in_ram = table.filter(table.column("City").decode() == "Metro")
    assert sub.fingerprint() == in_ram.fingerprint()
    gram = build_rows_factorization(sub, "Income", ("City",))
    reference = build_factorization(in_ram, "Income", ("City",))
    assert gram.rank == reference.rank
    np.testing.assert_allclose(
        gram.y_res, reference.y_res, rtol=1e-9, atol=1e-9
    )
