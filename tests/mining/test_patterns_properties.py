"""Property-based tests for the pattern language (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.tabular.table import Table

values = st.sampled_from(["a", "b", "c"])
rows = st.lists(
    st.tuples(values, st.floats(min_value=0, max_value=100, allow_nan=False)),
    min_size=1,
    max_size=50,
)


def build_table(data):
    return Table({"cat": [c for c, _ in data], "num": [v for _, v in data]})


@settings(max_examples=50)
@given(rows, values)
def test_conjunction_is_intersection(data, probe):
    table = build_table(data)
    p1 = Pattern([Predicate.eq("cat", probe)])
    p2 = Pattern([Predicate("num", Operator.GE, 50)])
    conj = p1 & p2
    assert np.array_equal(conj.mask(table), p1.mask(table) & p2.mask(table))


@settings(max_examples=50)
@given(rows, values)
def test_coverage_monotone_under_conjunction(data, probe):
    """Adding predicates never increases coverage (anti-monotonicity)."""
    table = build_table(data)
    p1 = Pattern([Predicate.eq("cat", probe)])
    conj = p1 & Predicate("num", Operator.LT, 30)
    assert conj.coverage(table) <= p1.coverage(table)


@settings(max_examples=50)
@given(rows)
def test_mask_matches_row_agreement(data):
    """Vectorised mask and per-row evaluation agree."""
    table = build_table(data)
    pattern = Pattern(
        [Predicate.eq("cat", "a"), Predicate("num", Operator.GE, 20)]
    )
    mask = pattern.mask(table)
    for i, row in enumerate(table.to_rows()):
        assert mask[i] == pattern.matches_row(row)


@given(st.lists(st.tuples(st.sampled_from("xyz"), st.integers(0, 3)),
                min_size=0, max_size=6))
def test_pattern_hash_order_invariance(pairs):
    """Any permutation of consistent predicates builds an equal pattern."""
    # Keep one value per attribute to avoid contradictions.
    seen = {}
    for attr, val in pairs:
        seen.setdefault(attr, val)
    preds = [Predicate.eq(a, v) for a, v in seen.items()]
    forward = Pattern(preds)
    backward = Pattern(list(reversed(preds)))
    assert forward == backward
    assert hash(forward) == hash(backward)
