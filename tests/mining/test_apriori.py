"""Tests for the Apriori miner (Step 1 substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mining.apriori import apriori, build_items
from repro.mining.patterns import Pattern, Predicate
from repro.tabular.table import Table
from repro.utils.errors import PatternError
from repro.utils.rng import ensure_rng


@pytest.fixture
def table():
    rng = ensure_rng(0)
    n = 200
    return Table(
        {
            "a": rng.choice(["x", "y"], n, p=[0.7, 0.3]).astype(object),
            "b": rng.choice(["p", "q", "r"], n).astype(object),
            "c": rng.normal(size=n),
        }
    )


def brute_force_frequent(table, attributes, min_support, max_length):
    """Reference implementation: enumerate all value combinations."""
    from itertools import combinations, product

    result = {}
    for size in range(1, max_length + 1):
        for attrs in combinations(attributes, size):
            domains = [table.unique(a) for a in attrs]
            for combo in product(*domains):
                pattern = Pattern([Predicate.eq(a, v) for a, v in zip(attrs, combo)])
                support = pattern.coverage(table) / table.n_rows
                if support >= min_support:
                    result[pattern] = support
    return result


def test_matches_brute_force(table):
    mined = apriori(table, attributes=["a", "b"], min_support=0.1, max_length=2)
    expected = brute_force_frequent(table, ["a", "b"], 0.1, 2)
    mined_map = {fp.pattern: fp.support for fp in mined}
    assert mined_map.keys() == expected.keys()
    for pattern, support in expected.items():
        assert mined_map[pattern] == pytest.approx(support)


def test_support_counts_correct(table):
    for fp in apriori(table, attributes=["a", "b"], min_support=0.05):
        assert fp.support_count == fp.pattern.coverage(table)
        assert fp.support == pytest.approx(fp.support_count / table.n_rows)


def test_anti_monotonicity(table):
    """Every sub-pattern of a frequent pattern is frequent."""
    result = apriori(table, attributes=["a", "b"], min_support=0.1, max_length=2)
    level1 = {fp.pattern for fp in result.at_level(1)}
    for fp in result.at_level(2):
        for pred in fp.pattern:
            assert Pattern([pred]) in level1


def test_max_length_respected(table):
    result = apriori(table, attributes=["a", "b"], min_support=0.01, max_length=1)
    assert all(fp.size == 1 for fp in result)


def test_min_support_filters(table):
    strict = apriori(table, attributes=["a", "b"], min_support=0.5)
    loose = apriori(table, attributes=["a", "b"], min_support=0.05)
    assert len(strict) <= len(loose)
    assert all(fp.support >= 0.5 for fp in strict)


def test_invalid_support_rejected(table):
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(PatternError):
            apriori(table, attributes=["a"], min_support=bad)


def test_empty_table():
    table = Table({"a": np.array([], dtype=object)})
    result = apriori(table, attributes=["a"], min_support=0.1)
    assert len(result) == 0


def test_continuous_binning(table):
    items = build_items(table, ["c"], continuous_bins=4)
    assert len(items) == 4
    # Bins partition the rows.
    total = sum(item.coverage(table) for item in items)
    assert total == table.n_rows


def test_constant_continuous_column():
    table = Table({"c": [5.0] * 10})
    items = build_items(table, ["c"])
    assert len(items) == 1
    assert items[0].coverage(table) == 10


def test_max_values_per_attribute(table):
    items = build_items(table, ["b"], max_values_per_attribute=2)
    assert len(items) == 2
    # The kept items are the most frequent values.
    counts = table.value_counts("b")
    kept_values = {item.predicates[0].value for item in items}
    dropped = set(counts) - kept_values
    assert all(counts[k] >= counts[d] for k in kept_values for d in dropped)


def test_multi_attribute_items_rejected(table):
    bad_item = Pattern.of(a="x", b="p")
    with pytest.raises(PatternError):
        apriori(table, items=[bad_item], min_support=0.1)


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 5), st.floats(0.05, 0.5))
def test_apriori_random_tables(n_values, min_support):
    rng = ensure_rng(n_values)
    n = 120
    table = Table(
        {
            "u": rng.integers(0, n_values, n).astype(str).astype(object),
            "v": rng.integers(0, 3, n).astype(str).astype(object),
        }
    )
    mined = apriori(table, attributes=["u", "v"], min_support=min_support,
                    max_length=2)
    expected = brute_force_frequent(table, ["u", "v"], min_support, 2)
    assert {fp.pattern for fp in mined} == set(expected)
