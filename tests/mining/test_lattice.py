"""Tests for the intervention-pattern lattice traversal (Sec. 5.2)."""

import pytest

from repro.mining.lattice import traverse_lattice
from repro.mining.patterns import Pattern, Predicate
from repro.utils.errors import PatternError


def items_for(*attr_values):
    return [Pattern([Predicate.eq(a, v)]) for a, v in attr_values]


def test_all_kept_explores_pairs():
    items = items_for(("a", 1), ("b", 2), ("c", 3))
    nodes = traverse_lattice(items, lambda p: (True, None), max_level=2)
    level2 = [n for n in nodes if n.level == 2]
    assert len(level2) == 3  # ab, ac, bc


def test_same_attribute_items_never_combined():
    items = items_for(("a", 1), ("a", 2))
    nodes = traverse_lattice(items, lambda p: (True, None), max_level=2)
    assert all(n.level == 1 for n in nodes)


def test_pruning_blocks_children():
    items = items_for(("a", 1), ("b", 2))

    def evaluate(pattern):
        return (pattern.attributes != ("a",), None)  # kill the 'a' item

    nodes = traverse_lattice(items, evaluate, max_level=2)
    assert all(n.level == 1 for n in nodes)  # 'ab' needs both parents kept


def test_all_parents_must_be_kept():
    items = items_for(("a", 1), ("b", 2), ("c", 3))

    def evaluate(pattern):
        # kill only the 'c' singleton
        return (pattern != Pattern.of(c=3), None)

    nodes = traverse_lattice(items, evaluate, max_level=2)
    level2_patterns = {n.pattern for n in nodes if n.level == 2}
    assert Pattern.of(a=1, b=2) in level2_patterns
    assert Pattern.of(a=1, c=3) not in level2_patterns
    assert Pattern.of(b=2, c=3) not in level2_patterns


def test_max_level_one():
    items = items_for(("a", 1), ("b", 2))
    nodes = traverse_lattice(items, lambda p: (True, None), max_level=1)
    assert len(nodes) == 2


def test_level3_requires_all_level2_parents():
    items = items_for(("a", 1), ("b", 2), ("c", 3))

    def evaluate(pattern):
        return (pattern != Pattern.of(a=1, b=2), None)  # kill one level-2 node

    nodes = traverse_lattice(items, evaluate, max_level=3)
    assert not any(n.level == 3 for n in nodes)


def test_level3_explored_when_possible():
    items = items_for(("a", 1), ("b", 2), ("c", 3))
    nodes = traverse_lattice(items, lambda p: (True, None), max_level=3)
    level3 = [n for n in nodes if n.level == 3]
    assert len(level3) == 1
    assert level3[0].pattern == Pattern.of(a=1, b=2, c=3)


def test_payload_propagated():
    items = items_for(("a", 1),)
    nodes = traverse_lattice(items, lambda p: (True, {"score": 7}), max_level=1)
    assert nodes[0].payload == {"score": 7}


def test_max_nodes_cap():
    items = items_for(*((f"x{i}", 1) for i in range(10)))
    nodes = traverse_lattice(items, lambda p: (True, None), max_level=2,
                             max_nodes=5)
    assert len(nodes) == 5


def test_multi_attribute_item_rejected():
    with pytest.raises(PatternError):
        traverse_lattice([Pattern.of(a=1, b=2)], lambda p: (True, None))


def test_pruned_nodes_still_reported():
    items = items_for(("a", 1), ("b", 2))
    nodes = traverse_lattice(items, lambda p: (False, "dead"), max_level=2)
    assert len(nodes) == 2
    assert all(not n.keep for n in nodes)
