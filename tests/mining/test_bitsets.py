"""Differential suite for the packed-bitset mask kernel.

The bitset layer (:mod:`repro.mining.bitsets`) is only allowed to change
*latency*: packing must round-trip bit-for-bit, AND-composition must equal
per-candidate predicate re-evaluation exactly, popcounts must equal boolean
sums, and popcount-based support pruning must produce rules field-identical
to letting the estimation screens reject the same candidates.
"""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import build_toy_dag, build_toy_table
from repro.core.config import FairCapConfig
from repro.core.intervention import intervention_items, mine_intervention
from repro.mining.apriori import build_items
from repro.mining.bitsets import (
    pack_mask,
    pattern_bitset,
    popcount,
    popcount_rows,
    predicate_bitset,
    unpack_mask,
    unpack_rows,
)
from repro.mining.patterns import Pattern, Predicate
from repro.rules.protected import ProtectedGroup
from repro.rules.utility import RuleEvaluator
from repro.scenarios.catalog import load_scenario


# -- pack/unpack/popcount exactness ---------------------------------------------


@pytest.mark.parametrize("n", [0, 1, 63, 64, 65, 640, 1001])
def test_pack_roundtrip_exact(rng, n):
    for density in (0.0, 0.02, 0.5, 1.0):
        mask = rng.random(n) < density
        words = pack_mask(mask)
        assert words.dtype == np.uint64
        assert np.array_equal(unpack_mask(words, n), mask)
        assert popcount(words) == int(mask.sum())


def test_padding_bits_are_zero(rng):
    # AND with an all-true mask must not resurrect padding bits.
    mask = rng.random(70) < 0.9
    ones = pack_mask(np.ones(70, dtype=bool))
    assert popcount(pack_mask(mask) & ones) == int(mask.sum())


def test_and_composition_equals_boolean_and(rng):
    a = rng.random(517) < 0.4
    b = rng.random(517) < 0.6
    assert np.array_equal(pack_mask(a) & pack_mask(b), pack_mask(a & b))


def test_unpack_rows_matches_columns(rng):
    masks = rng.random((9, 130)) < 0.3
    words = np.stack([pack_mask(row) for row in masks])
    assert np.array_equal(unpack_rows(words, 130), masks)
    assert np.array_equal(popcount_rows(words), masks.sum(axis=1))
    assert np.array_equal(popcount_rows(words[:0]), np.zeros(0, dtype=np.int64))


# -- composed candidate masks ≡ per-candidate predicate evaluation -------------


def _assert_items_compose(table, items):
    for item in items:
        for predicate in item.predicates:
            assert np.array_equal(
                unpack_mask(predicate_bitset(table, predicate), table.n_rows),
                predicate.mask(table),
            )
    # Level-2 style conjunctions over item pairs, incl. range items with
    # two predicates per item.
    for a in items[: min(6, len(items))]:
        for b in items[: min(6, len(items))]:
            if set(a.attributes) & set(b.attributes):
                continue
            pattern = a & b
            composed = unpack_mask(pattern_bitset(table, pattern), table.n_rows)
            assert np.array_equal(composed, pattern.mask(table))


def test_composition_matches_pattern_mask_synth():
    table = build_toy_table(n=777, seed=3)
    items = build_items(table, table.column_names[:-1], continuous_bins=3)
    _assert_items_compose(table, items)


@pytest.mark.slow
@pytest.mark.parametrize("dataset_fixture", ["small_german_bundle", "small_so_bundle"])
def test_composition_matches_pattern_mask_datasets(request, dataset_fixture):
    bundle = request.getfixturevalue(dataset_fixture)
    items = build_items(
        bundle.table, bundle.schema.mutable_names, max_values_per_attribute=4
    )
    _assert_items_compose(bundle.table, items)


@pytest.mark.scenario
@pytest.mark.parametrize(
    "scenario", ["separated", "zero-effect", "single-stratum", "rare-protected"]
)
def test_composition_matches_on_degenerate_worlds(scenario):
    bundle = load_scenario(scenario, n=500)
    items = build_items(bundle.table, bundle.schema.mutable_names)
    _assert_items_compose(bundle.table, items)


def test_memoised_bitsets_ride_on_the_table(rng):
    table = build_toy_table(n=300, seed=5)
    predicate = Predicate.eq("City", "Metro")
    first = predicate_bitset(table, predicate)
    assert predicate_bitset(table, predicate) is first  # cached per instance
    sub = table.filter(np.asarray(rng.random(300) < 0.5))
    assert "_predicate_bitset_cache" not in sub.__dict__  # fresh object


# -- popcount pruning ≡ post-estimation support filtering -----------------------


def _context_with_items(table, protected, dag, config):
    evaluator = RuleEvaluator(
        table,
        "Income",
        dag,
        protected,
        min_subgroup_size=config.min_subgroup_size,
        cache=config.make_cache(),
    )
    items = intervention_items(table, table.schema, dag, config)
    return evaluator, items


def _assert_rules_identical(got, want):
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert g.grouping == w.grouping and g.intervention == w.intervention
        assert g.utility == w.utility
        assert g.utility_protected == w.utility_protected
        assert g.utility_non_protected == w.utility_non_protected
        for field in ("estimate", "estimate_protected", "estimate_non_protected"):
            ge, we = getattr(g, field), getattr(w, field)
            assert (ge is None) == (we is None), field
            if ge is not None:
                assert ge.valid == we.valid and ge.reason == we.reason, field
                assert (ge.n, ge.n_treated, ge.n_control) == (
                    we.n,
                    we.n_treated,
                    we.n_control,
                ), field
                assert ge.adjustment == we.adjustment, field


def _run_level(evaluator, grouping, candidates, config, use_bitsets):
    """Drive one frontier level (begin -> estimate -> followup -> finish)."""
    context = evaluator.context(grouping)
    work = context.begin_level(candidates, use_bitsets=use_bitsets)
    evaluator.estimate_requests(work.requests)
    evaluator.estimate_requests(work.followup(config.significance_alpha))
    return work.finish()


def test_pruning_equals_post_estimation_filtering(rng):
    """Zero/full-support candidates: synthesized rules ≡ estimation screens.

    The frontier path prunes by popcount *before* any estimation; the
    bitset-off spelling lets the kernel's positivity screen reject the same
    candidates after stacking them.  Keep flags and every rule field must
    agree exactly (the fused kernel's row-major group extraction is
    C-contiguous either way, so surviving columns are bit-identical too).
    """
    table = build_toy_table(n=600, seed=7)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    config = FairCapConfig()
    evaluator, items = _context_with_items(table, protected, dag, config)
    # Candidates: real items + provably empty and provably full patterns.
    candidates = list(items)
    candidates.append(Pattern.of(Training="no-such-value"))  # support 0
    full = Predicate("Training", "!=", "no-such-value")  # true on every row
    candidates.append(Pattern([full]))
    grouping = Pattern.of(City="Metro")
    with_bitsets = _run_level(evaluator, grouping, candidates, config, True)
    without = _run_level(evaluator, grouping, candidates, config, False)
    assert [keep for keep, _ in with_bitsets] == [keep for keep, _ in without]
    _assert_rules_identical(
        [rule for _, rule in with_bitsets], [rule for _, rule in without]
    )
    pruned_rules = [rule for _, rule in with_bitsets][-2:]
    assert all(rule.utility == 0.0 for rule in pruned_rules)
    assert all(not rule.estimate.valid for rule in pruned_rules)
    assert all(
        rule.estimate.reason.startswith("positivity") for rule in pruned_rules
    )


def test_pruning_respects_min_subgroup_guard(rng):
    """Pruned columns inside a too-small subgroup mirror the guard's reason."""
    table = build_toy_table(n=400, seed=9)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    config = FairCapConfig(min_subgroup_size=1_000)  # everything is too small
    evaluator, items = _context_with_items(table, protected, dag, config)
    candidates = [items[0], Pattern.of(Training="no-such-value")]
    grouping = Pattern.of(City="Metro")
    with_bitsets = _run_level(evaluator, grouping, candidates, config, True)
    without = _run_level(evaluator, grouping, candidates, config, False)
    _assert_rules_identical(
        [rule for _, rule in with_bitsets], [rule for _, rule in without]
    )
    assert with_bitsets[1][1].estimate.reason.startswith("subgroup smaller")


def test_mine_intervention_bitsets_bit_identical(rng):
    """Full Step-2 search: bitset masks on ≡ off, rule for rule."""
    table = build_toy_table(n=800, seed=13)
    protected = ProtectedGroup(Pattern.of(Gender="Female"), name="women")
    dag = build_toy_dag()
    base_config = FairCapConfig(frontier_batching=False, bitset_masks=False)
    bitset_config = FairCapConfig(frontier_batching=False, bitset_masks=True)
    evaluator, items = _context_with_items(table, protected, dag, base_config)
    for grouping in (Pattern.of(City="Metro"), Pattern.of(City="Rural")):
        want = mine_intervention(evaluator.context(grouping), items, base_config)
        got = mine_intervention(evaluator.context(grouping), items, bitset_config)
        assert got.nodes_evaluated == want.nodes_evaluated
        _assert_rules_identical(list(got.candidates), list(want.candidates))
        assert (got.best is None) == (want.best is None)
        if got.best is not None:
            assert got.best.utility == want.best.utility
