"""Tests for predicates and patterns (Defs. 4.1-4.2)."""

import pytest

from repro.mining.patterns import Operator, Pattern, Predicate
from repro.tabular.table import Table
from repro.utils.errors import PatternError


@pytest.fixture
def table():
    return Table(
        {
            "role": ["dev", "qa", "dev", "mgr"],
            "age": [25.0, 35.0, 45.0, 30.0],
        }
    )


class TestOperator:
    def test_parse_symbols(self):
        assert Operator.parse("=") is Operator.EQ
        assert Operator.parse("==") is Operator.EQ
        assert Operator.parse("≠") is Operator.NE
        assert Operator.parse("<>") is Operator.NE
        assert Operator.parse("≤") is Operator.LE
        assert Operator.parse("≥") is Operator.GE

    def test_parse_unknown(self):
        with pytest.raises(PatternError):
            Operator.parse("~")


class TestPredicate:
    def test_mask(self, table):
        assert list(Predicate.eq("role", "dev").mask(table)) == [
            True, False, True, False,
        ]

    def test_numeric_ops(self, table):
        assert list(Predicate("age", Operator.GE, 35).mask(table)) == [
            False, True, True, False,
        ]

    def test_string_operator_coerced(self):
        pred = Predicate("age", ">", 10)
        assert pred.operator is Operator.GT

    def test_matches_row(self):
        pred = Predicate("x", Operator.LT, 5)
        assert pred.matches_row({"x": 3})
        assert not pred.matches_row({"x": 7})
        with pytest.raises(PatternError):
            pred.matches_row({"y": 1})

    def test_empty_attribute_rejected(self):
        with pytest.raises(PatternError):
            Predicate("", Operator.EQ, 1)


class TestPattern:
    def test_empty_pattern_covers_all(self, table):
        assert Pattern.empty().mask(table).all()
        assert Pattern.empty().coverage(table) == 4

    def test_conjunction_mask(self, table):
        pattern = Pattern(
            [Predicate.eq("role", "dev"), Predicate("age", Operator.GT, 30)]
        )
        assert list(pattern.mask(table)) == [False, False, True, False]

    def test_of_constructor(self):
        pattern = Pattern.of(role="dev", city="NY")
        assert pattern.attributes == ("city", "role")

    def test_canonical_ordering(self):
        a = Pattern([Predicate.eq("x", 1), Predicate.eq("y", 2)])
        b = Pattern([Predicate.eq("y", 2), Predicate.eq("x", 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_deduplication(self):
        pattern = Pattern([Predicate.eq("x", 1), Predicate.eq("x", 1)])
        assert len(pattern) == 1

    def test_contradictory_equalities_rejected(self):
        with pytest.raises(PatternError):
            Pattern([Predicate.eq("x", 1), Predicate.eq("x", 2)])

    def test_range_on_same_attribute_allowed(self, table):
        pattern = Pattern(
            [Predicate("age", Operator.GT, 26), Predicate("age", Operator.LT, 40)]
        )
        assert pattern.coverage(table) == 2

    def test_conjoin(self):
        base = Pattern.of(a=1)
        extended = base & Predicate.eq("b", 2)
        assert len(extended) == 2
        both = base & Pattern.of(c=3)
        assert both.attributes == ("a", "c")

    def test_restricted_to(self):
        pattern = Pattern.of(a=1, b=2)
        assert pattern.restricted_to(["a"]).attributes == ("a",)
        assert pattern.restricted_to(["zzz"]).is_empty()

    def test_is_over(self):
        pattern = Pattern.of(a=1, b=2)
        assert pattern.is_over(["a", "b", "c"])
        assert not pattern.is_over(["a"])

    def test_subsumes(self):
        small = Pattern.of(a=1)
        big = Pattern.of(a=1, b=2)
        assert small.subsumes(big)
        assert not big.subsumes(small)

    def test_matches_row(self):
        pattern = Pattern.of(a=1, b=2)
        assert pattern.matches_row({"a": 1, "b": 2, "c": 9})
        assert not pattern.matches_row({"a": 1, "b": 3})

    def test_coverage_fraction(self, table):
        assert Pattern.of(role="dev").coverage_fraction(table) == 0.5

    def test_str_rendering(self):
        assert str(Pattern.empty()) == "TRUE"
        assert "role = dev" in str(Pattern.of(role="dev"))
