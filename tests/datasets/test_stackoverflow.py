"""Tests for the synthetic Stack Overflow dataset (S19)."""

import numpy as np
import pytest

from repro.datasets.stackoverflow import (
    LOW_GDP_EFFECT_FACTOR,
    build_stackoverflow_scm,
    load_stackoverflow,
)


@pytest.fixture(scope="module")
def bundle():
    return load_stackoverflow(n=4_000, rng=0)


def test_table3_statistics(bundle):
    stats = bundle.stats()
    assert stats["attributes"] == 20
    assert stats["mutable_attributes"] == 10
    # Paper: 21.5% — the synthetic targets ~22%.
    assert 0.18 <= stats["protected_fraction"] <= 0.27


def test_schema_roles(bundle):
    assert len(bundle.schema.immutable_names) == 10
    assert len(bundle.schema.mutable_names) == 10
    assert bundle.outcome == "Salary"


def test_dag_covers_schema(bundle):
    for name in bundle.schema.names:
        assert name in bundle.dag


def test_salary_positive_and_plausible(bundle):
    salary = bundle.table.values("Salary")
    assert (salary > 0).all()
    assert 40_000 < salary.mean() < 250_000


def test_low_gdp_earn_less(bundle):
    salary = bundle.table.values("Salary")
    protected = bundle.protected.mask(bundle.table)
    assert salary[protected].mean() < 0.6 * salary[~protected].mean()


def test_gdp_deterministic_from_country(bundle):
    country = bundle.table.values("Country")
    gdp = bundle.table.values("GDP")
    low = {"India", "Brazil", "Nigeria", "Philippines"}
    assert all((c in low) == (g == "Low") for c, g in zip(country, gdp))


def test_deterministic_generation():
    a = load_stackoverflow(n=500, rng=3)
    b = load_stackoverflow(n=500, rng=3)
    assert a.table == b.table


def test_orientation_correlated_but_causally_inert():
    """The association trap: orientation correlates with salary but has no
    causal effect (there is no DAG edge into Salary)."""
    bundle = load_stackoverflow(n=20_000, rng=1)
    salary = bundle.table.values("Salary")
    orientation = bundle.table.values("SexualOrientation")
    straight = orientation == "Straight"
    # Correlated (low-GDP countries report straight more often, earn less).
    assert salary[straight].mean() < salary[~straight].mean()
    # But not a cause:
    assert "Salary" not in bundle.dag.children("SexualOrientation")


def test_ground_truth_role_effect_moderated():
    """do(Role=backend) raises salary ~LOW_GDP_EFFECT_FACTOR less for the
    protected group — the planted disparity."""
    scm = build_stackoverflow_scm()
    low = {"India", "Brazil", "Nigeria", "Philippines"}

    def protected(values):
        return np.isin(values["Country"], list(low))

    def non_protected(values):
        return ~np.isin(values["Country"], list(low))

    kwargs = dict(
        interventions={"Role": "Back-end developer"},
        baseline={"Role": "QA developer"},
        outcome="Salary",
        n=30_000,
        rng=2,
    )
    effect_protected = scm.ground_truth_cate(condition=protected, **kwargs)
    effect_non_protected = scm.ground_truth_cate(condition=non_protected, **kwargs)
    ratio = effect_protected / effect_non_protected
    assert ratio == pytest.approx(LOW_GDP_EFFECT_FACTOR, abs=0.05)


def test_estimator_recovers_ground_truth_on_so():
    """End-to-end estimator validation on the SO SCM."""
    from repro.causal.estimators import LinearAdjustmentEstimator
    from repro.causal.backdoor import backdoor_adjustment_set

    bundle = load_stackoverflow(n=20_000, rng=4)
    truth = bundle.scm.ground_truth_ate(
        {"Education": "Master"}, {"Education": "HighSchool"}, "Salary",
        n=40_000, rng=5,
    )
    adjustment = backdoor_adjustment_set(bundle.dag, ["Education"], "Salary")
    treated = bundle.table.values("Education") == "Master"
    baseline_rows = (bundle.table.values("Education") == "HighSchool") | treated
    sub = bundle.table.filter(baseline_rows)
    result = LinearAdjustmentEstimator().estimate(
        sub, treated[baseline_rows], "Salary", adjustment
    )
    assert result.valid
    assert result.estimate == pytest.approx(truth, rel=0.2)
