"""Tests for the SCM mechanism helpers."""

import numpy as np
import pytest

from repro.datasets.synth import indicator, lookup, pick, pick_rows
from repro.utils.errors import SchemaError
from repro.utils.rng import ensure_rng


def test_pick_distribution():
    rng = ensure_rng(0)
    u = rng.random(50_000)
    values = pick(["a", "b", "c"], [0.5, 0.3, 0.2], u)
    counts = {v: (values == v).mean() for v in ("a", "b", "c")}
    assert counts["a"] == pytest.approx(0.5, abs=0.02)
    assert counts["b"] == pytest.approx(0.3, abs=0.02)
    assert counts["c"] == pytest.approx(0.2, abs=0.02)


def test_pick_validates_probabilities():
    u = np.array([0.5])
    with pytest.raises(SchemaError):
        pick(["a", "b"], [0.6, 0.6], u)
    with pytest.raises(SchemaError):
        pick(["a"], [0.5, 0.5], u)


def test_pick_deterministic_in_noise():
    u = np.array([0.1, 0.9])
    first = pick(["x", "y"], [0.5, 0.5], u)
    second = pick(["x", "y"], [0.5, 0.5], u)
    assert np.array_equal(first, second)


def test_pick_rows_rowwise_distributions():
    rng = ensure_rng(1)
    n = 30_000
    probs = np.zeros((n, 2))
    probs[: n // 2] = (0.9, 0.1)
    probs[n // 2:] = (0.1, 0.9)
    values = pick_rows(["a", "b"], probs, rng.random(n))
    assert (values[: n // 2] == "a").mean() == pytest.approx(0.9, abs=0.02)
    assert (values[n // 2:] == "b").mean() == pytest.approx(0.9, abs=0.02)


def test_pick_rows_normalises():
    values = pick_rows(["a", "b"], np.array([[2.0, 2.0]]), np.array([0.1]))
    assert values[0] in ("a", "b")


def test_pick_rows_validation():
    with pytest.raises(SchemaError):
        pick_rows(["a", "b"], np.array([[0.5, -0.5]]), np.array([0.5]))
    with pytest.raises(SchemaError):
        pick_rows(["a", "b"], np.array([[0.0, 0.0]]), np.array([0.5]))
    with pytest.raises(SchemaError):
        pick_rows(["a"], np.array([[0.5, 0.5]]), np.array([0.5]))


def test_lookup():
    keys = np.array(["x", "y", "z"], dtype=object)
    out = lookup({"x": 1.0, "y": 2.0}, keys, default=-1.0)
    assert list(out) == [1.0, 2.0, -1.0]


def test_indicator():
    keys = np.array(["a", "b", "a"], dtype=object)
    assert list(indicator(keys, "a")) == [1.0, 0.0, 1.0]
