"""Tests for the synthetic German Credit dataset (S20)."""

import numpy as np
import pytest

from repro.datasets.german import (
    PROTECTED_EFFECT_FACTOR,
    build_german_scm,
    load_german,
)


@pytest.fixture(scope="module")
def bundle():
    return load_german(n=4_000, rng=0)


def test_table3_statistics():
    bundle = load_german(rng=0)  # paper size
    stats = bundle.stats()
    assert stats["tuples"] == 1_000
    assert stats["attributes"] == 20
    assert stats["mutable_attributes"] == 15
    # Paper: 9.2% single females.
    assert 0.06 <= stats["protected_fraction"] <= 0.13


def test_outcome_binary(bundle):
    outcome = bundle.table.values("CreditRisk")
    assert set(np.unique(outcome)) <= {0.0, 1.0}


def test_good_credit_rate_plausible(bundle):
    rate = bundle.table.values("CreditRisk").mean()
    assert 0.35 <= rate <= 0.75


def test_protected_group_disadvantaged(bundle):
    outcome = bundle.table.values("CreditRisk")
    protected = bundle.protected.mask(bundle.table)
    assert outcome[protected].mean() < outcome[~protected].mean()


def test_dag_covers_schema(bundle):
    for name in bundle.schema.names:
        assert name in bundle.dag


def test_years_in_housing_is_trap(bundle):
    """Correlated with credit (via age) but causally inert."""
    assert "CreditRisk" not in bundle.dag.children("YearsInHousing")
    big = load_german(n=20_000, rng=1)
    outcome = big.table.values("CreditRisk")
    yih = big.table.values("YearsInHousing")
    long_tenure = np.isin(yih, (">7 years", "4-7 years"))
    assert outcome[long_tenure].mean() > outcome[~long_tenure].mean()


def test_ground_truth_checking_effect_moderated():
    scm = build_german_scm()

    def protected(values):
        return values["PersonalStatus"] == "female single"

    def non_protected(values):
        return values["PersonalStatus"] != "female single"

    kwargs = dict(
        interventions={"CheckingAccount": ">=200 DM"},
        baseline={"CheckingAccount": "none"},
        outcome="CreditRisk",
        n=300_000,
        rng=2,
    )
    effect_p = scm.ground_truth_cate(condition=protected, **kwargs)
    effect_np = scm.ground_truth_cate(condition=non_protected, **kwargs)
    assert effect_np > 0.1
    assert effect_p / effect_np == pytest.approx(
        PROTECTED_EFFECT_FACTOR, abs=0.12
    )


def test_deterministic_generation():
    a = load_german(n=300, rng=3)
    b = load_german(n=300, rng=3)
    assert a.table == b.table


def test_bundle_defaults():
    bundle = load_german(n=200, rng=0)
    assert bundle.fairness_kind == "BGL"
    assert bundle.default_fairness_threshold == 0.1
    assert bundle.default_coverage_theta == 0.3
