"""Property suite for the columnar shard store (:mod:`repro.datasets.sharded`).

The out-of-core contract under test: a :class:`ShardedTable` is a pure
re-layout of its source :class:`~repro.tabular.table.Table`.  For *any*
shard boundary placement — rng-fuzzed sizes, 1-row shards, shards missing
a category entirely — every quantity the engine reads through the handle
must equal the whole-table value:

- packed bitset words merge exactly (``predicate_words`` ≡ ``pack_mask``
  of the in-RAM mask, bit for bit);
- one-hot design-block Grams and column sums merge exactly (integer cross
  products, so float64 accumulation is lossless);
- continuous sufficient statistics are shard-order-deterministic and agree
  with the whole-table value to float rounding;
- ``filter`` gathers the identical sub-table (content *and* fingerprint),
  which is what makes downstream estimation bit-identical;
- the store round-trips values, categories, counts, and the table
  fingerprint, independent of how appends were chunked.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from tests.conftest import build_toy_table
from repro.causal import batch
from repro.datasets.sharded import (
    ShardedTable,
    ShardedTableWriter,
    sharded_from_chunks,
)
from repro.mining.bitsets import (
    PackedMaskBuilder,
    concat_packed,
    pack_mask,
    popcount,
)
from repro.mining.patterns import Operator, Pattern, Predicate
from repro.tabular.schema import (
    AttributeKind,
    AttributeRole,
    AttributeSpec,
    Schema,
)
from repro.tabular.table import Table


def build_rare_table(n: int = 37) -> Table:
    """A table whose ``Level`` column has a category confined to early rows.

    ``rare`` only occurs in the first three rows, so any shard cut past row
    3 yields shards where the category is entirely absent — the boundary
    case the global-dictionary encoding and the zero-column Gram handling
    must survive.
    """
    level = np.array(
        ["rare"] * 3 + ["mid", "high"] * ((n - 3) // 2 + 1), dtype=object
    )[:n]
    group = np.array(["a", "b", "c"] * (n // 3 + 1), dtype=object)[:n]
    treat = np.array(["Yes", "No"] * (n // 2 + 1), dtype=object)[:n]
    outcome = np.linspace(-3.0, 11.0, n) + (level == "rare") * 5.0
    schema = Schema(
        [
            AttributeSpec("Level", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("Group", AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE),
            AttributeSpec("Treat", AttributeKind.CATEGORICAL, AttributeRole.MUTABLE),
            AttributeSpec("Outcome", AttributeKind.CONTINUOUS, AttributeRole.OUTCOME),
        ]
    )
    return Table(
        {"Level": level, "Group": group, "Treat": treat, "Outcome": outcome},
        schema=schema,
    )


def fuzzed_shard_sizes(rng: np.random.Generator, n: int, draws: int = 6) -> list[int]:
    """Shard sizes covering 1-row shards, ragged tails, and a single shard."""
    sizes = {1, n, n + 7}
    sizes.update(int(s) for s in rng.integers(2, n, size=draws))
    return sorted(sizes)


def open_store(table: Table, directory, shard_rows: int) -> ShardedTable:
    return ShardedTable.write(table, str(directory), shard_rows)


# -- round-trip --------------------------------------------------------------------


@pytest.mark.parametrize("shard_rows", [1, 7, 37, 50])
def test_roundtrip_values_counts_fingerprint(tmp_path, shard_rows):
    table = build_rare_table()
    store = open_store(table, tmp_path / f"s{shard_rows}", shard_rows)
    assert store.is_sharded
    assert store.n_rows == table.n_rows
    assert sum(store.shard_lengths) == table.n_rows
    assert all(length >= 1 for length in store.shard_lengths)
    assert store.column_names == tuple(table.column_names)
    for name in table.column_names:
        np.testing.assert_array_equal(store.values(name), table.values(name))
        assert store.value_counts(name) == table.value_counts(name)
        assert store.unique(name) == table.unique(name)
    assert store.fingerprint() == table.fingerprint()


def test_global_categories_cover_shards_missing_one(tmp_path):
    table = build_rare_table()
    store = open_store(table, tmp_path / "rare", 10)
    assert store.categories("Level") == table.column("Level").categories
    # Shards past the cut have no "rare" row, yet decode with the global
    # dictionary — reassembling them must reproduce the column exactly.
    tail = store.shard(store.n_shards - 1)
    assert "rare" not in tail.column("Level").decode()
    assert tail.column("Level").categories == store.categories("Level")


def test_pickle_reopens_same_store(tmp_path):
    table = build_rare_table()
    store = open_store(table, tmp_path / "pkl", 8)
    clone = pickle.loads(pickle.dumps(store))
    assert clone.directory == store.directory
    assert clone.fingerprint() == store.fingerprint()
    assert clone.shard_lengths == store.shard_lengths


def test_write_reuse_skips_rewrite_on_matching_store(tmp_path):
    table = build_rare_table()
    directory = tmp_path / "reuse"
    first = ShardedTable.write(table, str(directory), 8)
    manifest = directory / "manifest.json"
    stamp = manifest.stat().st_mtime_ns
    again = ShardedTable.write(table, str(directory), 8, reuse=True)
    assert manifest.stat().st_mtime_ns == stamp  # untouched
    assert again.fingerprint() == first.fingerprint()
    recut = ShardedTable.write(table, str(directory), 5, reuse=True)
    assert recut.shard_lengths != first.shard_lengths  # shard size changed


def test_writer_chunking_does_not_change_the_store(rng, tmp_path):
    """Appending in arbitrary chunk sizes re-cuts to identical shards."""
    table = build_rare_table()
    reference = open_store(table, tmp_path / "whole", 8)
    writer = ShardedTableWriter(str(tmp_path / "pieces"), table.schema, 8)
    start = 0
    while start < table.n_rows:
        stop = min(table.n_rows, start + int(rng.integers(1, 9)))
        writer.append_table(table.filter(np.arange(table.n_rows) >= start)
                            .filter(np.arange(table.n_rows - start) < stop - start))
        start = stop
    pieces = writer.close(fingerprint=table.fingerprint())
    assert pieces.shard_lengths == reference.shard_lengths
    assert pieces.fingerprint() == reference.fingerprint()
    for got, want in zip(pieces.iter_shards(), reference.iter_shards()):
        for name in table.column_names:
            np.testing.assert_array_equal(got.values(name), want.values(name))


def test_sharded_from_chunks_streams_without_the_whole_table(tmp_path):
    table = build_rare_table()
    chunks = (table.filter(np.arange(table.n_rows) < 20),
              table.filter(np.arange(table.n_rows) >= 20))
    store = sharded_from_chunks(str(tmp_path / "chunks"), table.schema, chunks, 6)
    np.testing.assert_array_equal(store.values("Level"), table.values("Level"))
    assert store.fingerprint() == table.fingerprint()


# -- bitset words ------------------------------------------------------------------


def test_fuzzed_boundaries_merge_bitset_words_exactly(rng, tmp_path):
    table = build_rare_table()
    predicates = [
        Predicate(name, Operator.EQ, value)
        for name in ("Level", "Group", "Treat")
        for value in table.unique(name)
    ]
    patterns = [
        Pattern.of(Level="rare", Group="a"),
        Pattern.of(Group="b", Treat="No"),
        Pattern.of(),
    ]
    for shard_rows in fuzzed_shard_sizes(rng, table.n_rows):
        store = open_store(table, tmp_path / f"w{shard_rows}", shard_rows)
        store.ensure_predicate_words(predicates)
        for predicate in predicates:
            want_mask = predicate.mask(table)
            words = store.predicate_words(predicate)
            np.testing.assert_array_equal(words, pack_mask(want_mask))
            assert popcount(words) == int(want_mask.sum())
            np.testing.assert_array_equal(store.predicate_mask(predicate), want_mask)
        for pattern in patterns:
            want_mask = pattern.mask(table)
            np.testing.assert_array_equal(
                store.pattern_words(pattern), pack_mask(want_mask)
            )
            np.testing.assert_array_equal(store.pattern_mask(pattern), want_mask)


def test_packed_mask_builder_matches_pack_mask(rng):
    """Incremental packing at arbitrary bit offsets ≡ one-shot packbits."""
    for _ in range(25):
        n = int(rng.integers(1, 500))
        mask = rng.random(n) < 0.4
        builder = PackedMaskBuilder(n)
        start = 0
        while start < n:
            stop = min(n, start + int(rng.integers(1, 80)))
            builder.append(mask[start:stop])
            start = stop
        np.testing.assert_array_equal(builder.words(), pack_mask(mask))


@pytest.mark.parametrize("lengths", [(64, 128, 192), (64, 100), (5, 7, 30)])
def test_concat_packed_matches_pack_mask(rng, lengths):
    segments = [rng.random(length) < 0.5 for length in lengths]
    whole = np.concatenate(segments)
    packed = concat_packed(
        [(pack_mask(segment), segment.size) for segment in segments],
        whole.size,
    )
    np.testing.assert_array_equal(packed, pack_mask(whole))


# -- merged sufficient statistics --------------------------------------------------


def test_fuzzed_boundaries_merge_grams_and_sums_exactly(rng, tmp_path):
    """One-hot Grams and column sums are integer counts: merges are exact."""
    table = build_rare_table()
    names = ("Level", "Group", "Treat")
    for shard_rows in fuzzed_shard_sizes(rng, table.n_rows, draws=4):
        store = open_store(table, tmp_path / f"g{shard_rows}", shard_rows)
        for name in names:
            np.testing.assert_array_equal(
                batch._block_column_sums(store, name),
                batch._block_column_sums(table, name),
            )
        for a in names:
            for b in names:
                np.testing.assert_array_equal(
                    batch._gram_pair(store, a, b), batch._gram_pair(table, a, b)
                )


def test_continuous_stats_are_shard_order_deterministic(tmp_path):
    """Outcome sums merge in fixed shard order: reopening reproduces the
    bits, and the value agrees with the whole-table reduction to rounding."""
    table = build_rare_table()
    first = open_store(table, tmp_path / "y", 5)
    again = ShardedTable.open(str(tmp_path / "y"))
    ysum_first = batch._outcome_sum(first, "Outcome")
    assert ysum_first == batch._outcome_sum(again, "Outcome")
    assert ysum_first == pytest.approx(batch._outcome_sum(table, "Outcome"), rel=1e-12)
    products_first = batch._outcome_block_products(first, "Outcome", "Level")
    np.testing.assert_array_equal(
        products_first, batch._outcome_block_products(again, "Outcome", "Level")
    )
    np.testing.assert_allclose(
        products_first,
        batch._outcome_block_products(table, "Outcome", "Level"),
        rtol=1e-12,
    )


def test_factorization_on_sharded_root_matches_in_ram(tmp_path):
    """``build_rows_factorization`` off merged stats matches the in-RAM build.

    The one-hot Gram (and so its inverse) is exact; the outcome-side
    products are shard-order float sums, so the residual agrees at the
    engine's 1e-9 relative-tolerance contract rather than bit-for-bit.
    """
    table = build_toy_table(n=90, seed=11)
    store = open_store(table, tmp_path / "fact", 13)
    for adjustment in ((), ("City",), ("City", "Training")):
        want = batch.build_rows_factorization(table, "Income", adjustment)
        got = batch.build_rows_factorization(store, "Income", adjustment)
        assert got.n == want.n and got.rank == want.rank
        np.testing.assert_array_equal(got.gram_inv, want.gram_inv)
        np.testing.assert_allclose(got.y_res, want.y_res, rtol=1e-9, atol=1e-9)


# -- filter gather -----------------------------------------------------------------


def test_filter_gathers_the_identical_subtable(rng, tmp_path):
    table = build_rare_table()
    store = open_store(table, tmp_path / "filter", 6)
    masks = [
        rng.random(table.n_rows) < p for p in (0.0, 0.15, 0.5, 1.0)
    ]
    masks.append(table.values("Level") == "rare")  # empties most shards
    for mask in masks:
        want = table.filter(mask)
        got = store.filter(mask)
        assert isinstance(got, Table) and got.n_rows == want.n_rows
        for name in table.column_names:
            np.testing.assert_array_equal(got.values(name), want.values(name))
        if want.n_rows:
            assert got.fingerprint() == want.fingerprint()


def test_filter_rejects_bad_masks(tmp_path):
    store = open_store(build_rare_table(), tmp_path / "bad", 9)
    with pytest.raises(Exception):
        store.filter(np.ones(store.n_rows + 1, dtype=bool))
