"""Tests for the dataset registry."""

import pytest

from repro.datasets.registry import DATASET_LOADERS, load_dataset
from repro.utils.errors import ConfigError


def test_registry_contents():
    assert set(DATASET_LOADERS) == {"stackoverflow", "german"}


def test_load_with_size_override():
    bundle = load_dataset("german", n=123, rng=0)
    assert bundle.table.n_rows == 123


def test_load_default_sizes():
    bundle = load_dataset("german", rng=0)
    assert bundle.table.n_rows == 1_000


def test_unknown_dataset():
    with pytest.raises(ConfigError):
        load_dataset("mnist")
