"""Tests for the dataset registry."""

import pytest

from repro.datasets.registry import (
    DATASET_LOADERS,
    available_datasets,
    load_dataset,
)
from repro.utils.errors import ConfigError


def test_registry_contents():
    assert set(DATASET_LOADERS) == {"stackoverflow", "german"}


def test_available_datasets_include_scenarios():
    names = available_datasets()
    assert "german" in names and "stackoverflow" in names
    scenarios = [n for n in names if n.startswith("scenario:")]
    assert len(scenarios) >= 30
    assert "scenario:linear-g2-d1-gap-lo" in scenarios


def test_load_with_size_override():
    bundle = load_dataset("german", n=123, rng=0)
    assert bundle.table.n_rows == 123


def test_load_default_sizes():
    bundle = load_dataset("german", rng=0)
    assert bundle.table.n_rows == 1_000


def test_load_scenario_world_by_name():
    bundle = load_dataset("scenario:single-stratum", n=150, rng=1)
    assert bundle.table.n_rows == 150
    assert bundle.name == "scenario:single-stratum"
    assert bundle.scm is not None  # ground truth is attached
    default = load_dataset("scenario:single-stratum")
    from repro.scenarios.catalog import DEFAULT_ROWS

    assert default.table.n_rows == DEFAULT_ROWS


def test_unknown_dataset():
    with pytest.raises(ConfigError):
        load_dataset("mnist")
    with pytest.raises(ConfigError):
        load_dataset("scenario:not-a-world")
