"""The pluggable execution layer: serial, thread, and process strategies.

All three executors implement the same two operations:

- :meth:`map`: apply a callable to items, returning results in input order;
- :meth:`map_with_state`: same, but the callable receives a shared *state*
  built once per worker from a picklable payload.  This is the primitive the
  mining fan-out uses: the state (a :class:`~repro.rules.utility.RuleEvaluator`
  plus its caches) is expensive to build and cheap to share, while the items
  (chunks of grouping-pattern indices) are tiny.

:class:`ProcessExecutor` ships the payload to each worker exactly once via
the pool initializer and submits every chunk as its own task, so idle
workers steal remaining chunks from the pool queue (chunked work-stealing).
Because results are reassembled in input order, all executors are
observationally identical — see the determinism contract in
:mod:`repro.parallel`.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import (
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    TimeoutError as FutureTimeoutError,
)
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.obs.runtime import current as obs_current
from repro.parallel.resilience import RetryPolicy, install_plan
from repro.utils.errors import ConfigError

EXECUTOR_KINDS = ("serial", "thread", "process")

# Per-process state installed by the pool initializer (one per worker).
_WORKER_STATE: Any = None


def _worker_init(
    build_state: Callable[[Any], Any], payload: Any, fault_plan: Any = None
) -> None:
    global _WORKER_STATE
    install_plan(fault_plan)
    _WORKER_STATE = build_state(payload)


def _worker_call(fn: Callable[[Any, Any], Any], item: Any) -> Any:
    return fn(_WORKER_STATE, item)


def _worker_call_tracked(
    fn: Callable[[Any, Any], Any], index: int, attempt: int, item: Any
) -> Any:
    """Resilient-path task: fault hooks keyed by ``(chunk, attempt)``.

    The attempt number ships with the task (not worker state) so injected
    faults stay deterministic across pool respawns — see
    :func:`repro.parallel.resilience.apply_chunk_faults`.
    """
    from repro.parallel.resilience import apply_chunk_faults

    apply_chunk_faults(index, attempt)
    return fn(_WORKER_STATE, item)


def default_worker_count() -> int:
    """Worker count used when ``n_workers`` is not given.

    Honors the CPU *affinity* mask where the platform exposes it, so a
    cgroup- or taskset-limited container (for example 1-CPU CI runners)
    does not oversubscribe its process pool; ``os.cpu_count()`` reports
    the machine's CPUs, not the schedulable ones.
    """
    affinity = getattr(os, "sched_getaffinity", None)
    if affinity is not None:
        try:
            return max(1, len(affinity(0)))
        except OSError:  # pragma: no cover - platform-specific failure
            pass
    return max(1, os.cpu_count() or 1)


def chunk_indices(
    n_items: int, n_workers: int, chunks_per_worker: int = 4
) -> list[list[int]]:
    """Split ``range(n_items)`` into contiguous chunks for work-stealing.

    Produces roughly ``n_workers * chunks_per_worker`` chunks so that a slow
    chunk (one grouping pattern with a huge lattice) does not serialise the
    run: workers that finish early pull the next chunk from the pool queue.
    Contiguity keeps per-chunk results easy to reassemble canonically.
    """
    if n_items <= 0:
        return []
    target = max(1, n_workers * chunks_per_worker)
    size = max(1, -(-n_items // target))
    return [
        list(range(start, min(start + size, n_items)))
        for start in range(0, n_items, size)
    ]


class SerialExecutor:
    """The reference executor: plain in-process iteration."""

    kind = "serial"

    def __init__(self) -> None:
        self.n_workers = 1

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        """Apply ``fn`` to every item, in order."""
        return [fn(item) for item in items]

    def map_with_state(
        self,
        build_state: Callable[[Any], Any],
        payload: Any,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        retry: "RetryPolicy | None" = None,
        fault_plan: Any = None,
    ) -> list[Any]:
        """Build the state once and apply ``fn(state, item)`` in order.

        ``retry``/``fault_plan`` are accepted for signature parity with the
        process executor and ignored: an in-process executor cannot lose a
        worker, and fault injection targets process pools only.
        """
        with obs_current().tracer.span(
            "parallel.map", kind=self.kind, n_workers=self.n_workers,
            chunks=len(items),
        ):
            state = build_state(payload)
            return [fn(state, item) for item in items]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n_workers={self.n_workers})"


class ThreadExecutor(SerialExecutor):
    """Thread-pool executor: shared-memory parallelism.

    Suited to workloads dominated by numpy/BLAS calls (which release the
    GIL); the evaluator state is built once and shared by all threads, so
    there is no pickling cost.  Cache and evaluator accesses are
    thread-safe (:class:`~repro.parallel.cache.EstimationCache` locks its
    LRU; everything else is read-only).
    """

    kind = "thread"

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = int(n_workers) if n_workers else default_worker_count()
        if self.n_workers < 1:
            raise ConfigError("n_workers must be >= 1")

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        items = list(items)
        if len(items) <= 1 or self.n_workers == 1:
            return [fn(item) for item in items]
        with ThreadPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(fn, items))

    def map_with_state(
        self,
        build_state: Callable[[Any], Any],
        payload: Any,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        retry: "RetryPolicy | None" = None,
        fault_plan: Any = None,
    ) -> list[Any]:
        with obs_current().tracer.span(
            "parallel.map", kind=self.kind, n_workers=self.n_workers,
            chunks=len(items),
        ):
            state = build_state(payload)
            return self.map(lambda item: fn(state, item), items)


class ProcessExecutor(SerialExecutor):
    """Process-pool executor: chunked work-stealing across CPU cores.

    ``map_with_state`` sends the payload to each worker exactly once (pool
    initializer) and submits each item as its own task; the pool's shared
    queue gives work-stealing for free.  ``build_state`` and ``fn`` must be
    module-level functions and the payload must be picklable.
    """

    kind = "process"

    def __init__(self, n_workers: int | None = None) -> None:
        self.n_workers = int(n_workers) if n_workers else default_worker_count()
        if self.n_workers < 1:
            raise ConfigError("n_workers must be >= 1")

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> list[Any]:
        items = list(items)
        if len(items) <= 1 or self.n_workers == 1:
            return [fn(item) for item in items]
        with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
            return list(pool.map(fn, items))

    def map_with_state(
        self,
        build_state: Callable[[Any], Any],
        payload: Any,
        fn: Callable[[Any, Any], Any],
        items: Sequence[Any],
        retry: "RetryPolicy | None" = None,
        fault_plan: Any = None,
    ) -> list[Any]:
        items = list(items)
        if not items:
            return []
        if self.n_workers == 1:
            # One worker cannot win anything over in-process execution;
            # skip the pickling round-trips but keep identical results.
            # (Fault plans target process pools; none exists here.)
            return SerialExecutor.map_with_state(
                self, build_state, payload, fn, items
            )
        with obs_current().tracer.span(
            "parallel.map", kind=self.kind, n_workers=self.n_workers,
            chunks=len(items),
        ):
            if retry is None and fault_plan is None:
                with ProcessPoolExecutor(
                    max_workers=min(self.n_workers, len(items)),
                    initializer=_worker_init,
                    initargs=(build_state, payload),
                ) as pool:
                    futures = [
                        pool.submit(_worker_call, fn, item) for item in items
                    ]
                    return [future.result() for future in futures]
            return self._map_resilient(
                build_state, payload, fn, items, retry or RetryPolicy(), fault_plan
            )

    def _map_resilient(
        self,
        build_state: Callable[[Any], Any],
        payload: Any,
        fn: Callable[[Any, Any], Any],
        items: list[Any],
        policy: "RetryPolicy",
        fault_plan: Any,
    ) -> list[Any]:
        """Pool loop that survives worker death, stuck chunks, and bad luck.

        Invariants that keep results bit-identical to the fault-free run:
        chunks are pure functions of immutable inputs, every result is
        stored under its original index, and the output list is assembled
        in input order — so retries, respawns, and the degraded-serial
        path can change *where* a chunk ran but never *what* it returned.

        Failure handling:

        - a chunk raising an ordinary exception is retried on the same
          (still healthy) pool, ``retry.attempts{reason="error"}``;
        - ``BrokenProcessPool`` (a worker died: OOM kill, segfault,
          injected ``os._exit``) charges an attempt to every unfinished
          chunk — the pool cannot say which one killed it — and respawns
          the pool, re-running the initializer (including shm re-attach:
          the caller holds the segment until this method returns),
          ``retry.attempts{reason="worker_lost"}`` + ``pool.respawns``;
        - a chunk exceeding ``policy.chunk_timeout_seconds`` cannot be
          cancelled (the worker is stuck *running* it), so the pool is
          torn down and respawned, ``retry.attempts{reason="timeout"}``;
        - a chunk that exhausts ``max_retries`` runs in-process instead
          (``chunks.degraded_serial``) — unbounded by the timeout, so a
          genuinely slow chunk completes slowly rather than never; a
          genuine error surfaces from here uncaught.  The driver never
          installs the fault plan, so this path is fault-free by
          construction (no injected-kill livelock).
        """
        telemetry = obs_current()

        def count(name: str, **labels) -> None:
            if telemetry.enabled:
                telemetry.registry.inc(name, 1, **labels)

        results: dict[int, Any] = {}
        attempts = {index: 0 for index in range(len(items))}
        pool: ProcessPoolExecutor | None = None
        try:
            while True:
                runnable = [
                    index
                    for index in range(len(items))
                    if index not in results
                    and attempts[index] <= policy.max_retries
                ]
                if not runnable:
                    break
                round_attempt = max(attempts[index] for index in runnable)
                if round_attempt > 0:
                    time.sleep(policy.delay(round_attempt))
                if pool is None:
                    pool = ProcessPoolExecutor(
                        max_workers=min(self.n_workers, len(runnable)),
                        initializer=_worker_init,
                        initargs=(build_state, payload, fault_plan),
                    )
                futures = [
                    (
                        index,
                        pool.submit(
                            _worker_call_tracked,
                            fn,
                            index,
                            attempts[index],
                            items[index],
                        ),
                    )
                    for index in runnable
                ]
                failed: list[tuple[int, str]] = []
                pool_lost = False
                for index, future in futures:
                    if pool_lost:
                        # The pool is gone; harvest whatever finished
                        # before the loss, retry the rest.
                        if future.done():
                            try:
                                results[index] = future.result()
                                continue
                            except Exception:
                                pass
                        failed.append((index, "worker_lost"))
                        continue
                    try:
                        results[index] = future.result(
                            timeout=policy.chunk_timeout_seconds
                        )
                    except FutureTimeoutError:
                        # The worker is stuck *running* this chunk; a
                        # future can't be cancelled once running, so the
                        # only reclaim is replacing the pool.
                        failed.append((index, "timeout"))
                        pool_lost = True
                        self._stop_pool(pool)
                        pool = None
                    except BrokenProcessPool:
                        failed.append((index, "worker_lost"))
                        pool_lost = True
                        self._stop_pool(pool)
                        pool = None
                    except Exception:
                        failed.append((index, "error"))
                for index, reason in failed:
                    attempts[index] += 1
                    count("retry.attempts", reason=reason)
                if pool_lost and any(
                    index not in results
                    and attempts[index] <= policy.max_retries
                    for index in range(len(items))
                ):
                    count("pool.respawns")
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
        degraded = [
            index for index in range(len(items)) if index not in results
        ]
        if degraded:
            state = build_state(payload)
            for index in degraded:
                results[index] = fn(state, items[index])
                count("chunks.degraded_serial")
        return [results[index] for index in range(len(items))]

    @staticmethod
    def _stop_pool(pool: ProcessPoolExecutor) -> None:
        """Hard-stop a broken or stuck pool without waiting on its workers."""
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - shutdown is best-effort
            pass
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # pragma: no cover
                pass


def make_executor(kind: str, n_workers: int | None = None) -> SerialExecutor:
    """Build an executor from its config spelling.

    ``kind`` is ``"serial"``, ``"thread"``, or ``"process"``; ``n_workers``
    of ``None``/``0`` means "all visible CPUs" for the parallel kinds.
    """
    if kind == "serial":
        return SerialExecutor()
    if kind == "thread":
        return ThreadExecutor(n_workers)
    if kind == "process":
        return ProcessExecutor(n_workers)
    raise ConfigError(
        f"unknown executor {kind!r}; choose from {list(EXECUTOR_KINDS)}"
    )


Executor = SerialExecutor
"""Alias for type hints: every executor subclasses the serial reference."""
