"""Executor-agnostic fan-out of FairCap's Step 2 over grouping patterns.

One grouping pattern = one independent work unit: build its
:class:`~repro.rules.utility.GroupEvaluationContext`, run the lattice
search, return the best rule.  This module packages that unit so any
:mod:`repro.parallel.executors` strategy can run it:

- the *payload* carries everything a worker needs (table, DAG, protected
  group, estimator, config, items, patterns) and is shipped to each process
  exactly once via the pool initializer;
- the *work items* are chunks of grouping-pattern indices
  (:func:`~repro.parallel.executors.chunk_indices`), small enough that the
  pool queue load-balances them across workers (work-stealing);
- every per-pattern result travels with its index, and the final rule list
  is reassembled in index order — the canonical Step-1 mining order the
  serial loop produces, which is what makes results independent of worker
  count (determinism contract, :mod:`repro.parallel`).

Each worker's per-pattern search runs the batched FWL engine when
``config.batch_estimation`` is set (the default): a lattice level is one
GEMM batch (:mod:`repro.causal.batch`), and the worker-side
:class:`~repro.parallel.cache.EstimationCache` stores whole-level entries,
which is what keeps results bit-identical across executors — a level's
batch composition is determined by the traversal, never by which worker
mined neighbouring patterns (see ``EstimationCache.level_key``).

This module is imported lazily by :mod:`repro.core.intervention` to keep
``repro.parallel`` importable from ``repro.core.config``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Sequence

from repro.parallel.cache import EstimationCache
from repro.parallel.executors import SerialExecutor, chunk_indices
from repro.parallel.resilience import RetryPolicy, active_plan


@dataclass
class _MiningState:
    """Per-worker state: the evaluator plus the shared search inputs.

    ``owns_telemetry`` marks state built by :func:`_build_state` inside a
    process worker, where the worker installed its *own* telemetry session:
    only then may :func:`_mine_chunk` drain it and ship the snapshot back.
    Serial and thread executors share the caller's session directly
    (:func:`_reuse_state`), and draining that would reset the caller's
    registry mid-run.
    """

    evaluator: object
    items: list
    config: object
    patterns: tuple
    owns_telemetry: bool = False
    cache_baseline: dict | None = None


def _build_state(payload: dict) -> _MiningState:
    """Pool initializer target: rebuild the evaluator inside a worker.

    The worker's cache is *seeded* from a snapshot of the caller's cache
    (cross-run warm start) and set to record what it computes, so new
    entries can travel back with the chunk results and accumulate in the
    caller's cache across runs — e.g. across the nine variants of a
    Table 4 block, which would otherwise re-estimate everything because
    each run's process pool is torn down at the end.

    The degraded-serial recovery path runs this builder *in the caller*
    (``payload["caller_pid"]`` matches): there it must neither install a
    worker telemetry session (that would clobber the caller's live one)
    nor attach the shm segment (the caller's table already owns the
    buffers, and attached views would dangle once the segment is
    unlinked at pool teardown).
    """
    from repro.rules.utility import RuleEvaluator

    config = payload["config"]
    in_caller = payload.get("caller_pid") == os.getpid()
    owns_telemetry = False
    if getattr(config, "telemetry", False) and not in_caller:
        # The parent's telemetry session does not cross the process
        # boundary; give the worker its own, installed for the pool's
        # lifetime (workers mine many chunks — _mine_chunk drains per
        # chunk so counts never double across chunks).
        from repro.obs.runtime import Telemetry, install

        install(Telemetry(enabled=True))
        owns_telemetry = True
    # The worker cache mirrors the caller's: its bound comes from the actual
    # caller cache when one exists (FairCap(cache=...) overrides the config,
    # including config.cache_size == 0), falling back to the config default.
    cache_entries = payload["cache_entries"]
    cache = EstimationCache(cache_entries) if cache_entries else None
    if cache is not None:
        snapshot = payload.get("cache_snapshot")
        if snapshot:
            cache.seed(snapshot)
        cache.record_new_entries()
    manifest = payload.get("shm")
    if manifest is not None and not in_caller:
        # Attach the caller's shared design/Gram buffers (read-only) and
        # seed the root table's memo caches with the mapped views; on any
        # failure shm.attach counts a fallback and the worker rebuilds.
        from repro.parallel import shm

        plan = active_plan()
        if plan is not None and plan.corrupts_attach():
            # Injected attach corruption: point the manifest at a segment
            # that does not exist, exercising the fallback path end to end.
            manifest = {**manifest, "name": "psm_repro_chaos_missing"}
        if shm.attach(manifest) is not None:
            shm.adopt(payload["table"])
    evaluator = RuleEvaluator(
        payload["table"],
        payload["outcome"],
        payload["dag"],
        payload["protected"],
        estimator=payload["estimator"],
        min_subgroup_size=config.min_subgroup_size,
        cache=cache,
    )
    return _MiningState(
        evaluator=evaluator,
        items=payload["items"],
        config=config,
        patterns=payload["patterns"],
        owns_telemetry=owns_telemetry,
        # Start counting cache activity after the warm-start seeding above.
        cache_baseline=(
            cache.tier_stats() if owns_telemetry and cache is not None else None
        ),
    )


def _mine_chunk(
    state: _MiningState, indices: list[int]
) -> tuple[list[tuple], dict, dict | None]:
    """Chunk worker: mine the best treatment for each grouping pattern.

    With frontier batching enabled (the default) the chunk's contexts
    advance level-synchronously through one frontier
    (:func:`repro.core.intervention.frontier_mine_patterns`); estimation
    batches stay per (context, sub-population, adjustment set), so the
    results are bit-identical to the per-pattern loop regardless of how
    patterns were chunked across workers.  Returns the per-pattern results,
    the cache entries this chunk computed (empty unless the worker cache is
    in recording mode), and — from process workers with telemetry on — the
    chunk's drained telemetry snapshot for the caller to absorb.
    """
    from repro.core.intervention import (
        frontier_enabled,
        frontier_mine_patterns,
        mine_intervention,
    )

    out = []
    if frontier_enabled(state.config, state.evaluator):
        results = frontier_mine_patterns(
            state.evaluator,
            [state.patterns[i] for i in indices],
            state.items,
            state.config,
        )
        out = [
            (i, result.best, result.nodes_evaluated)
            for i, result in zip(indices, results)
        ]
    else:
        for i in indices:
            context = state.evaluator.context(state.patterns[i].pattern)
            result = mine_intervention(context, state.items, state.config)
            out.append((i, result.best, result.nodes_evaluated))
    cache = state.evaluator.cache
    new_entries = cache.drain_new_entries() if cache is not None else {}
    telemetry_payload = None
    if state.owns_telemetry:
        from repro.obs.runtime import current

        telemetry = current()
        if telemetry.enabled:
            if cache is not None:
                # Worker caches live outside the caller's run-end counter
                # sweep; fold this chunk's lookup delta in before draining.
                state.cache_baseline = cache.emit_counters(
                    telemetry.registry, state.cache_baseline
                )
            telemetry_payload = telemetry.drain()
    return out, new_entries, telemetry_payload


def _reuse_state(evaluator_and_inputs: tuple) -> _MiningState:
    """State builder for in-process executors: share the existing evaluator."""
    evaluator, items, config, patterns = evaluator_and_inputs
    return _MiningState(
        evaluator=evaluator, items=items, config=config, patterns=patterns
    )


def mine_groups(
    evaluator,
    grouping_patterns: Sequence,
    items: list,
    config,
    executor: SerialExecutor,
) -> tuple[list, int]:
    """Run Step 2 for every grouping pattern through ``executor``.

    Returns ``(rules, nodes_evaluated)`` exactly as the serial loop in
    :func:`repro.core.intervention.mine_interventions_for_groups` would:
    one best rule per grouping pattern that has an eligible treatment, in
    Step-1 mining order.
    """
    detailed = mine_groups_detailed(
        evaluator, grouping_patterns, items, config, executor
    )
    rules = [best for best, _ in detailed if best is not None]
    return rules, sum(nodes for _, nodes in detailed)


def mine_groups_detailed(
    evaluator,
    grouping_patterns: Sequence,
    items: list,
    config,
    executor: SerialExecutor,
) -> list[tuple]:
    """Per-pattern Step-2 results through ``executor``, in input order.

    Returns one ``(best_rule_or_None, nodes_evaluated)`` per grouping
    pattern — the granularity the checkpoint layer persists.  Process
    executors run with the config's :class:`RetryPolicy` and fault plan:
    worker death, chunk timeout, and retry exhaustion are recovered inside
    :meth:`~repro.parallel.executors.ProcessExecutor.map_with_state`
    without changing any result bit (see the determinism contract).
    """
    from repro.core.intervention import frontier_enabled

    patterns = tuple(grouping_patterns)
    if not patterns:
        return []

    if (
        executor.kind == "thread"
        and len(patterns) < executor.n_workers
        and not frontier_enabled(config, evaluator)
    ):
        # Too few patterns to feed every thread; push the threads one level
        # down instead: walk the patterns serially and batch-evaluate each
        # lattice level across the pool (identical results — see
        # traverse_lattice's executor contract).  Patterns stay serial so
        # only one level-batch pool is live at a time (no oversubscription).
        from repro.core.intervention import mine_intervention

        detailed = []
        for frequent in patterns:
            context = evaluator.context(frequent.pattern)
            result = mine_intervention(
                context, items, config, lattice_executor=executor
            )
            detailed.append((result.best, result.nodes_evaluated))
        return detailed

    chunks = chunk_indices(len(patterns), executor.n_workers)
    if executor.kind == "process" and executor.n_workers > 1:
        # Workers rebuild the evaluator from a picklable payload (shipped
        # once per worker via the pool initializer).  The caller's cache
        # content rides along as a warm-start snapshot, and each chunk
        # brings its freshly-computed entries back for merging below.
        payload = {
            "table": evaluator.table,
            "outcome": evaluator.outcome,
            "dag": evaluator.dag,
            "protected": evaluator.protected,
            "estimator": evaluator.estimator,
            "config": config,
            "items": items,
            "patterns": patterns,
            "caller_pid": os.getpid(),
            "cache_snapshot": (
                evaluator.cache.snapshot() if evaluator.cache is not None else None
            ),
            "cache_entries": (
                evaluator.cache.max_entries
                if evaluator.cache is not None
                else config.cache_size
            ),
        }
        share = None
        if getattr(config, "shared_memory", True):
            # Publish the root table's design/Gram buffers once; workers
            # attach the segment in the pool initializer.  The segment is
            # unlinked on pool teardown whatever happens — live worker
            # mappings survive an unlink, leaked names would not survive us.
            from repro.parallel import shm

            if getattr(evaluator.table, "is_sharded", False):
                share = shm.publish_sharded_table(
                    evaluator.table, patterns, evaluator.protected
                )
            else:
                share = shm.publish_table(evaluator.table, evaluator.outcome)
            if share is not None:
                payload["shm"] = share.manifest
        try:
            chunk_results = executor.map_with_state(
                _build_state,
                payload,
                _mine_chunk,
                chunks,
                retry=RetryPolicy.from_config(config),
                fault_plan=getattr(config, "fault_plan", None),
            )
        finally:
            if share is not None:
                share.close()
    else:
        # Serial / thread: share the caller's evaluator (and its caches)
        # directly — threads are safe because all inputs are immutable and
        # EstimationCache locks its LRU.
        chunk_results = executor.map_with_state(
            _reuse_state, (evaluator, items, config, patterns), _mine_chunk, chunks
        )

    indexed: list[tuple] = []
    for chunk, new_entries, telemetry_payload in chunk_results:
        indexed.extend(chunk)
        if new_entries and evaluator.cache is not None:
            evaluator.cache.seed(new_entries)
        if telemetry_payload is not None:
            # Process workers count in their own registries; fold each
            # chunk's snapshot into the caller's session (counters add,
            # span trees graft under the active faircap.run span).
            from repro.obs.runtime import current

            current().absorb(telemetry_payload)
    indexed.sort(key=lambda entry: entry[0])
    return [(best, nodes) for _, best, nodes in indexed]
