"""Pluggable parallel execution for the FairCap pipeline.

Step 2 of FairCap (treatment mining) dominates end-to-end runtime: every
grouping pattern spawns a lattice search whose nodes each cost one or more
OLS fits.  The work is embarrassingly parallel *across grouping patterns*
(the paper's optimisation (ii)) and largely redundant *across variants and
repeated runs* (the same sub-population / treatment / adjustment-set triple
is re-estimated again and again).  This package addresses both:

- :mod:`repro.parallel.executors` — a pluggable execution layer with three
  interchangeable strategies: :class:`~repro.parallel.executors.SerialExecutor`
  (the reference), :class:`~repro.parallel.executors.ThreadExecutor`, and
  :class:`~repro.parallel.executors.ProcessExecutor` (chunked work-stealing
  over candidate grouping patterns via a process pool).
- :mod:`repro.parallel.cache` — :class:`~repro.parallel.cache.EstimationCache`,
  a content-addressed memo of ``estimate_cate`` results keyed by
  ``(estimator, table fingerprint, treated mask, outcome, adjustment set)``
  so overlapping candidates share estimation work across lattice levels,
  across problem variants, and across experiment runs.
- :mod:`repro.parallel.mining` — the executor-agnostic fan-out of Step 2
  (imported lazily by :mod:`repro.core.intervention`; it is *not* re-exported
  here to keep this package importable from :mod:`repro.core.config`).

Determinism contract
--------------------
FairCap results are **bit-for-bit identical regardless of executor and
worker count**.  The guarantees that make this hold:

1. *Canonical work order.*  Grouping patterns are numbered before fan-out
   and every executor reassembles per-pattern results by that index, so the
   candidate-rule list entering greedy selection is always in Step-1 mining
   order — the same canonical order the serial loop produces.
2. *Independent work units.*  A grouping pattern's lattice search reads only
   immutable inputs (table, DAG, config); nothing about one pattern's
   outcome influences another's, so partitioning cannot change any result.
3. *Identical arithmetic.*  Workers run the exact same estimation code on
   the exact same rows; no reduction is order-sensitive (per-pattern results
   are concatenated, never summed across workers in arrival order).
4. *Transparent caching.*  :class:`~repro.parallel.cache.EstimationCache` is
   keyed by the full content of an estimation problem, so a hit returns a
   value identical to what recomputation would produce; cache state can
   never alter a result, only its latency.

The differential suite ``tests/parallel/test_equivalence.py`` locks this
contract down by asserting rule-for-rule, metric-for-metric equality between
executors on every bundled dataset.
"""

from repro.parallel.cache import CacheStats, EstimationCache
from repro.parallel.executors import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    chunk_indices,
    make_executor,
)
from repro.parallel.resilience import (
    ChaosError,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    RunCheckpoint,
)

__all__ = [
    "CacheStats",
    "ChaosError",
    "EstimationCache",
    "Executor",
    "FaultPlan",
    "FaultSpec",
    "ProcessExecutor",
    "RetryPolicy",
    "RunCheckpoint",
    "SerialExecutor",
    "ThreadExecutor",
    "chunk_indices",
    "make_executor",
]
