"""Shared-memory transport of per-table design/Gram buffers.

``ProcessExecutor`` workers rebuild every float64 design block (and the
Gram products derived from them) from the raw column codes the mining
payload ships.  This module moves those buffers into one
``multiprocessing.shared_memory`` segment created by the *caller* before
the pool starts: each worker attaches the segment read-only and seeds its
root table's per-table memo caches with zero-copy views, so the pool
shares one physical copy of the buffers instead of each worker paging its
own rebuild.

Protocol
--------
- :func:`publish_table` (caller, before the pool): encodes the root
  table's design blocks (both layouts), their column sums, and any
  already-memoised Gram pair / outcome products into one segment, and
  returns a :class:`TableShare` whose picklable ``manifest`` rides in the
  worker payload.  The buffers are computed *locally* — never memoised
  onto the table — because the table itself is pickled into the payload
  afterwards and warm caches would balloon that pickle.
- :func:`attach` (worker, inside the pool initializer): maps the segment
  and registers its views in a process-global registry keyed by table
  fingerprint; :func:`adopt` seeds a table's caches directly, and
  :func:`lookup` serves cache misses for any table whose content
  fingerprint matches a registered segment (the hook sits on the miss
  path of :mod:`repro.causal.batch`'s per-table memos).  Views are
  verbatim copies of what the worker would have computed — values *and*
  strides: categorical blocks are adopted as the same strided
  reference-level slice a local ``one_hot`` build yields, because BLAS
  reduction order (hence the last ulp) follows the memory layout — so
  estimation bits are unchanged, the shm-on ≡ shm-off differential
  obligation.
- Lifecycle: the caller closes *and unlinks* the segment after the pool
  ends (:meth:`TableShare.close` — tolerant of an already-removed name);
  workers keep their attachments mapped for the process lifetime, which
  is safe because POSIX shared memory is reference counted — an unlink
  only removes the name, not live mappings.

Every failure mode on the worker side — platform without POSIX shared
memory, an attach race with teardown, a malformed manifest — increments
the ``shm.fallbacks`` counter and falls back to the rebuild path: shared
memory is an optimisation, never a correctness dependency.
"""

from __future__ import annotations

import atexit
import os
import signal

import numpy as np

from repro.obs.runtime import current as obs_current

try:  # pragma: no cover - stdlib; absent only on exotic platforms
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

#: Worker-side attachments: fingerprint -> (SharedMemory, {key: view}).
#: Module-global so segments stay mapped for the worker's lifetime.
_ATTACHED: dict[bytes, tuple[object, dict]] = {}

#: Caller-side safety net: segment name -> (owner pid, SharedMemory).
#: ``publish_table`` relies on pool-teardown ``finally`` for the normal
#: unlink; this registry covers *abnormal* driver exits — an unhandled
#: exception (atexit) or SIGTERM/SIGINT — where the ``finally`` never
#: runs and the name would otherwise outlive the process in ``/dev/shm``.
_LIVE_SHARES: dict[str, tuple[int, object]] = {}
_SAFETY_NET_INSTALLED = False


def _emergency_unlink_all() -> None:
    """Unlink every live segment *this process* published (best-effort).

    The pid guard matters: forked pool workers inherit the installed
    signal handlers, and a worker dying to SIGTERM (e.g. a stuck-pool
    teardown) must not unlink the caller's segment out from under a
    respawned pool.
    """
    pid = os.getpid()
    for name in list(_LIVE_SHARES):
        owner, segment = _LIVE_SHARES.get(name, (None, None))
        if owner != pid:
            continue
        _LIVE_SHARES.pop(name, None)
        try:
            segment.close()
        except OSError:  # pragma: no cover
            pass
        try:
            segment.unlink()
        except (FileNotFoundError, OSError):
            pass


def _chain_signal(signum, previous):
    """Re-deliver ``signum`` with its pre-install semantics after cleanup."""
    if callable(previous):
        previous(signum, None)
    elif previous != signal.SIG_IGN:
        signal.signal(signum, signal.SIG_DFL)
        os.kill(os.getpid(), signum)


def _install_safety_net() -> None:
    global _SAFETY_NET_INSTALLED
    if _SAFETY_NET_INSTALLED:
        return
    _SAFETY_NET_INSTALLED = True
    atexit.register(_emergency_unlink_all)
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            previous = signal.getsignal(signum)

            def _handler(signo, frame, _previous=previous):
                _emergency_unlink_all()
                _chain_signal(signo, _previous)

            signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            # Publishing off the main thread keeps the atexit net only.
            pass


def _count(name: str, **labels) -> None:
    telemetry = obs_current()
    if telemetry.enabled:
        telemetry.registry.inc(name, 1, **labels)


class TableShare:
    """Caller-side handle: one shared segment plus its picklable manifest."""

    def __init__(self, segment, manifest: dict) -> None:
        self._segment = segment
        self.manifest = manifest

    @property
    def name(self) -> str:
        return self.manifest["name"]

    def close(self) -> None:
        """Release and unlink the segment (caller side, pool teardown)."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        _LIVE_SHARES.pop(self.name, None)
        try:
            segment.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass
        try:
            segment.unlink()
        except FileNotFoundError:
            pass  # already unlinked (e.g. a second close())
        except OSError:  # pragma: no cover - platform quirks
            pass


def publish_table(table, outcome: str) -> TableShare | None:
    """Publish ``table``'s design/Gram buffers; ``None`` when unavailable.

    Publishes, for every non-outcome column: the design block in both the
    natural and transposed layouts plus its column sums (the three
    per-attribute memos design assembly reads), and any Gram pair /
    outcome products already memoised on the caller's table.  All buffers
    are float64 and built by the same code paths the workers would run, so
    adopted views are bit-identical to a rebuild.
    """
    if _shared_memory is None:
        return None
    from repro.causal.batch import _gram_cache
    from repro.causal.linalg import one_hot
    from repro.tabular.column import CategoricalColumn

    # Entry values are (stored_array, trim): ``trim`` marks a categorical
    # design block stored as its FULL one-hot matrix, adopted as the
    # ``[:, 1:]`` reference-level view.  Stride fidelity matters for bit
    # identity: :func:`one_hot` drops the first category by *slicing*, so
    # the block every worker would build locally is a strided view — and
    # BLAS reductions over a strided column order differently than over a
    # contiguous copy (a last-ulp difference the serial ≡ process contract
    # forbids).  Sums and transposes are derived from the trimmed view,
    # exactly as :mod:`repro.causal.batch` derives them.
    entries: dict[tuple, tuple[np.ndarray, bool]] = {}
    for name in table.column_names:
        if name == outcome:
            continue
        column = table.column(name)
        if isinstance(column, CategoricalColumn):
            full = one_hot(column.codes, len(column.categories), drop_first=False)
            block = full[:, 1:]
            entries[("block", name)] = (full, True)
        else:
            block = column.decode().reshape(-1, 1).astype(np.float64, copy=False)
            entries[("block", name)] = (block, False)
        entries[("block_t", name)] = (np.ascontiguousarray(block.T), False)
        entries[("sums", name)] = (block.sum(axis=0), False)
    for key, value in _gram_cache(table).items():
        # Warm Gram pair / outcome products (ndarray-valued entries only;
        # scalars like ("ysum", ...) are not worth a segment slot) ride
        # along for free when the caller estimated on this table before.
        if isinstance(value, np.ndarray) and key not in entries:
            entries[key] = (np.ascontiguousarray(value, dtype=np.float64), False)

    return _publish_entries(entries, table)


def _publish_entries(
    entries: dict, table, extra_meta: dict | None = None
) -> TableShare | None:
    """Write ``{key: (array, trim)}`` into one segment; None on failure.

    Manifest entries are ``(key, offset, shape, trim, dtype)`` — the dtype
    tag is what lets packed ``uint64`` predicate words share a segment with
    the float64 design buffers (readers tolerate legacy 4-tuples as
    float64).
    """
    total = sum(array.nbytes for array, _ in entries.values())
    try:
        segment = _shared_memory.SharedMemory(create=True, size=max(total, 8))
    except (OSError, ValueError):
        return None  # e.g. /dev/shm exhausted: run without sharing
    manifest_entries = []
    offset = 0
    for key, (array, trim) in entries.items():
        array = np.ascontiguousarray(array)
        view = np.ndarray(
            array.shape, dtype=array.dtype, buffer=segment.buf, offset=offset
        )
        view[...] = array
        manifest_entries.append((key, offset, array.shape, trim, array.dtype.str))
        offset += array.nbytes
    manifest = {
        "name": segment.name,
        "fingerprint": table.fingerprint(),
        "n_rows": table.n_rows,
        "entries": manifest_entries,
    }
    if extra_meta:
        manifest.update(extra_meta)
    _install_safety_net()
    _LIVE_SHARES[segment.name] = (os.getpid(), segment)
    _count("shm.published")
    return TableShare(segment, manifest)


def publish_sharded_table(table, patterns, protected) -> TableShare | None:
    """Publish a sharded table's *merged* mining statistics.

    Out-of-core tables never ship design blocks (those are materialised per
    context sub-table, not per root table).  What every worker needs from
    the root instead are the whole-table **packed predicate words** of the
    grouping patterns and the protected group — already built by Step 1,
    ``n/8`` bytes each — plus whatever shard-merged Gram statistics the
    caller accumulated.  Adopted words are verbatim copies of the caller's,
    so worker-side pattern masks (and everything downstream) stay
    bit-identical to a local rebuild, which would itself be bit-identical
    by the :class:`~repro.mining.bitsets.PackedMaskBuilder` exactness
    contract.
    """
    if _shared_memory is None:
        return None
    from repro.causal.batch import _gram_cache

    predicates: list = []
    for frequent in patterns:
        pattern = getattr(frequent, "pattern", frequent)
        predicates.extend(pattern.predicates)
    if protected is not None:
        predicates.extend(protected.pattern.predicates)
    table.ensure_predicate_words(predicates)
    entries: dict[tuple, tuple[np.ndarray, bool]] = {}
    for predicate in dict.fromkeys(predicates):
        entries[("predwords", predicate)] = (
            np.ascontiguousarray(table.predicate_words(predicate)),
            False,
        )
    for key, value in _gram_cache(table).items():
        if isinstance(value, np.ndarray) and key not in entries:
            entries[key] = (np.ascontiguousarray(value, dtype=np.float64), False)
    if not entries:
        return None
    return _publish_entries(entries, table, extra_meta={"sharded": True})


def attach(manifest: dict | None) -> dict | None:
    """Attach a published segment (worker side); ``None`` on any failure.

    Registers the mapped views under the manifest's table fingerprint and
    keeps the :class:`SharedMemory` object alive in the module registry —
    the views borrow its buffer.  Idempotent per fingerprint.
    """
    if _shared_memory is None or manifest is None:
        return None
    fingerprint = manifest.get("fingerprint")
    registered = _ATTACHED.get(fingerprint)
    if registered is not None:
        return registered[1]
    # CPython < 3.13 registers every attach with the resource tracker,
    # which would unlink the segment when *this worker* exits even though
    # the caller owns the lifecycle (bpo-39959).  Unregistering afterwards
    # is not enough: forked workers share the caller's tracker process,
    # whose name cache is a *set*, so a worker's register/unregister pair
    # collapses with the caller's create-registration and the caller's
    # eventual unlink then trips a KeyError in the tracker.  Suppress the
    # registration message entirely for the duration of the attach.
    try:
        from multiprocessing import resource_tracker

        _orig_register = resource_tracker.register

        def _no_shm_register(name, rtype):
            if rtype != "shared_memory":
                _orig_register(name, rtype)

        resource_tracker.register = _no_shm_register
    except Exception:  # pragma: no cover - tracker internals vary by version
        resource_tracker = None
        _orig_register = None
    try:
        segment = _shared_memory.SharedMemory(name=manifest["name"])
    except (KeyError, TypeError, OSError, ValueError):
        _count("shm.fallbacks", reason="attach_failed")
        return None
    finally:
        if _orig_register is not None:
            resource_tracker.register = _orig_register
    views: dict[tuple, np.ndarray] = {}
    try:
        for entry in manifest["entries"]:
            key, offset, shape, trim = entry[:4]
            dtype = np.dtype(entry[4]) if len(entry) > 4 else np.float64
            view = np.ndarray(
                tuple(shape), dtype=dtype, buffer=segment.buf, offset=offset
            )
            view.flags.writeable = False
            if trim:
                # Reconstruct the reference-level slice with the same
                # strides a local one_hot build would have (see publish).
                view = view[:, 1:]
            views[key] = view
    except (KeyError, TypeError, ValueError):
        _count("shm.fallbacks", reason="bad_manifest")
        try:
            segment.close()
        except OSError:  # pragma: no cover
            pass
        return None
    _ATTACHED[fingerprint] = (segment, views)
    _count("shm.attached")
    return views


def lookup(table, key) -> np.ndarray | None:
    """A registered buffer for ``table``'s per-table cache ``key``, or None.

    Matching is by content fingerprint, so a stale or mismatched manifest
    can never serve wrong buffers — and derived sub-tables that happen to
    equal the published table byte-for-byte are served too.  Zero-cost in
    any process that never attached a segment.
    """
    if not _ATTACHED:
        return None
    registered = _ATTACHED.get(table.fingerprint())
    if registered is None:
        return None
    return registered[1].get(key)


def adopt(table) -> int:
    """Seed ``table``'s design/Gram memo caches from an attached segment.

    Returns the number of cache entries seeded (0 without a fingerprint
    match).  Seeding the root table up front saves even the per-miss
    :func:`lookup` probes on its hot attributes.
    """
    if not _ATTACHED:
        return 0
    registered = _ATTACHED.get(table.fingerprint())
    if registered is None:
        return 0
    if getattr(table, "is_sharded", False):
        # Sharded roots adopt packed predicate words (so workers skip the
        # shard pass Step 1 already paid) and merged Gram statistics.
        gram_cache = table.__dict__.setdefault("_gram_block_cache", {})
        seeded = 0
        for key, view in registered[1].items():
            if key[0] == "predwords":
                if key[1] not in table._predicate_words:
                    table._seed_predicate_words(key[1], view)
                    seeded += 1
            elif key not in gram_cache:
                gram_cache[key] = view
                seeded += 1
        return seeded
    block_cache = table.__dict__.setdefault("_design_block_cache", {})
    block_t_cache = table.__dict__.setdefault("_design_block_t_cache", {})
    gram_cache = table.__dict__.setdefault("_gram_block_cache", {})
    seeded = 0
    for key, view in registered[1].items():
        kind = key[0]
        if kind == "block":
            target, short = block_cache, key[1]
        elif kind == "block_t":
            target, short = block_t_cache, key[1]
        else:
            target, short = gram_cache, key
        if short not in target:
            target[short] = view
            seeded += 1
    return seeded


def detach_all() -> None:
    """Drop every worker-side attachment (test hook; workers never call it)."""
    while _ATTACHED:
        _, (segment, _) = _ATTACHED.popitem()
        try:
            segment.close()
        except OSError:  # pragma: no cover
            pass
