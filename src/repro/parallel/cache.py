"""Content-addressed memoisation of CATE estimates.

FairCap's Step 2 estimates thousands of CATEs, and large fractions of that
work recur: the same sub-population / treated-mask / adjustment-set triple is
re-estimated across lattice levels (a kept node's splits reappear under its
children's contexts), across the nine problem variants of a Table-4 style
experiment (variants change *selection*, not estimation), and across repeat
runs on the same data.  :class:`EstimationCache` memoises
:meth:`~repro.causal.estimators.LinearAdjustmentEstimator.estimate` results
under a key derived entirely from content:

``(estimator identity+params, table fingerprint, treated-mask digest,
outcome name, adjustment attributes)``

The table fingerprint (:meth:`repro.tabular.table.Table.fingerprint`) hashes
the actual column data, so two structurally identical sub-tables produced by
different filter paths share entries — this is what makes the cache work
across variants and runs, where the sub-table *objects* are always fresh.

Because the key captures every input of the estimation, a cache hit returns
a value bit-identical to recomputation; caching can change latency, never
results (see the determinism contract in :mod:`repro.parallel`).  The store
is an LRU bounded by ``max_entries`` and guarded by a lock so
:class:`~repro.parallel.executors.ThreadExecutor` workers can share one
instance.

The batched FWL engine (:mod:`repro.causal.batch`) adds two entry families:

- *level entries* (:meth:`EstimationCache.level_key`) memoise one whole
  lattice level's results under a digest of the full treated-mask stack —
  per-column GEMM output is only bit-reproducible for an identical batch,
  so the level itself is the content unit;
- *design factorizations* (:meth:`EstimationCache.get_or_factorize`) memoise
  the per-(table, outcome, adjustment) orthogonal basis in a sibling LRU
  that never crosses process boundaries.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

CacheKey = tuple


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/eviction counters of one :class:`EstimationCache` tier."""

    hits: int
    misses: int
    entries: int
    evictions: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


def treated_mask_digest(treated: np.ndarray) -> bytes:
    """Stable digest of a boolean treated/control mask."""
    treated = np.asarray(treated, dtype=bool)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(treated.size).encode())
    h.update(np.packbits(treated).tobytes())
    return h.digest()


def treated_rows_digest(treated_rows: np.ndarray) -> bytes:
    """Stable digest of an ``(m, n)`` *row-major* boolean treated stack.

    Row-layout sibling of :func:`treated_matrix_digest` for the frontier
    batcher's level requests; the shape prefix keeps the two families (and
    transposes of each other's content) from ever colliding.
    """
    treated_rows = np.asarray(treated_rows, dtype=bool)
    h = hashlib.blake2b(digest_size=16)
    h.update(b"rows")
    h.update(repr(treated_rows.shape).encode())
    h.update(np.packbits(treated_rows, axis=1).tobytes())
    return h.digest()


def packed_rows_digest(word_matrix: np.ndarray, n_rows: int) -> bytes:
    """Stable digest of an ``(m, words)`` packed-bitset stack.

    The bitset kernel (:mod:`repro.mining.bitsets`) already holds each
    candidate mask as ``uint64`` words, so hashing the words directly skips
    the per-level ``np.packbits`` pass the boolean digests pay.  ``n_rows``
    disambiguates stacks whose padding would otherwise alias (all padding
    bits are zero by construction).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(b"packed-rows")
    h.update(repr((n_rows,) + word_matrix.shape).encode())
    h.update(np.ascontiguousarray(word_matrix).tobytes())
    return h.digest()


def treated_matrix_digest(treated_matrix: np.ndarray) -> bytes:
    """Stable digest of an ``(n, m)`` boolean treated-mask stack.

    The digest covers the shape *and* the column order: two batches with the
    same columns in a different order hash differently.  That is deliberate
    — batch entries memoise the result of one specific GEMM, and BLAS
    kernels only guarantee bit-identical per-column results for an identical
    batch (see the determinism notes in :mod:`repro.causal.batch`).
    """
    treated_matrix = np.asarray(treated_matrix, dtype=bool)
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(treated_matrix.shape).encode())
    h.update(np.packbits(treated_matrix, axis=0).tobytes())
    return h.digest()


class EstimationCache:
    """Bounded, thread-safe, content-addressed store of CATE results.

    Parameters
    ----------
    max_entries:
        LRU bound; least-recently-used entries are evicted past it.
    """

    def __init__(self, max_entries: int = 4096) -> None:
        self.max_entries = max(1, int(max_entries))
        self._store: OrderedDict[CacheKey, object] = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._fac_hits = 0
        self._fac_misses = 0
        self._fac_evictions = 0
        self._new: dict[CacheKey, object] | None = None
        # Design factorizations (repro.causal.batch) live in a sibling LRU:
        # they are derived data — recomputable from the table — and carry an
        # (n x rank) orthonormal basis each, so they are deliberately
        # excluded from snapshot()/seed() (process workers rebuild their own
        # rather than paying to ship dense bases across the pool).
        self._factorizations: OrderedDict[CacheKey, object] = OrderedDict()
        self.max_factorizations = max(1, min(self.max_entries, 512))

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def key_for(
        estimator,
        table,
        treated: np.ndarray,
        outcome: str,
        adjustment: tuple[str, ...],
    ) -> CacheKey:
        """Content key of one estimation problem.

        ``estimator`` must expose ``cache_key()`` (see
        :mod:`repro.causal.estimators`); ``table`` must expose
        ``fingerprint()`` (see :class:`repro.tabular.table.Table`).
        """
        return (
            estimator.cache_key(),
            table.fingerprint(),
            treated_mask_digest(treated),
            outcome,
            tuple(adjustment),
        )

    @staticmethod
    def level_key(
        estimator,
        table,
        treated_matrix: np.ndarray,
        outcome: str,
        adjustments,
    ) -> CacheKey:
        """Content key of one whole-level estimation (per-column adjustments).

        Level entries are keyed by the full treated-mask stack rather than
        per column: a stored value is the result of one specific GEMM
        batch, and only an identical batch is guaranteed to reproduce it
        bit-for-bit (see :func:`treated_matrix_digest`).  Lattice levels
        are fully determined by the traversal, so identical runs — warm
        reruns, sibling problem variants, any executor or worker count —
        hit the same keys.  The per-column adjustment tuples determine the
        FWL grouping, so they are part of the content.
        """
        return (
            "level",
            estimator.cache_key(),
            table.fingerprint(),
            treated_matrix_digest(treated_matrix),
            outcome,
            tuple(tuple(adj) for adj in adjustments),
        )

    @staticmethod
    def rows_level_key(
        estimator,
        table,
        digest_parts: tuple,
        outcome: str,
        adjustments,
    ) -> CacheKey:
        """Content key of one frontier level request (row-major stacks).

        ``digest_parts`` is an opaque tuple the caller guarantees to
        *determine the request's treated stack*: the frontier batcher passes
        the packed-words digest of the level's full candidate stack plus,
        for protected / non-protected sub-populations, the digest of the
        context's row-selection mask — together they pin the sliced stack's
        content exactly, without re-digesting each sub-population's rows.
        Same level-granularity contract as :meth:`level_key`: a stored
        value is the result of one specific batch, and identical runs hit
        identical keys regardless of executor or chunking.
        """
        return (
            "level-rows",
            estimator.cache_key(),
            table.fingerprint(),
            digest_parts,
            outcome,
            tuple(tuple(adj) for adj in adjustments),
        )

    @staticmethod
    def factorization_key(
        table, outcome: str, adjustment: tuple[str, ...]
    ) -> CacheKey:
        """Content key of one design factorization (table, outcome, Z)."""
        return ("fwl", table.fingerprint(), outcome, tuple(adjustment))

    # -- store -----------------------------------------------------------------

    def get(self, key: CacheKey):
        """Return the cached result for ``key`` or ``None`` (counts stats)."""
        with self._lock:
            result = self._store.get(key)
            if result is None:
                self._misses += 1
            else:
                self._store.move_to_end(key)
                self._hits += 1
        return result

    def put(self, key: CacheKey, result) -> None:
        """Store ``result`` under ``key``, evicting LRU entries past the bound."""
        with self._lock:
            self._store[key] = result
            self._store.move_to_end(key)
            if self._new is not None:
                self._new[key] = result
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self._evictions += 1

    def get_or_estimate(
        self,
        estimator,
        table,
        treated: np.ndarray,
        outcome: str,
        adjustment: tuple[str, ...] = (),
    ):
        """Memoised ``estimator.estimate(table, treated, outcome, adjustment)``."""
        key = self.key_for(estimator, table, treated, outcome, adjustment)
        result = self.get(key)
        if result is None:
            result = estimator.estimate(table, treated, outcome, adjustment)
            self.put(key, result)
        return result

    def get_or_estimate_level(
        self,
        estimator,
        table,
        treated_matrix: np.ndarray,
        outcome: str,
        adjustments,
    ) -> list:
        """Memoised ``estimator.estimate_level(...)`` keyed by the level.

        Factorizations for the level's adjustment groups are fetched (or
        built) through the factorization store, so consecutive lattice
        levels of one context share their QRs.
        """
        key = self.level_key(estimator, table, treated_matrix, outcome, adjustments)
        results = self.get(key)
        if results is None:
            results = estimator.estimate_level(
                table,
                treated_matrix,
                outcome,
                adjustments,
                factorization_for=lambda adjustment: self.get_or_factorize(
                    table, outcome, adjustment
                ),
            )
            self.put(key, results)
        return results

    def get_or_factorize(self, table, outcome: str, adjustment: tuple[str, ...]):
        """Memoised :func:`repro.causal.batch.build_factorization`.

        Factorizations live in their own LRU (``max_factorizations``) and
        never travel through :meth:`snapshot`/:meth:`seed` — see
        ``__init__``.
        """
        from repro.causal.batch import build_factorization

        return self._factorize_with(
            self.factorization_key(table, outcome, adjustment),
            build_factorization,
            table,
            outcome,
            adjustment,
        )

    def get_or_factorize_rows(
        self, table, outcome: str, adjustment: tuple[str, ...], donor=None
    ):
        """Memoised :func:`repro.causal.batch.build_rows_factorization`.

        The row-major (Gram) factorizations the fused kernel consumes live
        under their own key prefix: the two builds project identically but
        are different objects with different numerical paths, and an entry
        must never answer for the other family.  A ``donor`` (the Gram-
        subtraction partition, see ``build_rows_factorization``) gets its
        own key family carrying the donor tables' fingerprints: a
        subtraction-built factorization's bits differ from a direct
        build's, and sharing one key would make results depend on cache
        state — which is executor-dependent.
        """
        from repro.causal.batch import build_rows_factorization

        if donor is None:
            key = ("fwl-rows", table.fingerprint(), outcome, tuple(adjustment))
        else:
            key = (
                "fwl-rows-sub",
                table.fingerprint(),
                donor[0].fingerprint(),
                donor[1].fingerprint(),
                outcome,
                tuple(adjustment),
            )
        return self._factorize_with(
            key,
            build_rows_factorization,
            table,
            outcome,
            adjustment,
            donor=donor,
        )

    def _factorize_with(
        self, key: CacheKey, build, table, outcome, adjustment, donor=None
    ):
        with self._lock:
            factorization = self._factorizations.get(key)
            if factorization is not None:
                self._factorizations.move_to_end(key)
                self._fac_hits += 1
        if factorization is None:
            if donor is not None:
                factorization = build(table, outcome, adjustment, donor=donor)
            else:
                factorization = build(table, outcome, adjustment)
            with self._lock:
                self._fac_misses += 1
                self._factorizations[key] = factorization
                self._factorizations.move_to_end(key)
                while len(self._factorizations) > self.max_factorizations:
                    self._factorizations.popitem(last=False)
                    self._fac_evictions += 1
        return factorization

    # -- cross-process sharing -------------------------------------------------
    #
    # Process-pool workers cannot share one in-memory cache, so the mining
    # fan-out (repro.parallel.mining) moves content instead: each worker is
    # *seeded* with a snapshot of the caller's cache, *records* the entries
    # it computes, and ships them back with its chunk results, where they
    # are merged into the caller's cache.  Content-addressed keys make all
    # of this transparent — a merged entry is exactly what the caller would
    # have computed itself.

    def snapshot(self) -> dict:
        """A picklable copy of the current entries (for seeding workers)."""
        with self._lock:
            return dict(self._store)

    def seed(self, entries: dict) -> None:
        """Bulk-insert entries without touching hit/miss counters or the
        new-entry record; LRU bound still applies (evictions are counted)."""
        with self._lock:
            for key, result in entries.items():
                self._store[key] = result
                self._store.move_to_end(key)
            while len(self._store) > self.max_entries:
                self._store.popitem(last=False)
                self._evictions += 1

    def record_new_entries(self) -> None:
        """Start recording keys added by :meth:`put` (worker-side)."""
        with self._lock:
            self._new = {}

    def drain_new_entries(self) -> dict:
        """Return and forget the entries added since the last drain.

        A no-op (empty dict) when recording was never enabled — draining
        must not switch a shared caller-side cache into recording mode.
        """
        with self._lock:
            if self._new is None:
                return {}
            drained = self._new
            self._new = {}
            return drained

    # -- introspection ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Current hit/miss/entry counters of the estimation tier."""
        with self._lock:
            return CacheStats(
                self._hits, self._misses, len(self._store), self._evictions
            )

    def tier_stats(self) -> dict[str, CacheStats]:
        """Per-tier counters: the estimation store and the factorization LRU."""
        with self._lock:
            return {
                "estimation": CacheStats(
                    self._hits, self._misses, len(self._store), self._evictions
                ),
                "factorization": CacheStats(
                    self._fac_hits,
                    self._fac_misses,
                    len(self._factorizations),
                    self._fac_evictions,
                ),
            }

    def emit_counters(
        self, registry, baseline: dict[str, CacheStats] | None = None
    ) -> dict[str, CacheStats]:
        """Fold lookup/eviction totals since ``baseline`` into ``registry``.

        Telemetry deliberately does *not* hook the per-lookup path — at
        mining rates that costs more than the 1% overhead budget allows —
        it reads the integer counters this cache keeps anyway and emits the
        delta once per run (caller side) or once per chunk (process-worker
        side, see :mod:`repro.parallel.mining`).  Returns the stats used as
        the new baseline.
        """
        stats = self.tier_stats()
        for tier, current in stats.items():
            prev = baseline.get(tier) if baseline else None
            hits = current.hits - (prev.hits if prev else 0)
            misses = current.misses - (prev.misses if prev else 0)
            evictions = current.evictions - (prev.evictions if prev else 0)
            if hits:
                registry.inc("cache.lookups", hits, tier=tier, outcome="hit")
            if misses:
                registry.inc("cache.lookups", misses, tier=tier, outcome="miss")
            if evictions:
                registry.inc("cache.evictions", evictions, tier=tier)
        return stats

    def clear(self) -> None:
        """Drop every entry (results and factorizations), reset counters."""
        with self._lock:
            self._store.clear()
            self._factorizations.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0
            self._fac_hits = 0
            self._fac_misses = 0
            self._fac_evictions = 0
            if self._new is not None:
                self._new = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def __repr__(self) -> str:
        stats = self.stats()
        return (
            f"EstimationCache(entries={stats.entries}/{self.max_entries}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
