"""Fault tolerance for the mining runtime: retries, fault injection, checkpoints.

Step-2 mining is the repo's long-running, restartable workload: a
multi-minute process-pool run over thousands of grouping contexts.  One
OOM-killed worker raises ``BrokenProcessPool`` and — before this module —
destroyed the whole run.  Three layers fix that without weakening the
serial ≡ process bit-identity contract (:mod:`repro.parallel`):

- :class:`RetryPolicy` — bounded retries with deterministic, jitter-free
  exponential backoff and an optional per-chunk timeout.  The resilient
  loop in :meth:`~repro.parallel.executors.ProcessExecutor.map_with_state`
  re-executes only unfinished chunks and degrades a chunk that exhausts
  its retries to in-process serial execution instead of failing the run.
  Because every chunk's result is a pure function of immutable inputs and
  results are reassembled in input order, *where* and *how often* a chunk
  runs cannot change any bit of the output.
- :class:`FaultPlan` / :class:`FaultSpec` — a config-driven, fully
  deterministic fault-injection harness.  Faults are keyed by
  ``(chunk, attempt)`` rather than by worker-local "fired once" state, so
  an injected failure fires on exactly the planned execution and the
  retry runs clean — every failure mode is reproducible in tests, no
  seeds or timing races involved.
- :class:`RunCheckpoint` — run-level checkpoint/resume.  With
  ``FairCapConfig.checkpoint_dir`` set, the driver persists each completed
  grouping-context result under a content-addressed run key (table
  fingerprint + digest of the result-determining config fields + the
  mining inputs), so a killed driver resumes instead of remining.  Files
  are written atomically (tmp + rename); a torn file from a crash is
  indistinguishable from a miss and is simply remined.

Fault-plan string schema (CLI ``--fault-plan`` / config ``fault_plan``)::

    plan   := spec (";" spec)*
    spec   := kind [":" field "=" value ("," field "=" value)*]
    kind   := "kill" | "delay" | "raise" | "corrupt_attach" | "abort"
    field  := "chunk" | "attempt" | "seconds" | "after"

``kill:chunk=1`` kills the worker process executing chunk 1 (attempt 0);
``delay:chunk=0,seconds=30`` makes chunk 0 sleep (pair with a chunk
timeout to exercise the timeout path); ``raise:chunk=2,attempt=any``
raises :class:`ChaosError` on *every* attempt of chunk 2 (exhausts the
retry budget, forcing the degraded-serial path); ``corrupt_attach``
corrupts the shm manifest inside workers so attach falls back to the
rebuild path; ``abort:after=3`` exits the *driver* after the third
checkpoint save (deterministic crashed-driver tests).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path

from repro.obs.runtime import current as obs_current
from repro.utils.errors import ConfigError, ReproError


class ChaosError(ReproError):
    """Raised by an injected ``raise`` fault (fault-injection harness only)."""


class DriverAbort(SystemExit):
    """Raised by an injected ``abort`` fault: simulates a crashed driver."""


def _count(name: str, **labels) -> None:
    telemetry = obs_current()
    if telemetry.enabled:
        telemetry.registry.inc(name, 1, **labels)


# -- retry policy -------------------------------------------------------------


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic jitter-free exponential backoff.

    ``delay(attempt)`` is a pure function of the attempt number — no
    jitter — so recovery schedules are reproducible.  Jitter exists to
    decorrelate *competing* clients; the mining driver is the segment's
    only retrier, so determinism wins.  ``chunk_timeout_seconds`` bounds a
    single chunk execution inside the pool; a chunk that cannot finish
    under the timeout is retried and, once ``max_retries`` is exhausted,
    runs unbounded in the degraded-serial path (the run completes slowly
    rather than never).
    """

    max_retries: int = 2
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    chunk_timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.backoff_seconds < 0:
            raise ConfigError("backoff_seconds must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ConfigError("backoff_multiplier must be >= 1")
        if self.chunk_timeout_seconds is not None and self.chunk_timeout_seconds <= 0:
            raise ConfigError("chunk_timeout_seconds must be > 0 or None")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (attempt 1 = first retry)."""
        if attempt <= 0:
            return 0.0
        return self.backoff_seconds * self.backoff_multiplier ** (attempt - 1)

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        return cls(
            max_retries=getattr(config, "max_chunk_retries", 2),
            backoff_seconds=getattr(config, "retry_backoff_seconds", 0.05),
            chunk_timeout_seconds=getattr(config, "chunk_timeout_seconds", None),
        )


# -- fault-injection harness --------------------------------------------------

FAULT_KINDS = ("kill", "delay", "raise", "corrupt_attach", "abort")

#: Sentinel for "fire on every attempt" (spelled ``attempt=any`` in plans).
ANY_ATTEMPT = -1


@dataclass(frozen=True)
class FaultSpec:
    """One planned fault.

    ``chunk``/``attempt`` select the execution the fault fires on
    (``chunk=None`` matches every chunk, ``attempt=ANY_ATTEMPT`` every
    attempt); ``seconds`` is the sleep length for ``delay``; ``after`` is
    the checkpoint-save count an ``abort`` fault triggers on.
    """

    kind: str
    chunk: int | None = None
    attempt: int = 0
    seconds: float = 0.25
    after: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(
                f"unknown fault kind {self.kind!r}; choose from {list(FAULT_KINDS)}"
            )
        if self.seconds < 0:
            raise ConfigError("fault seconds must be >= 0")
        if self.after < 1:
            raise ConfigError("abort 'after' must be >= 1")

    def matches(self, chunk: int, attempt: int) -> bool:
        if self.kind in ("corrupt_attach", "abort"):
            return False  # not chunk-scoped
        if self.chunk is not None and self.chunk != chunk:
            return False
        return self.attempt in (ANY_ATTEMPT, attempt)

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        kind, _, rest = text.strip().partition(":")
        kwargs: dict = {}
        if rest:
            for part in rest.split(","):
                key, sep, value = part.partition("=")
                key = key.strip()
                value = value.strip()
                if not sep or key not in ("chunk", "attempt", "seconds", "after"):
                    raise ConfigError(f"bad fault field {part!r} in {text!r}")
                if key == "seconds":
                    kwargs[key] = float(value)
                elif key == "attempt" and value == "any":
                    kwargs[key] = ANY_ATTEMPT
                else:
                    kwargs[key] = int(value)
        return cls(kind=kind.strip(), **kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, picklable set of planned faults.

    Travels to process workers via the pool-initializer args (so a
    respawned pool re-installs it) and is consulted by
    :func:`apply_chunk_faults` at the top of every chunk execution.
    """

    specs: tuple[FaultSpec, ...] = ()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = tuple(
            FaultSpec.parse(part) for part in text.split(";") if part.strip()
        )
        if not specs:
            raise ConfigError(f"empty fault plan {text!r}")
        return cls(specs)

    def corrupts_attach(self) -> bool:
        return any(spec.kind == "corrupt_attach" for spec in self.specs)

    def abort_after(self) -> int | None:
        for spec in self.specs:
            if spec.kind == "abort":
                return spec.after
        return None

    def chunk_faults(self, chunk: int, attempt: int) -> list[FaultSpec]:
        return [spec for spec in self.specs if spec.matches(chunk, attempt)]


#: The plan active in *this* process (installed by the pool initializer in
#: workers; never installed in the driver, so the degraded-serial path and
#: in-process executors run fault-free by construction).
_ACTIVE_PLAN: FaultPlan | None = None


def install_plan(plan: FaultPlan | None) -> None:
    global _ACTIVE_PLAN
    _ACTIVE_PLAN = plan


def active_plan() -> FaultPlan | None:
    return _ACTIVE_PLAN


def apply_chunk_faults(chunk: int, attempt: int) -> None:
    """Fire any planned fault for this ``(chunk, attempt)`` execution.

    Keying on the attempt number (shipped with the task, not read from
    worker state) is what makes injection deterministic across pool
    respawns: a killed worker takes its memory with it, but the retry
    arrives tagged ``attempt=1`` and a ``kill`` spec pinned to attempt 0
    stays quiet.
    """
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    for spec in plan.chunk_faults(chunk, attempt):
        if spec.kind == "delay":
            time.sleep(spec.seconds)
        elif spec.kind == "raise":
            raise ChaosError(
                f"injected failure on chunk {chunk} attempt {attempt}"
            )
        elif spec.kind == "kill":
            os._exit(17)  # simulate SIGKILL/OOM: no cleanup, no excuses


def maybe_driver_abort(plan: FaultPlan | None, saves: int) -> None:
    """Abort the driver after the planned number of checkpoint saves."""
    if plan is None:
        return
    after = plan.abort_after()
    if after is not None and saves == after:
        raise DriverAbort(17)


# -- checkpoint / resume ------------------------------------------------------

#: Config fields that cannot change mined results (execution strategy,
#: caching, observability, and the resilience knobs themselves), excluded
#: from the run key so a resume may e.g. use a different worker count.
RESULT_NEUTRAL_CONFIG_FIELDS = frozenset(
    {
        "executor",
        "n_workers",
        "cache_size",
        "telemetry",
        "checkpoint_dir",
        "fault_plan",
        "max_chunk_retries",
        "chunk_timeout_seconds",
        "retry_backoff_seconds",
    }
)


def _digest(*parts) -> str:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def config_digest(config) -> str:
    """Digest of the result-determining config fields.

    ``shared_memory``/``batch_estimation``/… stay *in* the key even where
    the differential suite proves them result-identical: resuming across a
    flag flip would be correct but impossible to audit.  Only fields that
    are result-neutral by construction (where the work runs, not what it
    computes) are excluded.
    """
    keyed = [
        (f.name, getattr(config, f.name))
        for f in dataclass_fields(config)
        if f.name not in RESULT_NEUTRAL_CONFIG_FIELDS
    ]
    return _digest(keyed)


class RunCheckpoint:
    """Content-addressed persistence of per-grouping-context mining results.

    Layout: ``<directory>/<run_key>/ctx-<index>-<pattern_digest>.pkl``, one
    pickle of ``(best_rule, nodes_evaluated)`` per grouping context.  The
    run key pins everything that determines results (table content, config
    digest, treatment items, DAG, protected group, outcome); the per-file
    pattern digest additionally pins the grouping pattern at that index,
    so a resume against a changed pattern list remines exactly the changed
    positions.  Saves are atomic (tmp + :func:`os.replace`); loads treat
    any unreadable file as a miss.
    """

    def __init__(self, directory, run_key: str) -> None:
        self.root = Path(directory) / run_key
        self.root.mkdir(parents=True, exist_ok=True)
        # Every context is addressed twice per run (load probe, then save);
        # memoise the digested path so the pattern is hashed once.
        self._paths: dict[tuple[int, object], Path] = {}

    @classmethod
    def for_run(cls, directory, evaluator, config, items) -> "RunCheckpoint":
        dag = evaluator.dag
        key = _digest(
            "faircap-step2",
            evaluator.table.fingerprint(),
            evaluator.outcome,
            config_digest(config),
            [repr(item) for item in items],
            sorted(dag.edges) if dag is not None else None,
            (repr(evaluator.protected.pattern), evaluator.protected.name)
            if evaluator.protected is not None
            else None,
        )
        return cls(directory, key)

    def _path(self, index: int, pattern) -> Path:
        key = (index, pattern)
        path = self._paths.get(key)
        if path is None:
            path = self.root / f"ctx-{index:05d}-{_digest(pattern)}.pkl"
            self._paths[key] = path
        return path

    def load(self, index: int, pattern):
        """The saved ``(best, nodes)`` for this context, or ``None``."""
        path = self._path(index, pattern)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except (OSError, EOFError, pickle.UnpicklingError, AttributeError):
            return None  # missing or torn by a crash mid-write: remine
        _count("checkpoint.resumed")
        return result

    def save(self, index: int, pattern, best, nodes: int) -> None:
        path = self._path(index, pattern)
        tmp = str(path) + f".{os.getpid()}.tmp"
        data = pickle.dumps((best, nodes))
        # Low-level write path: this runs once per grouping context inside
        # the mining loop, and the buffered-``open`` wrapper alone costs as
        # much as the write itself at that call rate.
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        _count("checkpoint.saved")
