"""Natural-language rendering of rules via manual templates (Sec. 7.1).

The paper translates mined rules into English with "simple, manually
constructed templates".  :class:`RuleTemplates` holds per-attribute phrase
templates with ``{value}`` placeholders; anything without a template falls
back to a generic ``attribute = value`` phrasing.

Example
-------
>>> templates = RuleTemplates(
...     grouping={"Age": "individuals aged {value}"},
...     intervention={"UndergradMajor": "pursue an undergraduate major in {value}"},
... )
>>> from repro.mining.patterns import Pattern
>>> rule_text = describe_pattern(Pattern.of(Age="25-34"), templates.grouping)
>>> rule_text
'individuals aged 25-34'
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mining.patterns import Operator, Pattern
from repro.rules.rule import PrescriptionRule

_OP_WORDS = {
    Operator.EQ: "=",
    Operator.NE: "is not",
    Operator.LT: "below",
    Operator.GT: "above",
    Operator.LE: "at most",
    Operator.GE: "at least",
}


@dataclass(frozen=True)
class RuleTemplates:
    """Phrase templates for grouping and intervention attributes.

    Attributes
    ----------
    grouping:
        ``attribute -> template`` for grouping predicates; templates may use
        ``{value}``.
    intervention:
        Same, for intervention predicates (imperative mood reads best:
        ``"work as {value}"``).
    """

    grouping: dict[str, str] = field(default_factory=dict)
    intervention: dict[str, str] = field(default_factory=dict)


def describe_pattern(pattern: Pattern, templates: dict[str, str] | None = None) -> str:
    """Render a pattern as an English phrase, joining predicates with 'and'."""
    templates = templates or {}
    phrases: list[str] = []
    for predicate in pattern:
        template = templates.get(predicate.attribute)
        if template is not None and predicate.operator is Operator.EQ:
            phrases.append(template.format(value=predicate.value))
        else:
            op_word = _OP_WORDS[predicate.operator]
            phrases.append(f"{predicate.attribute} {op_word} {predicate.value}")
    if not phrases:
        return "everyone"
    return " and ".join(phrases)


def describe_rule(
    rule: PrescriptionRule,
    templates: RuleTemplates | None = None,
    utility_format: str = "{:,.0f}",
) -> str:
    """Render a rule in the paper's case-study style.

    Example output::

        For individuals aged 25-34, pursue an undergraduate major in CS
        (exp utility protected: 10,292, exp utility non-protected: 22,586).
    """
    templates = templates or RuleTemplates()
    group_text = describe_pattern(rule.grouping, templates.grouping)
    action_text = describe_pattern(rule.intervention, templates.intervention)
    protected = utility_format.format(rule.utility_protected)
    non_protected = utility_format.format(rule.utility_non_protected)
    return (
        f"For {group_text}, {action_text} "
        f"(exp utility protected: {protected}, "
        f"exp utility non-protected: {non_protected})."
    )
