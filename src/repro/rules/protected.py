"""Protected groups (Sec. 4.1).

Following the paper, the protected subpopulation is defined by a pattern
``P_p`` (e.g. ``Ethnicity != White`` or ``GDP = low``); the rest of the data
is the non-protected group.  :class:`ProtectedGroup` wraps that pattern with
a display name and cached masks.
"""

from __future__ import annotations

import numpy as np

from repro.mining.patterns import Pattern
from repro.tabular.table import Table
from repro.utils.errors import PatternError


class ProtectedGroup:
    """A named protected subpopulation defined by a pattern.

    Parameters
    ----------
    pattern:
        The defining pattern ``P_p`` (must be non-empty: an empty pattern
        would make *everyone* protected, which degenerates every fairness
        definition).
    name:
        Human-readable label used in reports (e.g. ``"low-GDP countries"``).
    """

    def __init__(self, pattern: Pattern, name: str = "protected") -> None:
        if pattern.is_empty():
            raise PatternError("protected group pattern must be non-empty")
        self.pattern = pattern
        self.name = name

    def mask(self, table: Table) -> np.ndarray:
        """Boolean membership mask over ``table``."""
        return self.pattern.mask(table)

    def size(self, table: Table) -> int:
        """Number of protected individuals, ``|P_p(D)|``."""
        return int(self.mask(table).sum())

    def fraction(self, table: Table) -> float:
        """Protected fraction of the table."""
        if table.n_rows == 0:
            return 0.0
        return self.size(table) / table.n_rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProtectedGroup):
            return NotImplemented
        return self.pattern == other.pattern and self.name == other.name

    def __hash__(self) -> int:
        return hash((self.pattern, self.name))

    def __repr__(self) -> str:
        return f"ProtectedGroup({self.name!r}: {self.pattern})"
