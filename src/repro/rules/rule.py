"""A single prescription rule (Def. 4.3) with its utilities (Def. 4.4).

A rule pairs a *grouping pattern* over immutable attributes with an
*intervention pattern* over mutable attributes.  The rule's three utilities
are conditional average treatment effects of the intervention on the outcome:

- ``utility``           = CATE(P_int, O | P_grp)                (Eq. 2)
- ``utility_protected`` = CATE(P_int, O | P_grp ∧ P_p)          (Eq. 3)
- ``utility_non_protected`` = CATE(P_int, O | P_grp ∧ ¬P_p)     (Eq. 4)

Rules are immutable value objects; the estimation work happens in
:class:`repro.rules.utility.RuleEvaluator`, which builds them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causal.estimators import CateResult
from repro.mining.patterns import Pattern
from repro.utils.errors import PatternError


@dataclass(frozen=True)
class PrescriptionRule:
    """An evaluated prescription rule.

    Attributes
    ----------
    grouping:
        The grouping pattern ``P_grp`` (immutable attributes only).
    intervention:
        The intervention pattern ``P_int`` (mutable attributes only).
    utility:
        Overall CATE for the covered subpopulation; 0.0 when the rule
        covers no tuples (Def. 4.4) or the effect is not estimable.
    utility_protected:
        CATE restricted to covered protected tuples (0.0 when none).
    utility_non_protected:
        CATE restricted to covered non-protected tuples (0.0 when none).
    coverage_count:
        ``|Coverage(P_grp)|`` over the full table.
    protected_coverage_count:
        Covered protected tuples.
    estimate, estimate_protected, estimate_non_protected:
        The raw :class:`CateResult` diagnostics behind each utility
        (may be None when a sub-group was empty).
    """

    grouping: Pattern
    intervention: Pattern
    utility: float
    utility_protected: float
    utility_non_protected: float
    coverage_count: int
    protected_coverage_count: int
    estimate: CateResult | None = field(default=None, compare=False, repr=False)
    estimate_protected: CateResult | None = field(
        default=None, compare=False, repr=False
    )
    estimate_non_protected: CateResult | None = field(
        default=None, compare=False, repr=False
    )

    def __post_init__(self) -> None:
        if self.intervention.is_empty():
            raise PatternError("intervention pattern must be non-empty")
        if self.coverage_count < 0 or self.protected_coverage_count < 0:
            raise PatternError("coverage counts must be non-negative")
        if self.protected_coverage_count > self.coverage_count:
            raise PatternError(
                "protected coverage cannot exceed total coverage "
                f"({self.protected_coverage_count} > {self.coverage_count})"
            )

    @property
    def non_protected_coverage_count(self) -> int:
        """Covered non-protected tuples."""
        return self.coverage_count - self.protected_coverage_count

    @property
    def utility_gap(self) -> float:
        """``utility_non_protected - utility_protected`` (signed SP gap)."""
        return self.utility_non_protected - self.utility_protected

    def check_role_split(
        self, immutable: tuple[str, ...], mutable: tuple[str, ...]
    ) -> None:
        """Validate Def. 4.3: grouping over ``I`` only, intervention over ``M`` only."""
        if not self.grouping.is_over(immutable):
            raise PatternError(
                f"grouping pattern {self.grouping} uses non-immutable attributes"
            )
        if not self.intervention.is_over(mutable):
            raise PatternError(
                f"intervention pattern {self.intervention} uses non-mutable attributes"
            )

    def __str__(self) -> str:
        return (
            f"IF {self.grouping} THEN {self.intervention} "
            f"(utility={self.utility:.2f}, protected={self.utility_protected:.2f}, "
            f"non-protected={self.utility_non_protected:.2f}, "
            f"coverage={self.coverage_count})"
        )
