"""Rulesets and their expected utility (Def. 4.5, Eqs. 5-7).

The expected utility of a ruleset ``R`` models how individuals pick among
the rules that apply to them.  Following the paper's conservative worst-case
analysis:

- overall (Eq. 5): every covered tuple receives the **max** ``utility(r)``
  among its covering rules, averaged over ``|D|``;
- protected (Eq. 6): every covered protected tuple receives the **min**
  protected utility among its covering rules, averaged over the covered
  protected tuples;
- non-protected (Eq. 7): every covered non-protected tuple receives the
  **max** non-protected utility, averaged over the covered non-protected
  tuples.

The *unfairness score* reported in Tables 4-6 is the signed difference
``ExpUtility_nonprotected - ExpUtility_protected`` (the German "Rule Cov &
Group Fair" row is negative, so the score is signed, favouring the protected
group when negative).

:class:`RulesetEvaluator` pre-computes per-rule coverage masks once and
evaluates arbitrary subsets fast — the greedy selector calls it hundreds of
times per run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.tabular.table import Table
from repro.utils.errors import PatternError


class RuleSet:
    """An immutable ordered collection of prescription rules."""

    def __init__(self, rules: Iterable[PrescriptionRule] = ()) -> None:
        self.rules: tuple[PrescriptionRule, ...] = tuple(rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __iter__(self) -> Iterator[PrescriptionRule]:
        return iter(self.rules)

    def __getitem__(self, index: int) -> PrescriptionRule:
        return self.rules[index]

    @property
    def size(self) -> int:
        """Number of rules, ``size(R)`` in the paper."""
        return len(self.rules)

    def with_rule(self, rule: PrescriptionRule) -> "RuleSet":
        """Return a new ruleset with ``rule`` appended."""
        return RuleSet(self.rules + (rule,))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RuleSet):
            return NotImplemented
        return self.rules == other.rules

    def __hash__(self) -> int:
        return hash(self.rules)

    # -- persistence (delegates to the serving subsystem) -------------------------

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to the versioned ruleset-artifact JSON format.

        Round-trips exactly: ``RuleSet.from_json(rs.to_json()) == rs``.
        For an artifact carrying the dataset schema and protected group as
        well, use :class:`repro.serve.artifact.ServingArtifact` directly.
        """
        from repro.serve.artifact import ServingArtifact

        return ServingArtifact(self).to_json(indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RuleSet":
        """Rebuild a ruleset from :meth:`to_json` output (or a full artifact)."""
        from repro.serve.artifact import ServingArtifact

        return ServingArtifact.from_json(text).ruleset

    def __repr__(self) -> str:
        return f"RuleSet({len(self.rules)} rules)"


@dataclass(frozen=True)
class RulesetMetrics:
    """The per-ruleset quantities reported in the paper's Tables 4-6.

    Attributes
    ----------
    n_rules:
        ``size(R)``.
    coverage:
        Fraction of ``D`` covered by at least one rule.
    protected_coverage:
        Fraction of the protected group covered.
    expected_utility:
        Eq. 5 (over all of ``D``).
    expected_utility_protected:
        Eq. 6 (worst-case rule choice, over covered protected tuples).
    expected_utility_non_protected:
        Eq. 7 (best-case rule choice, over covered non-protected tuples).
    unfairness:
        Signed ``expected_utility_non_protected - expected_utility_protected``.
    """

    n_rules: int
    coverage: float
    protected_coverage: float
    expected_utility: float
    expected_utility_protected: float
    expected_utility_non_protected: float

    @property
    def unfairness(self) -> float:
        """Signed gap between non-protected and protected expected utility."""
        return self.expected_utility_non_protected - self.expected_utility_protected


class RulesetEvaluator:
    """Fast metric evaluation for subsets of a fixed candidate rule pool.

    Parameters
    ----------
    table:
        The database instance ``D``.
    rules:
        The candidate rules; subsets are addressed by index into this list.
    protected:
        The protected group.
    """

    def __init__(
        self,
        table: Table,
        rules: Sequence[PrescriptionRule],
        protected: ProtectedGroup,
    ) -> None:
        self.table = table
        self.rules: tuple[PrescriptionRule, ...] = tuple(rules)
        self.protected = protected
        self.n = table.n_rows
        self.protected_mask = protected.mask(table)
        self.n_protected = int(self.protected_mask.sum())
        self.n_non_protected = self.n - self.n_protected
        # Per-rule coverage masks, cached on the table keyed by grouping
        # pattern: repeated evaluator constructions over the same table
        # (greedy runs, experiment sweeps) reuse masks for unchanged rules.
        cache = table.mask_cache()
        masks: list[np.ndarray] = []
        for rule in self.rules:
            mask = cache.get(rule.grouping)
            if mask is None:
                mask = rule.grouping.mask(table)
                mask.setflags(write=False)
                cache[rule.grouping] = mask
            masks.append(mask)
        self._masks = masks
        self._utilities = np.array([r.utility for r in self.rules], dtype=np.float64)
        self._utilities_p = np.array(
            [r.utility_protected for r in self.rules], dtype=np.float64
        )
        self._utilities_np = np.array(
            [r.utility_non_protected for r in self.rules], dtype=np.float64
        )

    def __len__(self) -> int:
        return len(self.rules)

    def mask_of(self, index: int) -> np.ndarray:
        """Coverage mask of candidate rule ``index`` over the full table."""
        return self._masks[index]

    def _check_indices(self, indices: Sequence[int]) -> None:
        for i in indices:
            if not 0 <= i < len(self.rules):
                raise PatternError(f"rule index {i} out of range")

    def subset(self, indices: Sequence[int]) -> RuleSet:
        """Materialise the ruleset for candidate ``indices``."""
        self._check_indices(indices)
        return RuleSet(self.rules[i] for i in indices)

    # -- metric computation -------------------------------------------------------

    def metrics(self, indices: Sequence[int]) -> RulesetMetrics:
        """Compute Eqs. 5-7 and coverage for the subset ``indices``."""
        self._check_indices(indices)
        indices = list(indices)
        if not indices:
            return RulesetMetrics(
                n_rules=0,
                coverage=0.0,
                protected_coverage=0.0,
                expected_utility=0.0,
                expected_utility_protected=0.0,
                expected_utility_non_protected=0.0,
            )

        covered = np.zeros(self.n, dtype=bool)
        best_overall = np.full(self.n, -np.inf)
        best_np = np.full(self.n, -np.inf)
        worst_p = np.full(self.n, np.inf)
        for i in indices:
            mask = self._masks[i]
            covered |= mask
            best_overall[mask] = np.maximum(best_overall[mask], self._utilities[i])
            best_np[mask] = np.maximum(best_np[mask], self._utilities_np[i])
            worst_p[mask] = np.minimum(worst_p[mask], self._utilities_p[i])

        covered_protected = covered & self.protected_mask
        covered_non_protected = covered & ~self.protected_mask
        n_cov_p = int(covered_protected.sum())
        n_cov_np = int(covered_non_protected.sum())

        expected = float(best_overall[covered].sum()) / self.n if self.n else 0.0
        expected_p = (
            float(worst_p[covered_protected].sum()) / n_cov_p if n_cov_p else 0.0
        )
        expected_np = (
            float(best_np[covered_non_protected].sum()) / n_cov_np if n_cov_np else 0.0
        )
        return RulesetMetrics(
            n_rules=len(indices),
            coverage=float(covered.sum()) / self.n if self.n else 0.0,
            protected_coverage=(
                n_cov_p / self.n_protected if self.n_protected else 0.0
            ),
            expected_utility=expected,
            expected_utility_protected=expected_p,
            expected_utility_non_protected=expected_np,
        )

    def metrics_for_rules(self, rules: Sequence[PrescriptionRule]) -> RulesetMetrics:
        """Metrics for an arbitrary rule list (not necessarily candidates)."""
        evaluator = RulesetEvaluator(self.table, rules, self.protected)
        return evaluator.metrics(list(range(len(rules))))

    # -- objective (Def. 4.6) -----------------------------------------------------

    def objective(
        self,
        indices: Sequence[int],
        lambda_size: float,
        lambda_utility: float,
    ) -> float:
        """The optimisation objective of Def. 4.6 (Eq. 8).

        ``lambda_size * (l - size(R)) + lambda_utility * ExpUtility(R)``
        where ``l`` is the candidate-pool size.
        """
        metrics = self.metrics(indices)
        return lambda_size * (len(self.rules) - metrics.n_rules) + (
            lambda_utility * metrics.expected_utility
        )
