"""Prescription rules and rulesets (S9, S21; Defs. 4.3-4.5 of the paper)."""

from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetEvaluator, RulesetMetrics
from repro.rules.utility import RuleEvaluator
from repro.rules.templates import RuleTemplates, describe_pattern, describe_rule

__all__ = [
    "ProtectedGroup",
    "PrescriptionRule",
    "RuleSet",
    "RulesetEvaluator",
    "RulesetMetrics",
    "RuleEvaluator",
    "RuleTemplates",
    "describe_pattern",
    "describe_rule",
]
