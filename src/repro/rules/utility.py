"""Rule evaluation: from (grouping, intervention) patterns to utilities.

:class:`RuleEvaluator` owns everything needed to turn a candidate pattern
pair into an evaluated :class:`~repro.rules.rule.PrescriptionRule`:

1. restrict the table to ``Coverage(P_grp)``;
2. split it into treated (``P_int`` true) and control rows;
3. pick a backdoor adjustment set for the intervention attributes from the
   causal DAG (dropping attributes that are constant inside the subgroup —
   e.g. attributes fixed by the grouping pattern itself);
4. estimate the three CATEs of Def. 4.4 (overall / protected /
   non-protected).

Because Step 2 of FairCap evaluates *many* intervention patterns against the
*same* grouping pattern, the per-group work (filtering the table, splitting
into protected / non-protected sub-tables) is factored into a
:class:`GroupEvaluationContext` that is built once per grouping pattern —
and whole lattice levels go through :meth:`GroupEvaluationContext.evaluate_batch`,
which computes the overall/protected/non-protected CATEs of a level in three
batched FWL estimations (:mod:`repro.causal.batch`) instead of three OLS
solves per candidate.

Utilities follow the paper's conventions: a rule covering no tuples has
utility 0, and a sub-group CATE that cannot be estimated (no protected rows,
say) also contributes utility 0.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.causal.backdoor import backdoor_adjustment_set, parents_adjustment_set
from repro.causal.dag import CausalDAG
from repro.causal.estimators import (
    CateResult,
    LinearAdjustmentEstimator,
    StratifiedEstimator,
)
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.tabular.table import Table
from repro.utils.errors import EstimationError


class GroupEvaluationContext:
    """Cached state for evaluating treatments against one grouping pattern."""

    def __init__(self, evaluator: "RuleEvaluator", grouping: Pattern) -> None:
        self.evaluator = evaluator
        self.grouping = grouping
        group_mask = grouping.mask(evaluator.table)
        self.coverage_count = int(group_mask.sum())
        self.subtable = evaluator.table.filter(group_mask)
        self.sub_protected = evaluator.protected_mask[group_mask]
        self.protected_count = int(self.sub_protected.sum())
        self.protected_table = (
            self.subtable.filter(self.sub_protected) if self.protected_count else None
        )
        non_protected_count = self.coverage_count - self.protected_count
        self.non_protected_table = (
            self.subtable.filter(~self.sub_protected) if non_protected_count else None
        )
        # Per-predicate masks over the subtable, shared by every lattice
        # level: a level-2 intervention reuses its two items' masks and
        # pays one AND instead of re-evaluating both predicates.
        self._predicate_masks: dict = {}

    def _intervention_mask(self, intervention: Pattern) -> np.ndarray:
        """Treated mask of ``intervention`` from memoised predicate masks."""
        combined: np.ndarray | None = None
        for predicate in intervention.predicates:
            mask = self._predicate_masks.get(predicate)
            if mask is None:
                mask = predicate.mask(self.subtable)
                self._predicate_masks[predicate] = mask
            combined = mask if combined is None else combined & mask
        assert combined is not None  # interventions are non-empty
        return combined

    def evaluate(self, intervention: Pattern) -> PrescriptionRule:
        """Evaluate ``intervention`` for this context's grouping pattern."""
        if intervention.is_empty():
            raise EstimationError("intervention pattern must be non-empty")
        if self.coverage_count == 0:
            return PrescriptionRule(
                grouping=self.grouping,
                intervention=intervention,
                utility=0.0,
                utility_protected=0.0,
                utility_non_protected=0.0,
                coverage_count=0,
                protected_coverage_count=0,
            )
        evaluator = self.evaluator
        treated = intervention.mask(self.subtable)
        adjustment = evaluator.adjustment_for(intervention.attributes)

        overall = evaluator.cate(self.subtable, treated, adjustment)
        prot = (
            evaluator.cate(
                self.protected_table, treated[self.sub_protected], adjustment
            )
            if self.protected_table is not None
            else None
        )
        nonprot = (
            evaluator.cate(
                self.non_protected_table, treated[~self.sub_protected], adjustment
            )
            if self.non_protected_table is not None
            else None
        )

        return self._assemble_rule(intervention, overall, prot, nonprot)

    def evaluate_batch(
        self, interventions: Sequence[Pattern]
    ) -> list[PrescriptionRule]:
        """Evaluate a whole lattice level of interventions at once.

        The scalar :meth:`evaluate` runs up to three OLS solves per
        intervention; here the level's treated masks are stacked into one
        ``(n, m)`` matrix per adjustment set and the overall / protected /
        non-protected CATEs come out of three batched FWL estimations
        (:func:`repro.causal.batch.estimate_cate_level`) — three GEMMs per
        level.  Results match :meth:`evaluate` per rule to working
        precision (bit-identically on degenerate fallbacks), and the level
        is the cache unit (see
        :meth:`repro.parallel.cache.EstimationCache.level_key`).
        """
        interventions = list(interventions)
        for intervention in interventions:
            if intervention.is_empty():
                raise EstimationError("intervention pattern must be non-empty")
        if not interventions:
            return []
        if self.coverage_count == 0:
            return [
                PrescriptionRule(
                    grouping=self.grouping,
                    intervention=intervention,
                    utility=0.0,
                    utility_protected=0.0,
                    utility_non_protected=0.0,
                    coverage_count=0,
                    protected_coverage_count=0,
                )
                for intervention in interventions
            ]
        evaluator = self.evaluator
        m = len(interventions)
        n = self.subtable.n_rows
        # One treated-mask stack and one backdoor set per candidate; the
        # level driver groups equal adjustment sets onto shared GEMMs.
        adjustments = [
            evaluator.adjustment_for(intervention.attributes)
            for intervention in interventions
        ]
        treated_matrix = np.empty((n, m), dtype=bool)
        for column, intervention in enumerate(interventions):
            treated_matrix[:, column] = self._intervention_mask(intervention)

        overall = evaluator.cate_level(self.subtable, treated_matrix, adjustments)
        prot = (
            evaluator.cate_level(
                self.protected_table,
                treated_matrix[self.sub_protected, :],
                adjustments,
            )
            if self.protected_table is not None
            else [None] * m
        )
        nonprot = (
            evaluator.cate_level(
                self.non_protected_table,
                treated_matrix[~self.sub_protected, :],
                adjustments,
            )
            if self.non_protected_table is not None
            else [None] * m
        )
        return [
            self._assemble_rule(
                interventions[idx], overall[idx], prot[idx], nonprot[idx]
            )
            for idx in range(m)
        ]

    def _assemble_rule(
        self,
        intervention: Pattern,
        overall: CateResult | None,
        prot: CateResult | None,
        nonprot: CateResult | None,
    ) -> PrescriptionRule:
        def usable(result: CateResult | None) -> float:
            if result is None or not result.valid:
                return 0.0
            return float(result.estimate)

        return PrescriptionRule(
            grouping=self.grouping,
            intervention=intervention,
            utility=usable(overall),
            utility_protected=usable(prot),
            utility_non_protected=usable(nonprot),
            coverage_count=self.coverage_count,
            protected_coverage_count=self.protected_count,
            estimate=overall,
            estimate_protected=prot,
            estimate_non_protected=nonprot,
        )


class RuleEvaluator:
    """Evaluates prescription rules against a dataset and causal DAG.

    Parameters
    ----------
    table:
        The full database instance ``D``.
    outcome:
        The outcome attribute ``O``.
    dag:
        Causal DAG over (at least) the attributes appearing in rules plus
        the outcome.
    protected:
        The protected group ``P_p``.
    estimator:
        CATE estimator; defaults to linear adjustment (DoWhy's default).
    min_subgroup_size:
        Sub-populations smaller than this yield utility 0 instead of a
        noisy estimate (both for the rule itself and for the protected /
        non-protected splits).
    cache:
        Optional :class:`~repro.parallel.cache.EstimationCache` memoising
        CATE results by content; hits are identical to recomputation, so
        the cache never changes results (see :mod:`repro.parallel`).
    """

    def __init__(
        self,
        table: Table,
        outcome: str,
        dag: CausalDAG,
        protected: ProtectedGroup,
        estimator: LinearAdjustmentEstimator | StratifiedEstimator | None = None,
        min_subgroup_size: int = 10,
        cache=None,
    ) -> None:
        self.table = table
        self.outcome = outcome
        self.dag = dag
        self.protected = protected
        self.estimator = (
            estimator if estimator is not None else LinearAdjustmentEstimator()
        )
        self.min_subgroup_size = min_subgroup_size
        self.cache = cache
        self.protected_mask = protected.mask(table)
        self._adjustment_cache: dict[tuple[str, ...], tuple[str, ...]] = {}
        self._factorization_memo: dict[tuple, object] = {}

    # -- adjustment ------------------------------------------------------------

    def adjustment_for(self, treatment_attributes: tuple[str, ...]) -> tuple[str, ...]:
        """Backdoor adjustment set for the treatment attributes (cached)."""
        key = tuple(sorted(treatment_attributes))
        if key not in self._adjustment_cache:
            try:
                adjustment = backdoor_adjustment_set(self.dag, key, self.outcome)
            except EstimationError:
                # Compound treatments whose constituents influence each
                # other's parents have no strict backdoor set; fall back to
                # the practical parents-union adjustment (see backdoor.py).
                adjustment = parents_adjustment_set(self.dag, key, self.outcome)
            # Keep only attributes present in the table: the DAG may mention
            # latent context nodes that were never materialised.
            available = set(self.table.column_names)
            self._adjustment_cache[key] = tuple(
                z for z in adjustment if z in available
            )
        return self._adjustment_cache[key]

    # -- estimation ------------------------------------------------------------

    def cate(
        self,
        subtable: Table,
        treated: np.ndarray,
        adjustment: tuple[str, ...],
    ) -> CateResult:
        """Estimate a CATE on ``subtable`` guarding against tiny subgroups."""
        if subtable.n_rows < self.min_subgroup_size:
            return CateResult.invalid(
                f"subgroup smaller than {self.min_subgroup_size}",
                n=subtable.n_rows,
                n_treated=int(treated.sum()),
                n_control=int((~treated).sum()),
                adjustment=adjustment,
            )
        # Drop adjustment attributes that are constant within the subgroup
        # (they cannot confound there and only make the design degenerate).
        effective = tuple(
            z for z in adjustment if len(subtable.column(z).value_counts()) > 1
        )
        if self.cache is not None:
            return self.cache.get_or_estimate(
                self.estimator, subtable, treated, self.outcome, effective
            )
        return self.estimator.estimate(subtable, treated, self.outcome, effective)

    def cate_level(
        self,
        subtable: Table,
        treated_matrix: np.ndarray,
        adjustments: Sequence[tuple[str, ...]],
    ) -> list[CateResult]:
        """Whole-level :meth:`cate`: per-column adjustment sets.

        Applies the scalar guards — the minimum-subgroup cutoff (a property
        of the subtable) and the constant-within-subgroup restriction of
        each column's adjustment set — then routes through the estimator's
        level driver (:func:`repro.causal.batch.estimate_cate_level`),
        memoised per level when a cache is attached.
        """
        n = subtable.n_rows
        m = treated_matrix.shape[1]
        if n < self.min_subgroup_size:
            n_treated = treated_matrix.sum(axis=0).tolist()
            return [
                CateResult.invalid(
                    f"subgroup smaller than {self.min_subgroup_size}",
                    n=n,
                    n_treated=int(n_treated[j]),
                    n_control=int(n - n_treated[j]),
                    adjustment=tuple(adjustments[j]),
                )
                for j in range(m)
            ]
        effective = [
            self._effective_adjustment(subtable, adjustment)
            for adjustment in adjustments
        ]
        if self.cache is not None:
            return self.cache.get_or_estimate_level(
                self.estimator, subtable, treated_matrix, self.outcome, effective
            )
        return self.estimator.estimate_level(
            subtable,
            treated_matrix,
            self.outcome,
            effective,
            factorization_for=lambda adjustment: self._local_factorization(
                subtable, adjustment
            ),
        )

    @staticmethod
    def _effective_adjustment(
        subtable: Table, adjustment: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Non-constant adjustment attributes, memoised per table instance.

        Same restriction the scalar :meth:`cate` applies inline; both the
        overall and protected/non-protected batches of every lattice level
        ask for it, so the answer rides on the (immutable) table like
        :meth:`repro.tabular.table.Table.mask_cache` entries do.
        """
        memo = subtable.__dict__.setdefault("_effective_adjustment_cache", {})
        effective = memo.get(adjustment)
        if effective is None:
            varying = memo.setdefault("_varying", {})
            keep = []
            for z in adjustment:
                flag = varying.get(z)
                if flag is None:
                    flag = len(subtable.column(z).value_counts()) > 1
                    varying[z] = flag
                if flag:
                    keep.append(z)
            effective = tuple(keep)
            memo[adjustment] = effective
        return effective

    def _local_factorization(self, subtable: Table, effective: tuple[str, ...]):
        """Design factorization for cache-free runs (``cache_size=0``).

        With an :class:`EstimationCache` attached, factorizations live in
        its dedicated store (:meth:`get_or_factorize`); without one, this
        small evaluator-local LRU still amortises the SVD across the
        lattice levels and the three sub-populations of each context.
        """
        from repro.causal.batch import build_factorization

        key = (subtable.fingerprint(), self.outcome, effective)
        factorization = self._factorization_memo.get(key)
        if factorization is None:
            factorization = build_factorization(subtable, self.outcome, effective)
            self._factorization_memo[key] = factorization
            while len(self._factorization_memo) > 512:
                self._factorization_memo.pop(next(iter(self._factorization_memo)))
        return factorization

    def context(self, grouping: Pattern) -> GroupEvaluationContext:
        """Build the cached per-group context for ``grouping``."""
        return GroupEvaluationContext(self, grouping)

    def evaluate(self, grouping: Pattern, intervention: Pattern) -> PrescriptionRule:
        """Build the evaluated :class:`PrescriptionRule` for a pattern pair."""
        return self.context(grouping).evaluate(intervention)
