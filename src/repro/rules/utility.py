"""Rule evaluation: from (grouping, intervention) patterns to utilities.

:class:`RuleEvaluator` owns everything needed to turn a candidate pattern
pair into an evaluated :class:`~repro.rules.rule.PrescriptionRule`:

1. restrict the table to ``Coverage(P_grp)``;
2. split it into treated (``P_int`` true) and control rows;
3. pick a backdoor adjustment set for the intervention attributes from the
   causal DAG (dropping attributes that are constant inside the subgroup —
   e.g. attributes fixed by the grouping pattern itself);
4. estimate the three CATEs of Def. 4.4 (overall / protected /
   non-protected).

Because Step 2 of FairCap evaluates *many* intervention patterns against the
*same* grouping pattern, the per-group work (filtering the table, splitting
into protected / non-protected sub-tables) is factored into a
:class:`GroupEvaluationContext` that is built once per grouping pattern —
and whole lattice levels go through :meth:`GroupEvaluationContext.evaluate_batch`,
which computes the overall/protected/non-protected CATEs of a level in three
batched FWL estimations (:mod:`repro.causal.batch`) instead of three OLS
solves per candidate.

The default engine goes one layer further: the frontier batcher
(:func:`repro.core.intervention.frontier_mine_patterns`) advances many
contexts' lattices in lock-step, and each context contributes a
:class:`_LevelWork` per round — built by
:meth:`GroupEvaluationContext.begin_level`, which composes the level's
treated stacks from packed item bitsets (:mod:`repro.mining.bitsets`),
popcount-prunes zero-support candidates before any estimation, and defers
protected / non-protected estimation behind the keep filter
(:meth:`_LevelWork.followup`): a rejected candidate's sub-population CATEs
are never computed.  :meth:`RuleEvaluator.estimate_requests` answers a
round's requests through the fused row-major kernel under
level-granularity cache keys.

Utilities follow the paper's conventions: a rule covering no tuples has
utility 0, and a sub-group CATE that cannot be estimated (no protected rows,
say) also contributes utility 0.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.causal.backdoor import backdoor_adjustment_set, parents_adjustment_set
from repro.causal.dag import CausalDAG
from repro.causal.estimators import (
    POSITIVITY_REASON,
    CateResult,
    LinearAdjustmentEstimator,
    StratifiedEstimator,
)
from repro.mining.bitsets import (
    pack_mask,
    pattern_bitset,
    popcount_rows,
    unpack_rows,
)
from repro.mining.patterns import Pattern
from repro.obs.runtime import current as obs_current
from repro.parallel.cache import (
    EstimationCache,
    packed_rows_digest,
    treated_mask_digest,
    treated_rows_digest,
)
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.tabular.table import Table
from repro.utils.errors import EstimationError

_MISSING = object()


def keep_candidate(overall: "CateResult | None", alpha: float | None) -> bool:
    """The Step-2 keep/expand predicate, on the overall CATE alone.

    A node's supersets are explored when its overall effect is usable,
    positive, and (when ``alpha`` is set) significant — Sec. 5.2's filter.
    Single source of truth shared by the per-context decider
    (:func:`repro.core.intervention._make_decider`) and the frontier's
    phase-2 planning (:meth:`_LevelWork.followup`), so the two engines
    cannot drift apart on which lattice they explore.
    """
    if overall is None or not overall.valid:
        return False
    keep = float(overall.estimate) > 0.0
    if keep and alpha is not None:
        keep = overall.is_significant(alpha)
    return keep


class _SubRequest:
    """One (sub-population, level) estimation unit of a frontier round.

    Carries everything :meth:`RuleEvaluator.estimate_requests` needs to
    answer it — the sub-table, the row-major treated stack plus its shared
    float conversion, popcount-derived treated counts, per-candidate
    effective adjustment sets, and the content-digest parts of its
    level-granularity cache key.  ``results`` is filled in place.
    """

    __slots__ = (
        "table",
        "treated_rows",
        "float_rows",
        "counts",
        "effective",
        "digest_parts",
        "fac_store",
        "donor",
        "results",
    )

    def __init__(
        self,
        table,
        treated_rows,
        float_rows,
        counts,
        effective,
        digest_parts,
        fac_store,
        donor=None,
    ):
        self.table = table
        self.treated_rows = treated_rows
        self.float_rows = float_rows
        self.counts = counts
        self.effective = effective
        self.digest_parts = digest_parts
        self.fac_store = fac_store
        # Gram-subtraction provenance: a (parent, sibling) table pair that
        # partitions this request's table (see build_rows_factorization).
        self.donor = donor
        self.results: list[CateResult] | None = None


class _LevelWork:
    """One context's share of a two-phase frontier estimation round.

    Built by :meth:`GroupEvaluationContext.begin_level`: popcount-pruned
    candidates arrive pre-assembled in ``pruned``; the surviving
    candidates' *overall* batch sits in ``requests`` for the round's first
    estimation pass.  :meth:`followup` then applies the keep filter — Step
    2 expands a node on its overall CATE alone (positive, significant) —
    and emits protected / non-protected requests **only for the kept
    columns**: a rejected candidate's sub-population CATEs are never read
    (its rule is discarded after the keep decision), so estimating them
    eagerly, as the reference engine does, is pure waste.  :meth:`finish`
    re-interleaves everything into ``(keep, rule)`` evaluations in
    candidate order.
    """

    __slots__ = (
        "context",
        "interventions",
        "pruned",
        "requests",
        "_const_rules",
        "_survivor_count",
        "_treated_rows",
        "_float_rows",
        "_packed",
        "_counts",
        "_prot_counts",
        "_raw_adjustments",
        "_overall",
        "_keep",
        "_kept_pos",
        "_prot",
        "_nonprot",
        "gram_subtraction",
        "throughput",
    )

    def __init__(self, context, interventions):
        self.context = context
        self.interventions = interventions
        self.gram_subtraction = True
        self.throughput = False
        self.pruned: dict[int, PrescriptionRule] = {}
        self.requests: list[_SubRequest] = []
        self._const_rules: list[PrescriptionRule] | None = None
        self._survivor_count = 0
        self._treated_rows = None
        self._float_rows = None
        self._packed = None
        self._counts = None
        self._prot_counts = None
        self._raw_adjustments = None
        self._overall = None
        self._keep: list[bool] | None = None
        self._kept_pos: list[int] | None = None
        self._prot = None
        self._nonprot = None

    def followup(self, alpha: float | None) -> list[_SubRequest]:
        """Phase 2: keep-filter on overall results, kept-only sub-requests."""
        if self._const_rules is not None:
            return []
        overall = (
            self._overall.results
            if isinstance(self._overall, _SubRequest)
            else self._overall
        )
        self._overall = overall
        self._keep = keep = [keep_candidate(result, alpha) for result in overall]
        self._kept_pos = [pos for pos, kept in enumerate(keep) if kept]
        if not self._kept_pos:
            self._prot = self._nonprot = []
            return []
        self._prot, self._nonprot = self.context._subpopulation_entries(self)
        return self.requests

    def finish(self) -> list[tuple[bool, PrescriptionRule]]:
        """Assemble the level's ``(keep, rule)`` evaluations in order."""
        if self._const_rules is not None:
            # Constant rules all carry utility 0 -> never kept.
            return [(False, rule) for rule in self._const_rules]
        prot = self._prot.results if isinstance(self._prot, _SubRequest) else self._prot
        nonprot = (
            self._nonprot.results
            if isinstance(self._nonprot, _SubRequest)
            else self._nonprot
        )
        kept_index = {pos: i for i, pos in enumerate(self._kept_pos)}
        evaluations: list[tuple[bool, PrescriptionRule]] = []
        pos = 0
        for j, intervention in enumerate(self.interventions):
            rule = self.pruned.get(j)
            if rule is not None:
                evaluations.append((False, rule))
                continue
            kept = self._keep[pos]
            if kept:
                i = kept_index[pos]
                rule = self.context._assemble_rule(
                    intervention, self._overall[pos], prot[i], nonprot[i]
                )
            else:
                # Rejected candidates' sub-population CATEs were skipped;
                # their rules are only ever counted, never selected.
                rule = self.context._assemble_rule(
                    intervention, self._overall[pos], None, None
                )
            evaluations.append((kept, rule))
            pos += 1
        return evaluations


class GroupEvaluationContext:
    """Cached state for evaluating treatments against one grouping pattern."""

    def __init__(self, evaluator: "RuleEvaluator", grouping: Pattern) -> None:
        self.evaluator = evaluator
        self.grouping = grouping
        group_mask = grouping.mask(evaluator.table)
        self.coverage_count = int(group_mask.sum())
        self.subtable = evaluator.table.filter(group_mask)
        self.sub_protected = evaluator.protected_mask[group_mask]
        self.protected_count = int(self.sub_protected.sum())
        self.protected_table = (
            self.subtable.filter(self.sub_protected) if self.protected_count else None
        )
        non_protected_count = self.coverage_count - self.protected_count
        self.non_protected_table = (
            self.subtable.filter(~self.sub_protected) if non_protected_count else None
        )
        # Per-predicate masks over the subtable, shared by every lattice
        # level: a level-2 intervention reuses its two items' masks and
        # pays one AND instead of re-evaluating both predicates.
        self._predicate_masks: dict = {}
        # Packed-bitset siblings of the above, built lazily by the bitset
        # mask kernel (config.bitset_masks): the protected row-selection as
        # words for popcount splits, and its digest for frontier cache keys.
        self._protected_words: np.ndarray | None = None
        self._protected_digest: bytes | None = None
        # Per-sub-population design factorizations, pinned for this
        # context's lifetime.  The frontier advances every context's
        # lattice in lock-step, which destroys the temporal locality the
        # global factorization LRU relies on (level k+1 of context 0 runs
        # long after its level k) — holding a context's own QRs here keeps
        # within-context reuse perfect at any frontier width, for the same
        # memory order as the sub-tables the context already pins.
        self._fac_stores: dict[str, dict] = {"all": {}, "prot": {}, "nonprot": {}}

    def _intervention_mask(self, intervention: Pattern) -> np.ndarray:
        """Treated mask of ``intervention`` from memoised predicate masks."""
        combined: np.ndarray | None = None
        for predicate in intervention.predicates:
            mask = self._predicate_masks.get(predicate)
            if mask is None:
                mask = predicate.mask(self.subtable)
                self._predicate_masks[predicate] = mask
            combined = mask if combined is None else combined & mask
        assert combined is not None  # interventions are non-empty
        return combined

    def _protected_bitset(self) -> np.ndarray:
        """Packed protected-row mask over the subtable (lazily built)."""
        if self._protected_words is None:
            self._protected_words = pack_mask(self.sub_protected)
        return self._protected_words

    def _protected_mask_digest(self) -> bytes:
        """Digest of the protected row-selection for frontier cache keys."""
        if self._protected_digest is None:
            self._protected_digest = treated_mask_digest(self.sub_protected)
        return self._protected_digest

    def _pruned_result(
        self, sub_table: Table, c_sub: int, raw_adjustment: tuple[str, ...]
    ) -> CateResult:
        """The result estimation *would* produce for a zero-support column.

        Replicates, branch for branch, what :meth:`RuleEvaluator.cate_level`
        plus the batched kernel emit for a candidate whose treated count in
        the whole subgroup is 0 or n (so every sub-population's count is 0
        or its size too): the minimum-subgroup guard first (raw adjustment
        attributes, like the guard), then the positivity rejection (with the
        sub-table's effective adjustment, like the kernel).  This is what
        makes popcount pruning ≡ post-estimation support filtering exactly,
        field for field.
        """
        n_sub = sub_table.n_rows
        min_size = self.evaluator.min_subgroup_size
        if n_sub < min_size:
            return CateResult.invalid(
                f"subgroup smaller than {min_size}",
                n=n_sub,
                n_treated=c_sub,
                n_control=n_sub - c_sub,
                adjustment=tuple(raw_adjustment),
            )
        effective = self.evaluator._effective_adjustment(sub_table, raw_adjustment)
        return CateResult.invalid(
            POSITIVITY_REASON,
            n=n_sub,
            n_treated=c_sub,
            n_control=n_sub - c_sub,
            adjustment=effective,
        )

    def _pruned_rule(
        self,
        intervention: Pattern,
        raw_adjustment: tuple[str, ...],
        count: int,
    ) -> PrescriptionRule:
        """Assemble a popcount-pruned candidate's rule without estimation.

        A zero-support candidate can never be kept, and the frontier only
        estimates sub-population CATEs for kept candidates — so, exactly
        like every other rejected candidate's rule, the pruned rule carries
        the synthesized *overall* rejection and ``None`` sub-populations.
        """
        overall = self._pruned_result(self.subtable, count, raw_adjustment)
        return self._assemble_rule(intervention, overall, None, None)

    def _zero_coverage_rule(self, intervention: Pattern) -> PrescriptionRule:
        return PrescriptionRule(
            grouping=self.grouping,
            intervention=intervention,
            utility=0.0,
            utility_protected=0.0,
            utility_non_protected=0.0,
            coverage_count=0,
            protected_coverage_count=0,
        )

    def _compose_level(
        self, interventions: list[Pattern], use_bitsets: bool, prune: bool = True
    ):
        """Compose one level's treated stacks, pruning zero-support columns.

        Returns ``(pruned, survivors, treated_rows, counts, prot_counts,
        raw_adjustments, packed)`` where ``treated_rows`` is the surviving
        candidates' row-major boolean stack.  With ``use_bitsets`` the
        stacks are AND-composed from per-predicate packed bitsets; with
        ``prune`` (the frontier path) zero-support candidates are popcount-
        pruned *before* any boolean row is materialised.  The packed stack
        rides along (last element) for digest reuse.
        """
        evaluator = self.evaluator
        n = self.subtable.n_rows
        m = len(interventions)
        raw_adjustments = [
            evaluator.adjustment_for(intervention.attributes)
            for intervention in interventions
        ]
        if not use_bitsets:
            treated_rows = np.empty((m, n), dtype=bool)
            for j, intervention in enumerate(interventions):
                treated_rows[j] = self._intervention_mask(intervention)
            return {}, list(range(m)), treated_rows, None, None, raw_adjustments, None

        first = pattern_bitset(self.subtable, interventions[0])
        packed = np.empty((m, first.shape[0]), dtype=np.uint64)
        packed[0] = first
        for j in range(1, m):
            packed[j] = pattern_bitset(self.subtable, interventions[j])
        counts = popcount_rows(packed)
        prot_counts = (
            popcount_rows(packed & self._protected_bitset()[None, :])
            if self.protected_table is not None
            else None
        )
        pruned: dict[int, PrescriptionRule] = {}
        survivors = list(range(m))
        if prune:
            prunable = (counts == 0) | (counts == n)
            if prunable.any():
                for j in np.flatnonzero(prunable):
                    pruned[int(j)] = self._pruned_rule(
                        interventions[j], raw_adjustments[j], int(counts[j])
                    )
                survivors = [int(j) for j in np.flatnonzero(~prunable)]
        if not survivors:
            return pruned, survivors, None, None, None, raw_adjustments, None
        packed_s = packed[survivors] if len(survivors) != m else packed
        treated_rows = unpack_rows(packed_s, n)
        counts_s = counts[survivors]
        prot_s = prot_counts[survivors] if prot_counts is not None else None
        raw_s = [raw_adjustments[j] for j in survivors]
        return pruned, survivors, treated_rows, counts_s, prot_s, raw_s, packed_s

    def _population_entry(
        self,
        work: "_LevelWork",
        sub_table,
        rows_mask,
        treated_rows,
        float_rows,
        pop_counts,
        raw_adjustments,
        base_digest,
        tag: str,
        donor=None,
    ):
        """One sub-population's share of a level: a request or a const list.

        Mirrors :meth:`RuleEvaluator.cate_level`'s guards exactly — the
        minimum-subgroup cutoff first (raw adjustment attributes), then the
        per-sub-table effective-adjustment restriction (computed once per
        *distinct* set instead of once per column) — before emitting an
        estimation request onto ``work``.
        """
        m = treated_rows.shape[0]
        if sub_table is None:
            return [None] * m
        evaluator = self.evaluator
        if rows_mask is None:
            sub_rows, sub_float = treated_rows, float_rows
        else:
            # Converting the sliced boolean stack is cheaper than slicing
            # the float stack (1 byte read per element instead of 8) and
            # produces bit-identical values; the kernel converts on demand.
            sub_rows, sub_float = treated_rows[:, rows_mask], None
        n_sub = sub_table.n_rows
        if pop_counts is None:
            pop_counts = sub_rows.sum(axis=1)
        if n_sub < evaluator.min_subgroup_size:
            counts_l = [int(c) for c in pop_counts]
            return [
                CateResult.invalid(
                    f"subgroup smaller than {evaluator.min_subgroup_size}",
                    n=n_sub,
                    n_treated=counts_l[pos],
                    n_control=n_sub - counts_l[pos],
                    adjustment=tuple(raw_adjustments[pos]),
                )
                for pos in range(m)
            ]
        distinct: dict = {}
        effective = []
        for adjustment in raw_adjustments:
            eff = distinct.get(adjustment, _MISSING)
            if eff is _MISSING:
                eff = evaluator._effective_adjustment(sub_table, adjustment)
                distinct[adjustment] = eff
            effective.append(eff)
        digest_parts = None
        if base_digest is not None:
            digest_parts = (
                ("rows", base_digest)
                if rows_mask is None
                else ("rows-sub", base_digest, self._protected_mask_digest(), tag)
            )
            if donor is not None:
                # A subtraction-built factorization's bits depend on the
                # donor tables' content, which the mask digests above do
                # not pin down; fold the donor fingerprints into the
                # result key so a cache hit is always bit-equivalent to
                # recomputation.
                digest_parts = digest_parts + (
                    donor[0].fingerprint(),
                    donor[1].fingerprint(),
                )
        request = _SubRequest(
            sub_table,
            sub_rows,
            sub_float,
            pop_counts,
            effective,
            digest_parts,
            self._fac_stores[tag],
            donor=donor,
        )
        work.requests.append(request)
        return request

    def begin_level(
        self,
        interventions: Sequence[Pattern],
        use_bitsets: bool = True,
        gram_subtraction: bool = True,
        throughput: bool = False,
    ) -> _LevelWork:
        """Plan one lattice level for a two-phase frontier estimation round.

        Composes the level's treated stacks (from packed item bitsets when
        ``use_bitsets``), prunes candidates below minimum support by
        popcount — their rules are synthesized exactly as estimation would
        have produced them — converts the surviving stack to float **once**
        per level, and emits the *overall* sub-population's request.  The
        caller runs the round's requests
        (:meth:`RuleEvaluator.estimate_requests`), calls
        :meth:`_LevelWork.followup` to get the kept columns' protected /
        non-protected requests, runs those, and then
        :meth:`_LevelWork.finish`.

        ``gram_subtraction`` attaches the Gram donor to the larger
        protected/non-protected side (see :meth:`_subpopulation_entries`);
        ``throughput`` marks the level for the merged cross-context round
        driver, which bypasses the result cache — so no content digest is
        computed at all (the digest is a real fixed cost in the tiny-world
        regime, and a merged result must never seed the bit-exact path's
        cache).
        """
        interventions = list(interventions)
        for intervention in interventions:
            if intervention.is_empty():
                raise EstimationError("intervention pattern must be non-empty")
        work = _LevelWork(self, interventions)
        work.gram_subtraction = gram_subtraction
        work.throughput = throughput
        if not interventions:
            work._const_rules = []
            return work
        if self.coverage_count == 0:
            work._const_rules = [
                self._zero_coverage_rule(intervention)
                for intervention in interventions
            ]
            return work

        pruned, survivors, treated_rows, counts, prot_counts, raw_s, packed_s = (
            self._compose_level(interventions, use_bitsets)
        )
        work.pruned = pruned
        if not survivors:
            work._const_rules = [pruned[j] for j in range(len(interventions))]
            return work

        float_rows = treated_rows.astype(np.float64)
        base_digest = None
        if self.evaluator.cache is not None and not throughput:
            base_digest = (
                packed_rows_digest(packed_s, self.subtable.n_rows)
                if packed_s is not None
                else treated_rows_digest(treated_rows)
            )
        work._survivor_count = len(survivors)
        work._treated_rows = treated_rows
        work._float_rows = float_rows
        work._packed = packed_s
        work._counts = counts
        work._prot_counts = prot_counts
        work._raw_adjustments = raw_s
        work._overall = self._population_entry(
            work,
            self.subtable,
            None,
            treated_rows,
            float_rows,
            counts,
            raw_s,
            base_digest,
            "all",
        )
        return work

    def _subpopulation_entries(self, work: "_LevelWork"):
        """Phase-2 entries: protected / non-protected batches, kept columns only."""
        kept_pos = work._kept_pos
        if len(kept_pos) != work._survivor_count:
            treated_rows = work._treated_rows[kept_pos]
            packed = work._packed[kept_pos] if work._packed is not None else None
            counts = work._counts[kept_pos] if work._counts is not None else None
            prot_counts = (
                work._prot_counts[kept_pos] if work._prot_counts is not None else None
            )
            raw_s = [work._raw_adjustments[pos] for pos in kept_pos]
        else:
            treated_rows = work._treated_rows
            packed = work._packed
            counts = work._counts
            prot_counts = work._prot_counts
            raw_s = work._raw_adjustments
        base_digest = None
        if self.evaluator.cache is not None and not work.throughput:
            base_digest = (
                packed_rows_digest(packed, self.subtable.n_rows)
                if packed is not None
                else treated_rows_digest(treated_rows)
            )
        nonprot_counts = (
            counts - prot_counts
            if counts is not None and prot_counts is not None
            else None
        )
        prot_donor = nonprot_donor = None
        if (
            work.gram_subtraction
            and self.protected_table is not None
            and self.non_protected_table is not None
        ):
            # The two sides partition the subtable, so the *larger* one's
            # Gram can be derived by subtracting the smaller side's from
            # the parent's memoised Gram (causal/batch.py).  The choice is
            # a pure function of this context's row split — never of the
            # round's composition — which preserves the frontier's
            # composition-independence.
            if self.protected_count > self.coverage_count - self.protected_count:
                prot_donor = (self.subtable, self.non_protected_table)
            else:
                nonprot_donor = (self.subtable, self.protected_table)
        work.requests = []
        prot = self._population_entry(
            work,
            self.protected_table,
            self.sub_protected,
            treated_rows,
            None,
            prot_counts,
            raw_s,
            base_digest,
            "prot",
            donor=prot_donor,
        )
        nonprot = self._population_entry(
            work,
            self.non_protected_table,
            ~self.sub_protected,
            treated_rows,
            None,
            nonprot_counts,
            raw_s,
            base_digest,
            "nonprot",
            donor=nonprot_donor,
        )
        return prot, nonprot

    def evaluate(self, intervention: Pattern) -> PrescriptionRule:
        """Evaluate ``intervention`` for this context's grouping pattern."""
        if intervention.is_empty():
            raise EstimationError("intervention pattern must be non-empty")
        if self.coverage_count == 0:
            return PrescriptionRule(
                grouping=self.grouping,
                intervention=intervention,
                utility=0.0,
                utility_protected=0.0,
                utility_non_protected=0.0,
                coverage_count=0,
                protected_coverage_count=0,
            )
        evaluator = self.evaluator
        treated = intervention.mask(self.subtable)
        adjustment = evaluator.adjustment_for(intervention.attributes)

        overall = evaluator.cate(self.subtable, treated, adjustment)
        prot = (
            evaluator.cate(
                self.protected_table, treated[self.sub_protected], adjustment
            )
            if self.protected_table is not None
            else None
        )
        nonprot = (
            evaluator.cate(
                self.non_protected_table, treated[~self.sub_protected], adjustment
            )
            if self.non_protected_table is not None
            else None
        )

        return self._assemble_rule(intervention, overall, prot, nonprot)

    def evaluate_batch(
        self, interventions: Sequence[Pattern], use_bitsets: bool = False
    ) -> list[PrescriptionRule]:
        """Evaluate a whole lattice level of interventions at once.

        The scalar :meth:`evaluate` runs up to three OLS solves per
        intervention; here the level's treated masks are stacked into one
        ``(n, m)`` matrix per adjustment set and the overall / protected /
        non-protected CATEs come out of three batched FWL estimations
        (:func:`repro.causal.batch.estimate_cate_level`) — three GEMMs per
        level.  Results match :meth:`evaluate` per rule to working
        precision (bit-identically on degenerate fallbacks), and the level
        is the cache unit (see
        :meth:`repro.parallel.cache.EstimationCache.level_key`).

        With ``use_bitsets`` (``config.bitset_masks`` outside the frontier
        path) the stacks are AND-composed from packed item bitsets — one
        AND over ``n/64`` words per item instead of a boolean evaluation
        per candidate.  The stack itself is identical either way, and the
        reference kernel consumes it unchanged, so results are bit-exact
        across the flag.  (Popcount *pruning* lives in the frontier path,
        :meth:`begin_level`, whose row-major kernel extracts groups
        C-contiguously and is therefore width-stable under column removal —
        the column-major reference kernel is not, because numpy's
        column fancy-indexing flips the operand layout BLAS sees.)
        """
        interventions = list(interventions)
        for intervention in interventions:
            if intervention.is_empty():
                raise EstimationError("intervention pattern must be non-empty")
        if not interventions:
            return []
        if self.coverage_count == 0:
            return [
                self._zero_coverage_rule(intervention)
                for intervention in interventions
            ]
        evaluator = self.evaluator
        m = len(interventions)
        # One treated-mask stack and one backdoor set per candidate; the
        # level driver groups equal adjustment sets onto shared GEMMs.
        pruned, survivors, treated_rows, _counts, _prot, adjustments, _packed = (
            self._compose_level(interventions, use_bitsets, prune=False)
        )
        # The reference kernel consumes column-major stacks; the transpose
        # must be materialised C-contiguous because the kernel's float
        # conversion preserves layout and BLAS rounds differently under a
        # transposed memory order — the copy is what keeps this path
        # bit-identical to the boolean-composition spelling.
        treated_matrix = np.ascontiguousarray(treated_rows.T)

        overall = evaluator.cate_level(self.subtable, treated_matrix, adjustments)
        prot = (
            evaluator.cate_level(
                self.protected_table,
                treated_matrix[self.sub_protected, :],
                adjustments,
            )
            if self.protected_table is not None
            else [None] * len(survivors)
        )
        nonprot = (
            evaluator.cate_level(
                self.non_protected_table,
                treated_matrix[~self.sub_protected, :],
                adjustments,
            )
            if self.non_protected_table is not None
            else [None] * len(survivors)
        )
        rules: list[PrescriptionRule] = []
        pos = 0
        for j, intervention in enumerate(interventions):
            rule = pruned.get(j)
            if rule is None:
                rule = self._assemble_rule(
                    intervention, overall[pos], prot[pos], nonprot[pos]
                )
                pos += 1
            rules.append(rule)
        return rules

    def _assemble_rule(
        self,
        intervention: Pattern,
        overall: CateResult | None,
        prot: CateResult | None,
        nonprot: CateResult | None,
    ) -> PrescriptionRule:
        def usable(result: CateResult | None) -> float:
            if result is None or not result.valid:
                return 0.0
            return float(result.estimate)

        return PrescriptionRule(
            grouping=self.grouping,
            intervention=intervention,
            utility=usable(overall),
            utility_protected=usable(prot),
            utility_non_protected=usable(nonprot),
            coverage_count=self.coverage_count,
            protected_coverage_count=self.protected_count,
            estimate=overall,
            estimate_protected=prot,
            estimate_non_protected=nonprot,
        )


class RuleEvaluator:
    """Evaluates prescription rules against a dataset and causal DAG.

    Parameters
    ----------
    table:
        The full database instance ``D``.
    outcome:
        The outcome attribute ``O``.
    dag:
        Causal DAG over (at least) the attributes appearing in rules plus
        the outcome.
    protected:
        The protected group ``P_p``.
    estimator:
        CATE estimator; defaults to linear adjustment (DoWhy's default).
    min_subgroup_size:
        Sub-populations smaller than this yield utility 0 instead of a
        noisy estimate (both for the rule itself and for the protected /
        non-protected splits).
    cache:
        Optional :class:`~repro.parallel.cache.EstimationCache` memoising
        CATE results by content; hits are identical to recomputation, so
        the cache never changes results (see :mod:`repro.parallel`).
    """

    def __init__(
        self,
        table: Table,
        outcome: str,
        dag: CausalDAG,
        protected: ProtectedGroup,
        estimator: LinearAdjustmentEstimator | StratifiedEstimator | None = None,
        min_subgroup_size: int = 10,
        cache=None,
    ) -> None:
        self.table = table
        self.outcome = outcome
        self.dag = dag
        self.protected = protected
        self.estimator = (
            estimator if estimator is not None else LinearAdjustmentEstimator()
        )
        self.min_subgroup_size = min_subgroup_size
        self.cache = cache
        self.protected_mask = protected.mask(table)
        self._adjustment_cache: dict[tuple[str, ...], tuple[str, ...]] = {}
        self._factorization_memo: dict[tuple, object] = {}

    # -- adjustment ------------------------------------------------------------

    def adjustment_for(self, treatment_attributes: tuple[str, ...]) -> tuple[str, ...]:
        """Backdoor adjustment set for the treatment attributes (cached)."""
        key = tuple(sorted(treatment_attributes))
        if key not in self._adjustment_cache:
            try:
                adjustment = backdoor_adjustment_set(self.dag, key, self.outcome)
            except EstimationError:
                # Compound treatments whose constituents influence each
                # other's parents have no strict backdoor set; fall back to
                # the practical parents-union adjustment (see backdoor.py).
                adjustment = parents_adjustment_set(self.dag, key, self.outcome)
            # Keep only attributes present in the table: the DAG may mention
            # latent context nodes that were never materialised.
            available = set(self.table.column_names)
            self._adjustment_cache[key] = tuple(
                z for z in adjustment if z in available
            )
        return self._adjustment_cache[key]

    # -- estimation ------------------------------------------------------------

    def cate(
        self,
        subtable: Table,
        treated: np.ndarray,
        adjustment: tuple[str, ...],
    ) -> CateResult:
        """Estimate a CATE on ``subtable`` guarding against tiny subgroups."""
        if subtable.n_rows < self.min_subgroup_size:
            return CateResult.invalid(
                f"subgroup smaller than {self.min_subgroup_size}",
                n=subtable.n_rows,
                n_treated=int(treated.sum()),
                n_control=int((~treated).sum()),
                adjustment=adjustment,
            )
        # Drop adjustment attributes that are constant within the subgroup
        # (they cannot confound there and only make the design degenerate).
        effective = tuple(
            z for z in adjustment if len(subtable.column(z).value_counts()) > 1
        )
        if self.cache is not None:
            return self.cache.get_or_estimate(
                self.estimator, subtable, treated, self.outcome, effective
            )
        return self.estimator.estimate(subtable, treated, self.outcome, effective)

    def cate_level(
        self,
        subtable: Table,
        treated_matrix: np.ndarray,
        adjustments: Sequence[tuple[str, ...]],
    ) -> list[CateResult]:
        """Whole-level :meth:`cate`: per-column adjustment sets.

        Applies the scalar guards — the minimum-subgroup cutoff (a property
        of the subtable) and the constant-within-subgroup restriction of
        each column's adjustment set — then routes through the estimator's
        level driver (:func:`repro.causal.batch.estimate_cate_level`),
        memoised per level when a cache is attached.
        """
        n = subtable.n_rows
        m = treated_matrix.shape[1]
        if n < self.min_subgroup_size:
            n_treated = treated_matrix.sum(axis=0).tolist()
            return [
                CateResult.invalid(
                    f"subgroup smaller than {self.min_subgroup_size}",
                    n=n,
                    n_treated=int(n_treated[j]),
                    n_control=int(n - n_treated[j]),
                    adjustment=tuple(adjustments[j]),
                )
                for j in range(m)
            ]
        effective = [
            self._effective_adjustment(subtable, adjustment)
            for adjustment in adjustments
        ]
        if self.cache is not None:
            return self.cache.get_or_estimate_level(
                self.estimator, subtable, treated_matrix, self.outcome, effective
            )
        return self.estimator.estimate_level(
            subtable,
            treated_matrix,
            self.outcome,
            effective,
            factorization_for=lambda adjustment: self._local_factorization(
                subtable, adjustment
            ),
        )

    @staticmethod
    def _effective_adjustment(
        subtable: Table, adjustment: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Non-constant adjustment attributes, memoised per table instance.

        Same restriction the scalar :meth:`cate` applies inline; both the
        overall and protected/non-protected batches of every lattice level
        ask for it, so the answer rides on the (immutable) table like
        :meth:`repro.tabular.table.Table.mask_cache` entries do.
        """
        memo = subtable.__dict__.setdefault("_effective_adjustment_cache", {})
        effective = memo.get(adjustment)
        if effective is None:
            varying = memo.setdefault("_varying", {})
            keep = []
            for z in adjustment:
                flag = varying.get(z)
                if flag is None:
                    flag = len(subtable.column(z).value_counts()) > 1
                    varying[z] = flag
                if flag:
                    keep.append(z)
            effective = tuple(keep)
            memo[adjustment] = effective
        return effective

    def _local_factorization(
        self, subtable: Table, effective: tuple[str, ...], rows: bool = False,
        donor=None,
    ):
        """Design factorization for cache-free runs (``cache_size=0``).

        With an :class:`EstimationCache` attached, factorizations live in
        its dedicated store (:meth:`get_or_factorize` /
        :meth:`get_or_factorize_rows`); without one, this small
        evaluator-local LRU still amortises the factorization across the
        lattice levels and the three sub-populations of each context.
        ``rows`` selects the fused kernel's Gram build (its own key space);
        ``donor`` (rows only) selects the Gram-subtraction build, keyed by
        the donor tables' fingerprints because its bits differ from a
        direct build's.
        """
        from repro.causal.batch import build_factorization, build_rows_factorization

        if donor is None:
            key = (rows, subtable.fingerprint(), self.outcome, effective)
        else:
            key = (
                rows,
                subtable.fingerprint(),
                donor[0].fingerprint(),
                donor[1].fingerprint(),
                self.outcome,
                effective,
            )
        factorization = self._factorization_memo.get(key)
        if factorization is None:
            if rows:
                factorization = build_rows_factorization(
                    subtable, self.outcome, effective, donor=donor
                )
            else:
                factorization = build_factorization(subtable, self.outcome, effective)
            self._factorization_memo[key] = factorization
            while len(self._factorization_memo) > 512:
                self._factorization_memo.pop(next(iter(self._factorization_memo)))
        return factorization

    def estimate_requests(self, requests: Sequence[_SubRequest]) -> None:
        """Answer a frontier round's level requests, filling ``results``.

        One request = one (sub-population, level) batch.  Each is memoised
        under its level-granularity key
        (:meth:`repro.parallel.cache.EstimationCache.rows_level_key`) and
        computed through the fused row-major kernel on a miss.  Per-request
        bits depend only on the request's own content — never on how many
        other contexts share the round — which is what keeps frontier
        results identical across executors and chunkings (the serial ≡
        process contract of :mod:`repro.parallel`).
        """
        cache = self.cache
        estimator = self.estimator
        for request in requests:
            key = None
            if cache is not None:
                key = EstimationCache.rows_level_key(
                    estimator,
                    request.table,
                    request.digest_parts,
                    self.outcome,
                    request.effective,
                )
                cached = cache.get(key)
                if cached is not None:
                    request.results = cached
                    continue
            def factorization_for(adjustment, request=request):
                store = request.fac_store
                factorization = store.get(adjustment)
                if factorization is None:
                    if cache is not None:
                        factorization = cache.get_or_factorize_rows(
                            request.table, self.outcome, adjustment,
                            donor=request.donor,
                        )
                    else:
                        factorization = self._local_factorization(
                            request.table, adjustment, rows=True,
                            donor=request.donor,
                        )
                    store[adjustment] = factorization
                return factorization

            request.results = estimator.estimate_level_rows(
                request.table,
                request.treated_rows,
                self.outcome,
                request.effective,
                factorization_for=factorization_for,
                float_rows=request.float_rows,
                counts=request.counts,
            )
            if key is not None:
                cache.put(key, request.results)

    def estimate_requests_merged(self, requests: Sequence[_SubRequest]) -> None:
        """Throughput-mode sibling of :meth:`estimate_requests`.

        Routes the whole round through one merged pass
        (:func:`repro.causal.batch.estimate_rows_merged`): same-(table
        content, adjustment set) batches from *different* grouping
        contexts share one GEMM pair at the concatenated width, and the
        FWL tail runs once for the round.  Merged widths change per-column
        rounding, so this path deliberately gives up the serial ≡ process
        bit-identity contract — it is certified by the 36-world scenario
        oracle instead — and it never reads or writes the result cache
        (merged bits must not seed the bit-exact path, and the digest /
        lookup fixed costs are precisely what the many-tiny-contexts
        regime pays for).  Factorizations still go through the shared
        factorization store: their bits depend only on table content and
        donor, never on round composition, so sharing them is safe.
        """
        from repro.causal.batch import estimate_rows_merged

        tasks = []
        for request in requests:
            def factorization_for(adjustment, request=request):
                store = request.fac_store
                factorization = store.get(adjustment)
                if factorization is None:
                    if self.cache is not None:
                        factorization = self.cache.get_or_factorize_rows(
                            request.table, self.outcome, adjustment,
                            donor=request.donor,
                        )
                    else:
                        factorization = self._local_factorization(
                            request.table, adjustment, rows=True,
                            donor=request.donor,
                        )
                    store[adjustment] = factorization
                return factorization

            tasks.append((request, factorization_for))
        estimate_rows_merged(tasks, self.outcome)

    def context(self, grouping: Pattern) -> GroupEvaluationContext:
        """Build the cached per-group context for ``grouping``."""
        telemetry = obs_current()
        if telemetry.enabled:
            # One context per grouping pattern, whichever engine or
            # executor runs it — an exact, executor-invariant count.
            telemetry.registry.inc("mining.contexts", 1, deterministic=True)
        return GroupEvaluationContext(self, grouping)

    def evaluate(self, grouping: Pattern, intervention: Pattern) -> PrescriptionRule:
        """Build the evaluated :class:`PrescriptionRule` for a pattern pair."""
        return self.context(grouping).evaluate(intervention)
