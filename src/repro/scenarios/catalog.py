"""Named scenario datasets: the oracle grid as registry-loadable bundles.

Every spec in :func:`repro.scenarios.spec.oracle_grid` is addressable as a
dataset named ``scenario:<spec name>`` — the dataset registry
(:mod:`repro.datasets.registry`), the CLI (``python -m repro list-datasets``)
and the benchmarks all resolve scenario worlds through this module.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.scenarios.spec import ScenarioSpec, oracle_grid, spec_by_name
from repro.scenarios.world import ScenarioWorld
from repro.utils.errors import ConfigError

SCENARIO_PREFIX = "scenario:"
DEFAULT_ROWS = 2_000


def scenario_names() -> tuple[str, ...]:
    """Registry names of every grid scenario, sorted."""
    return tuple(SCENARIO_PREFIX + spec.name for spec in oracle_grid())


def scenario_spec(name: str) -> ScenarioSpec:
    """Resolve a registry name (``scenario:<name>``) to its spec."""
    if not name.startswith(SCENARIO_PREFIX):
        raise ConfigError(
            f"scenario datasets are named {SCENARIO_PREFIX}<name>; got {name!r}"
        )
    return spec_by_name(name[len(SCENARIO_PREFIX):])


def load_scenario(
    name: str,
    n: int = DEFAULT_ROWS,
    rng: int | np.random.Generator | None = None,
) -> DatasetBundle:
    """Sample a named scenario world as a :class:`DatasetBundle`.

    Parameters
    ----------
    name:
        Registry name (``scenario:<name>``) or the bare spec name.
    n:
        Row count (default 2,000).
    rng:
        Seed or generator; ``None`` uses the scenario's own stable seed.
    """
    if not name.startswith(SCENARIO_PREFIX):
        name = SCENARIO_PREFIX + name
    spec = scenario_spec(name)
    return ScenarioWorld(spec).bundle(n, rng=rng)


def load_scenario_sharded(
    name: str,
    n: int,
    directory: str,
    shard_rows: int,
    rng: int | np.random.Generator | None = None,
    chunk_rows: int | None = None,
) -> DatasetBundle:
    """Sample a scenario world chunk-by-chunk into a columnar shard store.

    The out-of-core companion of :func:`load_scenario`: the bundle's table
    is a :class:`~repro.datasets.sharded.ShardedTable` and no more than one
    chunk (default: one shard) of rows is ever materialised — this is how
    the scale benchmarks generate worlds whose in-RAM table would not fit.
    """
    if not name.startswith(SCENARIO_PREFIX):
        name = SCENARIO_PREFIX + name
    spec = scenario_spec(name)
    return ScenarioWorld(spec).sharded_bundle(
        n, directory, shard_rows, rng=rng, chunk_rows=chunk_rows
    )


def is_scenario_name(name: str) -> bool:
    """Whether ``name`` addresses a scenario dataset."""
    return name.startswith(SCENARIO_PREFIX)
