"""Named scenario datasets: the oracle grid as registry-loadable bundles.

Every spec in :func:`repro.scenarios.spec.oracle_grid` is addressable as a
dataset named ``scenario:<spec name>`` — the dataset registry
(:mod:`repro.datasets.registry`), the CLI (``python -m repro list-datasets``)
and the benchmarks all resolve scenario worlds through this module.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.scenarios.spec import ScenarioSpec, oracle_grid, spec_by_name
from repro.scenarios.world import ScenarioWorld
from repro.utils.errors import ConfigError

SCENARIO_PREFIX = "scenario:"
DEFAULT_ROWS = 2_000


def scenario_names() -> tuple[str, ...]:
    """Registry names of every grid scenario, sorted."""
    return tuple(SCENARIO_PREFIX + spec.name for spec in oracle_grid())


def scenario_spec(name: str) -> ScenarioSpec:
    """Resolve a registry name (``scenario:<name>``) to its spec."""
    if not name.startswith(SCENARIO_PREFIX):
        raise ConfigError(
            f"scenario datasets are named {SCENARIO_PREFIX}<name>; got {name!r}"
        )
    return spec_by_name(name[len(SCENARIO_PREFIX):])


def load_scenario(
    name: str,
    n: int = DEFAULT_ROWS,
    rng: int | np.random.Generator | None = None,
) -> DatasetBundle:
    """Sample a named scenario world as a :class:`DatasetBundle`.

    Parameters
    ----------
    name:
        Registry name (``scenario:<name>``) or the bare spec name.
    n:
        Row count (default 2,000).
    rng:
        Seed or generator; ``None`` uses the scenario's own stable seed.
    """
    if not name.startswith(SCENARIO_PREFIX):
        name = SCENARIO_PREFIX + name
    spec = scenario_spec(name)
    return ScenarioWorld(spec).bundle(n, rng=rng)


def is_scenario_name(name: str) -> bool:
    """Whether ``name`` addresses a scenario dataset."""
    return name.startswith(SCENARIO_PREFIX)
