"""Ground-truth scenario factory and oracle verification harness.

This package generates parameterized SCM *worlds* whose per-group CATEs,
fairness-optimal rulesets, and expected utilities are known in closed form,
and provides the oracle checks that assert FairCap recovers them:

- :mod:`repro.scenarios.spec` — :class:`ScenarioSpec` and the canonical
  oracle grid (confounding depth, heterogeneous effects, protected benefit
  gaps, rule overlap, noise, degenerate worlds);
- :mod:`repro.scenarios.world` — :class:`ScenarioWorld`: SCM construction
  plus the closed-form oracles (true rule utilities, planted optimal
  ruleset, population Eq. 5-7 metrics);
- :mod:`repro.scenarios.catalog` — the grid as registry-loadable datasets
  (``scenario:<name>``);
- :mod:`repro.scenarios.oracle` — end-to-end checks: CATE recovery,
  planted-ruleset recovery, fairness, batch≡scalar and serial≡process
  differentials, and the serving round-trip.

``tests/scenarios/`` drives these checks over the whole grid;
``benchmarks/bench_scenarios.py`` records mining wall-clock across it.
"""

from repro.scenarios.catalog import (
    DEFAULT_ROWS,
    SCENARIO_PREFIX,
    load_scenario,
    scenario_names,
    scenario_spec,
)
from repro.scenarios.oracle import (
    check_batch_scalar,
    check_cate_recovery,
    check_executors,
    check_fairness,
    check_planted_recovery,
    check_serve_roundtrip,
    check_world,
    oracle_config,
    run_world,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    degenerate_specs,
    oracle_grid,
    random_spec,
    spec_by_name,
)
from repro.scenarios.world import ScenarioWorld, TrueRule

__all__ = [
    "DEFAULT_ROWS",
    "SCENARIO_PREFIX",
    "ScenarioSpec",
    "ScenarioWorld",
    "TrueRule",
    "check_batch_scalar",
    "check_cate_recovery",
    "check_executors",
    "check_fairness",
    "check_planted_recovery",
    "check_serve_roundtrip",
    "check_world",
    "degenerate_specs",
    "load_scenario",
    "oracle_config",
    "oracle_grid",
    "random_spec",
    "run_world",
    "scenario_names",
    "scenario_spec",
    "spec_by_name",
]
