"""Ground-truth worlds: SCM construction plus closed-form oracles.

Structural model (all draws independent across rows)::

    Group  ~ Cat(group_probs)                       immutable, effect-bearing
    Region ~ Uniform(r0..r{k-1})                    immutable, causally inert
    Status ~ {protected w.p. q, other w.p. 1-q}     immutable, moderates effects
    Z1     ~ Bern(1/2);  Zi flips Z(i-1) w.p. 1/4   auxiliary confounders
    Tj     ~ Bern(base ± tilt·sign(Zd))             mutable, binary "Yes"/"No"
    Y      = a·g + s·#hi(Z) + Σj e[g][j]·f_j(S)·1[Tj=Yes] + σ·ε

Why the CATEs are exact, not just approximate: every confounder is binary,
so the linear adjustment's projection of ``Tj`` onto the confounder dummies
*is* the conditional expectation ``E[Tj | Z]`` — the FWL residual is exactly
mean-independent of every function of ``Z``.  Treatment propensities do not
depend on ``Status``, so the OLS weighting (proportional to the residual
variance) is independent of ``Status`` too, and the estimand of a rule
``(pattern, Tj = v)`` collapses to a probability-weighted average of the
signed cell effects:

    utility(pattern, Tj=v)       = E[ ±e[g][j]·f_j(S) | pattern ]
    utility_protected(...)       = E[ ±e[g][j]·f_j    | pattern, protected ]
    utility_non_protected(...)   = E[ ±e[g][j]        | pattern, ~protected ]

with ``+`` for ``v = "Yes"`` and ``-`` for ``v = "No"``.  Those expectations
are finite sums over the discrete (group, region, status) cells, which is
what :meth:`ScenarioWorld.true_rule`, :meth:`ScenarioWorld.true_metrics`
(Eqs. 5-7 over cells) and :meth:`ScenarioWorld.planted_ruleset` evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.causal.scm import SCMNode, StructuralCausalModel
from repro.datasets.bundle import DatasetBundle
from repro.datasets.synth import pick, uniform_noise
from repro.fairness.benefit import benefit
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RuleSet, RulesetMetrics
from repro.scenarios.spec import ScenarioSpec
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.utils.rng import ensure_rng

GROUP_ATTR = "Group"
REGION_ATTR = "Region"
STATUS_ATTR = "Status"
OUTCOME_ATTR = "Outcome"
PROTECTED_VALUE = "protected"
NON_PROTECTED_VALUE = "other"
TREATED_VALUE = "Yes"
CONTROL_VALUE = "No"

#: Outcome shift between consecutive groups (level effect, not a CATE).
GROUP_BASE_STEP = 0.8
#: Probability that confounder ``Zi`` flips the state of ``Z(i-1)``.
CONFOUNDER_FLIP = 0.25


@dataclass(frozen=True)
class TrueRule:
    """Closed-form utilities of one (grouping pattern, treatment) rule."""

    utility: float
    utility_protected: float
    utility_non_protected: float

    @property
    def gap(self) -> float:
        """Signed non-protected minus protected utility."""
        return self.utility_non_protected - self.utility_protected


class ScenarioWorld:
    """One ground-truth world built from a :class:`ScenarioSpec`."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.group_values = tuple(f"g{i}" for i in range(spec.n_groups))
        self.region_values = tuple(f"r{i}" for i in range(spec.n_regions))
        self.treatment_names = tuple(
            f"T{j + 1}" for j in range(spec.n_treatments)
        )
        self.confounder_names = tuple(
            f"Z{i + 1}" for i in range(spec.confounding_depth)
        )
        self.scm = self._build_scm()
        self.schema = self._build_schema()
        self.protected = ProtectedGroup(
            Pattern.of(**{STATUS_ATTR: PROTECTED_VALUE}), name="protected rows"
        )

    # -- structural model ------------------------------------------------------

    def _build_scm(self) -> StructuralCausalModel:
        spec = self.spec
        nodes: list[SCMNode] = []
        group_values = self.group_values
        group_probs = spec.group_probabilities

        nodes.append(
            SCMNode(
                GROUP_ATTR,
                (),
                lambda parents, noise: pick(group_values, group_probs, noise),
                uniform_noise,
            )
        )
        if self.region_values:
            region_values = self.region_values
            region_probs = tuple([1.0 / len(region_values)] * len(region_values))
            nodes.append(
                SCMNode(
                    REGION_ATTR,
                    (),
                    lambda parents, noise: pick(
                        region_values, region_probs, noise
                    ),
                    uniform_noise,
                )
            )
        rate = spec.protected_rate
        nodes.append(
            SCMNode(
                STATUS_ATTR,
                (),
                lambda parents, noise: pick(
                    (PROTECTED_VALUE, NON_PROTECTED_VALUE),
                    (rate, 1.0 - rate),
                    noise,
                ),
                uniform_noise,
            )
        )

        for i, z_name in enumerate(self.confounder_names):
            if i == 0:
                nodes.append(
                    SCMNode(
                        z_name,
                        (),
                        lambda parents, noise: np.where(
                            noise < 0.5, "hi", "lo"
                        ).astype(object),
                        uniform_noise,
                    )
                )
            else:
                previous = self.confounder_names[i - 1]
                nodes.append(
                    SCMNode(
                        z_name,
                        (previous,),
                        self._make_chain_mechanism(previous),
                        uniform_noise,
                    )
                )

        driver = self.confounder_names[-1] if self.confounder_names else None
        for t_name in self.treatment_names:
            nodes.append(
                SCMNode(
                    t_name,
                    (driver,) if driver else (),
                    self._make_treatment_mechanism(driver),
                    uniform_noise,
                )
            )

        outcome_parents = (
            (GROUP_ATTR, STATUS_ATTR)
            + self.confounder_names
            + self.treatment_names
        )
        nodes.append(
            SCMNode(OUTCOME_ATTR, outcome_parents, self._outcome_mechanism)
        )
        return StructuralCausalModel(nodes)

    @staticmethod
    def _make_chain_mechanism(previous: str):
        def mechanism(parents, noise):
            same = parents[previous]
            p_hi = np.where(same == "hi", 1.0 - CONFOUNDER_FLIP, CONFOUNDER_FLIP)
            return np.where(noise < p_hi, "hi", "lo").astype(object)

        return mechanism

    def _make_treatment_mechanism(self, driver: str | None):
        base = self.spec.base_propensity
        tilt = self.spec.propensity_tilt

        def mechanism(parents, noise):
            if driver is None:
                p_yes = np.full(noise.shape[0], base)
            else:
                p_yes = np.where(
                    parents[driver] == "hi", base + tilt, base - tilt
                )
            return np.where(
                noise < p_yes, TREATED_VALUE, CONTROL_VALUE
            ).astype(object)

        return mechanism

    def _outcome_mechanism(self, parents, noise):
        spec = self.spec
        group = parents[GROUP_ATTR]
        status = parents[STATUS_ATTR]
        y = np.zeros(group.shape[0], dtype=np.float64)
        for g, value in enumerate(self.group_values):
            y[group == value] += GROUP_BASE_STEP * g
        for z_name in self.confounder_names:
            y += spec.confounder_strength * (parents[z_name] == "hi")
        protected = status == PROTECTED_VALUE
        for g, g_value in enumerate(self.group_values):
            in_group = group == g_value
            for j, t_name in enumerate(self.treatment_names):
                treated = in_group & (parents[t_name] == TREATED_VALUE)
                moderation = np.where(
                    protected[treated], spec.factors[j], 1.0
                )
                y[treated] += spec.effects[g][j] * moderation
        return y + spec.noise * noise

    def _build_schema(self) -> Schema:
        specs = [
            AttributeSpec(
                GROUP_ATTR, AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE
            )
        ]
        if self.region_values:
            specs.append(
                AttributeSpec(
                    REGION_ATTR,
                    AttributeKind.CATEGORICAL,
                    AttributeRole.IMMUTABLE,
                )
            )
        specs.append(
            AttributeSpec(
                STATUS_ATTR, AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE
            )
        )
        specs += [
            AttributeSpec(
                name, AttributeKind.CATEGORICAL, AttributeRole.AUXILIARY
            )
            for name in self.confounder_names
        ]
        specs += [
            AttributeSpec(
                name, AttributeKind.CATEGORICAL, AttributeRole.MUTABLE
            )
            for name in self.treatment_names
        ]
        specs.append(
            AttributeSpec(
                OUTCOME_ATTR, AttributeKind.CONTINUOUS, AttributeRole.OUTCOME
            )
        )
        return Schema(specs)

    @property
    def grouping_attributes(self) -> tuple[str, ...]:
        """Attributes the oracle configuration mines grouping patterns over."""
        if self.region_values:
            return (GROUP_ATTR, REGION_ATTR)
        return (GROUP_ATTR,)

    def bundle(
        self, n: int, rng: int | np.random.Generator | None = None
    ) -> DatasetBundle:
        """Sample ``n`` rows and package them as a :class:`DatasetBundle`."""
        generator = ensure_rng(self.spec.seed if rng is None else rng)
        table = self.scm.sample_table(n, generator, schema=self.schema)
        return self._wrap_bundle(table)

    def sharded_bundle(
        self,
        n: int,
        directory: str,
        shard_rows: int,
        rng: int | np.random.Generator | None = None,
        chunk_rows: int | None = None,
    ) -> DatasetBundle:
        """Sample ``n`` rows in chunks straight into a columnar shard store.

        Peak memory is O(chunk), never O(n): each chunk is sampled from the
        SCM, appended to the shard writer, and dropped.  Row *content*
        depends on the chunking (every chunk advances the generator by its
        own draws), so this is not sample-identical to :meth:`bundle` at
        the same seed — it is the generator for scale runs whose in-RAM
        table would not fit.  For bit-identity-to-in-RAM tests, spill a
        materialised table instead (``FairCapConfig.shard_rows``).
        """
        from repro.datasets.sharded import ShardedTableWriter

        generator = ensure_rng(self.spec.seed if rng is None else rng)
        chunk = shard_rows if chunk_rows is None else chunk_rows
        if chunk < 1:
            raise ValueError(f"chunk_rows must be >= 1, got {chunk}")
        writer = ShardedTableWriter(directory, self.schema, shard_rows)
        remaining = n
        while remaining > 0:
            m = min(chunk, remaining)
            writer.append_table(self.scm.sample_table(m, generator, schema=self.schema))
            remaining -= m
        return self._wrap_bundle(writer.close())

    def _wrap_bundle(self, table) -> DatasetBundle:
        return DatasetBundle(
            name=f"scenario:{self.spec.name}",
            table=table,
            schema=self.schema,
            dag=self.scm.dag(),
            protected=self.protected,
            scm=self.scm,
            default_fairness_threshold=self.spec.fairness_threshold,
            default_coverage_theta=self.spec.coverage_theta or 0.5,
            fairness_kind=self.spec.fairness_kind or "SP",
        )

    # -- closed-form oracle ----------------------------------------------------

    def cells(self) -> Iterator[tuple[dict[str, object], float]]:
        """The discrete immutable-attribute cells with their probabilities.

        Confounders integrate out: they are independent of every immutable
        attribute and only shift the outcome level, never a CATE.
        """
        spec = self.spec
        regions: tuple[tuple[str | None, float], ...]
        if self.region_values:
            share = 1.0 / len(self.region_values)
            regions = tuple((value, share) for value in self.region_values)
        else:
            regions = ((None, 1.0),)
        statuses = (
            (PROTECTED_VALUE, spec.protected_rate),
            (NON_PROTECTED_VALUE, 1.0 - spec.protected_rate),
        )
        for g_value, g_prob in zip(self.group_values, spec.group_probabilities):
            for r_value, r_prob in regions:
                for s_value, s_prob in statuses:
                    row: dict[str, object] = {
                        GROUP_ATTR: g_value,
                        STATUS_ATTR: s_value,
                    }
                    if r_value is not None:
                        row[REGION_ATTR] = r_value
                    yield row, g_prob * r_prob * s_prob

    def signed_effect(
        self, group_value: str, treatment: str, value: str, protected: bool
    ) -> float:
        """True per-row effect of rule ``treatment = value`` in one cell."""
        g = self.group_values.index(group_value)
        j = self.treatment_names.index(treatment)
        sign = 1.0 if value == TREATED_VALUE else -1.0
        factor = self.spec.factors[j] if protected else 1.0
        return sign * self.spec.effects[g][j] * factor

    def true_rule(
        self, grouping: Pattern, treatment: str, value: str
    ) -> TrueRule:
        """Closed-form utilities of the rule ``(grouping, treatment = value)``."""
        total = total_p = total_np = 0.0
        acc = acc_p = acc_np = 0.0
        for row, prob in self.cells():
            if not grouping.matches_row(row):
                continue
            protected = row[STATUS_ATTR] == PROTECTED_VALUE
            effect = self.signed_effect(
                str(row[GROUP_ATTR]), treatment, value, protected
            )
            total += prob
            acc += prob * effect
            if protected:
                total_p += prob
                acc_p += prob * effect
            else:
                total_np += prob
                acc_np += prob * effect
        return TrueRule(
            utility=acc / total if total else 0.0,
            utility_protected=acc_p / total_p if total_p else 0.0,
            utility_non_protected=acc_np / total_np if total_np else 0.0,
        )

    def pattern_probability(self, pattern: Pattern) -> float:
        """True coverage probability of a grouping pattern."""
        return sum(
            prob for row, prob in self.cells() if pattern.matches_row(row)
        )

    def candidate_patterns(self, min_support: float) -> tuple[Pattern, ...]:
        """Single-attribute grouping patterns with true support >= threshold."""
        patterns = [
            Pattern.of(**{GROUP_ATTR: value}) for value in self.group_values
        ]
        patterns += [
            Pattern.of(**{REGION_ATTR: value}) for value in self.region_values
        ]
        return tuple(
            p
            for p in patterns
            if self.pattern_probability(p) >= min_support - 1e-12
        )

    def _true_prescription_rule(
        self, grouping: Pattern, treatment: str, value: str
    ) -> PrescriptionRule:
        truth = self.true_rule(grouping, treatment, value)
        return PrescriptionRule(
            grouping=grouping,
            intervention=Pattern.of(**{treatment: value}),
            utility=truth.utility,
            utility_protected=truth.utility_protected,
            utility_non_protected=truth.utility_non_protected,
            coverage_count=0,
            protected_coverage_count=0,
        )

    def planted_best(
        self, grouping: Pattern, variant=None
    ) -> PrescriptionRule | None:
        """The true best rule for one grouping pattern under ``variant``.

        Mirrors Step 2's selection exactly, but on true utilities: positive
        utility, per-rule (matroid) fairness eligibility, then highest
        utility (matroid scope) or highest fairness-penalised benefit.
        """
        fairness = variant.fairness if variant is not None else None
        candidates = [
            self._true_prescription_rule(grouping, treatment, value)
            for treatment in self.treatment_names
            for value in (TREATED_VALUE, CONTROL_VALUE)
        ]
        eligible = [rule for rule in candidates if rule.utility > 1e-12]
        if fairness is not None and fairness.is_matroid:
            eligible = [
                rule for rule in eligible if fairness.satisfied_by_rule(rule)
            ]
        if not eligible:
            return None
        if fairness is not None and fairness.is_matroid:
            return max(eligible, key=lambda rule: rule.utility)
        return max(eligible, key=lambda rule: benefit(rule, fairness))

    def planted_ruleset(
        self, variant=None, min_support: float = 0.08
    ) -> RuleSet:
        """The planted optimal ruleset under ``variant``.

        One best rule per admissible grouping pattern; under a rule-coverage
        constraint the support threshold rises to ``theta`` and patterns
        failing the protected floor drop out (protected membership is
        independent of every grouping attribute, so a pattern's protected
        coverage fraction equals its overall coverage probability).
        """
        support = min_support
        if variant is not None and variant.has_rule_coverage:
            coverage = variant.coverage
            support = max(support, coverage.theta, coverage.theta_protected)
        rules = []
        for pattern in self.candidate_patterns(support):
            best = self.planted_best(pattern, variant)
            if best is not None:
                rules.append(best)
        return RuleSet(rules)

    def true_metrics(
        self, rules: Sequence[PrescriptionRule]
    ) -> RulesetMetrics:
        """Population Eqs. 5-7 of a ruleset, evaluated over the cells."""
        rules = list(rules)
        covered = 0.0
        covered_p = 0.0
        covered_np = 0.0
        sum_best = 0.0
        sum_worst_p = 0.0
        sum_best_np = 0.0
        for row, prob in self.cells():
            matched = [rule for rule in rules if rule.grouping.matches_row(row)]
            if not matched:
                continue
            covered += prob
            sum_best += prob * max(rule.utility for rule in matched)
            if row[STATUS_ATTR] == PROTECTED_VALUE:
                covered_p += prob
                sum_worst_p += prob * min(
                    rule.utility_protected for rule in matched
                )
            else:
                covered_np += prob
                sum_best_np += prob * max(
                    rule.utility_non_protected for rule in matched
                )
        rate = self.spec.protected_rate
        return RulesetMetrics(
            n_rules=len(rules),
            coverage=covered,
            protected_coverage=covered_p / rate if rate else 0.0,
            expected_utility=sum_best,
            expected_utility_protected=(
                sum_worst_p / covered_p if covered_p else 0.0
            ),
            expected_utility_non_protected=(
                sum_best_np / covered_np if covered_np else 0.0
            ),
        )

    def protected_count_expectation(self, pattern: Pattern, n: int) -> float:
        """Expected protected rows inside ``pattern`` at sample size ``n``."""
        prob = sum(
            p
            for row, p in self.cells()
            if pattern.matches_row(row)
            and row[STATUS_ATTR] == PROTECTED_VALUE
        )
        return n * prob

    def __repr__(self) -> str:
        return (
            f"ScenarioWorld({self.spec.name!r}: {self.spec.n_groups} groups, "
            f"{self.spec.n_treatments} treatments, "
            f"depth {self.spec.confounding_depth})"
        )
