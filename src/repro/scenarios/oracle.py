"""Oracle verification: run FairCap on a ground-truth world and check it.

Every check returns a list of human-readable problem strings (empty =
pass), so the same logic drives both the pytest harness in
``tests/scenarios/`` (``assert not problems``) and the scenario benchmark's
built-in gate (``benchmarks/bench_scenarios.py``), mirroring the repo's
differential-bench convention.

The checks cover the five oracle properties of the scenario harness:

a. **CATE recovery** — every mined rule's estimate sits inside the analytic
   confidence band around the closed-form truth
   (:func:`check_cate_recovery`);
b. **planted-ruleset recovery** — the selected ruleset equals the planted
   optimum, or is utility-equivalent under the true expected-utility
   functional (:func:`check_planted_recovery`);
c. **fairness** — the scenario's constraints hold on the mined result
   (:func:`check_fairness`);
d. **differentials** — batch ≡ scalar estimation and serial ≡ process
   execution (:func:`check_batch_scalar`, :func:`check_executors`);
e. **serving round-trip** — export → compile → prescribe returns identical
   decisions before and after the JSON round-trip
   (:func:`check_serve_roundtrip`).
"""

from __future__ import annotations

import math

from repro.core.config import FairCapConfig
from repro.core.faircap import FairCap, FairCapResult
from repro.datasets.bundle import DatasetBundle
from repro.parallel.executors import ProcessExecutor
from repro.scenarios.world import ScenarioWorld
from repro.serve.artifact import ServingArtifact
from repro.serve.engine import PrescriptionEngine

#: Apriori floor of the oracle configuration; every grid spec keeps its
#: smallest group probability comfortably above it.
ORACLE_MIN_SUPPORT = 0.08
#: Half-width multiplier of the analytic band: estimate within z standard
#: errors of the closed-form truth.
CATE_Z = 6.0
#: Absolute slack added to every band (guards near-zero standard errors).
CATE_ABS_TOL = 0.05
#: Relative tolerance on true expected utility for "utility-equivalent"
#: recovered rulesets that differ from the planted one.
RECOVERY_EU_RTOL = 0.02
#: Tolerance of the batch-vs-scalar utility comparison.
BATCH_RTOL = 1e-9


def oracle_config(world: ScenarioWorld, **overrides) -> FairCapConfig:
    """The FairCap configuration the oracle harness runs a world under.

    Grouping is restricted to the world's effect-bearing immutable
    attributes and intervention patterns to single treatments, so every
    candidate rule has a closed-form estimand (conjunctions of binary
    treatments would mix treated populations and lose exactness).
    ``stop_threshold=0`` makes the greedy deterministic against the planted
    optimum: every positive-score admissible rule is selected.
    """
    defaults = dict(
        variant=world.spec.variant(),
        apriori_min_support=ORACLE_MIN_SUPPORT,
        max_grouping_size=1,
        max_intervention_size=1,
        grouping_attributes=world.grouping_attributes,
        stop_threshold=0.0,
    )
    defaults.update(overrides)
    return FairCapConfig(**defaults)


def run_world(
    world: ScenarioWorld,
    bundle: DatasetBundle,
    config: FairCapConfig | None = None,
    executor=None,
    cache=None,
) -> FairCapResult:
    """Run FairCap end-to-end on a sampled world."""
    config = config if config is not None else oracle_config(world)
    return FairCap(config, executor=executor, cache=cache).run(
        bundle.table, bundle.schema, bundle.dag, bundle.protected
    )


# -- (a) CATE recovery -------------------------------------------------------------


def _band_problem(
    label: str, estimate, truth: float, z: float
) -> str | None:
    if estimate is None or not estimate.valid:
        return None
    half_width = CATE_ABS_TOL
    if math.isfinite(estimate.stderr):
        half_width += z * estimate.stderr
    if abs(estimate.estimate - truth) > half_width:
        return (
            f"{label}: estimate {estimate.estimate:.4f} outside "
            f"truth {truth:.4f} ± {half_width:.4f}"
        )
    return None


def check_cate_recovery(
    world: ScenarioWorld, result: FairCapResult, z: float = CATE_Z
) -> list[str]:
    """Every candidate rule's CATEs lie in the analytic band around truth."""
    problems: list[str] = []
    for rule in result.candidate_rules:
        predicates = rule.intervention.predicates
        if len(predicates) != 1:  # oracle config caps interventions at 1
            problems.append(f"unexpected compound intervention: {rule}")
            continue
        predicate = predicates[0]
        truth = world.true_rule(
            rule.grouping, predicate.attribute, str(predicate.value)
        )
        label = f"{rule.grouping} -> {rule.intervention}"
        for suffix, estimate, true_value in (
            ("", rule.estimate, truth.utility),
            ("[protected]", rule.estimate_protected, truth.utility_protected),
            (
                "[non-protected]",
                rule.estimate_non_protected,
                truth.utility_non_protected,
            ),
        ):
            problem = _band_problem(label + suffix, estimate, true_value, z)
            if problem is not None:
                problems.append(problem)
    return problems


# -- (b) planted recovery ----------------------------------------------------------


def check_planted_recovery(
    world: ScenarioWorld, result: FairCapResult
) -> list[str]:
    """Selected rules match the planted optimum (or tie in true utility)."""
    variant = result.config.variant
    planted = world.planted_ruleset(
        variant, min_support=result.config.apriori_min_support
    )
    recovered = {
        (rule.grouping, rule.intervention) for rule in result.ruleset
    }
    expected = {(rule.grouping, rule.intervention) for rule in planted}
    if recovered == expected:
        return []
    # Escape hatch: a different ruleset is acceptable only when its *true*
    # expected utility ties the planted optimum (utility-equivalent plans).
    recovered_rules = [
        world._true_prescription_rule(
            rule.grouping,
            rule.intervention.predicates[0].attribute,
            str(rule.intervention.predicates[0].value),
        )
        for rule in result.ruleset
        if len(rule.intervention.predicates) == 1
    ]
    if len(recovered_rules) != len(result.ruleset):
        return [f"recovered ruleset has compound interventions: {recovered}"]
    got = world.true_metrics(recovered_rules).expected_utility
    want = world.true_metrics(list(planted)).expected_utility
    slack = RECOVERY_EU_RTOL * max(1.0, abs(want))
    if abs(got - want) <= slack:
        return []
    return [
        "planted ruleset not recovered: "
        f"expected {sorted(map(str, expected))}, got {sorted(map(str, recovered))} "
        f"(true EU {got:.4f} vs optimum {want:.4f})"
    ]


# -- (c) fairness ------------------------------------------------------------------


def check_fairness(result: FairCapResult) -> list[str]:
    """The scenario's constraints hold on the mined result."""
    problems: list[str] = []
    variant = result.config.variant
    fairness = variant.fairness
    if fairness is not None and fairness.is_matroid:
        for rule in result.ruleset:
            if not fairness.satisfied_by_rule(rule):
                problems.append(
                    f"rule violates {fairness.describe()}: {rule}"
                )
    if (variant.fairness is not None or variant.coverage is not None) and (
        len(result.ruleset) > 0
    ):
        if not result.satisfied():
            problems.append(
                f"selected ruleset violates the variant "
                f"({variant.describe()}): {result.metrics}"
            )
    return problems


# -- (d) differentials -------------------------------------------------------------


def _same_float(a: float, b: float) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def _compare_results(
    reference: FairCapResult,
    candidate: FairCapResult,
    rtol: float,
    label: str,
) -> list[str]:
    problems: list[str] = []
    if candidate.nodes_evaluated != reference.nodes_evaluated:
        problems.append(
            f"{label}: lattice differs ({candidate.nodes_evaluated} vs "
            f"{reference.nodes_evaluated} nodes)"
        )
    if len(candidate.candidate_rules) != len(reference.candidate_rules):
        problems.append(f"{label}: candidate count differs")
        return problems
    for got, want in zip(candidate.candidate_rules, reference.candidate_rules):
        if got.grouping != want.grouping or got.intervention != want.intervention:
            problems.append(
                f"{label}: candidate patterns differ ({got} vs {want})"
            )
            break
        for field in ("utility", "utility_protected", "utility_non_protected"):
            a, b = getattr(got, field), getattr(want, field)
            if rtol == 0.0:
                same = _same_float(a, b)
            else:
                same = abs(a - b) <= rtol * max(abs(a), abs(b), 1.0)
            if not same:
                problems.append(
                    f"{label}: {field} differs on {got.grouping} "
                    f"({a!r} vs {b!r})"
                )
                break
    got_rules = [(r.grouping, r.intervention) for r in candidate.ruleset]
    want_rules = [(r.grouping, r.intervention) for r in reference.ruleset]
    if got_rules != want_rules:
        problems.append(f"{label}: selected rulesets differ")
    return problems


def check_batch_scalar(
    world: ScenarioWorld,
    bundle: DatasetBundle,
    config: FairCapConfig | None = None,
    reference: FairCapResult | None = None,
) -> list[str]:
    """Batched FWL estimation agrees with the scalar per-candidate path."""
    config = config if config is not None else oracle_config(world)
    if reference is None:
        reference = run_world(world, bundle, config)
    from dataclasses import replace

    scalar = run_world(
        world, bundle, replace(config, batch_estimation=False)
    )
    return _compare_results(scalar, reference, BATCH_RTOL, "batch-vs-scalar")


def check_executors(
    world: ScenarioWorld,
    bundle: DatasetBundle,
    config: FairCapConfig | None = None,
    reference: FairCapResult | None = None,
    n_workers: int = 2,
) -> list[str]:
    """ProcessExecutor mining is bit-identical to the serial reference."""
    config = config if config is not None else oracle_config(world)
    if reference is None:
        reference = run_world(world, bundle, config)
    parallel = run_world(
        world, bundle, config, executor=ProcessExecutor(n_workers)
    )
    return _compare_results(reference, parallel, 0.0, "serial-vs-process")


# -- (e) serving round-trip --------------------------------------------------------


def check_serve_roundtrip(
    result: FairCapResult, bundle: DatasetBundle
) -> list[str]:
    """Export → JSON → compile → prescribe preserves every decision."""
    problems: list[str] = []
    artifact = ServingArtifact(
        result.ruleset,
        schema=bundle.schema,
        protected=bundle.protected,
        metadata={"dataset": bundle.name, "variant": result.config.variant.name},
    )
    restored = ServingArtifact.from_json(artifact.to_json())
    if restored.ruleset != result.ruleset:
        problems.append("ruleset changed across the JSON round-trip")
        return problems
    original = PrescriptionEngine(
        result.ruleset, protected=bundle.protected, schema=bundle.schema
    )
    roundtripped = PrescriptionEngine.from_artifact(restored)
    decisions_a = original.prescribe_table(bundle.table)
    decisions_b = roundtripped.prescribe_table(bundle.table)
    if decisions_a != decisions_b:
        problems.append("prescriptions differ after the JSON round-trip")
    # The scalar path must agree with the vectorized table path.
    rows = bundle.table.to_rows()
    for index in range(0, len(rows), max(1, len(rows) // 16)):
        if roundtripped.prescribe(rows[index]) != decisions_b[index]:
            problems.append(
                f"scalar prescription differs from the table path at row {index}"
            )
            break
    return problems


def check_world(
    world: ScenarioWorld,
    bundle: DatasetBundle,
    config: FairCapConfig | None = None,
    include_process: bool = True,
) -> list[str]:
    """Run every oracle check on one sampled world (the bench gate)."""
    config = config if config is not None else oracle_config(world)
    result = run_world(world, bundle, config)
    problems = check_cate_recovery(world, result)
    problems += check_fairness(result)
    problems += check_batch_scalar(world, bundle, config, reference=result)
    if include_process:
        problems += check_executors(world, bundle, config, reference=result)
    problems += check_serve_roundtrip(result, bundle)
    return problems
