"""Parameterized ground-truth scenario specifications.

A :class:`ScenarioSpec` describes one *world*: a linear/discrete SCM whose
per-group CATEs, fairness-optimal ruleset, and expected utility are all
known in closed form (see :mod:`repro.scenarios.world` for the structural
model and the exactness argument).  The spec controls every axis the oracle
harness wants to probe:

- **confounding depth** — a chain of binary confounders driving both the
  treatment propensities and the outcome level;
- **heterogeneous treatment effects** — an ``effects[group][treatment]``
  matrix of signed outcome shifts;
- **protected-group benefit gaps** — per-treatment moderation factors for
  the protected subpopulation;
- **rule overlap** — an optional second immutable attribute whose grouping
  patterns cross-cut the effect-bearing groups;
- **noise level and dataset size** — outcome noise and the recovery tier.

:func:`oracle_grid` enumerates the canonical grid (36 distinct worlds)
covering all of the above plus one scenario per problem-variant family;
:func:`degenerate_specs` isolates the pathological worlds (zero effect,
perfect separation, single stratum); :func:`random_spec` draws fuzzing
specs from the same parameter space.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.core.variants import ProblemVariant
from repro.fairness.constraints import FairnessConstraint
from repro.fairness.coverage import CoverageConstraint
from repro.utils.errors import ConfigError

#: Effect matrices reused across the grid.  Margins between the best and
#: runner-up |effect| within every group are >= 1.1 so the planted argmax
#: survives estimation noise at the recovery tier.
EFFECTS_2G = ((3.0, 1.2), (-2.6, 0.9))
EFFECTS_3G = ((3.0, 1.2), (-2.6, 0.9), (1.8, -2.9))
EFFECTS_1T = ((2.5,), (-2.2,))


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything needed to build one ground-truth world.

    Attributes
    ----------
    name:
        Stable identifier; ``scenario:<name>`` is the dataset-registry key.
    effects:
        ``effects[g][j]`` — outcome shift of treatment ``j``'s "Yes" value
        for group ``g`` (non-protected rows); protected rows receive
        ``effects[g][j] * protected_factors[j]``.
    group_probs:
        Marginal distribution of the group attribute (``None`` = uniform).
    n_regions:
        When >= 2, adds a causally inert immutable ``Region`` attribute and
        includes it in grouping mining — regions cross-cut groups, so their
        rules *overlap* the group rules.
    confounding_depth:
        Length of the binary confounder chain ``Z1 -> ... -> Zd``; the last
        confounder tilts every treatment propensity and each confounder
        shifts the outcome.  ``0`` disables confounding.
    protected_factors:
        Per-treatment moderation of the effect for protected rows
        (``None`` = all 1.0, i.e. no benefit gap).
    protected_rate:
        ``P(Status = protected)``, independent of everything else.
    noise:
        Outcome noise standard deviation.
    confounder_strength:
        Outcome shift per "hi" confounder.
    base_propensity, propensity_tilt:
        ``P(T = Yes)`` is ``base ± tilt`` depending on the last confounder
        (``base`` alone at depth 0).  ``tilt = base = 0.5`` yields a
        perfectly separated world (the treatment is a deterministic
        function of the confounder, so every design is degenerate).
    fairness_kind, fairness_scope, fairness_threshold:
        Optional fairness constraint defining the scenario's variant.
    coverage_kind, coverage_theta, coverage_theta_protected:
        Optional coverage constraint defining the scenario's variant.
    recovery_n:
        Row count of the planted-recovery tier.
    assert_recovery:
        Whether the oracle harness asserts exact planted-ruleset recovery
        for this world (degenerate worlds assert weaker invariants).
    """

    name: str
    effects: tuple[tuple[float, ...], ...]
    group_probs: tuple[float, ...] | None = None
    n_regions: int = 0
    confounding_depth: int = 1
    protected_factors: tuple[float, ...] | None = None
    protected_rate: float = 0.3
    noise: float = 1.0
    confounder_strength: float = 1.0
    base_propensity: float = 0.5
    propensity_tilt: float = 0.2
    fairness_kind: str | None = None
    fairness_scope: str | None = None
    fairness_threshold: float = 0.0
    coverage_kind: str | None = None
    coverage_theta: float = 0.0
    coverage_theta_protected: float = 0.0
    recovery_n: int = 2400
    assert_recovery: bool = True
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("scenario name must be non-empty")
        if not self.effects or not self.effects[0]:
            raise ConfigError("effects matrix must be non-empty")
        widths = {len(row) for row in self.effects}
        if len(widths) != 1:
            raise ConfigError("effects matrix must be rectangular")
        if self.group_probs is not None:
            if len(self.group_probs) != self.n_groups:
                raise ConfigError("group_probs length must match effects rows")
            if abs(sum(self.group_probs) - 1.0) > 1e-9:
                raise ConfigError("group_probs must sum to 1")
            if min(self.group_probs) <= 0.0:
                raise ConfigError("group_probs must be positive")
        if self.protected_factors is not None and (
            len(self.protected_factors) != self.n_treatments
        ):
            raise ConfigError("protected_factors length must match treatments")
        if not 0.0 < self.protected_rate < 1.0:
            raise ConfigError("protected_rate must be in (0, 1)")
        if self.confounding_depth < 0:
            raise ConfigError("confounding_depth must be >= 0")
        if self.noise < 0.0:
            raise ConfigError("noise must be >= 0")
        lo = self.base_propensity - self.propensity_tilt
        hi = self.base_propensity + self.propensity_tilt
        if not (0.0 <= lo and hi <= 1.0):
            raise ConfigError("propensity base ± tilt must stay within [0, 1]")
        if (self.fairness_kind is None) != (self.fairness_scope is None):
            raise ConfigError("fairness kind and scope must be set together")

    # -- derived shape ---------------------------------------------------------

    @property
    def n_groups(self) -> int:
        """Number of values of the ``Group`` attribute."""
        return len(self.effects)

    @property
    def n_treatments(self) -> int:
        """Number of binary treatment attributes."""
        return len(self.effects[0])

    @property
    def group_probabilities(self) -> tuple[float, ...]:
        """Group marginals (uniform when unspecified)."""
        if self.group_probs is not None:
            return self.group_probs
        return tuple([1.0 / self.n_groups] * self.n_groups)

    @property
    def factors(self) -> tuple[float, ...]:
        """Per-treatment protected moderation factors (default all 1)."""
        if self.protected_factors is not None:
            return self.protected_factors
        return tuple([1.0] * self.n_treatments)

    @property
    def seed(self) -> int:
        """Deterministic per-scenario seed derived from the name."""
        return zlib.crc32(self.name.encode())

    def variant(self) -> ProblemVariant:
        """The problem variant this scenario is evaluated under."""
        fairness = None
        if self.fairness_kind is not None:
            assert self.fairness_scope is not None
            fairness = FairnessConstraint(
                self.fairness_kind, self.fairness_scope, self.fairness_threshold
            )
        coverage = None
        if self.coverage_kind is not None:
            coverage = CoverageConstraint(
                self.coverage_kind,
                self.coverage_theta,
                self.coverage_theta_protected,
            )
        return ProblemVariant(fairness=fairness, coverage=coverage)


# -- the canonical grid -----------------------------------------------------------


def _linear_specs() -> Iterator[ScenarioSpec]:
    """The 24-spec core: groups x depth x benefit gap x noise."""
    for n_groups, effects in ((2, EFFECTS_2G), (3, EFFECTS_3G)):
        for depth in (0, 1, 2):
            for gap_tag, factor in (("fair", None), ("gap", 0.45)):
                for noise_tag, noise in (("lo", 0.6), ("hi", 1.5)):
                    factors = (
                        None
                        if factor is None
                        else tuple([factor] * len(effects[0]))
                    )
                    yield ScenarioSpec(
                        name=(
                            f"linear-g{n_groups}-d{depth}-{gap_tag}-{noise_tag}"
                        ),
                        effects=effects,
                        confounding_depth=depth,
                        protected_factors=factors,
                        noise=noise,
                        description=(
                            f"{n_groups} groups, confounder chain of {depth}, "
                            f"{'uniform benefit' if factor is None else 'protected gap'}, "
                            f"noise {noise:g}"
                        ),
                    )


def _variant_specs() -> Iterator[ScenarioSpec]:
    """One scenario per problem-variant family, planted to discriminate."""
    # Individual SP: the highest-utility treatment carries a large benefit
    # gap (factor 0.15 -> gap 2.55 > epsilon) while the runner-up's gap is
    # tiny (0.15 < epsilon), so the fairness-optimal ruleset differs from
    # the unconstrained one.
    yield ScenarioSpec(
        name="variant-indiv-sp",
        effects=((3.0, 1.5), (-3.0, 1.6)),
        protected_factors=(0.15, 0.9),
        noise=0.5,
        fairness_kind="SP",
        fairness_scope="individual",
        fairness_threshold=1.3,
        recovery_n=3000,
        description="individual SP flips the per-group best treatment",
    )
    # Individual BGL: protected utility of the top treatment (0.45) sits
    # below tau while the runner-up clears it (>= 1.35).
    yield ScenarioSpec(
        name="variant-indiv-bgl",
        effects=((3.0, 1.5), (-3.0, 1.6)),
        protected_factors=(0.15, 0.9),
        noise=0.5,
        fairness_kind="BGL",
        fairness_scope="individual",
        fairness_threshold=0.9,
        recovery_n=3000,
        description="individual BGL floors out the high-gap treatment",
    )
    # Group-scope constraints with feasible thresholds: the planted optimum
    # satisfies them outright; the harness asserts they are never violated.
    yield ScenarioSpec(
        name="variant-group-sp",
        effects=EFFECTS_2G,
        protected_factors=(0.45, 0.45),
        noise=0.6,
        fairness_kind="SP",
        fairness_scope="group",
        fairness_threshold=3.0,
        description="ruleset-level SP with a feasible epsilon",
    )
    yield ScenarioSpec(
        name="variant-group-bgl",
        effects=EFFECTS_2G,
        protected_factors=(0.9, 0.9),
        noise=0.6,
        fairness_kind="BGL",
        fairness_scope="group",
        fairness_threshold=0.2,
        description="ruleset-level BGL with a feasible tau",
    )
    yield ScenarioSpec(
        name="variant-group-coverage",
        effects=EFFECTS_2G,
        noise=0.6,
        coverage_kind="group",
        coverage_theta=0.5,
        coverage_theta_protected=0.5,
        description="union coverage over both planted groups",
    )
    yield ScenarioSpec(
        name="variant-rule-coverage",
        effects=EFFECTS_2G,
        noise=0.6,
        coverage_kind="rule",
        coverage_theta=0.3,
        coverage_theta_protected=0.3,
        description="per-rule coverage floor (raises the Apriori threshold)",
    )


def _structural_specs() -> Iterator[ScenarioSpec]:
    """Overlap / imbalance / rarity probes (still exactly recoverable)."""
    yield ScenarioSpec(
        name="overlap-regions",
        effects=EFFECTS_2G,
        n_regions=2,
        noise=0.6,
        description="inert Region attribute overlaps the effect groups",
    )
    yield ScenarioSpec(
        name="imbalanced-groups",
        effects=EFFECTS_2G,
        group_probs=(0.75, 0.25),
        noise=0.6,
        description="3:1 group imbalance",
    )
    yield ScenarioSpec(
        name="rare-protected",
        effects=EFFECTS_2G,
        protected_rate=0.04,
        noise=0.6,
        description=(
            "protected group too small to estimate at base n — probes the "
            "minimum-subgroup guard"
        ),
    )


def degenerate_specs() -> tuple[ScenarioSpec, ...]:
    """Pathological worlds: zero effect, perfect separation, one stratum."""
    return (
        ScenarioSpec(
            name="zero-effect",
            effects=((0.0, 0.0), (0.0, 0.0)),
            noise=1.0,
            assert_recovery=False,
            description="no treatment moves the outcome; truth is silence",
        ),
        ScenarioSpec(
            name="separated",
            effects=EFFECTS_2G,
            propensity_tilt=0.5,
            noise=0.6,
            assert_recovery=False,
            description=(
                "treatment is a deterministic function of the confounder; "
                "every adjusted design is collinear"
            ),
        ),
        ScenarioSpec(
            name="single-stratum",
            effects=(EFFECTS_1T[0],),
            confounding_depth=1,
            noise=0.6,
            description="one group covering the entire table",
        ),
    )


def oracle_grid() -> tuple[ScenarioSpec, ...]:
    """The canonical oracle grid (36 distinct worlds), name-sorted."""
    specs = (
        list(_linear_specs())
        + list(_variant_specs())
        + list(_structural_specs())
        + list(degenerate_specs())
    )
    names = [spec.name for spec in specs]
    if len(set(names)) != len(names):  # pragma: no cover - grid invariant
        raise ConfigError("duplicate scenario names in the oracle grid")
    return tuple(sorted(specs, key=lambda spec: spec.name))


def spec_by_name(name: str) -> ScenarioSpec:
    """Look up a grid spec by name."""
    for spec in oracle_grid():
        if spec.name == name:
            return spec
    raise ConfigError(
        f"unknown scenario {name!r}; available: "
        f"{[s.name for s in oracle_grid()]}"
    )


# -- fuzzing ----------------------------------------------------------------------


def random_spec(rng: np.random.Generator, index: int = 0) -> ScenarioSpec:
    """Draw a random (possibly degenerate) spec from the parameter space.

    Used by the scenario fuzz tests: the draw is entirely determined by the
    ``rng`` stream, so the per-test ``rng`` fixture makes fuzz runs
    reproducible.  Recovery is never asserted for fuzzed worlds — only the
    structural invariants (no crash, finite utilities, differential
    equality, fairness of matroid variants).
    """
    n_groups = int(rng.integers(1, 4))
    n_treatments = int(rng.integers(1, 3))
    effects = tuple(
        tuple(
            float(rng.choice([-3.0, -1.5, 0.0, 1.2, 2.4, 3.2]))
            for _ in range(n_treatments)
        )
        for _ in range(n_groups)
    )
    factors = tuple(
        float(rng.choice([0.2, 0.5, 1.0, 1.3])) for _ in range(n_treatments)
    )
    return ScenarioSpec(
        name=f"fuzz-{index}",
        effects=effects,
        confounding_depth=int(rng.integers(0, 3)),
        protected_factors=factors,
        protected_rate=float(rng.choice([0.1, 0.3, 0.5])),
        noise=float(rng.choice([0.3, 1.0, 2.0])),
        propensity_tilt=float(rng.choice([0.0, 0.2, 0.35])),
        n_regions=int(rng.choice([0, 2])),
        assert_recovery=False,
        description="randomized fuzz world",
    )
