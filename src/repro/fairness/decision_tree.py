"""The Figure 2 decision tree: which problem variant fits the application.

The paper guides users to one of nine structural variants by asking three
questions: *do you need fairness?*, *group-level or per-individual?*, and
*do you need coverage — overall or for every rule?*  Combined with the
SP-vs-BGL choice (left to the user), this yields the paper's "18 distinct
problem variants".

:func:`select_variant` walks the tree and returns the
:class:`~repro.core.variants.ProblemVariant` describing the chosen
combination, with the thresholds supplied by the caller.
"""

from __future__ import annotations

from repro.fairness.constraints import (
    FairnessConstraint,
    FairnessKind,
    FairnessScope,
)
from repro.fairness.coverage import CoverageConstraint, CoverageKind
from repro.utils.errors import ConfigError


def select_variant(
    fairness: bool,
    group_fairness: bool | None = None,
    fairness_kind: str | FairnessKind = FairnessKind.STATISTICAL_PARITY,
    fairness_threshold: float = 0.0,
    coverage: bool = False,
    per_rule_coverage: bool | None = None,
    theta: float = 0.0,
    theta_protected: float = 0.0,
):
    """Walk the Figure 2 decision tree and return a ProblemVariant.

    Parameters
    ----------
    fairness:
        "Fairness constraint?" — the root question.
    group_fairness:
        "Group fairness?" — required when ``fairness`` is True.
    fairness_kind:
        SP or BGL (the tree leaves this choice to the user).
    fairness_threshold:
        ``epsilon`` (SP) or ``tau`` (BGL).
    coverage:
        "Coverage requirement?".
    per_rule_coverage:
        "For every rule?" — required when ``coverage`` is True.
    theta, theta_protected:
        Coverage thresholds.

    Returns
    -------
    ProblemVariant
        The assembled variant (import deferred to avoid a package cycle).
    """
    from repro.core.variants import ProblemVariant

    fairness_constraint: FairnessConstraint | None = None
    if fairness:
        if group_fairness is None:
            raise ConfigError(
                "with fairness=True you must answer group_fairness (True/False)"
            )
        scope = FairnessScope.GROUP if group_fairness else FairnessScope.INDIVIDUAL
        fairness_constraint = FairnessConstraint(
            FairnessKind(fairness_kind), scope, fairness_threshold
        )

    coverage_constraint: CoverageConstraint | None = None
    if coverage:
        if per_rule_coverage is None:
            raise ConfigError(
                "with coverage=True you must answer per_rule_coverage (True/False)"
            )
        kind = CoverageKind.RULE if per_rule_coverage else CoverageKind.GROUP
        coverage_constraint = CoverageConstraint(kind, theta, theta_protected)

    return ProblemVariant(fairness=fairness_constraint, coverage=coverage_constraint)
