"""The *benefit* of a rule (Secs. 5.2 and 5.4).

Step 2 of FairCap ranks candidate treatments not by raw utility but by a
fairness-penalised *benefit*:

- **Statistical parity** (Sec. 5.2): penalise the treatment by the gap
  between non-protected and protected utility::

      benefit(r) = utility(r) / (1 + utility_np(r) - utility_p(r))
                     if utility_np(r) >= utility_p(r)
                   utility(r)   otherwise

- **Bounded group loss** (Sec. 5.4): penalise by the shortfall against the
  BGL floor ``tau``::

      benefit(r) = utility(r) / (1 + tau - utility_p(r))
                     if tau >= utility_p(r)
                   utility(r)   otherwise

- **No fairness constraint**: benefit is plain utility (Step 2 then reduces
  to CauSumX's highest-CATE search).

The denominator is guaranteed positive in the penalised branch, but the
formulas above can still flip sign for rules with *negative* gaps larger
than 1; FairCap never sees those because Step 2 prunes non-positive-utility
treatments first.
"""

from __future__ import annotations

from repro.fairness.constraints import FairnessConstraint, FairnessKind
from repro.rules.rule import PrescriptionRule


def benefit(rule: PrescriptionRule, constraint: FairnessConstraint | None) -> float:
    """Fairness-penalised benefit of ``rule`` under ``constraint``.

    Parameters
    ----------
    rule:
        An evaluated prescription rule.
    constraint:
        The active fairness constraint, or ``None`` (benefit = utility).
    """
    if constraint is None:
        return rule.utility

    if constraint.kind is FairnessKind.STATISTICAL_PARITY:
        gap = rule.utility_non_protected - rule.utility_protected
        if gap >= 0.0:
            return rule.utility / (1.0 + gap)
        return rule.utility

    # Bounded group loss.
    shortfall = constraint.threshold - rule.utility_protected
    if shortfall >= 0.0:
        return rule.utility / (1.0 + shortfall)
    return rule.utility


def total_benefit(
    rules: tuple[PrescriptionRule, ...] | list[PrescriptionRule],
    constraint: FairnessConstraint | None,
) -> float:
    """Sum of rule benefits (the greedy score's ``benefit(R_i ∪ {r})`` term)."""
    return sum(benefit(rule, constraint) for rule in rules)
