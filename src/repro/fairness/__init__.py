"""Fairness and coverage constraints (S10-S12; Secs. 4.5-4.6, 5.2, 5.4)."""

from repro.fairness.constraints import (
    FairnessKind,
    FairnessScope,
    FairnessConstraint,
    statistical_parity,
    bounded_group_loss,
)
from repro.fairness.coverage import (
    CoverageConstraint,
    CoverageKind,
    group_coverage,
    rule_coverage,
)
from repro.fairness.benefit import benefit, total_benefit
from repro.fairness.decision_tree import select_variant

__all__ = [
    "FairnessKind",
    "FairnessScope",
    "FairnessConstraint",
    "statistical_parity",
    "bounded_group_loss",
    "CoverageConstraint",
    "CoverageKind",
    "group_coverage",
    "rule_coverage",
    "benefit",
    "total_benefit",
    "select_variant",
]
