"""Fairness constraints for prescription rulesets (Sec. 4.6).

Two definitions from the fair-regression literature, each at two scopes:

**Statistical parity (SP)** — protected and non-protected gains should be
comparable:

- group scope:  ``|ExpUtility_p(R) - ExpUtility_np(R)| <= epsilon``;
- individual scope: for every rule,
  ``|utility_p(r) - utility_np(r)| <= epsilon``.

**Bounded group loss (BGL)** — protected gains should clear a floor ``tau``:

- group scope:  ``ExpUtility_p(R) >= tau``;
- individual scope: for every rule, ``utility_p(r) >= tau``.

Individual-scope constraints are per-rule predicates and therefore matroid
constraints (Prop. 9.2): any subset of a satisfying ruleset still satisfies
them.  Group-scope constraints are properties of the whole ruleset.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RulesetMetrics
from repro.utils.errors import ConfigError


class FairnessKind(str, Enum):
    """Which fairness definition is enforced."""

    STATISTICAL_PARITY = "SP"
    BOUNDED_GROUP_LOSS = "BGL"


class FairnessScope(str, Enum):
    """Whether the constraint binds the whole ruleset or every single rule."""

    GROUP = "group"
    INDIVIDUAL = "individual"


@dataclass(frozen=True)
class FairnessConstraint:
    """A fairness constraint with its kind, scope, and threshold.

    Attributes
    ----------
    kind:
        SP or BGL.
    scope:
        group (ruleset-level) or individual (per-rule).
    threshold:
        ``epsilon`` for SP (maximum allowed gap, must be >= 0) or ``tau``
        for BGL (minimum protected utility, any sign).
    """

    kind: FairnessKind
    scope: FairnessScope
    threshold: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", FairnessKind(self.kind))
        object.__setattr__(self, "scope", FairnessScope(self.scope))
        if self.kind is FairnessKind.STATISTICAL_PARITY and self.threshold < 0:
            raise ConfigError("SP threshold (epsilon) must be non-negative")

    # -- rule-level check (individual scope; also used by Step 2 filtering) ----

    def satisfied_by_rule(self, rule: PrescriptionRule) -> bool:
        """Whether a single rule meets the per-rule version of the constraint."""
        if self.kind is FairnessKind.STATISTICAL_PARITY:
            return abs(rule.utility_protected - rule.utility_non_protected) <= (
                self.threshold
            )
        return rule.utility_protected >= self.threshold

    def rule_violation(self, rule: PrescriptionRule) -> float:
        """Non-negative violation magnitude of the per-rule constraint."""
        if self.kind is FairnessKind.STATISTICAL_PARITY:
            gap = abs(rule.utility_protected - rule.utility_non_protected)
            return max(0.0, gap - self.threshold)
        return max(0.0, self.threshold - rule.utility_protected)

    # -- ruleset-level check ----------------------------------------------------

    def satisfied_by_metrics(self, metrics: RulesetMetrics) -> bool:
        """Whether ruleset-level metrics meet the group version."""
        if self.kind is FairnessKind.STATISTICAL_PARITY:
            return abs(metrics.unfairness) <= self.threshold
        return metrics.expected_utility_protected >= self.threshold

    def metrics_violation(self, metrics: RulesetMetrics) -> float:
        """Non-negative violation magnitude at the ruleset level."""
        if self.kind is FairnessKind.STATISTICAL_PARITY:
            return max(0.0, abs(metrics.unfairness) - self.threshold)
        return max(0.0, self.threshold - metrics.expected_utility_protected)

    def satisfied(
        self,
        metrics: RulesetMetrics,
        rules: Iterable[PrescriptionRule],
    ) -> bool:
        """Dispatch on scope: group -> metrics check, individual -> every rule."""
        if self.scope is FairnessScope.GROUP:
            return self.satisfied_by_metrics(metrics)
        return all(self.satisfied_by_rule(rule) for rule in rules)

    @property
    def is_matroid(self) -> bool:
        """Individual-scope constraints are matroid constraints (Prop. 9.2)."""
        return self.scope is FairnessScope.INDIVIDUAL

    def describe(self) -> str:
        """Short label used in experiment tables."""
        scope = "Group" if self.scope is FairnessScope.GROUP else "Individual"
        return f"{scope} {self.kind.value} (threshold={self.threshold:g})"


def statistical_parity(scope: str | FairnessScope, epsilon: float) -> FairnessConstraint:
    """Convenience constructor for an SP constraint."""
    return FairnessConstraint(
        FairnessKind.STATISTICAL_PARITY, FairnessScope(scope), epsilon
    )


def bounded_group_loss(scope: str | FairnessScope, tau: float) -> FairnessConstraint:
    """Convenience constructor for a BGL constraint."""
    return FairnessConstraint(
        FairnessKind.BOUNDED_GROUP_LOSS, FairnessScope(scope), tau
    )
