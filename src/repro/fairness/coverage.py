"""Coverage constraints for prescription rulesets (Sec. 4.5).

**Group coverage**: the ruleset as a whole must cover at least a ``theta``
fraction of the population and a ``theta_protected`` fraction of the
protected group.

**Rule coverage**: *every selected rule* must individually cover those
fractions.  Rule coverage is a per-rule predicate, hence a matroid
constraint (Prop. 9.2), and FairCap enforces it by filtering candidates
up front; group coverage is enforced by the greedy selector (Sec. 5.3),
which prioritises coverage gain until the constraint is met.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.rules.rule import PrescriptionRule
from repro.rules.ruleset import RulesetMetrics
from repro.utils.errors import ConfigError


class CoverageKind(str, Enum):
    """Whether coverage binds the whole ruleset or every single rule."""

    GROUP = "group"
    RULE = "rule"


@dataclass(frozen=True)
class CoverageConstraint:
    """A coverage constraint with its kind and thresholds.

    Attributes
    ----------
    kind:
        group (ruleset-level union coverage) or rule (per-rule coverage).
    theta:
        Minimum covered fraction of the whole population, in [0, 1].
    theta_protected:
        Minimum covered fraction of the protected group, in [0, 1].
    """

    kind: CoverageKind
    theta: float
    theta_protected: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", CoverageKind(self.kind))
        for name, value in (("theta", self.theta),
                            ("theta_protected", self.theta_protected)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")

    # -- rule-level check ---------------------------------------------------------

    def satisfied_by_rule(
        self, rule: PrescriptionRule, n_rows: int, n_protected: int
    ) -> bool:
        """Per-rule check used for the RULE kind (and candidate filtering)."""
        if n_rows == 0:
            return False
        covered_fraction = rule.coverage_count / n_rows
        if covered_fraction < self.theta:
            return False
        if n_protected == 0:
            return self.theta_protected == 0.0
        protected_fraction = rule.protected_coverage_count / n_protected
        return protected_fraction >= self.theta_protected

    # -- ruleset-level check --------------------------------------------------------

    def satisfied_by_metrics(self, metrics: RulesetMetrics) -> bool:
        """Union-coverage check used for the GROUP kind."""
        return (
            metrics.coverage >= self.theta
            and metrics.protected_coverage >= self.theta_protected
        )

    def satisfied(
        self,
        metrics: RulesetMetrics,
        rules: Iterable[PrescriptionRule],
        n_rows: int,
        n_protected: int,
    ) -> bool:
        """Dispatch on kind."""
        if self.kind is CoverageKind.GROUP:
            return self.satisfied_by_metrics(metrics)
        return all(
            self.satisfied_by_rule(rule, n_rows, n_protected) for rule in rules
        )

    @property
    def is_matroid(self) -> bool:
        """Rule coverage is a matroid constraint (Prop. 9.2)."""
        return self.kind is CoverageKind.RULE

    def describe(self) -> str:
        """Short label used in experiment tables."""
        kind = "Group" if self.kind is CoverageKind.GROUP else "Rule"
        return (
            f"{kind} coverage (theta={self.theta:g}, "
            f"theta_p={self.theta_protected:g})"
        )


def group_coverage(theta: float, theta_protected: float | None = None) -> CoverageConstraint:
    """Convenience constructor for a group-coverage constraint."""
    if theta_protected is None:
        theta_protected = theta
    return CoverageConstraint(CoverageKind.GROUP, theta, theta_protected)


def rule_coverage(theta: float, theta_protected: float | None = None) -> CoverageConstraint:
    """Convenience constructor for a rule-coverage constraint."""
    if theta_protected is None:
        theta_protected = theta
    return CoverageConstraint(CoverageKind.RULE, theta, theta_protected)
