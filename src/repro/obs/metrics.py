"""Thread-safe counter / gauge / histogram registry with Prometheus output.

One :class:`MetricsRegistry` holds every metric of a telemetry session.
Metrics are addressed by ``(name, labels)``; callers never hold metric
objects, they call :meth:`MetricsRegistry.inc` / :meth:`set_gauge` /
:meth:`observe` directly, which is what lets process-pool workers run the
same instrumentation sites against their own registry and ship a
:meth:`drain` snapshot back for :meth:`merge` (counters and histograms add,
gauges last-write-wins).

Counters carry a ``deterministic`` flag: the mining-pipeline counts
(candidates, pruned, kept, rules) are derived from the lattice traversal,
which the :mod:`repro.parallel` contract guarantees is identical across
executors, worker counts and chunkings — so their merged totals are *exact*
and the differential suite compares them bit-for-bit.  Engine counters
(cache hits, factorization routes, scalar fallbacks) legitimately depend on
cache state and chunking and are excluded from
``snapshot(deterministic_only=True)``.

:class:`NullRegistry` is the zero-overhead stand-in installed when
telemetry is off; every method is a no-op.
"""

from __future__ import annotations

import threading
from typing import Iterable, Mapping

#: Default histogram bounds (seconds), tuned for request latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


def _label_key(labels: Mapping[str, object]) -> str:
    """Canonical, JSON-ready key for one label combination."""
    if not labels:
        return ""
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def _parse_label_key(key: str) -> list[tuple[str, str]]:
    if not key:
        return []
    return [tuple(part.split("=", 1)) for part in key.split(",")]


class MetricsRegistry:
    """All counters, gauges and histograms of one telemetry session."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # name -> {"deterministic": bool, "values": {label_key: float}}
        self._counters: dict[str, dict] = {}
        self._gauges: dict[str, dict[str, float]] = {}
        # name -> {"bounds": tuple, "values": {label_key: {...}}}
        self._histograms: dict[str, dict] = {}

    # -- writes ----------------------------------------------------------------

    def inc(
        self,
        name: str,
        amount: float = 1.0,
        *,
        deterministic: bool = False,
        **labels: object,
    ) -> None:
        """Add ``amount`` to counter ``name`` for this label combination.

        ``deterministic`` marks the counter (not the increment) as part of
        the executor-invariant family; the flag sticks at first touch.
        """
        self.inc_key(name, _label_key(labels), amount, deterministic=deterministic)

    def inc_key(
        self,
        name: str,
        key: str = "",
        amount: float = 1.0,
        *,
        deterministic: bool = False,
    ) -> None:
        """:meth:`inc` with a precomputed label key (``"k=v,k2=v2"``, sorted).

        The hot-site spelling: per-event call sites with a fixed label set
        (factorization routes, cache outcomes) precompute their keys once
        and skip the per-call sort/format of :func:`_label_key`.
        """
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = {"deterministic": deterministic, "values": {}}
                self._counters[name] = counter
            values = counter["values"]
            values[key] = values.get(key, 0.0) + amount

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        key = _label_key(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(
        self,
        name: str,
        value: float,
        *,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> None:
        """Record one observation into histogram ``name``.

        ``buckets`` (upper bounds, ascending) are fixed at the histogram's
        first observation; later calls reuse them.
        """
        key = _label_key(labels)
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = {"bounds": tuple(buckets), "values": {}}
                self._histograms[name] = histogram
            bounds = histogram["bounds"]
            cell = histogram["values"].get(key)
            if cell is None:
                cell = {"buckets": [0] * len(bounds), "sum": 0.0, "count": 0}
                histogram["values"][key] = cell
            for i, bound in enumerate(bounds):
                if value <= bound:
                    cell["buckets"][i] += 1
            cell["sum"] += float(value)
            cell["count"] += 1

    # -- reads -----------------------------------------------------------------

    def snapshot(self, deterministic_only: bool = False) -> dict:
        """JSON-ready copy of every metric.

        With ``deterministic_only`` the snapshot keeps only the counters
        flagged deterministic (gauges and histograms — wall-clock by nature
        — are dropped entirely): the executor-differential obligation
        compares exactly this view.
        """
        with self._lock:
            counters = {
                name: {
                    "deterministic": counter["deterministic"],
                    "values": dict(counter["values"]),
                }
                for name, counter in self._counters.items()
                if counter["deterministic"] or not deterministic_only
            }
            if deterministic_only:
                return {"counters": counters, "gauges": {}, "histograms": {}}
            gauges = {name: dict(values) for name, values in self._gauges.items()}
            histograms = {
                name: {
                    "bounds": list(histogram["bounds"]),
                    "values": {
                        key: {
                            "buckets": list(cell["buckets"]),
                            "sum": cell["sum"],
                            "count": cell["count"],
                        }
                        for key, cell in histogram["values"].items()
                    },
                }
                for name, histogram in self._histograms.items()
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def counter_total(self, name: str) -> float:
        """Sum of counter ``name`` across all label combinations (0 if absent)."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                return 0.0
            return float(sum(counter["values"].values()))

    def counter_value(self, name: str, **labels: object) -> float:
        """Value of counter ``name`` for one label combination (0 if absent)."""
        key = _label_key(labels)
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                return 0.0
            return float(counter["values"].get(key, 0.0))

    # -- worker plumbing -------------------------------------------------------

    def drain(self) -> dict:
        """Snapshot every metric and reset the registry (worker-side).

        Process workers drain after each chunk so increments travel back
        exactly once; merging every drained snapshot reproduces the counts
        a single-process run would have accumulated.
        """
        snapshot = self.snapshot()
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return snapshot

    def merge(self, snapshot: Mapping) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` payload into this registry.

        Counters and histograms add; gauges take the snapshot's value.
        """
        if not snapshot:
            return
        with self._lock:
            for name, counter in snapshot.get("counters", {}).items():
                mine = self._counters.get(name)
                if mine is None:
                    mine = {"deterministic": counter["deterministic"], "values": {}}
                    self._counters[name] = mine
                values = mine["values"]
                for key, value in counter["values"].items():
                    values[key] = values.get(key, 0.0) + value
            for name, gauge_values in snapshot.get("gauges", {}).items():
                self._gauges.setdefault(name, {}).update(gauge_values)
            for name, histogram in snapshot.get("histograms", {}).items():
                mine = self._histograms.get(name)
                if mine is None:
                    mine = {"bounds": tuple(histogram["bounds"]), "values": {}}
                    self._histograms[name] = mine
                for key, cell in histogram["values"].items():
                    target = mine["values"].get(key)
                    if target is None:
                        target = {
                            "buckets": [0] * len(mine["bounds"]),
                            "sum": 0.0,
                            "count": 0,
                        }
                        mine["values"][key] = target
                    for i, count in enumerate(cell["buckets"]):
                        target["buckets"][i] += count
                    target["sum"] += cell["sum"]
                    target["count"] += cell["count"]


class NullRegistry(MetricsRegistry):
    """No-op registry behind disabled telemetry (every write is discarded)."""

    def inc(self, name, amount=1.0, *, deterministic=False, **labels) -> None:
        return None

    def inc_key(self, name, key="", amount=1.0, *, deterministic=False) -> None:
        return None

    def set_gauge(self, name, value, **labels) -> None:
        return None

    def observe(self, name, value, *, buckets=DEFAULT_BUCKETS, **labels) -> None:
        return None

    def merge(self, snapshot) -> None:
        return None


# -- Prometheus text exposition ------------------------------------------------


def _prom_name(name: str) -> str:
    """Metric name mapped into the Prometheus grammar (dots/dashes -> _)."""
    return name.replace(".", "_").replace("-", "_")


def _prom_labels(pairs: Iterable[tuple[str, str]]) -> str:
    rendered = ",".join(f'{_prom_name(k)}="{v}"' for k, v in pairs)
    return f"{{{rendered}}}" if rendered else ""


def _format_value(value: float) -> str:
    return repr(int(value)) if float(value).is_integer() else repr(value)


def render_prometheus(
    snapshot: Mapping, help_texts: Mapping[str, str] | None = None
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as Prometheus text format.

    Counters gain the conventional ``_total`` suffix; histograms expose
    cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
    """
    help_texts = help_texts or {}
    lines: list[str] = []

    def emit_header(raw_name: str, prom: str, kind: str) -> None:
        text = help_texts.get(raw_name)
        if text:
            lines.append(f"# HELP {prom} {text}")
        lines.append(f"# TYPE {prom} {kind}")

    for name in sorted(snapshot.get("counters", {})):
        counter = snapshot["counters"][name]
        prom = _prom_name(name) + "_total"
        emit_header(name, prom, "counter")
        for key in sorted(counter["values"]):
            labels = _prom_labels(_parse_label_key(key))
            lines.append(f"{prom}{labels} {_format_value(counter['values'][key])}")

    for name in sorted(snapshot.get("gauges", {})):
        values = snapshot["gauges"][name]
        prom = _prom_name(name)
        emit_header(name, prom, "gauge")
        for key in sorted(values):
            labels = _prom_labels(_parse_label_key(key))
            lines.append(f"{prom}{labels} {_format_value(values[key])}")

    for name in sorted(snapshot.get("histograms", {})):
        histogram = snapshot["histograms"][name]
        prom = _prom_name(name)
        emit_header(name, prom, "histogram")
        bounds = histogram["bounds"]
        for key in sorted(histogram["values"]):
            cell = histogram["values"][key]
            base = _parse_label_key(key)
            for bound, count in zip(bounds, cell["buckets"]):
                labels = _prom_labels(base + [("le", repr(float(bound)))])
                lines.append(f"{prom}_bucket{labels} {count}")
            labels = _prom_labels(base + [("le", "+Inf")])
            lines.append(f"{prom}_bucket{labels} {cell['count']}")
            suffix = _prom_labels(base)
            lines.append(f"{prom}_sum{suffix} {repr(float(cell['sum']))}")
            lines.append(f"{prom}_count{suffix} {cell['count']}")

    return "\n".join(lines) + "\n"
