"""The ambient telemetry bundle: registry + tracer behind one global.

Instrumentation sites all over the engine read :func:`current` and guard on
``.enabled`` — when telemetry is off (the default) that is one module
global read and an attribute check, which is the "near-zero overhead"
contract of :mod:`repro.obs`.  :func:`telemetry_session` installs a fresh
live bundle for the duration of a run (restoring the previous one on exit);
:func:`install` sets one permanently, which is what process-pool workers do
in their initializer (their bundle is drained per chunk, never uninstalled).

The global is process-wide, not thread-local, by design: thread-pool
workers must write into the same registry as the caller (their increments
are part of the run), and the registry/tracer lock internally.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.metrics import MetricsRegistry, NullRegistry
from repro.obs.trace import NullTracer, Tracer


class Telemetry:
    """One session's registry + tracer, plus the enabled flag hot paths read."""

    __slots__ = ("enabled", "registry", "tracer")

    def __init__(
        self,
        enabled: bool = True,
        registry: MetricsRegistry | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.enabled = enabled
        if enabled:
            self.registry = registry if registry is not None else MetricsRegistry()
            self.tracer = tracer if tracer is not None else Tracer()
        else:
            self.registry = registry if registry is not None else NullRegistry()
            self.tracer = tracer if tracer is not None else NullTracer()

    def drain(self) -> dict:
        """Registry snapshot + serialised span trees, resetting both.

        The per-chunk payload process workers ship back to the caller
        (see :mod:`repro.parallel.mining`).
        """
        return {
            "metrics": self.registry.drain(),
            "spans": self.tracer.drain(),
        }

    def absorb(self, payload: dict | None) -> None:
        """Merge a worker's :meth:`drain` payload into this session."""
        if not payload:
            return
        self.registry.merge(payload.get("metrics", {}))
        self.tracer.attach(payload.get("spans", ()))


#: The process-wide default: telemetry off, every operation a no-op.
NULL_TELEMETRY = Telemetry(enabled=False)

_current: Telemetry = NULL_TELEMETRY


def current() -> Telemetry:
    """The active telemetry bundle (:data:`NULL_TELEMETRY` by default)."""
    return _current


def install(telemetry: Telemetry) -> Telemetry:
    """Install ``telemetry`` as the ambient bundle; returns the previous one."""
    global _current
    previous = _current
    _current = telemetry
    return previous


@contextmanager
def telemetry_session(enabled: bool = True) -> Iterator[Telemetry]:
    """Install a fresh bundle for the enclosed block, restoring on exit.

    With ``enabled=False`` this yields :data:`NULL_TELEMETRY` without
    creating anything — a disabled FairCap run pays nothing.
    """
    if not enabled:
        previous = install(NULL_TELEMETRY)
        try:
            yield NULL_TELEMETRY
        finally:
            install(previous)
        return
    telemetry = Telemetry(enabled=True)
    previous = install(telemetry)
    try:
        yield telemetry
    finally:
        install(previous)
