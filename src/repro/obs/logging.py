"""JSON-lines structured logging for the serving tier.

One :class:`StructuredLogger` per server: every event is a single JSON
object on one line (machine-parseable, greppable), carrying the event name,
a wall-clock timestamp, and whatever fields the call site supplies — for
HTTP access logs that includes the ``request_id`` echoed in the response,
which is the correlation handle between a log line and the ``/prescribe``
payload a client saw.

The logger honours the server's ``quiet`` flag through ``enabled`` (a
disabled logger discards everything before serialising), and serialisation
never raises: non-JSON values are stringified via ``default=str``.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import uuid
from typing import IO


def new_request_id() -> str:
    """A short, unique request correlation id (12 hex chars)."""
    return uuid.uuid4().hex[:12]


class StructuredLogger:
    """Writes one JSON object per line to a stream (stderr by default)."""

    def __init__(
        self,
        stream: IO[str] | None = None,
        enabled: bool = True,
        component: str = "",
    ) -> None:
        self._stream = stream
        self.enabled = enabled
        self.component = component
        self._lock = threading.Lock()

    def log(self, event: str, **fields: object) -> None:
        """Emit one structured event (no-op when disabled)."""
        if not self.enabled:
            return
        record: dict = {"ts": round(time.time(), 6), "event": event}
        if self.component:
            record["component"] = self.component
        record.update(fields)
        line = json.dumps(record, default=str)
        stream = self._stream if self._stream is not None else sys.stderr
        with self._lock:
            stream.write(line + "\n")
            try:
                stream.flush()
            except OSError:  # pragma: no cover - closed stream on shutdown
                pass
