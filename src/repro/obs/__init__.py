"""Runtime telemetry: counters, spans, run reports, Prometheus exposition.

The observability layer is deliberately self-contained — it imports nothing
from the rest of :mod:`repro`, so every engine module can instrument itself
without creating cycles.  Three pieces:

- :mod:`repro.obs.metrics` — a thread-safe counter / gauge / histogram
  registry with Prometheus text rendering and snapshot/merge support for
  process-pool workers.  Counters carry a ``deterministic`` flag separating
  the mining-pipeline counts that are exact across executors from the
  engine counters (cache hits, factorization routes) that legitimately
  depend on chunking.
- :mod:`repro.obs.trace` — a hierarchical span tracer with thread-local
  span stacks and ``attach()`` for grafting worker span trees into the
  caller's tree.
- :mod:`repro.obs.runtime` — the ambient :class:`Telemetry` bundle.
  :func:`current` returns the active bundle; the default is
  :data:`NULL_TELEMETRY`, whose registry and tracer are no-ops, so
  instrumentation sites guard on ``current().enabled`` and cost one global
  read plus an attribute check when telemetry is off.

:mod:`repro.obs.report` turns a bundle into the run-report JSON the CLI's
``--trace-json`` emits, and :mod:`repro.obs.logging` provides the
JSON-lines structured logger the serving tier uses.
"""

from repro.obs.logging import StructuredLogger, new_request_id
from repro.obs.metrics import MetricsRegistry, NullRegistry, render_prometheus
from repro.obs.report import REPORT_VERSION, build_report, write_report
from repro.obs.runtime import (
    NULL_TELEMETRY,
    Telemetry,
    current,
    telemetry_session,
)
from repro.obs.trace import NullTracer, Span, Tracer

__all__ = [
    "MetricsRegistry",
    "NullRegistry",
    "render_prometheus",
    "Tracer",
    "NullTracer",
    "Span",
    "Telemetry",
    "NULL_TELEMETRY",
    "current",
    "telemetry_session",
    "REPORT_VERSION",
    "build_report",
    "write_report",
    "StructuredLogger",
    "new_request_id",
]
