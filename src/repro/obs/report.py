"""Run reports: one JSON document per instrumented run.

A run report is the serialised form of a telemetry session — counter /
gauge / histogram snapshots, the span tree, and a handful of derived
headline rates (cache hit-rate, popcount prune-rate) that the benchmark
trend gate tracks against committed baselines.  The schema is documented in
``benchmarks/README.md``; bump :data:`REPORT_VERSION` on breaking changes.
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.obs.runtime import Telemetry

REPORT_VERSION = 1


def _counter_total(counters: Mapping, name: str) -> float:
    counter = counters.get(name)
    if not counter:
        return 0.0
    return float(sum(counter["values"].values()))


def _labeled_total(counters: Mapping, name: str, **labels: object) -> float:
    counter = counters.get(name)
    if not counter:
        return 0.0
    want = {f"{k}={v}" for k, v in labels.items()}
    total = 0.0
    for key, value in counter["values"].items():
        parts = set(key.split(",")) if key else set()
        if want <= parts:
            total += value
    return float(total)


def derived_stats(counters: Mapping) -> dict:
    """Headline rates computed from a counters snapshot.

    - ``cache_hit_rate``: cache lookups answered without recomputing,
      across every tier.  (Within one cold run the estimation tier is all
      misses by construction — a level batch is only ever estimated once —
      so a per-run rate restricted to that tier would be structurally zero;
      the factorization tier repeats within a run and carries the signal.)
    - ``prune_rate``: lattice candidates rejected by popcount support
      pruning before any estimation;
    - ``scalar_fallback_rate``: estimated columns routed through the scalar
      OLS fallback instead of the batched FWL identities.
    """
    hits = _labeled_total(counters, "cache.lookups", outcome="hit")
    misses = _labeled_total(counters, "cache.lookups", outcome="miss")
    lookups = hits + misses
    candidates = _counter_total(counters, "mining.candidates")
    pruned = _counter_total(counters, "mining.pruned")
    estimated = _counter_total(counters, "mining.estimated_columns")
    fallbacks = _counter_total(counters, "estimation.scalar_fallbacks")
    return {
        "cache_hit_rate": hits / lookups if lookups else 0.0,
        "prune_rate": pruned / candidates if candidates else 0.0,
        "scalar_fallback_rate": fallbacks / estimated if estimated else 0.0,
    }


def build_report(telemetry: Telemetry, meta: dict | None = None) -> dict:
    """Assemble the run-report document for one telemetry session."""
    snapshot = telemetry.registry.snapshot()
    report = {
        "version": REPORT_VERSION,
        "meta": dict(meta) if meta else {},
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "derived": derived_stats(snapshot["counters"]),
        "spans": telemetry.tracer.to_dicts(),
    }
    return report


def write_report(path: str, report: Mapping) -> None:
    """Write a run report as pretty-printed JSON (trailing newline included)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
