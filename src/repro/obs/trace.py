"""Hierarchical span tracer with thread-local stacks and worker grafting.

A :class:`Span` is one timed region with free-form attributes and child
spans; a :class:`Tracer` maintains a per-thread stack so ``span()`` nests
naturally, plus a shared root list for spans opened with an empty stack
(e.g. thread-pool workers).  Finished trees serialise to plain dicts —
picklable, JSON-ready — and :meth:`Tracer.attach` grafts such dicts under
the current span, which is how process-pool workers' trees end up inside
the caller's ``treatment_mining`` span (one coherent tree per run).

Numerics are never touched: spans only read ``time.perf_counter``.
:class:`NullTracer` is the disabled stand-in; its ``span()`` returns a
shared no-op context manager, so a tracing site costs two method calls
when telemetry is off.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Sequence


class Span:
    """One timed region of a run: name, attributes, children, duration."""

    __slots__ = ("name", "attrs", "children", "start", "duration")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = attrs if attrs is not None else {}
        self.children: list = []  # Span or already-serialised dicts
        self.start = 0.0
        self.duration: float | None = None

    def to_dict(self) -> dict:
        """JSON-ready tree rooted at this span."""
        return {
            "name": self.name,
            "duration_seconds": self.duration,
            "attrs": dict(self.attrs),
            "children": [
                child.to_dict() if isinstance(child, Span) else child
                for child in self.children
            ],
        }

    def __repr__(self) -> str:
        timing = f"{self.duration:.4f}s" if self.duration is not None else "open"
        return f"Span({self.name!r}, {timing}, children={len(self.children)})"


class _SpanContext:
    """Context manager entering/leaving one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.duration = time.perf_counter() - self._span.start
        self._tracer._pop(self._span)


class Tracer:
    """Builds span trees; one instance per telemetry session."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        if stack:
            parent = stack[-1]
            with self._lock:
                parent.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """Open a child span of the current thread's innermost span."""
        return _SpanContext(self, Span(name, attrs or None))

    def attach(self, trees: Sequence[dict]) -> None:
        """Graft already-serialised span trees under the current span.

        The process-pool merge path: a worker drains its tracer to dicts,
        ships them with its chunk results, and the caller attaches them
        here — inside whatever span the merge loop is running under.
        Trees attach to the root list when no span is open.
        """
        if not trees:
            return
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.extend(trees)
            else:
                self._roots.extend(trees)  # type: ignore[arg-type]

    def to_dicts(self) -> list[dict]:
        """JSON-ready copies of every root span tree."""
        with self._lock:
            roots = list(self._roots)
        return [
            root.to_dict() if isinstance(root, Span) else root for root in roots
        ]

    def drain(self) -> list[dict]:
        """Serialise and forget every finished root tree (worker-side)."""
        with self._lock:
            roots = list(self._roots)
            self._roots.clear()
        return [
            root.to_dict() if isinstance(root, Span) else root for root in roots
        ]


class _NullSpanContext:
    """Shared no-op context manager behind :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info: object) -> None:
        return None


_NULL_SPAN = _NullSpanContext()


class NullTracer(Tracer):
    """Tracer that records nothing (disabled telemetry)."""

    def __init__(self) -> None:  # skip the lock/thread-local setup
        pass

    def span(self, name: str, **attrs: object) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_SPAN

    def attach(self, trees: Sequence[dict]) -> None:
        return None

    def to_dicts(self) -> list[dict]:
        return []

    def drain(self) -> list[dict]:
        return []


def iter_spans(trees: Sequence[dict]) -> Iterator[dict]:
    """Depth-first iterator over serialised span trees (test/report helper)."""
    stack = list(trees)
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.get("children", ()))
