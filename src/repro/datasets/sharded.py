"""Out-of-core tables: fixed shard boundaries over columnar chunk files.

:class:`ShardedTable` is the engine-facing handle of the sharded data layer
(:mod:`repro.datasets.shardstore` owns the on-disk format).  It duck-types
the slice of the :class:`~repro.tabular.table.Table` API the *root-table*
code paths touch — ``n_rows`` / ``schema`` / ``column_names`` /
``fingerprint`` / ``mask_cache`` / ``filter`` / ``column`` — while keeping
peak memory bounded by **O(shard + sufficient statistics)**: at most a
couple of shard-sized chunks are resident at a time, plus packed bitset
words (``n/8`` bytes per cached predicate) and the merged design-block
statistics of :mod:`repro.causal.batch`.

Bit-identity contract
---------------------
Sharded mining must be bit-for-bit the in-RAM engine (differential suite:
``tests/mining/test_shard_differential.py``).  Two mechanisms carry that:

- **Exact integer merges.**  Packed predicate words are built per shard
  and concatenated (:class:`~repro.mining.bitsets.PackedMaskBuilder` — bit
  moves, never arithmetic), so pattern masks, popcount supports, and
  one-hot cross products merge exactly; Apriori over packed words counts
  the same supports the boolean reference sums.
- **Arithmetic-free row gather.**  :meth:`filter` materialises a grouping
  context's sub-table by gathering rows shard by shard and concatenating
  the pieces — ``concat(codes_s[mask_s]) == codes[mask]`` element for
  element, and the category dictionaries are the global ones — so the
  sub-table is *content-identical* to what ``Table.filter`` yields, and
  every downstream estimation path (Gram fast path, QR fallback, Gram
  subtraction, caches, checkpoints) runs the same code on the same bytes.

Float sufficient statistics (shard-merged Gram pairs / column sums /
outcome products, dispatched in :mod:`repro.causal.batch`) accumulate in
fixed shard order: integer-valued entries (one-hot cross counts) merge
exactly; continuous entries are deterministic for a given shard layout —
the same contract PR 5's frontier established for batch composition.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.datasets import shardstore
from repro.mining.bitsets import PackedMaskBuilder, pack_mask, unpack_mask
from repro.tabular.column import CategoricalColumn, NumericColumn
from repro.tabular.schema import AttributeKind, AttributeSpec, Schema
from repro.tabular.table import Table, _canonical_category, _MaskCache
from repro.utils.errors import SchemaError

#: Shard Tables kept hot per ShardedTable.  The mining loops sweep the
#: shards in order once per context gather, so the window must cover a few
#: full sweeps of a small store to capture cross-gather reuse (a 2-entry
#: cache thrashes 100% on any store wider than 2 shards); 8 keeps resident
#: data O(8 × shard_rows) — a few MB at the 4096-row default — which the
#: memory-cap regression test still separates cleanly at 1M rows.
SHARD_CACHE_TABLES = 8

#: Bound on cached packed predicate words (n/8 bytes each).
PREDICATE_WORDS_MAX = 4096


class ShardedTable:
    """A row-partitioned table backed by on-disk columnar shards.

    Instances are handles: opening reads only the manifest, and shard
    files are loaded lazily (and evicted LRU) as the engine touches them.
    Pickling ships the directory path — process-pool workers reopen the
    manifest instead of receiving row data
    (:mod:`repro.parallel.mining`).
    """

    #: Dispatch marker for :meth:`Predicate.mask` / :meth:`Pattern.mask`
    #: and the sharded branches of apriori / batch / shm.
    is_sharded = True

    def __init__(self, directory: str, manifest: dict) -> None:
        self.directory = str(directory)
        self.format = manifest["format"]
        self._shard_files: list[str] = list(manifest["shards"])
        self._lengths: tuple[int, ...] = tuple(
            int(length) for length in manifest["shard_lengths"]
        )
        self._offsets = np.concatenate(
            [[0], np.cumsum(self._lengths, dtype=np.int64)]
        )
        self._n_rows = int(manifest["n_rows"])
        self.shard_rows = int(manifest["shard_rows"])
        self._categories: dict[str, tuple] = {
            name: tuple(values)
            for name, values in manifest.get("categories", {}).items()
        }
        self.schema = Schema(
            AttributeSpec(name, kind, role)
            for name, kind, role in manifest["schema"]
        )
        self._stored_fingerprint: str | None = manifest.get("fingerprint")
        self._shard_cache: OrderedDict[int, Table] = OrderedDict()
        self._predicate_words: OrderedDict[object, np.ndarray] = OrderedDict()

    # -- construction ----------------------------------------------------------

    @classmethod
    def open(cls, directory: str) -> "ShardedTable":
        """Open an existing shard directory (reads only the manifest)."""
        return cls(directory, shardstore.read_manifest(directory))

    @classmethod
    def write(
        cls,
        table: Table,
        directory: str,
        shard_rows: int,
        fmt: str | None = None,
        reuse: bool = False,
    ) -> "ShardedTable":
        """Spill an in-RAM table into ``directory`` and open the result.

        With ``reuse`` set, an existing directory whose manifest matches
        this table's fingerprint and ``shard_rows`` is opened as-is — the
        cross-run warm path for ``FairCapConfig.shard_dir``.
        """
        if reuse and os.path.isfile(os.path.join(directory, shardstore.MANIFEST_NAME)):
            try:
                existing = cls.open(directory)
            except SchemaError:
                existing = None
            if (
                existing is not None
                and existing.shard_rows == int(shard_rows)
                and existing._stored_fingerprint == table.fingerprint()
            ):
                return existing
        writer = ShardedTableWriter(directory, table.schema, shard_rows, fmt=fmt)
        writer.append_table(table)
        return writer.close(fingerprint=table.fingerprint())

    def __reduce__(self):
        return (ShardedTable.open, (self.directory,))

    # -- basic properties ------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows across all shards."""
        return self._n_rows

    def __len__(self) -> int:
        return self._n_rows

    @property
    def column_names(self) -> tuple[str, ...]:
        """Column names in schema order."""
        return self.schema.names

    @property
    def n_shards(self) -> int:
        """Number of shards."""
        return len(self._shard_files)

    @property
    def shard_lengths(self) -> tuple[int, ...]:
        """Row count of each shard, in row order."""
        return self._lengths

    @property
    def shard_offsets(self) -> np.ndarray:
        """Row offsets: shard ``i`` covers ``[offsets[i], offsets[i+1])``."""
        return self._offsets

    def categories(self, name: str) -> tuple:
        """Global category dictionary of a categorical column."""
        spec = self.schema.spec(name)
        if spec.kind is not AttributeKind.CATEGORICAL:
            raise SchemaError(f"column {name!r} is not categorical")
        return self._categories[name]

    # -- shard access ----------------------------------------------------------

    def shard(self, index: int) -> Table:
        """Shard ``index`` as an in-RAM :class:`Table` (LRU-cached).

        Shard tables carry the *global* category dictionaries and the full
        schema, so per-shard predicate evaluation and design-block
        encoding agree column-for-column with the whole table's.
        """
        cached = self._shard_cache.get(index)
        if cached is not None:
            self._shard_cache.move_to_end(index)
            return cached
        raw = shardstore.read_shard(
            self.directory, self._shard_files[index], self.format
        )
        columns: dict[str, object] = {}
        for spec in self.schema:
            key = shardstore.member_key(
                spec.name, spec.kind is AttributeKind.CATEGORICAL
            )
            array = raw[key]
            if spec.kind is AttributeKind.CATEGORICAL:
                columns[spec.name] = CategoricalColumn(
                    array, self._categories[spec.name]
                )
            else:
                columns[spec.name] = NumericColumn(array)
        table = Table(columns, schema=self.schema)
        self._shard_cache[index] = table
        while len(self._shard_cache) > SHARD_CACHE_TABLES:
            self._shard_cache.popitem(last=False)
        return table

    def iter_shards(self) -> Iterator[Table]:
        """Iterate the shards in row order."""
        for index in range(self.n_shards):
            yield self.shard(index)

    # -- whole-column access ---------------------------------------------------

    def column(self, name: str):
        """Materialise one full column (concatenated across shards).

        Used by item construction (value ranking, numeric quantiles) — one
        column at a time, O(n) for that column only, never the full table.
        """
        spec = self.schema.spec(name)
        categorical = spec.kind is AttributeKind.CATEGORICAL
        key = shardstore.member_key(name, categorical)
        parts = []
        for index, filename in enumerate(self._shard_files):
            # Serve from an LRU-resident shard when one is hot (common:
            # item construction runs after the predicate-packing sweep has
            # warmed small stores) — a lazy member read costs a zip open +
            # header parse per shard otherwise.  A miss deliberately does
            # NOT populate the cache: one column stream must stay O(that
            # column), not pull the whole table through the LRU.
            cached = self._shard_cache.get(index)
            if cached is not None:
                hot = cached.column(name)
                parts.append(
                    hot.codes if categorical else hot.array
                )
                continue
            parts.append(
                shardstore.read_shard_member(
                    self.directory, filename, self.format, key
                )
            )
        data = (
            np.concatenate(parts)
            if parts
            else np.zeros(0, dtype=np.int32 if categorical else np.float64)
        )
        if categorical:
            return CategoricalColumn(data, self._categories[name])
        return NumericColumn(data)

    def values(self, name: str) -> np.ndarray:
        """Decoded values of column ``name`` (materialises that column)."""
        return self.column(name).decode()

    def value_counts(self, name: str) -> dict:
        """Merged per-shard value counts (exact integer sums)."""
        spec = self.schema.spec(name)
        if spec.kind is AttributeKind.CATEGORICAL:
            cats = self._categories[name]
            counts = np.zeros(len(cats), dtype=np.int64)
            key = shardstore.member_key(name, True)
            for filename in self._shard_files:
                codes = shardstore.read_shard_member(
                    self.directory, filename, self.format, key
                )
                counts += np.bincount(codes, minlength=len(cats))
            return {
                value: int(counts[i])
                for i, value in enumerate(cats)
                if counts[i] > 0
            }
        merged: dict[float, int] = {}
        key = shardstore.member_key(name, False)
        for filename in self._shard_files:
            array = shardstore.read_shard_member(
                self.directory, filename, self.format, key
            )
            values, counts = np.unique(array, return_counts=True)
            for value, count in zip(values, counts):
                value = float(value)
                merged[value] = merged.get(value, 0) + int(count)
        return dict(sorted(merged.items()))

    def unique(self, name: str) -> tuple:
        """Distinct values occurring in column ``name``."""
        return tuple(self.value_counts(name))

    # -- identity --------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash, streamed column-major across shards.

        Byte-for-byte the same blake2b stream
        :meth:`repro.tabular.table.Table.fingerprint` hashes — concatenated
        per-shard code/value bytes equal the whole column's bytes — so a
        sharded table and its materialisation share cache keys, checkpoint
        run keys, and shm manifests.  Computed once (write-time spills
        store it in the manifest; chunked writers hash on first demand).
        """
        fp = self._stored_fingerprint
        if fp is None:
            import hashlib

            h = hashlib.blake2b(digest_size=20)
            h.update(str(self._n_rows).encode())
            for spec in self.schema:
                h.update(spec.name.encode())
                categorical = spec.kind is AttributeKind.CATEGORICAL
                key = shardstore.member_key(spec.name, categorical)
                if categorical:
                    h.update(b"cat")
                    for category in self._categories[spec.name]:
                        h.update(_canonical_category(category).encode())
                        h.update(b"\x1f")
                else:
                    h.update(b"num")
                for filename in self._shard_files:
                    chunk = shardstore.read_shard_member(
                        self.directory, filename, self.format, key
                    )
                    if categorical:
                        chunk = np.ascontiguousarray(chunk, dtype=np.int32)
                    else:
                        chunk = np.ascontiguousarray(chunk, dtype=np.float64)
                    h.update(chunk.tobytes())
            fp = h.hexdigest()
            self._stored_fingerprint = fp
        return fp

    def mask_cache(self, max_entries: int = 1024) -> _MaskCache:
        """Per-table memo of hashable key -> coverage mask (Table parity)."""
        cache = self.__dict__.get("_mask_cache")
        if cache is None:
            cache = _MaskCache(max_entries)
            self.__dict__["_mask_cache"] = cache
        return cache

    # -- row selection ---------------------------------------------------------

    def filter(self, mask: np.ndarray) -> Table:
        """Materialise the rows where ``mask`` is True as an in-RAM Table.

        Pure per-shard gather + concatenation: the result is
        content-identical (same codes, same category dictionaries, same
        fingerprint) to ``materialised_table.filter(mask)`` — the property
        the shard-differential suite pins.
        """
        mask = np.asarray(mask)
        if mask.dtype != bool or mask.shape != (self._n_rows,):
            raise SchemaError(
                f"mask must be a boolean array of length {self._n_rows}"
            )
        parts: dict[str, list[np.ndarray]] = {
            name: [] for name in self.column_names
        }
        for index in range(self.n_shards):
            segment = mask[self._offsets[index] : self._offsets[index + 1]]
            if not segment.any():
                continue
            shard = self.shard(index)
            for spec in self.schema:
                column = shard.column(spec.name)
                data = (
                    column.codes
                    if isinstance(column, CategoricalColumn)
                    else column.array
                )
                parts[spec.name].append(data[segment])
        columns: dict[str, object] = {}
        for spec in self.schema:
            categorical = spec.kind is AttributeKind.CATEGORICAL
            if parts[spec.name]:
                data = np.concatenate(parts[spec.name])
            else:
                data = np.zeros(0, dtype=np.int32 if categorical else np.float64)
            if categorical:
                columns[spec.name] = CategoricalColumn(
                    data, self._categories[spec.name]
                )
            else:
                columns[spec.name] = NumericColumn(data)
        return Table(columns, schema=self.schema)

    # -- packed predicate/pattern masks ----------------------------------------

    def ensure_predicate_words(self, predicates: Iterable) -> None:
        """Build packed words for every missing predicate in one shard pass.

        All missing predicates are evaluated per shard and packed through
        :class:`PackedMaskBuilder` before moving to the next shard, so the
        pass reads each shard exactly once regardless of predicate count.
        """
        missing = []
        seen = set()
        for predicate in predicates:
            if predicate in seen or predicate in self._predicate_words:
                continue
            seen.add(predicate)
            missing.append(predicate)
        if not missing:
            return
        builders = {p: PackedMaskBuilder(self._n_rows) for p in missing}
        for shard in self.iter_shards():
            for predicate in missing:
                builders[predicate].append(predicate.mask(shard))
        for predicate in missing:
            self._seed_predicate_words(predicate, builders[predicate].words())

    def _seed_predicate_words(self, predicate, words: np.ndarray) -> None:
        """Insert packed words for ``predicate`` (LRU-bounded)."""
        self._predicate_words[predicate] = words
        self._predicate_words.move_to_end(predicate)
        while len(self._predicate_words) > PREDICATE_WORDS_MAX:
            self._predicate_words.popitem(last=False)

    def predicate_words(self, predicate) -> np.ndarray:
        """Packed whole-table words of one predicate (cached)."""
        words = self._predicate_words.get(predicate)
        if words is None:
            self.ensure_predicate_words([predicate])
            words = self._predicate_words[predicate]
        else:
            self._predicate_words.move_to_end(predicate)
        return words

    def pattern_words(self, pattern) -> np.ndarray:
        """Packed coverage words of a conjunctive pattern (AND of items)."""
        predicates = pattern.predicates
        if not predicates:
            words = self._predicate_words.get(None)
            if words is None:
                words = pack_mask(np.ones(self._n_rows, dtype=bool))
                self._seed_predicate_words(None, words)
            return words
        self.ensure_predicate_words(predicates)
        words = self.predicate_words(predicates[0])
        for predicate in predicates[1:]:
            words = words & self.predicate_words(predicate)
        return words

    def predicate_mask(self, predicate) -> np.ndarray:
        """Boolean whole-table mask of one predicate (unpacked words)."""
        return unpack_mask(self.predicate_words(predicate), self._n_rows)

    def pattern_mask(self, pattern) -> np.ndarray:
        """Boolean coverage mask of a pattern — the ``Pattern.mask`` target."""
        return unpack_mask(self.pattern_words(pattern), self._n_rows)

    def __repr__(self) -> str:
        return (
            f"ShardedTable({self._n_rows} rows x {len(self.schema)} columns, "
            f"{self.n_shards} shards @ {self.shard_rows})"
        )


class ShardedTableWriter:
    """Append-only writer producing fixed-boundary shards.

    Chunks of any size are appended (``append_table``); rows are re-cut
    into exactly ``shard_rows``-sized shards (last shard ragged) so the
    on-disk layout — and therefore every merged statistic's accumulation
    order — depends only on ``shard_rows``, never on how the producer
    chunked its writes.

    Category dictionaries grow append-only: a chunk introducing a new
    category value extends the global dictionary at the end, so codes
    written by earlier shards stay valid verbatim.  Spilling an existing
    table therefore preserves its category order exactly (single append).
    """

    def __init__(
        self,
        directory: str,
        schema: Schema,
        shard_rows: int,
        fmt: str | None = None,
    ) -> None:
        if int(shard_rows) < 1:
            raise SchemaError(f"shard_rows must be >= 1, got {shard_rows}")
        self.directory = str(directory)
        self.schema = schema
        self.shard_rows = int(shard_rows)
        self.format = shardstore.validate_format(fmt)
        os.makedirs(self.directory, exist_ok=True)
        self._remove_stale_shards()
        self._categories: dict[str, list] = {}
        self._cat_index: dict[str, dict] = {}
        for spec in schema:
            if spec.kind is AttributeKind.CATEGORICAL:
                self._categories[spec.name] = []
                self._cat_index[spec.name] = {}
        self._pending: dict[str, list[np.ndarray]] = {
            spec.name: [] for spec in schema
        }
        self._pending_rows = 0
        self._shard_files: list[str] = []
        self._shard_lengths: list[int] = []
        self._closed = False

    def _remove_stale_shards(self) -> None:
        """Drop leftovers of a previous (possibly partial) write."""
        for entry in os.listdir(self.directory):
            if entry.startswith("shard-") or entry == shardstore.MANIFEST_NAME:
                os.unlink(os.path.join(self.directory, entry))

    def _global_codes(self, name: str, column: CategoricalColumn) -> np.ndarray:
        """Re-code a chunk column into the growing global dictionary."""
        index = self._cat_index[name]
        categories = self._categories[name]
        translation = np.empty(len(column.categories), dtype=np.int32)
        for local_code, value in enumerate(column.categories):
            global_code = index.get(value)
            if global_code is None:
                global_code = len(categories)
                categories.append(value)
                index[value] = global_code
            translation[local_code] = global_code
        return translation[column.codes]

    def append_table(self, table: Table) -> None:
        """Append a chunk (schema names/kinds must match the writer's)."""
        if self._closed:
            raise SchemaError("writer is closed")
        for spec in self.schema:
            if spec.name not in table.schema:
                raise SchemaError(f"chunk lacks column {spec.name!r}")
            if table.schema.spec(spec.name).kind is not spec.kind:
                raise SchemaError(
                    f"chunk column {spec.name!r} kind differs from the writer's"
                )
            column = table.column(spec.name)
            if spec.kind is AttributeKind.CATEGORICAL:
                data = self._global_codes(spec.name, column)
            else:
                data = np.asarray(column.decode(), dtype=np.float64)
            self._pending[spec.name].append(data)
        self._pending_rows += table.n_rows
        self._flush(final=False)

    def _flush(self, final: bool) -> None:
        if self._pending_rows >= self.shard_rows or (
            final and (self._pending_rows > 0 or not self._shard_files)
        ):
            merged = {
                name: (
                    np.concatenate(chunks)
                    if chunks
                    else np.zeros(
                        0,
                        dtype=np.int32 if name in self._categories else np.float64,
                    )
                )
                for name, chunks in self._pending.items()
            }
            position = 0
            total = self._pending_rows
            while total - position >= self.shard_rows:
                self._write_shard(merged, position, position + self.shard_rows)
                position += self.shard_rows
            if final and (position < total or not self._shard_files):
                # The ragged tail — or, for an empty table, one zero-length
                # shard so the directory is self-describing.
                self._write_shard(merged, position, total)
                position = total
            for name in self._pending:
                self._pending[name] = (
                    [merged[name][position:]] if position < total else []
                )
            self._pending_rows = total - position

    def _write_shard(self, merged: dict, start: int, stop: int) -> None:
        filename = shardstore.shard_filename(len(self._shard_files), self.format)
        arrays = {}
        for spec in self.schema:
            key = shardstore.member_key(
                spec.name, spec.kind is AttributeKind.CATEGORICAL
            )
            arrays[key] = merged[spec.name][start:stop]
        shardstore.write_shard(self.directory, filename, arrays, self.format)
        self._shard_files.append(filename)
        self._shard_lengths.append(stop - start)

    def close(self, fingerprint: str | None = None) -> ShardedTable:
        """Flush the tail shard, write the manifest, and open the result."""
        if self._closed:
            raise SchemaError("writer is closed")
        self._flush(final=True)
        self._closed = True
        n_rows = int(sum(self._shard_lengths))
        shardstore.write_manifest(
            self.directory,
            fmt=self.format,
            n_rows=n_rows,
            shard_rows=self.shard_rows,
            shard_lengths=self._shard_lengths,
            shard_files=self._shard_files,
            schema_specs=[
                (spec.name, spec.kind.value, spec.role.value)
                for spec in self.schema
            ],
            categories={
                name: tuple(values) for name, values in self._categories.items()
            },
            fingerprint=fingerprint,
        )
        return ShardedTable.open(self.directory)


def sharded_from_chunks(
    directory: str,
    schema: Schema,
    chunks: Iterable[Table],
    shard_rows: int,
    fmt: str | None = None,
) -> ShardedTable:
    """Write a chunk stream into ``directory`` and open the result."""
    writer = ShardedTableWriter(directory, schema, shard_rows, fmt=fmt)
    for chunk in chunks:
        writer.append_table(chunk)
    return writer.close()


__all__ = [
    "ShardedTable",
    "ShardedTableWriter",
    "sharded_from_chunks",
    "SHARD_CACHE_TABLES",
]
