"""Synthetic datasets with known ground truth (S19, S20).

The paper evaluates on the 2021 Stack Overflow developer survey and the UCI
German Credit data, neither of which ships with this offline reproduction.
Both are therefore *generated* from structural causal models whose DAGs and
effect profiles mirror the paper's description (see DESIGN.md, Substitutions
1-2): treatment effects are planted, moderated by the protected attribute,
and a deliberately non-causal correlated attribute is included so that
association-based baselines pick up the paper's "sexual orientation"-style
trap.
"""

from repro.datasets.bundle import DatasetBundle
from repro.datasets.stackoverflow import load_stackoverflow
from repro.datasets.german import load_german
from repro.datasets.registry import DATASET_LOADERS, load_dataset
from repro.datasets.sharded import (
    ShardedTable,
    ShardedTableWriter,
    sharded_from_chunks,
)

__all__ = [
    "DatasetBundle",
    "load_stackoverflow",
    "load_german",
    "DATASET_LOADERS",
    "load_dataset",
    "ShardedTable",
    "ShardedTableWriter",
    "sharded_from_chunks",
]
