"""Dataset registry: look up loaders by name.

Keeps the experiment harness free of dataset-specific imports — a benchmark
asks for ``load_dataset("stackoverflow", n=6000)`` and receives a
:class:`~repro.datasets.bundle.DatasetBundle`.

Besides the two paper datasets, every ground-truth world of the scenario
oracle grid (:mod:`repro.scenarios`) is addressable as
``scenario:<name>`` — e.g. ``load_dataset("scenario:linear-g2-d1-gap-lo")``
— so the CLI and the benchmarks can name known-CATE worlds the same way
they name the bundled datasets.  Scenario resolution is imported lazily to
keep ``repro.datasets`` import-light (and cycle-free: the scenario package
itself builds :class:`DatasetBundle` objects).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.datasets.german import load_german
from repro.datasets.stackoverflow import load_stackoverflow
from repro.utils.errors import ConfigError

DATASET_LOADERS: dict[str, Callable[..., DatasetBundle]] = {
    "stackoverflow": load_stackoverflow,
    "german": load_german,
}


def available_datasets() -> tuple[str, ...]:
    """Every loadable dataset name: bundled datasets plus scenario worlds."""
    from repro.scenarios.catalog import scenario_names

    return tuple(sorted(DATASET_LOADERS)) + scenario_names()


def load_dataset(
    name: str,
    n: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> DatasetBundle:
    """Load a registered dataset by name.

    Parameters
    ----------
    name:
        ``"stackoverflow"``, ``"german"``, or a scenario world
        (``"scenario:<name>"``).
    n:
        Row count override (``None`` = the paper's size: 38K / 1K; scenario
        worlds default to :data:`repro.scenarios.catalog.DEFAULT_ROWS`).
    rng:
        Seed or generator.
    """
    loader = DATASET_LOADERS.get(name)
    if loader is None:
        from repro.scenarios.catalog import is_scenario_name, load_scenario

        if is_scenario_name(name):
            if n is None:
                return load_scenario(name, rng=rng)
            return load_scenario(name, n=n, rng=rng)
        raise ConfigError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_LOADERS)} "
            "plus the scenario worlds (scenario:<name> — see "
            "`python -m repro list-datasets`)"
        )
    if n is None:
        return loader(rng=rng)
    return loader(n=n, rng=rng)
