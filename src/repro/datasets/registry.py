"""Dataset registry: look up loaders by name.

Keeps the experiment harness free of dataset-specific imports — a benchmark
asks for ``load_dataset("stackoverflow", n=6000)`` and receives a
:class:`~repro.datasets.bundle.DatasetBundle`.

Besides the two paper datasets, every ground-truth world of the scenario
oracle grid (:mod:`repro.scenarios`) is addressable as
``scenario:<name>`` — e.g. ``load_dataset("scenario:linear-g2-d1-gap-lo")``
— so the CLI and the benchmarks can name known-CATE worlds the same way
they name the bundled datasets.  Scenario resolution is imported lazily to
keep ``repro.datasets`` import-light (and cycle-free: the scenario package
itself builds :class:`DatasetBundle` objects).
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.datasets.german import load_german
from repro.datasets.stackoverflow import load_stackoverflow
from repro.utils.errors import ConfigError

DATASET_LOADERS: dict[str, Callable[..., DatasetBundle]] = {
    "stackoverflow": load_stackoverflow,
    "german": load_german,
}


def available_datasets() -> tuple[str, ...]:
    """Every loadable dataset name: bundled datasets plus scenario worlds."""
    from repro.scenarios.catalog import scenario_names

    return tuple(sorted(DATASET_LOADERS)) + scenario_names()


def load_dataset(
    name: str,
    n: int | None = None,
    rng: int | np.random.Generator | None = None,
    shard_rows: int | None = None,
    shard_dir: str | None = None,
) -> DatasetBundle:
    """Load a registered dataset by name.

    Parameters
    ----------
    name:
        ``"stackoverflow"``, ``"german"``, or a scenario world
        (``"scenario:<name>"``).
    n:
        Row count override (``None`` = the paper's size: 38K / 1K; scenario
        worlds default to :data:`repro.scenarios.catalog.DEFAULT_ROWS`).
    rng:
        Seed or generator.
    shard_rows:
        When set, spill the loaded table into a columnar shard store of
        ``shard_rows``-row shards and return the bundle with the sharded
        handle in place of the in-RAM table.  The spill is a pure
        re-layout: masks, filters, and sufficient statistics computed
        through the handle are identical to the materialised table's, so
        mining results are bit-for-bit unchanged.
    shard_dir:
        Shard-store directory (required with ``shard_rows``).  An existing
        store with a matching fingerprint and shard size is reused.
    """
    loader = DATASET_LOADERS.get(name)
    if loader is None:
        from repro.scenarios.catalog import is_scenario_name, load_scenario

        if is_scenario_name(name):
            if n is None:
                bundle = load_scenario(name, rng=rng)
            else:
                bundle = load_scenario(name, n=n, rng=rng)
            return _maybe_shard(bundle, shard_rows, shard_dir)
        raise ConfigError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_LOADERS)} "
            "plus the scenario worlds (scenario:<name> — see "
            "`python -m repro list-datasets`)"
        )
    if n is None:
        bundle = loader(rng=rng)
    else:
        bundle = loader(n=n, rng=rng)
    return _maybe_shard(bundle, shard_rows, shard_dir)


def _maybe_shard(
    bundle: DatasetBundle, shard_rows: int | None, shard_dir: str | None
) -> DatasetBundle:
    """Replace the bundle's table with a shard-store handle when requested."""
    if shard_rows is None:
        if shard_dir is not None:
            raise ConfigError("shard_dir requires shard_rows")
        return bundle
    if shard_dir is None:
        raise ConfigError("load_dataset(shard_rows=...) requires shard_dir")
    import dataclasses

    from repro.datasets.sharded import ShardedTable

    sharded = ShardedTable.write(bundle.table, shard_dir, shard_rows, reuse=True)
    return dataclasses.replace(bundle, table=sharded)
