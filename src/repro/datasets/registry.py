"""Dataset registry: look up loaders by name.

Keeps the experiment harness free of dataset-specific imports — a benchmark
asks for ``load_dataset("stackoverflow", n=6000)`` and receives a
:class:`~repro.datasets.bundle.DatasetBundle`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.datasets.german import load_german
from repro.datasets.stackoverflow import load_stackoverflow
from repro.utils.errors import ConfigError

DATASET_LOADERS: dict[str, Callable[..., DatasetBundle]] = {
    "stackoverflow": load_stackoverflow,
    "german": load_german,
}


def load_dataset(
    name: str,
    n: int | None = None,
    rng: int | np.random.Generator | None = None,
) -> DatasetBundle:
    """Load a registered dataset by name.

    Parameters
    ----------
    name:
        ``"stackoverflow"`` or ``"german"``.
    n:
        Row count override (``None`` = the paper's size: 38K / 1K).
    rng:
        Seed or generator.
    """
    try:
        loader = DATASET_LOADERS[name]
    except KeyError:
        raise ConfigError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_LOADERS)}"
        ) from None
    if n is None:
        return loader(rng=rng)
    return loader(n=n, rng=rng)
