"""Low-level shard persistence for the out-of-core data layer.

One shard = one columnar file holding a contiguous row range of a table:
``int32`` code arrays for categorical columns (indexing a *global* category
dictionary kept in the manifest) and ``float64`` arrays for continuous
columns.  The directory layout follows the persistence pattern of the
credit-risk-engine exemplar (one self-describing manifest plus per-chunk
column files):

.. code-block:: text

    <directory>/
        manifest.json          # schema, categories, shard lengths, format
        shard-00000.npz        # column arrays of rows [0, len_0)
        shard-00001.npz        # column arrays of rows [len_0, len_0+len_1)
        ...

Two on-disk formats are supported behind the same read/write functions:

- ``"npz"`` (default): an uncompressed numpy zip per shard.  Always
  available, and member access through :func:`read_shard_member` is lazy —
  a single column of a shard is decompressed without touching the others,
  which is what keeps the streaming fingerprint pass O(one column chunk).
- ``"parquet"``: one parquet file per shard, used when ``pyarrow`` is
  importable.  The container this repo targets does not bake pyarrow in,
  so the branch is feature-gated (:func:`parquet_available`) rather than a
  hard dependency; the npz path is the tested reference either way.

The manifest is JSON on purpose: it is tiny (no row data), human-greppable,
and read once per :class:`~repro.datasets.sharded.ShardedTable` open.
"""

from __future__ import annotations

import json
import os
from typing import Mapping

import numpy as np

from repro.utils.errors import SchemaError

MANIFEST_NAME = "manifest.json"
MANIFEST_VERSION = 1

FORMAT_NPZ = "npz"
FORMAT_PARQUET = "parquet"

#: Shard member key prefixes: categorical code arrays vs numeric values.
CAT_PREFIX = "cat::"
NUM_PREFIX = "num::"


def parquet_available() -> bool:
    """Whether the optional parquet backend can be imported."""
    try:  # pragma: no cover - depends on the environment's extras
        import pyarrow.parquet  # noqa: F401
    except Exception:
        return False
    return True  # pragma: no cover


def default_format() -> str:
    """The preferred on-disk format for this environment."""
    return FORMAT_PARQUET if parquet_available() else FORMAT_NPZ


def validate_format(fmt: str | None) -> str:
    """Resolve ``fmt`` (``None`` = environment default) and check support."""
    if fmt is None:
        return default_format()
    if fmt not in (FORMAT_NPZ, FORMAT_PARQUET):
        raise SchemaError(f"unknown shard format {fmt!r}")
    if fmt == FORMAT_PARQUET and not parquet_available():
        raise SchemaError("shard format 'parquet' requires pyarrow")
    return fmt


def shard_filename(index: int, fmt: str) -> str:
    """Canonical shard file name for shard ``index``."""
    suffix = "parquet" if fmt == FORMAT_PARQUET else "npz"
    return f"shard-{index:05d}.{suffix}"


def member_key(name: str, categorical: bool) -> str:
    """Shard member key for column ``name``."""
    return (CAT_PREFIX if categorical else NUM_PREFIX) + name


def write_shard(
    directory: str, filename: str, arrays: Mapping[str, np.ndarray], fmt: str
) -> None:
    """Write one shard file of column arrays (keys from :func:`member_key`)."""
    path = os.path.join(directory, filename)
    if fmt == FORMAT_NPZ:
        # Uncompressed: shard reads sit on the mining hot path and the
        # arrays (int32 codes, float64 outcomes) compress poorly anyway.
        with open(path, "wb") as handle:
            np.savez(handle, **{key: np.asarray(a) for key, a in arrays.items()})
        return
    import pyarrow as pa  # pragma: no cover - gated by validate_format
    import pyarrow.parquet as pq  # pragma: no cover

    table = pa.table(  # pragma: no cover
        {key: pa.array(np.asarray(a)) for key, a in arrays.items()}
    )
    pq.write_table(table, path)  # pragma: no cover


def read_shard(directory: str, filename: str, fmt: str) -> dict[str, np.ndarray]:
    """Read every column array of one shard file."""
    path = os.path.join(directory, filename)
    if fmt == FORMAT_NPZ:
        with np.load(path) as data:
            return {key: data[key] for key in data.files}
    import pyarrow.parquet as pq  # pragma: no cover - gated

    table = pq.read_table(path)  # pragma: no cover
    return {  # pragma: no cover
        name: column.to_numpy() for name, column in zip(table.column_names, table)
    }


def read_shard_member(
    directory: str, filename: str, fmt: str, key: str
) -> np.ndarray:
    """Read a single column array of one shard file (lazy member access)."""
    path = os.path.join(directory, filename)
    if fmt == FORMAT_NPZ:
        with np.load(path) as data:
            return data[key]
    import pyarrow.parquet as pq  # pragma: no cover - gated

    return pq.read_table(path, columns=[key])[key].to_numpy()  # pragma: no cover


def _jsonable_category(value: object) -> object:
    """A JSON-storable form of one category value (numpy scalars unwrap)."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise SchemaError(
            f"category value {value!r} ({type(value).__name__}) is not "
            "JSON-serialisable; sharded storage supports "
            "str/int/float/bool/None categories"
        )
    return value


def write_manifest(
    directory: str,
    *,
    fmt: str,
    n_rows: int,
    shard_rows: int,
    shard_lengths: list[int],
    shard_files: list[str],
    schema_specs: list[tuple[str, str, str]],
    categories: Mapping[str, tuple],
    fingerprint: str | None,
) -> None:
    """Write the directory manifest (atomically via a rename)."""
    manifest = {
        "version": MANIFEST_VERSION,
        "format": fmt,
        "n_rows": int(n_rows),
        "shard_rows": int(shard_rows),
        "shard_lengths": [int(length) for length in shard_lengths],
        "shards": list(shard_files),
        "schema": [list(spec) for spec in schema_specs],
        "categories": {
            name: [_jsonable_category(v) for v in values]
            for name, values in categories.items()
        },
        "fingerprint": fingerprint,
    }
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    os.replace(tmp, path)


def read_manifest(directory: str) -> dict:
    """Read and sanity-check a directory manifest."""
    path = os.path.join(directory, MANIFEST_NAME)
    if not os.path.isfile(path):
        raise SchemaError(f"no shard manifest at {path}")
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("version")
    if version != MANIFEST_VERSION:
        raise SchemaError(
            f"unsupported shard manifest version {version!r} "
            f"(expected {MANIFEST_VERSION})"
        )
    fmt = manifest.get("format")
    if fmt not in (FORMAT_NPZ, FORMAT_PARQUET):
        raise SchemaError(f"unknown shard format {fmt!r} in manifest")
    if fmt == FORMAT_PARQUET and not parquet_available():
        raise SchemaError(
            "manifest uses the parquet shard format but pyarrow is unavailable"
        )
    if sum(manifest["shard_lengths"]) != manifest["n_rows"]:
        raise SchemaError("shard manifest lengths do not sum to n_rows")
    if len(manifest["shard_lengths"]) != len(manifest["shards"]):
        raise SchemaError("shard manifest lengths/files count mismatch")
    return manifest
