"""Vectorised helpers for writing SCM mechanisms.

Categorical mechanisms draw from per-row probability vectors using a single
uniform noise array (inverse-CDF sampling), which keeps them replayable under
``do()`` interventions: the same noise yields the same draw whenever the
parent-conditional distribution is unchanged.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.utils.errors import SchemaError


def pick(
    values: Sequence[object], probabilities: Sequence[float], uniform: np.ndarray
) -> np.ndarray:
    """Sample from a fixed categorical distribution via inverse CDF.

    Parameters
    ----------
    values:
        The categories.
    probabilities:
        Their probabilities (must sum to ~1).
    uniform:
        Uniform(0,1) noise, one entry per row.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if len(values) != probs.size:
        raise SchemaError("values and probabilities must have equal length")
    if not np.isclose(probs.sum(), 1.0, atol=1e-6):
        raise SchemaError(f"probabilities sum to {probs.sum():.6f}, expected 1")
    cumulative = np.cumsum(probs)
    indices = np.searchsorted(cumulative, uniform, side="right")
    indices = np.clip(indices, 0, len(values) - 1)
    lookup_arr = np.asarray(values, dtype=object)
    return lookup_arr[indices]


def pick_rows(
    values: Sequence[object], prob_matrix: np.ndarray, uniform: np.ndarray
) -> np.ndarray:
    """Sample from row-specific categorical distributions via inverse CDF.

    ``prob_matrix`` has shape ``(n, k)``; each row is normalised before
    sampling so mechanisms can pass unnormalised scores.
    """
    matrix = np.asarray(prob_matrix, dtype=np.float64)
    if matrix.ndim != 2 or matrix.shape[1] != len(values):
        raise SchemaError(
            f"prob_matrix shape {matrix.shape} incompatible with {len(values)} values"
        )
    if (matrix < 0).any():
        raise SchemaError("probabilities must be non-negative")
    totals = matrix.sum(axis=1, keepdims=True)
    if (totals <= 0).any():
        raise SchemaError("each row must have positive total probability")
    cumulative = np.cumsum(matrix / totals, axis=1)
    indices = (uniform[:, None] > cumulative).sum(axis=1)
    indices = np.clip(indices, 0, len(values) - 1)
    lookup_arr = np.asarray(values, dtype=object)
    return lookup_arr[indices]


def lookup(
    mapping: Mapping[object, float], keys: np.ndarray, default: float = 0.0
) -> np.ndarray:
    """Vectorised ``mapping[key]`` over an object array, with a default."""
    out = np.full(keys.shape[0], float(default), dtype=np.float64)
    for value, effect in mapping.items():
        out[keys == value] = float(effect)
    return out


def indicator(keys: np.ndarray, value: object) -> np.ndarray:
    """Float 0/1 indicator of ``keys == value``."""
    return (keys == value).astype(np.float64)


def uniform_noise(n: int, rng: np.random.Generator) -> np.ndarray:
    """Noise sampler producing Uniform(0,1) draws (for categorical nodes)."""
    return rng.random(n)
