"""The :class:`DatasetBundle`: everything an experiment needs in one object."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.causal.dag import CausalDAG
from repro.causal.scm import StructuralCausalModel
from repro.rules.protected import ProtectedGroup
from repro.rules.templates import RuleTemplates
from repro.tabular.schema import Schema
from repro.tabular.table import Table


@dataclass(frozen=True)
class DatasetBundle:
    """A dataset plus its causal model and experiment defaults.

    Attributes
    ----------
    name:
        Dataset identifier (``"stackoverflow"`` / ``"german"``).
    table:
        The generated data.
    schema:
        Attribute roles (immutable / mutable / outcome).
    dag:
        The "original causal DAG" of the dataset (the SCM's own graph).
    protected:
        The protected group of Table 3.
    scm:
        The generating SCM — exposes ground-truth effects for tests.
    templates:
        Natural-language templates for the case-study rendering.
    default_fairness_threshold:
        The paper's default SP/BGL threshold for this dataset
        (SO: $10k, German: 0.1).
    default_coverage_theta:
        The paper's default coverage thresholds (SO: 0.5, German: 0.3).
    fairness_kind:
        Which fairness family the paper evaluates on this dataset
        (SO: ``"SP"``, German: ``"BGL"``).
    """

    name: str
    table: Table
    schema: Schema
    dag: CausalDAG
    protected: ProtectedGroup
    scm: StructuralCausalModel
    templates: RuleTemplates = field(default_factory=RuleTemplates)
    default_fairness_threshold: float = 0.0
    default_coverage_theta: float = 0.5
    fairness_kind: str = "SP"

    @property
    def outcome(self) -> str:
        """The outcome attribute name."""
        return self.schema.outcome_name

    def stats(self) -> dict[str, object]:
        """The Table 3 row for this dataset."""
        return {
            "dataset": self.name,
            "tuples": self.table.n_rows,
            "attributes": len(self.schema) - 1,  # excluding the outcome
            "mutable_attributes": len(self.schema.mutable_names),
            "protected_group": self.protected.name,
            "protected_fraction": self.protected.fraction(self.table),
        }
