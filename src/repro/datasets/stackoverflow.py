"""Synthetic Stack Overflow developer-survey dataset (S19).

Mirrors the paper's SO setup (Table 3): ~38K rows, 20 attributes of which 10
are mutable, outcome = annual salary in USD, protected group = respondents
from low-GDP countries (~21.5% of rows).

The generating SCM plants the causal structure the paper's case study
reports, so the reproduction exhibits the same qualitative findings:

- salary is dominated by the country's economy (high base in high-GDP
  countries) — a *confounder*, not an actionable lever;
- education, undergraduate major (CS), role (developer roles), daily
  computer hours and company size have genuine positive causal effects on
  salary, **moderated by GDP**: the protected group receives roughly half
  the effect (``LOW_GDP_EFFECT_FACTOR``), which is exactly the disparity
  FairCap's fairness constraints must manage;
- sexual orientation has **zero** causal effect but is correlated with
  country, so association-based baselines (IDS / FRL) surface it while
  causal methods must not — the paper's motivating trap (Sec. 7.2).

All distributions are invented (the real survey is not redistributable);
DESIGN.md documents the substitution.
"""

from __future__ import annotations

import numpy as np

from repro.causal.scm import SCMNode, StructuralCausalModel
from repro.datasets.bundle import DatasetBundle
from repro.datasets.synth import lookup, pick, pick_rows, uniform_noise
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.templates import RuleTemplates
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.utils.rng import ensure_rng

# -- domains ---------------------------------------------------------------------

COUNTRIES = (
    "US", "Germany", "UK", "Canada", "France", "Australia", "China",
    "India", "Brazil", "Nigeria", "Philippines",
)
COUNTRY_PROBS = (0.28, 0.10, 0.09, 0.08, 0.07, 0.06, 0.095, 0.08, 0.07, 0.04, 0.035)
LOW_GDP_COUNTRIES = frozenset({"India", "Brazil", "Nigeria", "Philippines"})

GENDERS = ("Male", "Female", "Non-binary")
ETHNICITIES = ("White", "South Asian", "East Asian", "Black", "Hispanic")
AGES = ("18-24", "25-34", "35-44", "45-54", "55+")
YEARS_CODING = ("0-2", "3-5", "6-8", "9-11", "12+")
PARENT_EDUCATION = ("Primary", "Secondary", "Bachelor", "Graduate")
ORIENTATIONS = ("Straight", "Gay or Lesbian", "Bisexual", "Prefer not to say")

EDUCATIONS = ("HighSchool", "Bachelor", "Master", "PhD")
MAJORS = ("CS", "Engineering", "Science", "Business", "Arts", "None")
ROLES = (
    "Back-end developer", "Front-end developer", "Full-stack developer",
    "Data scientist", "QA developer", "Designer", "Manager", "C-suite",
)
HOURS_COMPUTER = ("<5", "5-8", "9-12", "12+")
REMOTE = ("Onsite", "Hybrid", "Remote")
LANGUAGES = ("Python", "JavaScript", "Java", "C++", "Go")
EXERCISE = ("Never", "1-2 per week", "3-4 per week", "Daily")
COMPANY_SIZES = ("Small", "Medium", "Large")
YES_NO = ("No", "Yes")

# -- effect profile (all in USD / year) -----------------------------------------

COUNTRY_BASE = {
    "US": 95_000.0, "Germany": 74_000.0, "UK": 70_000.0, "Canada": 72_000.0,
    "France": 62_000.0, "Australia": 68_000.0, "China": 38_000.0,
    "India": 16_000.0, "Brazil": 20_000.0, "Nigeria": 12_000.0,
    "Philippines": 14_000.0,
}
LOW_GDP_EFFECT_FACTOR = 0.45
"""Protected-group treatment effects are this fraction of the full effect."""

EDUCATION_EFFECT = {"HighSchool": 0.0, "Bachelor": 24_000.0,
                    "Master": 31_000.0, "PhD": 36_000.0}
MAJOR_EFFECT = {"CS": 30_000.0, "Engineering": 17_000.0, "Science": 9_000.0,
                "Business": 5_000.0, "Arts": 0.0, "None": 0.0}
ROLE_EFFECT = {
    "Back-end developer": 42_000.0, "Front-end developer": 40_000.0,
    "Full-stack developer": 36_000.0, "Data scientist": 48_000.0,
    "QA developer": 2_000.0, "Designer": 0.0, "Manager": 22_000.0,
    "C-suite": 52_000.0,
}
HOURS_EFFECT = {"<5": 0.0, "5-8": 9_000.0, "9-12": 18_000.0, "12+": 13_000.0}
COMPANY_EFFECT = {"Small": 0.0, "Medium": 8_000.0, "Large": 18_000.0}
LANGUAGE_EFFECT = {"Python": 4_000.0, "JavaScript": 2_500.0, "Java": 2_000.0,
                   "C++": 3_000.0, "Go": 5_000.0}
REMOTE_EFFECT = {"Onsite": 0.0, "Hybrid": 2_000.0, "Remote": 4_000.0}
OPEN_SOURCE_EFFECT = {"No": 0.0, "Yes": 3_000.0}
CERTIFICATION_EFFECT = {"No": 0.0, "Yes": 5_000.0}
EXERCISE_EFFECT = {"Never": 0.0, "1-2 per week": 500.0,
                   "3-4 per week": 800.0, "Daily": 1_000.0}
YEARS_CODING_EFFECT = {"0-2": 0.0, "3-5": 8_000.0, "6-8": 16_000.0,
                       "9-11": 24_000.0, "12+": 30_000.0}
AGE_EFFECT = {"18-24": 0.0, "25-34": 6_000.0, "35-44": 10_000.0,
              "45-54": 12_000.0, "55+": 11_000.0}
GENDER_EFFECT = {"Male": 2_000.0, "Female": 0.0, "Non-binary": 0.0}
STUDENT_EFFECT = {"No": 0.0, "Yes": -14_000.0}
SALARY_NOISE_SD = 9_000.0


def _gdp_factor(country: np.ndarray) -> np.ndarray:
    """Per-row treatment-effect moderation by the country's economy."""
    low = np.isin(country, tuple(LOW_GDP_COUNTRIES))
    return np.where(low, LOW_GDP_EFFECT_FACTOR, 1.0)


# -- mechanisms ------------------------------------------------------------------


def _mk_country(parents, noise):
    return pick(COUNTRIES, COUNTRY_PROBS, noise)


def _mk_gdp(parents, noise):
    low = np.isin(parents["Country"], tuple(LOW_GDP_COUNTRIES))
    return np.where(low, "Low", "High").astype(object)


def _mk_gender(parents, noise):
    return pick(GENDERS, (0.72, 0.25, 0.03), noise)


def _mk_age(parents, noise):
    return pick(AGES, (0.22, 0.42, 0.22, 0.10, 0.04), noise)


def _mk_ethnicity(parents, noise):
    country = parents["Country"]
    n = country.shape[0]
    probs = np.zeros((n, len(ETHNICITIES)))
    western = np.isin(country, ("US", "Germany", "UK", "Canada", "France", "Australia"))
    south_asian = country == "India"
    east_asian = np.isin(country, ("China", "Philippines"))
    latin = country == "Brazil"
    african = country == "Nigeria"
    probs[western] = (0.70, 0.08, 0.08, 0.07, 0.07)
    probs[south_asian] = (0.02, 0.92, 0.03, 0.02, 0.01)
    probs[east_asian] = (0.02, 0.03, 0.92, 0.02, 0.01)
    probs[latin] = (0.25, 0.02, 0.02, 0.06, 0.65)
    probs[african] = (0.02, 0.02, 0.02, 0.92, 0.02)
    return pick_rows(ETHNICITIES, probs, noise)


def _mk_years_coding(parents, noise):
    age = parents["Age"]
    n = age.shape[0]
    probs = np.zeros((n, len(YEARS_CODING)))
    probs[age == "18-24"] = (0.55, 0.35, 0.08, 0.01, 0.01)
    probs[age == "25-34"] = (0.15, 0.30, 0.30, 0.15, 0.10)
    probs[age == "35-44"] = (0.05, 0.12, 0.23, 0.25, 0.35)
    probs[age == "45-54"] = (0.03, 0.07, 0.15, 0.20, 0.55)
    probs[age == "55+"] = (0.02, 0.05, 0.10, 0.13, 0.70)
    return pick_rows(YEARS_CODING, probs, noise)


def _mk_dependents(parents, noise):
    age = parents["Age"]
    p_yes = lookup(
        {"18-24": 0.08, "25-34": 0.35, "35-44": 0.65, "45-54": 0.70, "55+": 0.60},
        age,
    )
    return np.where(noise < p_yes, "Yes", "No").astype(object)


def _mk_parent_education(parents, noise):
    return pick(PARENT_EDUCATION, (0.15, 0.40, 0.30, 0.15), noise)


def _mk_student(parents, noise):
    age = parents["Age"]
    p_yes = lookup(
        {"18-24": 0.45, "25-34": 0.12, "35-44": 0.04, "45-54": 0.02, "55+": 0.01},
        age,
    )
    return np.where(noise < p_yes, "Yes", "No").astype(object)


def _mk_orientation(parents, noise):
    """Correlated with country, causally inert for salary (the IDS/FRL trap)."""
    country = parents["Country"]
    n = country.shape[0]
    probs = np.tile(np.array([0.86, 0.06, 0.05, 0.03]), (n, 1))
    low = np.isin(country, tuple(LOW_GDP_COUNTRIES))
    probs[low] = (0.94, 0.015, 0.015, 0.03)
    return pick_rows(ORIENTATIONS, probs, noise)


def _mk_education(parents, noise):
    age, gender = parents["Age"], parents["Gender"]
    country, parent_ed = parents["Country"], parents["ParentsEducation"]
    n = age.shape[0]
    # Base distribution over (HighSchool, Bachelor, Master, PhD).
    probs = np.tile(np.array([0.25, 0.45, 0.22, 0.08]), (n, 1))
    young = age == "18-24"
    probs[young] = (0.55, 0.38, 0.06, 0.01)
    graduate_parents = np.isin(parent_ed, ("Bachelor", "Graduate"))
    probs[graduate_parents] *= (0.6, 1.1, 1.4, 1.6)
    rich = ~np.isin(country, tuple(LOW_GDP_COUNTRIES))
    probs[rich] *= (0.85, 1.0, 1.15, 1.2)
    probs[gender == "Female"] *= (0.95, 1.05, 1.05, 0.95)
    return pick_rows(EDUCATIONS, probs, noise)


def _mk_major(parents, noise):
    student, education = parents["Student"], parents["Education"]
    n = student.shape[0]
    probs = np.tile(np.array([0.30, 0.20, 0.15, 0.12, 0.08, 0.15]), (n, 1))
    probs[student == "Yes"] = (0.40, 0.22, 0.13, 0.10, 0.10, 0.05)
    probs[education == "HighSchool"] = (0.05, 0.05, 0.05, 0.05, 0.05, 0.75)
    return pick_rows(MAJORS, probs, noise)


def _mk_role(parents, noise):
    education, age = parents["Education"], parents["Age"]
    gender, ethnicity = parents["Gender"], parents["Ethnicity"]
    years = parents["YearsCoding"]
    n = education.shape[0]
    probs = np.tile(
        np.array([0.22, 0.16, 0.20, 0.08, 0.10, 0.08, 0.10, 0.06]), (n, 1)
    )
    advanced = np.isin(education, ("Master", "PhD"))
    probs[advanced] *= (1.1, 0.9, 1.0, 2.2, 0.6, 0.5, 1.2, 1.3)
    senior = np.isin(age, ("35-44", "45-54", "55+"))
    probs[senior] *= (0.9, 0.8, 0.9, 1.0, 0.8, 0.7, 1.8, 2.0)
    experienced = np.isin(years, ("9-11", "12+"))
    probs[experienced] *= (1.1, 0.9, 1.0, 1.1, 0.7, 0.6, 1.5, 1.6)
    probs[gender == "Female"] *= (0.85, 1.25, 0.95, 1.0, 1.2, 1.3, 0.95, 0.7)
    probs[ethnicity == "White"] *= (1.0, 1.0, 1.0, 1.0, 0.9, 1.0, 1.1, 1.2)
    return pick_rows(ROLES, probs, noise)


def _mk_hours(parents, noise):
    role = parents["Role"]
    n = role.shape[0]
    probs = np.tile(np.array([0.10, 0.45, 0.35, 0.10]), (n, 1))
    dev = np.isin(
        role,
        ("Back-end developer", "Front-end developer", "Full-stack developer",
         "Data scientist"),
    )
    probs[dev] = (0.04, 0.36, 0.45, 0.15)
    probs[role == "Manager"] = (0.15, 0.55, 0.25, 0.05)
    return pick_rows(HOURS_COMPUTER, probs, noise)


def _mk_remote(parents, noise):
    role = parents["Role"]
    n = role.shape[0]
    probs = np.tile(np.array([0.40, 0.35, 0.25]), (n, 1))
    probs[role == "Data scientist"] = (0.30, 0.40, 0.30)
    return pick_rows(REMOTE, probs, noise)


def _mk_language(parents, noise):
    major, role = parents["UndergradMajor"], parents["Role"]
    n = major.shape[0]
    probs = np.tile(np.array([0.25, 0.30, 0.20, 0.15, 0.10]), (n, 1))
    probs[major == "CS"] = (0.30, 0.25, 0.20, 0.15, 0.10)
    probs[role == "Data scientist"] = (0.70, 0.08, 0.08, 0.09, 0.05)
    probs[role == "Front-end developer"] = (0.08, 0.72, 0.08, 0.06, 0.06)
    return pick_rows(LANGUAGES, probs, noise)


def _mk_exercise(parents, noise):
    return pick(EXERCISE, (0.30, 0.35, 0.22, 0.13), noise)


def _mk_company_size(parents, noise):
    country = parents["Country"]
    n = country.shape[0]
    probs = np.tile(np.array([0.35, 0.35, 0.30]), (n, 1))
    low = np.isin(country, tuple(LOW_GDP_COUNTRIES))
    probs[low] = (0.45, 0.35, 0.20)
    return pick_rows(COMPANY_SIZES, probs, noise)


def _mk_open_source(parents, noise):
    return np.where(noise < 0.35, "Yes", "No").astype(object)


def _mk_certifications(parents, noise):
    education = parents["Education"]
    p_yes = lookup(
        {"HighSchool": 0.30, "Bachelor": 0.25, "Master": 0.20, "PhD": 0.10},
        education,
    )
    return np.where(noise < p_yes, "Yes", "No").astype(object)


def _mk_salary(parents, noise):
    country = parents["Country"]
    factor = _gdp_factor(country)
    salary = lookup(COUNTRY_BASE, country)
    salary += factor * lookup(EDUCATION_EFFECT, parents["Education"])
    salary += factor * lookup(MAJOR_EFFECT, parents["UndergradMajor"])
    salary += factor * lookup(ROLE_EFFECT, parents["Role"])
    salary += factor * lookup(HOURS_EFFECT, parents["HoursComputer"])
    salary += factor * lookup(COMPANY_EFFECT, parents["CompanySize"])
    salary += factor * lookup(LANGUAGE_EFFECT, parents["PrimaryLanguage"])
    salary += factor * lookup(REMOTE_EFFECT, parents["RemoteWork"])
    salary += factor * lookup(OPEN_SOURCE_EFFECT, parents["OpenSource"])
    salary += factor * lookup(CERTIFICATION_EFFECT, parents["Certifications"])
    salary += lookup(EXERCISE_EFFECT, parents["Exercise"])
    salary += factor * lookup(YEARS_CODING_EFFECT, parents["YearsCoding"])
    salary += lookup(AGE_EFFECT, parents["Age"])
    salary += lookup(GENDER_EFFECT, parents["Gender"])
    salary += lookup(STUDENT_EFFECT, parents["Student"])
    salary += SALARY_NOISE_SD * noise
    return np.maximum(salary, 1_000.0)


def build_stackoverflow_scm() -> StructuralCausalModel:
    """Construct the Stack Overflow SCM (the dataset's "original" DAG)."""
    nodes = [
        SCMNode("Country", (), _mk_country, uniform_noise),
        SCMNode("GDP", ("Country",), _mk_gdp, uniform_noise),
        SCMNode("Gender", (), _mk_gender, uniform_noise),
        SCMNode("Age", (), _mk_age, uniform_noise),
        SCMNode("Ethnicity", ("Country",), _mk_ethnicity, uniform_noise),
        SCMNode("YearsCoding", ("Age",), _mk_years_coding, uniform_noise),
        SCMNode("Dependents", ("Age",), _mk_dependents, uniform_noise),
        SCMNode("ParentsEducation", (), _mk_parent_education, uniform_noise),
        SCMNode("Student", ("Age",), _mk_student, uniform_noise),
        SCMNode("SexualOrientation", ("Country",), _mk_orientation, uniform_noise),
        SCMNode(
            "Education",
            ("Age", "Gender", "Country", "ParentsEducation"),
            _mk_education,
            uniform_noise,
        ),
        SCMNode(
            "UndergradMajor", ("Student", "Education"), _mk_major, uniform_noise
        ),
        SCMNode(
            "Role",
            ("Education", "Age", "Gender", "Ethnicity", "YearsCoding"),
            _mk_role,
            uniform_noise,
        ),
        SCMNode("HoursComputer", ("Role",), _mk_hours, uniform_noise),
        SCMNode("RemoteWork", ("Role",), _mk_remote, uniform_noise),
        SCMNode(
            "PrimaryLanguage", ("UndergradMajor", "Role"), _mk_language, uniform_noise
        ),
        SCMNode("Exercise", (), _mk_exercise, uniform_noise),
        SCMNode("CompanySize", ("Country",), _mk_company_size, uniform_noise),
        SCMNode("OpenSource", (), _mk_open_source, uniform_noise),
        SCMNode("Certifications", ("Education",), _mk_certifications, uniform_noise),
        SCMNode(
            "Salary",
            (
                "Country", "Education", "UndergradMajor", "Role", "HoursComputer",
                "CompanySize", "PrimaryLanguage", "RemoteWork", "OpenSource",
                "Certifications", "Exercise", "YearsCoding", "Age", "Gender",
                "Student",
            ),
            _mk_salary,
        ),
    ]
    return StructuralCausalModel(nodes)


IMMUTABLE_ATTRIBUTES = (
    "Gender", "Ethnicity", "Age", "Country", "GDP", "YearsCoding",
    "Dependents", "ParentsEducation", "Student", "SexualOrientation",
)
MUTABLE_ATTRIBUTES = (
    "Education", "UndergradMajor", "Role", "HoursComputer", "RemoteWork",
    "PrimaryLanguage", "Exercise", "CompanySize", "OpenSource", "Certifications",
)
OUTCOME = "Salary"


def stackoverflow_schema() -> Schema:
    """Schema with the Table 3 role split (10 immutable, 10 mutable + outcome)."""
    specs = [
        AttributeSpec(name, AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE)
        for name in IMMUTABLE_ATTRIBUTES
    ]
    specs += [
        AttributeSpec(name, AttributeKind.CATEGORICAL, AttributeRole.MUTABLE)
        for name in MUTABLE_ATTRIBUTES
    ]
    specs.append(AttributeSpec(OUTCOME, AttributeKind.CONTINUOUS, AttributeRole.OUTCOME))
    return Schema(specs)


def stackoverflow_templates() -> RuleTemplates:
    """Case-study phrasing templates (Sec. 6)."""
    return RuleTemplates(
        grouping={
            "Age": "individuals aged {value}",
            "Gender": "{value} respondents",
            "Dependents": "individuals with dependents: {value}",
            "YearsCoding": "individuals with {value} years of coding experience",
            "Country": "residents of {value}",
            "GDP": "individuals from {value}-GDP countries",
            "Student": "students: {value}",
            "ParentsEducation": "individuals whose parents have {value} education",
        },
        intervention={
            "Education": "pursue a {value} degree",
            "UndergradMajor": "pursue an undergraduate major in {value}",
            "Role": "work as a {value}",
            "HoursComputer": "work with a computer {value} hours a day",
            "CompanySize": "join a {value} company",
            "PrimaryLanguage": "adopt {value} as primary language",
            "RemoteWork": "switch to {value} work",
            "OpenSource": "contribute to open source: {value}",
            "Exercise": "exercise {value}",
        },
    )


def load_stackoverflow(
    n: int = 38_000, rng: int | np.random.Generator | None = None
) -> DatasetBundle:
    """Generate the Stack Overflow bundle.

    Parameters
    ----------
    n:
        Number of rows (paper: 38K; benchmarks may scale down).
    rng:
        Seed or generator (default: the library seed, fully reproducible).
    """
    generator = ensure_rng(rng)
    scm = build_stackoverflow_scm()
    schema = stackoverflow_schema()
    table = scm.sample_table(n, generator, schema=schema)
    protected = ProtectedGroup(Pattern.of(GDP="Low"), name="low-GDP countries")
    return DatasetBundle(
        name="stackoverflow",
        table=table,
        schema=schema,
        dag=scm.dag(),
        protected=protected,
        scm=scm,
        templates=stackoverflow_templates(),
        default_fairness_threshold=10_000.0,
        default_coverage_theta=0.5,
        fairness_kind="SP",
    )
