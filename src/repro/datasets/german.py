"""Synthetic German Credit dataset (S20).

Mirrors the paper's German setup (Table 3): 1,000 rows, 20 attributes of
which 15 are mutable, binary outcome (credit risk: 1 = good), protected
group = single females (~9.2% of rows).

The SCM plants the levers the paper's case study surfaces (Sec. 6):
keeping at least 200 DM in the checking account, pursuing skilled
employment, and owning a house raise the probability of a good credit score,
with effects moderated for the protected group (single females receive
roughly 60% of the effect).  The ``YearsInHousing`` attribute is correlated
with good credit through age but has no causal effect, mirroring the
non-causal FRL rule the paper criticises ("lived in a house for 4-7 years →
high score").

All distributions are invented; DESIGN.md documents the substitution of the
UCI original.
"""

from __future__ import annotations

import numpy as np

from repro.causal.scm import SCMNode, StructuralCausalModel
from repro.datasets.bundle import DatasetBundle
from repro.datasets.synth import lookup, pick, pick_rows, uniform_noise
from repro.mining.patterns import Pattern
from repro.rules.protected import ProtectedGroup
from repro.rules.templates import RuleTemplates
from repro.tabular.schema import AttributeKind, AttributeRole, AttributeSpec, Schema
from repro.utils.rng import ensure_rng

# -- domains ---------------------------------------------------------------------

PERSONAL_STATUS = (
    "male single", "male married", "male divorced",
    "female single", "female married", "female divorced",
)
PERSONAL_STATUS_PROBS = (0.38, 0.25, 0.05, 0.092, 0.18, 0.048)
AGES = ("18-23", "24-30", "31-40", "41-55", "56+")
DEPENDENTS = ("0-2", "3+")
YES_NO = ("No", "Yes")

CHECKING = ("none", "<0 DM", "0-200 DM", ">=200 DM")
SAVINGS = ("none", "<100 DM", "100-500 DM", ">=500 DM")
CREDIT_HISTORY = ("delayed", "existing paid", "all paid", "critical")
PURPOSES = ("new car", "used car", "furniture/equipment", "education",
            "business", "unspecified")
AMOUNTS = ("<1000 DM", "1000-5000 DM", ">5000 DM")
DURATIONS = ("<12 months", "12-24 months", ">24 months")
EMPLOYMENT = ("unemployed", "<1 year", "1-4 years", "4-7 years", ">=7 years")
INSTALLMENT = ("<=2%", "2-3%", ">3%")
HOUSING = ("rent", "own", "free")
PROPERTY = ("none", "car", "savings", "real estate")
OTHER_DEBTORS = ("none", "co-applicant", "guarantor")
JOBS = ("unskilled", "skilled", "management")
EXISTING_CREDITS = ("1", "2", "3+")
TELEPHONE = ("No", "Yes")
OTHER_PLANS = ("none", "bank", "stores")
YEARS_IN_HOUSING = ("<1 year", "1-4 years", "4-7 years", ">7 years")

PROTECTED_EFFECT_FACTOR = 0.55
"""Single females receive this fraction of each treatment effect."""

# Probability-scale effects on P(good credit) — a linear probability model
# (clipped), so planted CATEs and the protected-group moderation are exact.
CHECKING_EFFECT = {"none": 0.0, "<0 DM": -0.10, "0-200 DM": 0.12, ">=200 DM": 0.30}
SAVINGS_EFFECT = {"none": 0.0, "<100 DM": 0.05, "100-500 DM": 0.12, ">=500 DM": 0.20}
HISTORY_EFFECT = {"delayed": -0.12, "existing paid": 0.08, "all paid": 0.20,
                  "critical": -0.20}
JOB_EFFECT = {"unskilled": 0.0, "skilled": 0.18, "management": 0.25}
HOUSING_EFFECT = {"rent": 0.0, "own": 0.20, "free": 0.06}
EMPLOYMENT_EFFECT = {"unemployed": -0.10, "<1 year": 0.0, "1-4 years": 0.08,
                     "4-7 years": 0.13, ">=7 years": 0.16}
PROPERTY_EFFECT = {"none": 0.0, "car": 0.05, "savings": 0.10, "real estate": 0.15}
AMOUNT_EFFECT = {"<1000 DM": 0.08, "1000-5000 DM": 0.0, ">5000 DM": -0.12}
DURATION_EFFECT = {"<12 months": 0.10, "12-24 months": 0.0, ">24 months": -0.12}
INSTALLMENT_EFFECT = {"<=2%": 0.07, "2-3%": 0.02, ">3%": -0.05}
DEBTORS_EFFECT = {"none": 0.0, "co-applicant": -0.05, "guarantor": 0.08}
CREDITS_EFFECT = {"1": 0.0, "2": -0.03, "3+": -0.08}
PLANS_EFFECT = {"none": 0.05, "bank": -0.05, "stores": -0.08}
TELEPHONE_EFFECT = {"No": 0.0, "Yes": 0.02}
PURPOSE_EFFECT = {"new car": 0.0, "used car": 0.04, "furniture/equipment": 0.03,
                  "education": -0.03, "business": 0.01, "unspecified": -0.04}
AGE_EFFECT = {"18-23": -0.12, "24-30": -0.04, "31-40": 0.05, "41-55": 0.09,
              "56+": 0.06}
BASE_PROB = 0.15
EFFECT_SCALE = 0.55
"""Global damping that keeps typical probabilities inside the linear region
of the clipped linear-probability model (clipping would otherwise erase
effects for well-off applicants and invert the planted disparity)."""


def _protected_factor(status: np.ndarray) -> np.ndarray:
    """Effect moderation: single females get ~55% of each treatment effect."""
    return np.where(status == "female single", PROTECTED_EFFECT_FACTOR, 1.0)


# -- mechanisms ------------------------------------------------------------------


def _mk_status(parents, noise):
    return pick(PERSONAL_STATUS, PERSONAL_STATUS_PROBS, noise)


def _mk_age(parents, noise):
    return pick(AGES, (0.15, 0.28, 0.28, 0.20, 0.09), noise)


def _mk_dependents(parents, noise):
    status = parents["PersonalStatus"]
    p_many = lookup(
        {"male married": 0.30, "female married": 0.30, "male single": 0.08,
         "female single": 0.08, "male divorced": 0.15, "female divorced": 0.15},
        status,
    )
    return np.where(noise < p_many, "3+", "0-2").astype(object)


def _mk_foreign(parents, noise):
    return np.where(noise < 0.05, "Yes", "No").astype(object)


def _mk_employment(parents, noise):
    age = parents["Age"]
    n = age.shape[0]
    probs = np.tile(np.array([0.08, 0.17, 0.35, 0.20, 0.20]), (n, 1))
    probs[age == "18-23"] = (0.20, 0.40, 0.32, 0.06, 0.02)
    probs[np.isin(age, ("41-55", "56+"))] = (0.04, 0.06, 0.22, 0.25, 0.43)
    return pick_rows(EMPLOYMENT, probs, noise)


def _mk_job(parents, noise):
    employment = parents["Employment"]
    status = parents["PersonalStatus"]
    n = employment.shape[0]
    probs = np.tile(np.array([0.28, 0.58, 0.14]), (n, 1))
    veteran = np.isin(employment, ("4-7 years", ">=7 years"))
    probs[veteran] = (0.15, 0.58, 0.27)
    probs[status == "female single"] *= (1.3, 0.95, 0.6)
    return pick_rows(JOBS, probs, noise)


def _mk_checking(parents, noise):
    job = parents["Job"]
    n = job.shape[0]
    probs = np.tile(np.array([0.28, 0.18, 0.30, 0.24]), (n, 1))
    probs[job == "management"] = (0.15, 0.10, 0.30, 0.45)
    probs[job == "unskilled"] = (0.40, 0.25, 0.25, 0.10)
    return pick_rows(CHECKING, probs, noise)


def _mk_savings(parents, noise):
    job = parents["Job"]
    n = job.shape[0]
    probs = np.tile(np.array([0.35, 0.25, 0.22, 0.18]), (n, 1))
    probs[job == "management"] = (0.20, 0.20, 0.25, 0.35)
    return pick_rows(SAVINGS, probs, noise)


def _mk_history(parents, noise):
    age = parents["Age"]
    n = age.shape[0]
    probs = np.tile(np.array([0.12, 0.50, 0.25, 0.13]), (n, 1))
    probs[age == "18-23"] = (0.18, 0.55, 0.12, 0.15)
    return pick_rows(CREDIT_HISTORY, probs, noise)


def _mk_purpose(parents, noise):
    return pick(PURPOSES, (0.24, 0.12, 0.22, 0.10, 0.14, 0.18), noise)


def _mk_amount(parents, noise):
    purpose = parents["Purpose"]
    n = purpose.shape[0]
    probs = np.tile(np.array([0.25, 0.50, 0.25]), (n, 1))
    probs[np.isin(purpose, ("new car", "business"))] = (0.10, 0.45, 0.45)
    probs[purpose == "furniture/equipment"] = (0.35, 0.50, 0.15)
    return pick_rows(AMOUNTS, probs, noise)


def _mk_duration(parents, noise):
    amount = parents["CreditAmount"]
    n = amount.shape[0]
    probs = np.tile(np.array([0.30, 0.45, 0.25]), (n, 1))
    probs[amount == ">5000 DM"] = (0.05, 0.35, 0.60)
    probs[amount == "<1000 DM"] = (0.55, 0.35, 0.10)
    return pick_rows(DURATIONS, probs, noise)


def _mk_installment(parents, noise):
    return pick(INSTALLMENT, (0.30, 0.40, 0.30), noise)


def _mk_housing(parents, noise):
    age, job = parents["Age"], parents["Job"]
    n = age.shape[0]
    probs = np.tile(np.array([0.45, 0.42, 0.13]), (n, 1))
    older = np.isin(age, ("31-40", "41-55", "56+"))
    probs[older] = (0.30, 0.58, 0.12)
    probs[job == "management"] *= (0.7, 1.3, 1.0)
    return pick_rows(HOUSING, probs, noise)


def _mk_property(parents, noise):
    housing = parents["Housing"]
    n = housing.shape[0]
    probs = np.tile(np.array([0.30, 0.28, 0.22, 0.20]), (n, 1))
    probs[housing == "own"] = (0.12, 0.25, 0.23, 0.40)
    return pick_rows(PROPERTY, probs, noise)


def _mk_debtors(parents, noise):
    return pick(OTHER_DEBTORS, (0.88, 0.05, 0.07), noise)


def _mk_existing_credits(parents, noise):
    return pick(EXISTING_CREDITS, (0.62, 0.30, 0.08), noise)


def _mk_telephone(parents, noise):
    job = parents["Job"]
    p_yes = lookup({"unskilled": 0.25, "skilled": 0.42, "management": 0.70}, job)
    return np.where(noise < p_yes, "Yes", "No").astype(object)


def _mk_other_plans(parents, noise):
    return pick(OTHER_PLANS, (0.80, 0.13, 0.07), noise)


def _mk_years_in_housing(parents, noise):
    """Correlated with age (hence credit), but causally inert — the FRL trap."""
    age = parents["Age"]
    n = age.shape[0]
    probs = np.tile(np.array([0.20, 0.35, 0.25, 0.20]), (n, 1))
    probs[age == "18-23"] = (0.45, 0.40, 0.10, 0.05)
    probs[np.isin(age, ("41-55", "56+"))] = (0.05, 0.20, 0.30, 0.45)
    return pick_rows(YEARS_IN_HOUSING, probs, noise)


def _mk_credit_risk(parents, noise):
    status = parents["PersonalStatus"]
    factor = EFFECT_SCALE * _protected_factor(status)
    probability = np.full(status.shape[0], BASE_PROB)
    probability += factor * lookup(CHECKING_EFFECT, parents["CheckingAccount"])
    probability += factor * lookup(SAVINGS_EFFECT, parents["SavingsAccount"])
    probability += factor * lookup(HISTORY_EFFECT, parents["CreditHistory"])
    probability += factor * lookup(JOB_EFFECT, parents["Job"])
    probability += factor * lookup(HOUSING_EFFECT, parents["Housing"])
    probability += factor * lookup(EMPLOYMENT_EFFECT, parents["Employment"])
    probability += factor * lookup(PROPERTY_EFFECT, parents["Property"])
    probability += EFFECT_SCALE * lookup(AMOUNT_EFFECT, parents["CreditAmount"])
    probability += EFFECT_SCALE * lookup(DURATION_EFFECT, parents["Duration"])
    probability += EFFECT_SCALE * lookup(INSTALLMENT_EFFECT, parents["InstallmentRate"])
    probability += EFFECT_SCALE * lookup(DEBTORS_EFFECT, parents["OtherDebtors"])
    probability += EFFECT_SCALE * lookup(CREDITS_EFFECT, parents["ExistingCredits"])
    probability += EFFECT_SCALE * lookup(PLANS_EFFECT, parents["OtherInstallmentPlans"])
    probability += EFFECT_SCALE * lookup(TELEPHONE_EFFECT, parents["Telephone"])
    probability += EFFECT_SCALE * lookup(PURPOSE_EFFECT, parents["Purpose"])
    probability += EFFECT_SCALE * lookup(AGE_EFFECT, parents["Age"])
    probability = np.clip(probability, 0.02, 0.98)
    return (noise < probability).astype(np.float64)


def build_german_scm() -> StructuralCausalModel:
    """Construct the German Credit SCM (the dataset's "original" DAG)."""
    nodes = [
        SCMNode("PersonalStatus", (), _mk_status, uniform_noise),
        SCMNode("Age", (), _mk_age, uniform_noise),
        SCMNode("Dependents", ("PersonalStatus",), _mk_dependents, uniform_noise),
        SCMNode("ForeignWorker", (), _mk_foreign, uniform_noise),
        SCMNode("Employment", ("Age",), _mk_employment, uniform_noise),
        SCMNode("Job", ("Employment", "PersonalStatus"), _mk_job, uniform_noise),
        SCMNode("CheckingAccount", ("Job",), _mk_checking, uniform_noise),
        SCMNode("SavingsAccount", ("Job",), _mk_savings, uniform_noise),
        SCMNode("CreditHistory", ("Age",), _mk_history, uniform_noise),
        SCMNode("Purpose", (), _mk_purpose, uniform_noise),
        SCMNode("CreditAmount", ("Purpose",), _mk_amount, uniform_noise),
        SCMNode("Duration", ("CreditAmount",), _mk_duration, uniform_noise),
        SCMNode("InstallmentRate", (), _mk_installment, uniform_noise),
        SCMNode("Housing", ("Age", "Job"), _mk_housing, uniform_noise),
        SCMNode("Property", ("Housing",), _mk_property, uniform_noise),
        SCMNode("OtherDebtors", (), _mk_debtors, uniform_noise),
        SCMNode("ExistingCredits", (), _mk_existing_credits, uniform_noise),
        SCMNode("Telephone", ("Job",), _mk_telephone, uniform_noise),
        SCMNode("OtherInstallmentPlans", (), _mk_other_plans, uniform_noise),
        SCMNode("YearsInHousing", ("Age",), _mk_years_in_housing, uniform_noise),
        SCMNode(
            "CreditRisk",
            (
                "PersonalStatus", "CheckingAccount", "SavingsAccount",
                "CreditHistory", "Job", "Housing", "Employment", "Property",
                "CreditAmount", "Duration", "InstallmentRate", "OtherDebtors",
                "ExistingCredits", "OtherInstallmentPlans", "Telephone",
                "Purpose", "Age",
            ),
            _mk_credit_risk,
            uniform_noise,
        ),
    ]
    return StructuralCausalModel(nodes)


IMMUTABLE_ATTRIBUTES = (
    "PersonalStatus", "Age", "Dependents", "ForeignWorker", "YearsInHousing",
)
MUTABLE_ATTRIBUTES = (
    "CheckingAccount", "SavingsAccount", "CreditHistory", "Purpose",
    "CreditAmount", "Duration", "Employment", "InstallmentRate", "Housing",
    "Property", "OtherDebtors", "Job", "ExistingCredits", "Telephone",
    "OtherInstallmentPlans",
)
OUTCOME = "CreditRisk"


def german_schema() -> Schema:
    """Schema with the Table 3 role split (5 immutable, 15 mutable + outcome)."""
    specs = [
        AttributeSpec(name, AttributeKind.CATEGORICAL, AttributeRole.IMMUTABLE)
        for name in IMMUTABLE_ATTRIBUTES
    ]
    specs += [
        AttributeSpec(name, AttributeKind.CATEGORICAL, AttributeRole.MUTABLE)
        for name in MUTABLE_ATTRIBUTES
    ]
    specs.append(
        AttributeSpec(OUTCOME, AttributeKind.CONTINUOUS, AttributeRole.OUTCOME)
    )
    return Schema(specs)


def german_templates() -> RuleTemplates:
    """Case-study phrasing templates (Sec. 6)."""
    return RuleTemplates(
        grouping={
            "Age": "people aged {value}",
            "PersonalStatus": "{value} applicants",
            "Dependents": "people with {value} dependents",
            "Purpose": "people seeking a loan for {value}",
        },
        intervention={
            "CheckingAccount": "maintain a checking account balance of {value}",
            "SavingsAccount": "maintain savings of {value}",
            "Job": "pursue {value} employment",
            "Housing": "live in {value} housing",
            "CreditHistory": "maintain a credit history of {value}",
            "Employment": "hold employment for {value}",
            "Property": "hold property: {value}",
            "Duration": "take loans of duration {value}",
            "CreditAmount": "take loans of {value}",
        },
    )


def load_german(
    n: int = 1_000, rng: int | np.random.Generator | None = None
) -> DatasetBundle:
    """Generate the German Credit bundle.

    Parameters
    ----------
    n:
        Number of rows (paper: 1,000).
    rng:
        Seed or generator (default: the library seed, fully reproducible).
    """
    generator = ensure_rng(rng)
    scm = build_german_scm()
    schema = german_schema()
    table = scm.sample_table(n, generator, schema=schema)
    protected = ProtectedGroup(
        Pattern.of(PersonalStatus="female single"), name="single females"
    )
    return DatasetBundle(
        name="german",
        table=table,
        schema=schema,
        dag=scm.dag(),
        protected=protected,
        scm=scm,
        templates=german_templates(),
        default_fairness_threshold=0.1,
        default_coverage_theta=0.3,
        fairness_kind="BGL",
    )
